"""Ablation: in-network redundancy regeneration (§4.4.1) on vs. off.

Same churn pattern, same redundancy (d=2, d'=3): with regeneration disabled a
relay that lost a parent cannot replace the missing slice, so downstream
failures compound — which is exactly the gap between Eq. 6 and Eq. 7.
"""

import numpy as np

from repro.core.source import Source
from repro.experiments import format_table
from repro.overlay.local import LocalOverlay


def _run_trials(regenerate: bool, trials: int, failures_per_stage: int = 1) -> float:
    successes = 0
    for trial in range(trials):
        overlay = LocalOverlay()
        relays = [f"relay-{i}" for i in range(60)]
        overlay.add_nodes(relays + ["dest"], seed=trial)
        for relay in overlay.relays.values():
            relay.regenerate_redundancy = regenerate
        source = Source(
            "src",
            ["src-b", "src-c"],
            d=2,
            d_prime=3,
            path_length=4,
            rng=np.random.default_rng(1000 + trial),
        )
        flow = source.establish_flow(relays, "dest")
        overlay.inject(flow.setup_packets)
        rng = np.random.default_rng(2000 + trial)
        # Fail one randomly chosen non-destination relay in every stage after
        # setup: survivable iff redundancy keeps getting regenerated.
        for stage in flow.graph.stages[1:]:
            candidates = [node for node in stage if node != "dest"]
            overlay.fail_node(candidates[int(rng.integers(0, len(candidates)))])
        overlay.inject(source.make_data_packets(flow, b"payload"))
        overlay.flush_flow(flow)
        delivered = overlay.node("dest").delivered_messages(flow.plan.flow_ids["dest"])
        successes += int(delivered.get(0) == b"payload")
    return successes / trials


def run_ablation(trials: int = 30) -> list[dict]:
    return [
        {"regeneration": "enabled", "success_rate": _run_trials(True, trials)},
        {"regeneration": "disabled", "success_rate": _run_trials(False, trials)},
    ]


def test_ablation_network_coding(benchmark, scale):
    trials = max(int(60 * scale), 15)
    rows = benchmark.pedantic(run_ablation, kwargs={"trials": trials}, iterations=1, rounds=1)
    assert rows[0]["success_rate"] >= rows[1]["success_rate"]
    print()
    print(format_table(rows))
