"""Ablation: in-network redundancy regeneration (§4.4.1) on vs. off.

Same churn pattern, same redundancy (d=2, d'=3): with regeneration disabled a
relay that lost a parent cannot replace the missing slice, so downstream
failures compound — which is exactly the gap between Eq. 6 and Eq. 7.  Runs
through the experiment runner (``run_experiment("ablation_network_coding")``).
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_ablation_network_coding(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows,
        kwargs={"name": "ablation_network_coding", "scale": scale},
        iterations=1,
        rounds=1,
    )
    assert rows[0]['success_rate'] >= rows[1]['success_rate']
    print()
    print(format_table(rows))
