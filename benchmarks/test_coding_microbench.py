"""Section 7.1 microbenchmark: coding/decoding cost per 1500-byte packet.

Regenerates the figure's series via :func:`repro.experiments.coding_microbenchmark` and
prints the rows the paper plots.  See EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import coding_microbenchmark, format_table


def test_coding_microbench(benchmark, scale):
    rows = benchmark.pedantic(
        coding_microbenchmark, kwargs={"scale": scale}, iterations=1, rounds=1
    )
    assert all(r['encode_us_per_packet'] > 0 for r in rows)
    print()
    print(format_table(rows))
