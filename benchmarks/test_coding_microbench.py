"""Section 7.1 microbenchmark: coding/decoding cost per 1500-byte packet,
plus the batched-coding comparison: ``encode_batch`` on a 64-message burst
must beat the equivalent per-message encode loop by at least 3x.

Regenerates the series through the experiment runner
(``run_experiment("microbench")``) and prints the rows the paper plots.  See
EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_coding_microbench(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "microbench", "scale": scale}, iterations=1, rounds=1
    )
    assert all(r['encode_us_per_packet'] > 0 for r in rows)
    # The batched path must beat the per-message loop by >= 3x on 64 messages.
    # Assert the median across split factors (locally 3.4-4.7x) so one noisy
    # timing sample on a loaded CI runner cannot flake the suite, while still
    # requiring every d to show a clear win.
    speedups = sorted(r['batch_speedup'] for r in rows)
    assert speedups[len(speedups) // 2] >= 3.0
    # Every d must still win outright; the margin is kept loose because a
    # single contended timing sample on a shared runner can degrade one d.
    assert all(s > 1.0 for s in speedups)
    print()
    print(format_table(rows))
