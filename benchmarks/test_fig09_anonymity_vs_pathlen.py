"""Fig. 9: anonymity vs. path length L (d=3, f=0.1); both curves rise with L.

Regenerates the figure's series via :func:`repro.experiments.figure09_anonymity_vs_path_length` and
prints the rows the paper plots.  See EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import figure09_anonymity_vs_path_length, format_table


def test_fig09_anonymity_vs_pathlen(benchmark, scale):
    rows = benchmark.pedantic(
        figure09_anonymity_vs_path_length, kwargs={"scale": scale}, iterations=1, rounds=1
    )
    assert rows[-1]['source_anonymity'] >= rows[0]['source_anonymity'] - 0.05
    print()
    print(format_table(rows))
