"""Fig. 9: anonymity vs. path length L (d=3, f=0.1); both curves rise with L.

Regenerates the figure's series through the experiment runner
(``run_experiment("fig09")``) and prints the rows the paper plots.
Each Monte-Carlo chunk is evaluated by the vectorised engine
(``simulate_anonymity_batch``); see docs/anonymity-math.md for the model.
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_fig09_anonymity_vs_pathlen(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "fig09", "scale": scale}, iterations=1, rounds=1
    )
    assert rows[-1]['source_anonymity'] >= rows[0]['source_anonymity'] - 0.05
    print()
    print(format_table(rows))
