"""§6.2 microbenchmark: the batched anonymity Monte-Carlo engine
(``simulate_anonymity_batch``) against the scalar reference loop at the
paper's 1000 trials per data point.

The acceptance bar for the vectorised engine: bit-identical per-trial values
under a shared seed, and >= 10x faster at 1000 trials.  Regenerates the
series through the experiment runner (``run_experiment("anonbench")``).
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_anonymity_microbench(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "anonbench", "scale": scale}, iterations=1, rounds=1
    )
    # The vectorised engine must reproduce the scalar reference bit-for-bit.
    assert all(row["identical"] for row in rows)
    # And beat it by >= 10x at 1000 trials.  Locally the margin is ~25-40x;
    # assert the median across parameter points so one contended timing
    # sample on a loaded CI runner cannot flake the suite.
    speedups = sorted(row["speedup"] for row in rows)
    assert speedups[len(speedups) // 2] >= 10.0
    assert all(s > 3.0 for s in speedups)
    print()
    print(format_table(rows))
