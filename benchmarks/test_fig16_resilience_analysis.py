"""Fig. 16: analytical transfer-success probability vs. added redundancy
(Eqs. 6-7, L=5, d=2, p=0.1/0.3); slicing dominates onion+erasure.

Regenerates the figure's series through the experiment runner
(``run_experiment("fig16")``) and prints the rows the paper plots.  See
EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_fig16_resilience_analysis(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "fig16", "scale": scale}, iterations=1, rounds=1
    )
    assert all(r['information_slicing_success'] >= r['onion_erasure_success'] - 1e-9 for r in rows)
    print()
    print(format_table(rows))
