"""GF(2^8) kernel gate: the compiled kernel must beat the numpy reference by
>= 3x at the data plane's real shapes — the fig11-style encode matmul
(64 x (8, 4) @ (4, 65)) and the decoder's batched Gauss–Jordan inverse
(64 x (4, 4), singular members included) — while every output array stays
bit-identical to the reference.  Regenerates the series through the
experiment runner (``run_experiment("gfbench")``).

The compiled backend is an optional extra (numba, or the bundled C
extension compiled on demand); on hosts where neither is available the
experiment records ``"skipped"`` rows and this gate skips with the reason —
the CI ``compiled-kernels`` job installs ``.[fast]`` and enforces it.
"""

import pytest

from repro.experiments import format_table
from repro.experiments.figures import GFBENCH_TARGET_SPEEDUP
from repro.experiments.runner import experiment_rows


def test_gf_kernel_microbench(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows,
        kwargs={"name": "gfbench", "scale": scale},
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table(rows))
    skipped = [row for row in rows if "skipped" in row]
    if skipped:
        pytest.skip(skipped[0]["skipped"])
    # Bit-identity is asserted on every repetition inside the benchmark; a
    # compiled kernel that drifts from the numpy reference fails here before
    # any speedup is considered.
    assert all(row["identical"] for row in rows)
    assert {row["op"] for row in rows} == {"matmul", "invert"}
    # Locally the margin is ~5x (matmul) and ~10x (invert); assert the
    # median across seeds and ops so one contended timing sample on a loaded
    # CI runner cannot flake the suite.
    speedups = sorted(row["speedup"] for row in rows)
    assert speedups[len(speedups) // 2] >= GFBENCH_TARGET_SPEEDUP, (
        f"compiled-kernel speedup median {speedups[len(speedups) // 2]:.2f}x "
        f"is below the {GFBENCH_TARGET_SPEEDUP}x gate (speedups: {speedups})"
    )
    assert all(s > GFBENCH_TARGET_SPEEDUP / 3 for s in speedups)
