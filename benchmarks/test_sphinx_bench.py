"""Sphinx data-plane microbenchmark: batched cell masking vs the per-cell loop.

``wrap_cells``/``strip_cells`` build one layered keystream mask per burst
and XOR it across the stacked cells in a single vectorised pass; the
reference path runs ``wrap_data``/``handle_data`` cell by cell.  The
acceptance bar mirrors the other data-plane gates: bit-identical bytes on
both paths, and a median speedup >= the enforced target across path
lengths.  Regenerates the series through the experiment runner
(``run_experiment("sphinxbench")``).
"""

from repro.experiments import format_table
from repro.experiments.figures import SPHINXBENCH_TARGET_SPEEDUP
from repro.experiments.runner import experiment_rows


def test_sphinx_cell_masking_bench(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "sphinxbench", "scale": scale}, iterations=1, rounds=1
    )
    # The batched masks must reproduce the per-cell reference bit-for-bit.
    assert all(row["identical"] for row in rows)
    speedups = sorted(row["speedup"] for row in rows)
    assert speedups[len(speedups) // 2] >= SPHINXBENCH_TARGET_SPEEDUP
    print()
    print(format_table(rows))
