"""Fig. 11: LAN throughput vs. path length; information slicing (d=2) beats
onion routing at every path length.

Regenerates the figure's series via :func:`repro.experiments.figure11_throughput_lan` and
prints the rows the paper plots.  See EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import figure11_throughput_lan, format_table


def test_fig11_throughput_lan(benchmark, scale):
    rows = benchmark.pedantic(
        figure11_throughput_lan, kwargs={"scale": scale}, iterations=1, rounds=1
    )
    assert all(r['slicing_mbps'] > r['onion_mbps'] for r in rows)
    print()
    print(format_table(rows))
