"""Fig. 11: LAN throughput vs. path length; information slicing (d=2) beats
onion routing at every path length.

Regenerates the figure's series through the experiment runner
(``run_experiment("fig11")``) and prints the rows the paper plots.  See
EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_fig11_throughput_lan(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "fig11", "scale": scale}, iterations=1, rounds=1
    )
    assert all(r['slicing_mbps'] > r['onion_mbps'] for r in rows)
    print()
    print(format_table(rows))
