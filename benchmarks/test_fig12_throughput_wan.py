"""Fig. 12: PlanetLab-profile throughput vs. path length; slicing wins.

Regenerates the figure's series via :func:`repro.experiments.figure12_throughput_wan` and
prints the rows the paper plots.  See EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import figure12_throughput_wan, format_table


def test_fig12_throughput_wan(benchmark, scale):
    rows = benchmark.pedantic(
        figure12_throughput_wan, kwargs={"scale": scale}, iterations=1, rounds=1
    )
    assert all(r['slicing_mbps'] > r['onion_mbps'] for r in rows)
    print()
    print(format_table(rows))
