"""Fig. 12: PlanetLab-profile throughput vs. path length; slicing wins.

Regenerates the figure's series through the experiment runner
(``run_experiment("fig12")``) and prints the rows the paper plots.  See
EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_fig12_throughput_wan(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "fig12", "scale": scale}, iterations=1, rounds=1
    )
    assert all(r['slicing_mbps'] > r['onion_mbps'] for r in rows)
    print()
    print(format_table(rows))
