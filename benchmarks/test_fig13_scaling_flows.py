"""Fig. 13: aggregate throughput vs. number of concurrent flows on a
100-node overlay (d=3, L=5); throughput scales then saturates.

Regenerates the figure's series via :func:`repro.experiments.figure13_scaling_with_flows` and
prints the rows the paper plots.  See EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import figure13_scaling_with_flows, format_table


def test_fig13_scaling_flows(benchmark, scale):
    rows = benchmark.pedantic(
        figure13_scaling_with_flows, kwargs={"scale": scale}, iterations=1, rounds=1
    )
    assert rows[-1]['network_throughput_mbps'] >= rows[0]['network_throughput_mbps']
    print()
    print(format_table(rows))
