"""Fig. 13: aggregate throughput vs. number of concurrent flows on a
100-node overlay (d=3, L=5); throughput scales then saturates.

Regenerates the figure's series through the experiment runner
(``run_experiment("fig13")``) and prints the rows the paper plots.  See
EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_fig13_scaling_flows(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "fig13", "scale": scale}, iterations=1, rounds=1
    )
    assert rows[-1]['network_throughput_mbps'] >= rows[0]['network_throughput_mbps']
    print()
    print(format_table(rows))
