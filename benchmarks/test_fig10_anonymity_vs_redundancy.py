"""Fig. 10: anonymity vs. added redundancy (d=3, L=8, f=0.1); destination
anonymity decreases as redundancy grows.

Regenerates the figure's series through the experiment runner
(``run_experiment("fig10")``) and prints the rows the paper plots.
Each Monte-Carlo chunk is evaluated by the vectorised engine
(``simulate_anonymity_batch``); see docs/anonymity-math.md for the model.
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_fig10_anonymity_vs_redundancy(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "fig10", "scale": scale}, iterations=1, rounds=1
    )
    assert rows[0]['destination_anonymity'] >= rows[-1]['destination_anonymity'] - 0.05
    print()
    print(format_table(rows))
