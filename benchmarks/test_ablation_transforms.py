"""Ablation: per-hop anti-pattern transforms (§9.4a) — CPU overhead.

Measures how much the per-hop affine transform adds on top of plain coding
for a 1500-byte packet, across split factors.  The overhead should stay a
small fraction of the coding cost itself.
"""

import time

import numpy as np

from repro.core.coder import SliceCoder
from repro.core.transforms import build_transform_chain
from repro.experiments import format_table


def run_ablation(iterations: int = 50) -> list[dict]:
    rng = np.random.default_rng(1)
    packet = bytes(rng.integers(0, 256, 1500, dtype=np.uint8).tobytes())
    rows = []
    for d in (2, 3, 5):
        coder = SliceCoder(d)
        blocks = coder.encode(packet, rng)
        combined, inverses = build_transform_chain(4, rng)

        start = time.perf_counter()
        for _ in range(iterations):
            coder.encode(packet, rng)
        encode_us = (time.perf_counter() - start) / iterations * 1e6

        start = time.perf_counter()
        for _ in range(iterations):
            for block in blocks:
                transformed = combined.apply_block(block)
                for inverse in inverses:
                    transformed = inverse.apply_block(transformed)
        transform_us = (time.perf_counter() - start) / iterations * 1e6

        rows.append(
            {
                "d": d,
                "encode_us": encode_us,
                "transform_chain_us": transform_us,
                "overhead_ratio": transform_us / max(encode_us, 1e-9),
            }
        )
    return rows


def test_ablation_transforms(benchmark, scale):
    iterations = max(int(100 * scale), 10)
    rows = benchmark.pedantic(
        run_ablation, kwargs={"iterations": iterations}, iterations=1, rounds=1
    )
    assert all(row["transform_chain_us"] > 0 for row in rows)
    print()
    print(format_table(rows))
