"""Ablation: per-hop anti-pattern transforms (§9.4a) — CPU overhead.

Measures how much the per-hop affine transform adds on top of plain coding
for a 1500-byte packet, across split factors, through the experiment runner
(``run_experiment("ablation_transforms")``).  The overhead should stay a
small fraction of the coding cost itself.
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_ablation_transforms(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows,
        kwargs={"name": "ablation_transforms", "scale": scale},
        iterations=1,
        rounds=1,
    )
    assert all(row['transform_chain_us'] > 0 for row in rows)
    print()
    print(format_table(rows))
