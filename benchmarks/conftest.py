"""Shared configuration for the benchmark suite.

Each benchmark regenerates one figure/table of the paper at a reduced scale
(the ``SCALE`` constant) so that a full ``pytest benchmarks/ --benchmark-only``
run completes in a few minutes.  Set ``REPRO_BENCH_SCALE=1.0`` in the
environment to reproduce the paper's full trial counts.

All benchmarks drive their experiment through the registered runner
(:func:`repro.experiments.runner.experiment_rows`), so the benchmark suite
measures exactly what ``python -m repro.experiments run <name>`` executes.
"""

import math
import os

import pytest

_RAW_SCALE = os.environ.get("REPRO_BENCH_SCALE", "0.1")


def _parse_scale(raw: str) -> float:
    """Validate REPRO_BENCH_SCALE up front, with an actionable error message."""
    try:
        value = float(raw)
    except ValueError:
        raise pytest.UsageError(
            f"REPRO_BENCH_SCALE must be a number, got {raw!r} "
            "(e.g. REPRO_BENCH_SCALE=0.1 or 1.0 for the paper's full trial counts)"
        ) from None
    if not math.isfinite(value) or value <= 0:
        raise pytest.UsageError(
            f"REPRO_BENCH_SCALE must be a positive finite number, got {raw!r}"
        )
    return value


SCALE = _parse_scale(_RAW_SCALE)


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE
