"""Shared configuration for the benchmark suite.

Each benchmark regenerates one figure/table of the paper at a reduced scale
(the ``SCALE`` constant) so that a full ``pytest benchmarks/ --benchmark-only``
run completes in a few minutes.  Set ``REPRO_BENCH_SCALE=1.0`` in the
environment to reproduce the paper's full trial counts.
"""

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE
