"""Data-plane microbenchmark gate: the batched overlay plane must beat the
per-packet reference by >= 5x on a 64-message fig11-style workload, while
delivering bit-identical plaintexts and relay counters.  Regenerates the
series through the experiment runner (``run_experiment("dataplane-bench")``).
"""

from repro.experiments import format_table
from repro.experiments.figures import DATAPLANE_TARGET_SPEEDUP
from repro.experiments.runner import experiment_rows


def test_dataplane_microbench(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows,
        kwargs={"name": "dataplane-bench", "scale": scale},
        iterations=1,
        rounds=1,
    )
    # The batched plane must reproduce the per-packet reference bit-for-bit:
    # same delivered plaintexts, same per-relay counters.
    assert all(row["identical"] for row in rows)
    # And beat it by >= 5x at 64 messages.  Locally the margin is ~5-7x;
    # assert the median across seeds so one contended timing sample on a
    # loaded CI runner cannot flake the suite.
    speedups = sorted(row["speedup"] for row in rows)
    assert speedups[len(speedups) // 2] >= DATAPLANE_TARGET_SPEEDUP
    assert all(s > DATAPLANE_TARGET_SPEEDUP / 2 for s in speedups)
    # The event collapse is structural, not a timing accident.
    assert all(row["batched_events"] * 5 < row["scalar_events"] for row in rows)
    print()
    print(format_table(rows))
