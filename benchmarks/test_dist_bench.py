"""Distributed-sharding gate: coordinator/worker speedup and byte-identity.

Runs the ``distbench`` experiment: fig11's trials leased over TCP to 1 and
then 2 local worker processes.  The merged artifact must be byte-identical
to the single-process run in *every* configuration, and with 2 workers the
compute phase (first lease granted -> last result merged, i.e. excluding
interpreter start-up) must beat 1 worker by
:data:`~repro.experiments.figures.DISTBENCH_TARGET_SPEEDUP`.  The speedup
needs real parallelism: below
:data:`~repro.experiments.figures.DISTBENCH_MIN_CPUS` host CPUs the
experiment itself records a ``"skipped"`` row carrying the reason (and its
``cpu_count``), this gate skips with that reason, and the bench-history
trend renders the gate as ``n/a`` — CI runners provide at least two cores,
so there the gate is enforced.
"""

import os

import pytest

from repro.experiments import format_table
from repro.experiments.figures import DISTBENCH_MIN_CPUS, DISTBENCH_TARGET_SPEEDUP
from repro.experiments.runner import run_experiment


def test_distributed_sharding_speedup_and_byte_identity(benchmark, scale):
    result = benchmark.pedantic(
        run_experiment,
        kwargs={"name": "distbench", "scale": scale},
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table(result.rows))
    # Every row records the host parallelism the measurement ran under.
    assert all(row["cpu_count"] == (os.cpu_count() or 1) for row in result.rows)
    skipped = [row for row in result.rows if "skipped" in row]
    if skipped:
        assert all(row["cpu_count"] < DISTBENCH_MIN_CPUS for row in skipped)
        pytest.skip(skipped[0]["skipped"])
    # Byte-identity of the distributed merge is machine-independent.
    assert all(row["byte_identical"] for row in result.rows)
    speedups = sorted(row["speedup"] for row in result.rows)
    median = speedups[len(speedups) // 2]
    assert median >= DISTBENCH_TARGET_SPEEDUP, (
        f"2-worker sharding speedup {median:.2f}x is below the "
        f"{DISTBENCH_TARGET_SPEEDUP}x gate (speedups: {speedups})"
    )
