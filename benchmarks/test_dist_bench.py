"""Distributed-sharding gate: coordinator/worker speedup and byte-identity.

Runs the ``distbench`` experiment: fig11's trials leased over TCP to 1 and
then 2 local worker processes.  The merged artifact must be byte-identical
to the single-process run in *every* configuration (that part holds on any
machine), and with 2 workers the compute phase (first lease granted -> last
result merged, i.e. excluding interpreter start-up) must beat 1 worker by
:data:`~repro.experiments.figures.DISTBENCH_TARGET_SPEEDUP`.  The speedup
half of the gate needs real parallelism, so it is skipped on single-core
hosts — CI runners provide at least two.
"""

import os

import pytest

from repro.experiments import format_table
from repro.experiments.figures import DISTBENCH_TARGET_SPEEDUP
from repro.experiments.runner import run_experiment


def test_distributed_sharding_speedup_and_byte_identity(benchmark, scale):
    result = benchmark.pedantic(
        run_experiment,
        kwargs={"name": "distbench", "scale": scale},
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table(result.rows))
    # Byte-identity of the distributed merge is machine-independent.
    assert all(row["byte_identical"] for row in result.rows)
    speedups = sorted(row["speedup"] for row in result.rows)
    median = speedups[len(speedups) // 2]
    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            f"sharding speedup gate needs >= 2 CPUs (measured {median:.2f}x "
            "on a single core)"
        )
    assert median >= DISTBENCH_TARGET_SPEEDUP, (
        f"2-worker sharding speedup {median:.2f}x is below the "
        f"{DISTBENCH_TARGET_SPEEDUP}x gate (speedups: {speedups})"
    )
