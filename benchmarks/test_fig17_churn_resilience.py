"""Fig. 17: probability of completing a 30-minute transfer on a churning
overlay vs. added redundancy (L=5, d=2).

Regenerates the figure's series through the experiment runner
(``run_experiment("fig17")``) and prints the rows the paper plots.  See
EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_fig17_churn_resilience(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "fig17", "scale": scale}, iterations=1, rounds=1
    )
    assert rows[-1]['information_slicing_success'] > rows[-1]['onion_erasure_success']
    assert rows[-1]['information_slicing_success'] > rows[0]['information_slicing_success']
    print()
    print(format_table(rows))
