"""Fig. 8: anonymity vs. the split factor d for f=0.1 and f=0.4.

Regenerates the figure's series through the experiment runner
(``run_experiment("fig08")``) and prints the rows the paper plots.
Each Monte-Carlo chunk is evaluated by the vectorised engine
(``simulate_anonymity_batch``); see docs/anonymity-math.md for the model.
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_fig08_anonymity_vs_split(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "fig08", "scale": scale}, iterations=1, rounds=1
    )
    assert rows[0]['split_factor'] == 2
    assert all(0.0 <= r['destination_anonymity_f0.4'] <= 1.0 for r in rows)
    print()
    print(format_table(rows))
