"""Fig. 8: anonymity vs. the split factor d for f=0.1 and f=0.4.

Regenerates the figure's series via :func:`repro.experiments.figure08_anonymity_vs_split` and
prints the rows the paper plots.  See EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import figure08_anonymity_vs_split, format_table


def test_fig08_anonymity_vs_split(benchmark, scale):
    rows = benchmark.pedantic(
        figure08_anonymity_vs_split, kwargs={"scale": scale}, iterations=1, rounds=1
    )
    assert rows[0]['split_factor'] == 2
    assert all(0.0 <= r['destination_anonymity_f0.4'] <= 1.0 for r in rows)
    print()
    print(format_table(rows))
