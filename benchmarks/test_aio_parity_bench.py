"""Backend parity bench: fig11 over the asyncio socket overlay.

Regenerates the fig11 series on the ``aio`` backend (real localhost TCP
streams, one reader task per relay) and asserts its structural fields —
delivered plaintexts and relay/network counters — match the discrete-event
simulator's under the same seed, which is the property CI's ``aio-parity``
job gates via the ``fig11.parity.json`` artifacts.  The benchmark time is
the aio run: what a real-socket pass over the figure costs.
"""

from repro.experiments import format_table
from repro.experiments.runner import run_experiment


def test_fig11_aio_backend_parity(benchmark, scale):
    sim = run_experiment("fig11", scale=scale)
    aio = benchmark.pedantic(
        run_experiment,
        kwargs={"name": "fig11", "scale": scale, "backend": "aio"},
        iterations=1,
        rounds=1,
    )
    assert [row["parity"] for row in aio.rows] == [row["parity"] for row in sim.rows]
    # The aio run really delivered everything the simulator did.
    for row in aio.rows:
        assert row["slicing_delivered"] == row["onion_delivered"] > 0
    print()
    print(format_table([{k: v for k, v in row.items() if k != "parity"} for row in aio.rows]))
