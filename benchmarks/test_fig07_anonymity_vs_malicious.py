"""Fig. 7: source/destination anonymity vs. fraction of malicious nodes,
compared against Chaum mixes (N=10000, L=8, d=3).

Regenerates the figure's series through the experiment runner
(``run_experiment("fig07")``), with each Monte-Carlo chunk evaluated by the
vectorised engine (``simulate_anonymity_batch``), and prints the rows the
paper plots.  See docs/anonymity-math.md for the underlying model.
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_fig07_anonymity_vs_malicious(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "fig07", "scale": scale}, iterations=1, rounds=1
    )
    assert rows[0]['source_anonymity'] > 0.9
    assert rows[-1]['source_anonymity'] < rows[0]['source_anonymity']
    print()
    print(format_table(rows))
