"""Fig. 15: PlanetLab-profile route-setup latency vs. path length and d.

Regenerates the figure's series via :func:`repro.experiments.figure15_setup_latency_wan` and
prints the rows the paper plots.  See EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import figure15_setup_latency_wan, format_table


def test_fig15_setup_wan(benchmark, scale):
    rows = benchmark.pedantic(
        figure15_setup_latency_wan, kwargs={"scale": scale}, iterations=1, rounds=1
    )
    assert all(r['slicing_d2_seconds'] < r['slicing_d4_seconds'] for r in rows)
    print()
    print(format_table(rows))
