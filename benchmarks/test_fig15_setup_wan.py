"""Fig. 15: PlanetLab-profile route-setup latency vs. path length and d.

Regenerates the figure's series through the experiment runner
(``run_experiment("fig15")``) and prints the rows the paper plots.  See
EXPERIMENTS.md for paper-vs-measured.  Individual points are noisy because
the heterogeneous profile redraws node loads per run, so the d=2 < d=4
ordering is asserted on the sweep average (as in the tier-1 tests).
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_fig15_setup_wan(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "fig15", "scale": scale}, iterations=1, rounds=1
    )
    mean_d2 = sum(r['slicing_d2_seconds'] for r in rows) / len(rows)
    mean_d4 = sum(r['slicing_d4_seconds'] for r in rows) / len(rows)
    assert mean_d2 < mean_d4
    print()
    print(format_table(rows))
