"""Ablation: AS-diverse vs. uniform relay selection (§9.1).

Against an adversary who owns the largest AS and fills the overlay with nodes
from its own address space, AS-diverse selection sharply cuts the fraction of
chosen relays the adversary controls.  Runs through the experiment runner
(``run_experiment("ablation_as_selection")``).
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_ablation_as_selection(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows,
        kwargs={"name": "ablation_as_selection", "scale": scale},
        iterations=1,
        rounds=1,
    )
    assert rows[1]['adversary_capture_fraction'] < rows[0]['adversary_capture_fraction']
    print()
    print(format_table(rows))
