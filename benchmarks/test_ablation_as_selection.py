"""Ablation: AS-diverse vs. uniform relay selection (§9.1).

Against an adversary who owns the largest AS and fills the overlay with nodes
from its own address space, AS-diverse selection sharply cuts the fraction of
chosen relays the adversary controls.
"""

import numpy as np

from repro.experiments import format_table
from repro.overlay.address import assign_overlay_addresses, generate_as_database
from repro.overlay.selection import (
    adversary_capture_probability,
    as_diverse_selection,
    uniform_selection,
)


def run_ablation(trials: int = 30) -> list[dict]:
    rng = np.random.default_rng(0)
    database = generate_as_database(num_ases=30, rng=rng)
    addresses = assign_overlay_addresses(database, 400, rng, concentrated_fraction=0.45)
    counts: dict[int, int] = {}
    for prefix in database.prefixes:
        counts[prefix.asn] = counts.get(prefix.asn, 0) + 1
    adversary = {max(counts, key=counts.get)}
    uniform_capture, diverse_capture = [], []
    for seed in range(trials):
        trial_rng = np.random.default_rng(seed)
        uniform_capture.append(
            adversary_capture_probability(
                uniform_selection(addresses, 24, trial_rng), adversary, database
            )
        )
        diverse_capture.append(
            adversary_capture_probability(
                as_diverse_selection(addresses, 24, database, trial_rng).relays,
                adversary,
                database,
            )
        )
    return [
        {"policy": "uniform", "adversary_capture_fraction": float(np.mean(uniform_capture))},
        {"policy": "as-diverse", "adversary_capture_fraction": float(np.mean(diverse_capture))},
    ]


def test_ablation_as_selection(benchmark, scale):
    trials = max(int(60 * scale), 10)
    rows = benchmark.pedantic(run_ablation, kwargs={"trials": trials}, iterations=1, rounds=1)
    assert rows[1]["adversary_capture_fraction"] < rows[0]["adversary_capture_fraction"]
    print()
    print(format_table(rows))
