"""Fig. 14: LAN route-setup latency vs. path length for onion routing and
slicing with d=2,3,4; larger d means longer setup.

Regenerates the figure's series through the experiment runner
(``run_experiment("fig14")``) and prints the rows the paper plots.  See
EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import format_table
from repro.experiments.runner import experiment_rows


def test_fig14_setup_lan(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "fig14", "scale": scale}, iterations=1, rounds=1
    )
    assert all(r['slicing_d2_seconds'] < r['slicing_d4_seconds'] for r in rows)
    assert all(r['onion_seconds'] < r['slicing_d2_seconds'] for r in rows)
    print()
    print(format_table(rows))
