"""Fig. 14: LAN route-setup latency vs. path length for onion routing and
slicing with d=2,3,4; larger d means longer setup.

Regenerates the figure's series via :func:`repro.experiments.figure14_setup_latency_lan` and
prints the rows the paper plots.  See EXPERIMENTS.md for paper-vs-measured.
"""

from repro.experiments import figure14_setup_latency_lan, format_table


def test_fig14_setup_lan(benchmark, scale):
    rows = benchmark.pedantic(
        figure14_setup_latency_lan, kwargs={"scale": scale}, iterations=1, rounds=1
    )
    assert all(r['slicing_d2_seconds'] < r['slicing_d4_seconds'] for r in rows)
    assert all(r['onion_seconds'] < r['slicing_d2_seconds'] for r in rows)
    print()
    print(format_table(rows))
