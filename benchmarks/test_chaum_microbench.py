"""Fig. 7 Chaum-mix microbenchmark: the batched ``(trials, hops)`` engine
against the scalar reference loop at the paper's 1000 trials per data point.

The acceptance bar mirrors the anonymity engine's: bit-identical per-trial
values under a shared seed, and >= 10x faster at 1000 trials (the Chaum
baseline dominated fig07 wall-clock before vectorisation).  Regenerates the
series through the experiment runner (``run_experiment("chaumbench")``).
"""

from repro.experiments import format_table
from repro.experiments.figures import CHAUMBENCH_TARGET_SPEEDUP
from repro.experiments.runner import experiment_rows


def test_chaum_microbench(benchmark, scale):
    rows = benchmark.pedantic(
        experiment_rows, kwargs={"name": "chaumbench", "scale": scale}, iterations=1, rounds=1
    )
    # The vectorised engine must reproduce the scalar reference bit-for-bit.
    assert all(row["identical"] for row in rows)
    # And beat it by >= 10x at 1000 trials.  Locally the margin is ~16-25x;
    # assert the median across parameter points so one contended timing
    # sample on a loaded CI runner cannot flake the suite.
    speedups = sorted(row["speedup"] for row in rows)
    assert speedups[len(speedups) // 2] >= CHAUMBENCH_TARGET_SPEEDUP
    assert all(s > 3.0 for s in speedups)
    print()
    print(format_table(rows))
