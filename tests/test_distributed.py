"""End-to-end coordinator/worker tests for distributed experiment sharding.

The load-bearing guarantee mirrors the runner's: a distributed run of a
deterministic experiment merges to an artifact *byte-identical* to the
single-process ``run_experiment`` of the same (name, scale, seed) — no
matter how many workers ran, whether one died mid-run, or whether results
arrived twice.  Workers here run as in-process threads speaking real TCP to
the asyncio coordinator; the ``run --dist`` CLI test spawns genuine worker
subprocesses.
"""

import socket
import threading
import time

import pytest

from repro.experiments import run_distributed, run_experiment, run_worker
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.distributed import (
    PROTOCOL_VERSION,
    _connect_with_retry,
    _recv_message,
    encode_message,
)

SMALL = 0.03


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _start_workers(port: int, count: int, **kwargs) -> list[threading.Thread]:
    threads = [
        threading.Thread(
            target=run_worker,
            kwargs={"host": "127.0.0.1", "port": port, "label": f"t{rank}", **kwargs},
            daemon=True,
        )
        for rank in range(count)
    ]
    for thread in threads:
        thread.start()
    return threads


def _join_all(threads: list[threading.Thread]) -> None:
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()


def test_distributed_run_matches_single_process_bytes(tmp_path):
    single_dir = tmp_path / "single"
    dist_dir = tmp_path / "dist"
    single = run_experiment("fig16", scale=SMALL, out_dir=single_dir)
    port = _free_port()
    threads = _start_workers(port, 2)
    result = run_distributed(
        "fig16",
        scale=SMALL,
        out_dir=dist_dir,
        port=port,
        min_workers=2,
        timeout=120,
    )
    _join_all(threads)
    assert result.rows == single.rows
    assert result.trial_count == single.trial_count
    assert not result.cached
    assert result.workers_seen == 2
    assert (dist_dir / "fig16.json").read_bytes() == (
        single_dir / "fig16.json"
    ).read_bytes()


def test_distributed_run_survives_worker_death(tmp_path):
    """A worker dying while holding a lease must not lose or corrupt trials."""
    single = run_experiment("fig16", scale=SMALL, out_dir=tmp_path / "single")
    port = _free_port()
    # The crashing worker completes one lease, then dies on receiving the
    # next; the healthy worker picks up the re-dispatched trials.
    crasher = _start_workers(port, 1, crash_after_leases=1)
    steady = _start_workers(port, 1)
    result = run_distributed(
        "fig16",
        scale=SMALL,
        out_dir=tmp_path / "dist",
        port=port,
        min_workers=2,
        timeout=120,
    )
    _join_all(crasher + steady)
    assert result.redispatched >= 1
    assert (tmp_path / "dist" / "fig16.json").read_bytes() == (
        tmp_path / "single" / "fig16.json"
    ).read_bytes()
    assert result.rows == single.rows


def test_distributed_run_redispatches_expired_leases(tmp_path):
    """A worker that claims a lease and stalls forfeits it on expiry."""
    single = run_experiment("fig16", scale=SMALL, out_dir=tmp_path / "single")
    port = _free_port()

    stalled = threading.Event()

    def stalling_worker():
        # Speaks just enough protocol to claim one lease, then goes silent;
        # the coordinator must expire the lease and re-dispatch its trials.
        with _connect_with_retry("127.0.0.1", port, connect_timeout=30) as sock:
            sock.sendall(
                encode_message(
                    {"type": "hello", "protocol": PROTOCOL_VERSION, "worker": "stall"}
                )
            )
            job = _recv_message(sock)
            assert job["type"] == "job"
            sock.sendall(encode_message({"type": "request"}))
            lease = _recv_message(sock)
            assert lease["type"] == "lease"
            stalled.set()
            # Hold the connection (and the lease) until the run is over.
            sock.settimeout(60)
            try:
                _recv_message(sock)  # unblocks on coordinator teardown EOF
            except Exception:
                pass

    staller = threading.Thread(target=stalling_worker, daemon=True)
    staller.start()
    # The healthy worker joins immediately (min_workers=2 holds all leases
    # until both are connected); the staller keeps whichever lease it gets.
    healthy = _start_workers(port, 1)[0]
    result = run_distributed(
        "fig16",
        scale=SMALL,
        out_dir=tmp_path / "dist",
        port=port,
        min_workers=2,
        lease_seconds=0.5,
        timeout=120,
    )
    _join_all([staller, healthy])
    assert stalled.is_set()
    assert result.redispatched >= 1
    assert (tmp_path / "dist" / "fig16.json").read_bytes() == (
        tmp_path / "single" / "fig16.json"
    ).read_bytes()
    assert result.rows == single.rows


def test_duplicate_results_on_the_wire_are_idempotent(tmp_path):
    """A worker re-sending every result frame must not corrupt the merge."""
    single = run_experiment("fig16", scale=SMALL, out_dir=tmp_path / "single")
    port = _free_port()

    def duplicating_worker():
        try:
            _duplicating_worker_loop()
        except (ConnectionError, OSError):
            # Teardown race: the coordinator may close while a request is in
            # flight — equivalent to the EOF path, nothing left to do.
            pass

    def _duplicating_worker_loop():
        with _connect_with_retry("127.0.0.1", port, connect_timeout=30) as sock:
            sock.settimeout(60)
            sock.sendall(
                encode_message(
                    {"type": "hello", "protocol": PROTOCOL_VERSION, "worker": "dup"}
                )
            )
            job = _recv_message(sock)
            assert job["type"] == "job"
            from repro.experiments.runner import (
                _jsonify,
                build_trial_list,
                execute_trial,
                trial_payloads,
            )
            from repro.experiments.registry import get_experiment

            experiment = get_experiment(job["experiment"])
            trials = build_trial_list(experiment, job["scale"], job["backend"])
            payloads = trial_payloads(experiment.name, trials, job["seed"])
            sock.sendall(encode_message({"type": "request"}))
            while True:
                message = _recv_message(sock)
                if message is None or message["type"] == "done":
                    return
                if message["type"] == "wait":
                    time.sleep(0.05)
                    sock.sendall(encode_message({"type": "request"}))
                    continue
                results = []
                for index in message["indices"]:
                    _, row = execute_trial(payloads[index])
                    results.append([index, _jsonify(row)])
                frame = encode_message(
                    {
                        "type": "result",
                        "lease_id": message["lease_id"],
                        "results": results,
                    }
                )
                # Send every result twice: the second copy references a
                # retired lease and already-recorded indices and must change
                # nothing.  Each copy draws one reply (lease/wait/done),
                # which the loop above consumes in order.
                sock.sendall(frame)
                sock.sendall(frame)

    worker = threading.Thread(target=duplicating_worker, daemon=True)
    worker.start()
    result = run_distributed(
        "fig16",
        scale=SMALL,
        out_dir=tmp_path / "dist",
        port=port,
        min_workers=1,
        timeout=120,
    )
    _join_all([worker])
    assert result.rows == single.rows
    assert (tmp_path / "dist" / "fig16.json").read_bytes() == (
        tmp_path / "single" / "fig16.json"
    ).read_bytes()


def test_distributed_run_serves_matching_artifact_from_cache(tmp_path):
    port = _free_port()
    threads = _start_workers(port, 1)
    first = run_distributed(
        "fig16", scale=SMALL, out_dir=tmp_path, port=port, timeout=120
    )
    _join_all(threads)
    assert not first.cached
    # Second run needs no workers at all: the artifact matches.
    second = run_distributed("fig16", scale=SMALL, out_dir=tmp_path, timeout=120)
    assert second.cached
    assert second.rows == first.rows


def test_run_distributed_validates_arguments():
    with pytest.raises(ValueError, match="scale"):
        run_distributed("fig16", scale=0.0)
    with pytest.raises(ValueError, match="shardable"):
        run_distributed("microbench", scale=SMALL)
    with pytest.raises(ValueError, match="backend"):
        run_distributed("fig16", scale=SMALL, backend="aio")
    with pytest.raises(KeyError, match="unknown experiment"):
        run_distributed("fig99")


def test_cli_run_dist_spawns_local_workers(tmp_path, capsys):
    single_dir = tmp_path / "single"
    dist_dir = tmp_path / "dist"
    assert (
        experiments_main(
            ["run", "fig16", "--scale", str(SMALL), "--out", str(single_dir)]
        )
        == 0
    )
    code = experiments_main(
        [
            "run",
            "fig16",
            "--scale",
            str(SMALL),
            "--out",
            str(dist_dir),
            "--dist",
            "2",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "dist-workers=2" in output
    assert (dist_dir / "fig16.json").read_bytes() == (
        single_dir / "fig16.json"
    ).read_bytes()


def test_cli_worker_count_validation(capsys):
    # A bad worker count must exit with a one-line stderr error, exactly
    # like the unknown-name and unsupported-backend cases — never an
    # argparse usage dump or a traceback.
    for argv in (
        ["run", "fig16", "--workers", "0"],
        ["run", "fig16", "--workers", "-3"],
        ["run", "fig16", "--dist", "0"],
        ["run", "fig16", "--dist", "-1"],
    ):
        assert experiments_main(argv) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert captured.err.count("\n") == 1
        assert "Traceback" not in captured.err and "usage:" not in captured.err


def test_cli_rejects_conflicting_workers_and_dist(capsys):
    assert experiments_main(["run", "fig16", "--dist", "2", "--workers", "4"]) == 2
    captured = capsys.readouterr()
    assert "one or the other" in captured.err
    assert captured.err.count("\n") == 1


def test_cli_rejects_unshardable_dist(capsys):
    assert experiments_main(["run", "microbench", "--dist", "2"]) == 2
    captured = capsys.readouterr()
    assert "not shardable" in captured.err
    assert captured.err.count("\n") == 1


def test_cli_coordinate_validation(capsys):
    assert experiments_main(["coordinate", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err
    assert experiments_main(["coordinate", "microbench"]) == 2
    assert "not shardable" in capsys.readouterr().err
    assert experiments_main(["coordinate", "fig16", "--chunk", "0"]) == 2
    assert "--chunk" in capsys.readouterr().err
    assert experiments_main(["coordinate", "fig16", "--lease-seconds", "0"]) == 2
    assert "--lease-seconds" in capsys.readouterr().err
    assert experiments_main(["coordinate", "fig16", "--min-workers", "0"]) == 2
    assert "--min-workers" in capsys.readouterr().err
