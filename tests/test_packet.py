"""Wire-format tests for packets."""

import numpy as np
import pytest

from repro.core.coder import SliceCoder
from repro.core.errors import PacketFormatError
from repro.core.packet import Packet, PacketKind, random_padding_slice


def build_packet(num_slices: int = 3, d: int = 2, seq: int = 7) -> Packet:
    coder = SliceCoder(d=d, d_prime=num_slices)
    blocks = coder.encode(b"wire format payload", np.random.default_rng(0))
    return Packet(
        flow_id=0xDEADBEEFCAFEBABE,
        kind=PacketKind.SETUP,
        slices=blocks,
        d=d,
        lane=1,
        seq=seq,
        source_address="a",
        destination_address="b",
    )


def test_packet_roundtrip_preserves_fields():
    packet = build_packet()
    parsed = Packet.from_bytes(packet.to_bytes(), "a", "b")
    assert parsed.flow_id == packet.flow_id
    assert parsed.kind == PacketKind.SETUP
    assert parsed.d == packet.d
    assert parsed.lane == packet.lane
    assert parsed.seq == packet.seq
    assert parsed.slice_count == packet.slice_count
    for original, decoded in zip(packet.slices, parsed.slices):
        assert np.array_equal(original.coefficients, decoded.coefficients)
        assert np.array_equal(original.payload, decoded.payload)


def test_packet_roundtrip_is_decodable():
    packet = build_packet(num_slices=3, d=2)
    parsed = Packet.from_bytes(packet.to_bytes())
    coder = SliceCoder(d=2, d_prime=3)
    assert coder.decode(parsed.slices) == b"wire format payload"


def test_own_slice_is_slot_zero():
    packet = build_packet()
    assert packet.own_slice is packet.slices[0]
    assert packet.payload_slices() == packet.slices[1:]


def test_empty_packet_rejected():
    packet = build_packet()
    packet.slices = []
    with pytest.raises(PacketFormatError):
        packet.to_bytes()
    with pytest.raises(PacketFormatError):
        _ = packet.own_slice


def test_unequal_slice_sizes_rejected():
    packet = build_packet()
    packet.slices[1] = random_padding_slice(2, 5, np.random.default_rng(1))
    with pytest.raises(PacketFormatError):
        packet.to_bytes()


def test_truncated_bytes_rejected():
    data = build_packet().to_bytes()
    with pytest.raises(PacketFormatError):
        Packet.from_bytes(data[:-3])
    with pytest.raises(PacketFormatError):
        Packet.from_bytes(data[:5])


def test_random_padding_slice_shape():
    rng = np.random.default_rng(2)
    block = random_padding_slice(4, 100, rng)
    assert block.coefficients.shape == (4,)
    assert block.payload.shape == (100,)


def test_packet_size_constant_across_slices():
    packet = build_packet(num_slices=4, d=2)
    sizes = {block.size_bytes() for block in packet.slices}
    assert len(sizes) == 1
    assert packet.size_bytes() == len(packet.to_bytes())
