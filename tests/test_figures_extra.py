"""Additional coverage for the experiment harness: Figs. 8-10, 13, 15, CLI."""

import pytest

from repro.experiments import (
    aggregate_throughput_vs_flows,
    figure08_anonymity_vs_split,
    figure09_anonymity_vs_path_length,
    figure10_anonymity_vs_redundancy,
    figure15_setup_latency_wan,
)
from repro.experiments.__main__ import main as experiments_main
from repro.overlay.profiles import PLANETLAB_PROFILE

SMALL = 0.03


def test_fig08_rows_cover_both_adversary_strengths():
    rows = figure08_anonymity_vs_split(scale=SMALL)
    assert [row["split_factor"] for row in rows] == [2, 3, 4, 6, 8, 10, 12]
    for row in rows:
        assert 0.0 <= row["source_anonymity_f0.1"] <= 1.0
        assert 0.0 <= row["destination_anonymity_f0.4"] <= 1.0
        # The weak adversary always leaves more anonymity than the strong one.
        assert row["source_anonymity_f0.1"] >= row["source_anonymity_f0.4"] - 0.05


def test_fig09_anonymity_rises_with_path_length():
    rows = figure09_anonymity_vs_path_length(scale=SMALL)
    assert rows[0]["path_length"] == 2 and rows[-1]["path_length"] == 20
    assert rows[-1]["source_anonymity"] > rows[0]["source_anonymity"] - 0.02
    assert rows[-1]["destination_anonymity"] > rows[0]["destination_anonymity"] - 0.02


def test_fig10_destination_anonymity_decreases_with_redundancy():
    rows = figure10_anonymity_vs_redundancy(scale=SMALL)
    assert rows[0]["added_redundancy"] == pytest.approx(0.0)
    assert rows[-1]["added_redundancy"] > 2.0
    assert (
        rows[-1]["destination_anonymity"] <= rows[0]["destination_anonymity"] + 0.05
    )
    # Source anonymity is far less sensitive to redundancy (Fig. 10's caption).
    source_drop = rows[0]["source_anonymity"] - rows[-1]["source_anonymity"]
    destination_drop = (
        rows[0]["destination_anonymity"] - rows[-1]["destination_anonymity"]
    )
    assert destination_drop >= source_drop - 0.05


def test_fig13_aggregate_throughput_scales_with_flows():
    rows = aggregate_throughput_vs_flows(
        PLANETLAB_PROFILE,
        flow_counts=[1, 4],
        overlay_size=60,
        path_length=4,
        d=2,
        num_messages=10,
    )
    assert rows[1]["network_throughput_mbps"] > rows[0]["network_throughput_mbps"]
    assert rows[1]["messages_delivered"] >= rows[0]["messages_delivered"]


def test_fig15_wan_setup_is_slower_than_a_lan_would_be():
    rows = figure15_setup_latency_wan(scale=SMALL)
    # Wide-area RTTs and loaded nodes push every setup well beyond LAN times
    # (Fig. 14 tops out around a tenth of that).  Individual points are noisy
    # because the heterogeneous profile redraws node loads per run, so the
    # d=2 < d=4 ordering is asserted on the sweep average.
    assert all(row["slicing_d3_seconds"] > 0.05 for row in rows)
    mean_d2 = sum(row["slicing_d2_seconds"] for row in rows) / len(rows)
    mean_d4 = sum(row["slicing_d4_seconds"] for row in rows) / len(rows)
    assert mean_d4 > mean_d2


def test_cli_runs_selected_figure(capsys):
    assert experiments_main(["fig16", "--scale", "0.05"]) == 0
    output = capsys.readouterr().out
    assert "fig16" in output
    assert "information_slicing_success" in output
