"""Tests for the churn-resilience analysis and transfer simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.churn import PLANETLAB_CHURN, STABLE_CHURN, ChurnModel
from repro.core.errors import ChurnError
from repro.resilience.analysis import (
    onion_erasure_success_probability,
    path_survival_probability,
    slicing_success_probability,
    stage_success_probability,
    standard_onion_success_probability,
    sweep_redundancy,
)
from repro.resilience.transfer import (
    onion_erasure_transfer_succeeds,
    packet_level_success,
    simulate_transfers,
    slicing_transfer_succeeds,
    standard_onion_transfer_succeeds,
)


# -- analysis (Eqs. 6, 7) ---------------------------------------------------------------


def test_no_failures_means_certain_success():
    assert slicing_success_probability(0.0, 5, 2, 3) == pytest.approx(1.0)
    assert onion_erasure_success_probability(0.0, 5, 2, 3) == pytest.approx(1.0)
    assert standard_onion_success_probability(0.0, 5) == pytest.approx(1.0)


def test_certain_failure_means_zero_success():
    assert slicing_success_probability(1.0, 5, 2, 4) == pytest.approx(0.0)
    assert onion_erasure_success_probability(1.0, 5, 2, 4) == pytest.approx(0.0)


def test_no_redundancy_reduces_to_simple_products():
    p = 0.2
    # With d' = d the slicing scheme needs every node alive (same as d paths
    # each of length L for the erasure scheme when d = 1).
    assert slicing_success_probability(p, 4, 2, 2) == pytest.approx((1 - p) ** 8)
    assert path_survival_probability(p, 4) == pytest.approx((1 - p) ** 4)
    assert standard_onion_success_probability(p, 4) == pytest.approx((1 - p) ** 4)


@given(
    p=st.floats(min_value=0.01, max_value=0.5),
    d_prime=st.integers(min_value=3, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_slicing_beats_onion_erasure_for_same_redundancy(p, d_prime):
    # The paper's headline analytical result (Fig. 16).
    d, path_length = 2, 5
    slicing = slicing_success_probability(p, path_length, d, d_prime)
    erasure = onion_erasure_success_probability(p, path_length, d, d_prime)
    assert slicing >= erasure - 1e-12


def test_success_probability_monotone_in_redundancy():
    values = [
        slicing_success_probability(0.3, 5, 2, d_prime) for d_prime in range(2, 8)
    ]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


def test_stage_success_probability_bounds():
    assert 0.0 <= stage_success_probability(0.3, 2, 4) <= 1.0
    with pytest.raises(ValueError):
        stage_success_probability(1.5, 2, 4)
    with pytest.raises(ValueError):
        stage_success_probability(0.5, 3, 2)


def test_sweep_redundancy_rows():
    points = sweep_redundancy(0.1, 5, 2, [2, 3, 4])
    assert [point.redundancy for point in points] == [0.0, 0.5, 1.0]
    assert points[-1].information_slicing > points[-1].onion_erasure


# -- churn model -----------------------------------------------------------------------


def test_churn_model_failure_probability_monotone_in_time():
    model = PLANETLAB_CHURN
    assert model.failure_probability(0) == pytest.approx(0.0)
    assert model.failure_probability(1800) < model.failure_probability(7200)


def test_churn_model_validation():
    with pytest.raises(ChurnError):
        ChurnModel(failure_prone_fraction=1.5)
    with pytest.raises(ChurnError):
        ChurnModel(short_mean_seconds=-1)
    with pytest.raises(ChurnError):
        PLANETLAB_CHURN.failure_probability(-5)


def test_stable_churn_rarely_fails():
    failures = STABLE_CHURN.sample_failures(1000, 1800, np.random.default_rng(0))
    assert failures.sum() == 0


# -- transfer Monte Carlo -----------------------------------------------------------------


def test_success_predicates():
    stage_failures = np.zeros((5, 3), dtype=bool)
    assert slicing_transfer_succeeds(stage_failures, 2)
    stage_failures[2, :2] = True
    assert slicing_transfer_succeeds(stage_failures, 1)
    assert not slicing_transfer_succeeds(stage_failures, 2)

    path_failures = np.zeros((3, 5), dtype=bool)
    assert onion_erasure_transfer_succeeds(path_failures, 2)
    path_failures[0, 1] = True
    path_failures[1, 2] = True
    assert not onion_erasure_transfer_succeeds(path_failures, 2)

    assert standard_onion_transfer_succeeds(np.zeros(5, dtype=bool))
    assert not standard_onion_transfer_succeeds(np.array([False, True, False]))


def test_simulate_transfers_orders_schemes_correctly():
    result = simulate_transfers(
        PLANETLAB_CHURN,
        session_seconds=30 * 60,
        path_length=5,
        d=2,
        d_prime=4,
        trials=400,
        rng=np.random.default_rng(7),
    )
    assert result.information_slicing > result.onion_erasure
    assert result.information_slicing > result.standard_onion
    assert 0.0 <= result.onion_erasure <= 1.0


def test_simulate_transfers_improves_with_redundancy():
    kwargs = dict(
        churn=PLANETLAB_CHURN,
        session_seconds=30 * 60,
        path_length=5,
        d=2,
        trials=400,
    )
    low = simulate_transfers(d_prime=2, rng=np.random.default_rng(8), **kwargs)
    high = simulate_transfers(d_prime=5, rng=np.random.default_rng(9), **kwargs)
    assert high.information_slicing > low.information_slicing


def test_packet_level_agrees_with_model_success_case():
    # One failure per stage with d'=3, d=2 is survivable.
    failures = [(1, 0), (2, 1), (3, 2)]
    assert packet_level_success(3, 2, 3, failures)


def test_packet_level_agrees_with_model_failure_case():
    # Two failures in the same stage with d'=3, d=2: the stage drops below d.
    failures = [(2, 0), (2, 1), (2, 2)]
    assert not packet_level_success(3, 2, 3, failures)
