"""Bit-identity of the batched setup-phase decode against the scalar path.

The batched relay engine decodes its routing slices (§4.3.5) through
:func:`repro.core.flow_decoder.decode_setup_payload` — first ``d`` blocks
stacked into the batched Gauss–Jordan kernel, scalar
:func:`~repro.core.integrity.robust_decode` fallback — and the claim is
*bit-identity*: for any block multiset the two return the same bytes (or
raise the same error class).  Checked here block-by-block with hypothesis
and end-to-end through a full route setup on both engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coder import SliceCoder
from repro.core.errors import InsufficientSlicesError
from repro.core.flow_decoder import decode_setup_payload
from repro.core.integrity import robust_decode, wrap
from repro.core.packet import random_padding_slice
from repro.experiments.setup_latency import compare_setup_decode_engines
from repro.overlay.profiles import LAN_PROFILE


def _decode_both(coder, blocks):
    try:
        scalar = robust_decode(coder, blocks)
    except InsufficientSlicesError:
        with pytest.raises(InsufficientSlicesError):
            decode_setup_payload(coder, blocks)
        return None
    batched = decode_setup_payload(coder, blocks)
    assert batched == scalar
    return scalar


@given(
    d=st.integers(1, 5),
    extra=st.integers(0, 3),
    payload_len=st.integers(1, 40),
    drop=st.integers(0, 2),
    garbage=st.integers(0, 2),
    duplicate_first=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
    data=st.data(),
)
@settings(max_examples=120, deadline=None)
def test_batched_setup_decode_matches_robust_decode(
    d, extra, payload_len, drop, garbage, duplicate_first, seed, data
):
    rng = np.random.default_rng(seed)
    coder = SliceCoder(d, d_prime=d + extra)
    message = wrap(bytes(rng.integers(0, 256, size=payload_len, dtype=np.uint8)))
    blocks = coder.encode(message, rng)
    # Drop some blocks (churn), keep arrival order shuffled.
    order = data.draw(st.permutations(range(len(blocks))), label="order")
    blocks = [blocks[i] for i in order][: len(blocks) - drop]
    # Random padding slices a relay may receive when a parent failed; their
    # coefficients are arbitrary, so a fast-path decode over them must be
    # caught by the integrity frame and fall back.
    payload_bytes = int(blocks[0].payload.shape[0]) if blocks else payload_len
    for _ in range(garbage):
        position = data.draw(
            st.integers(0, len(blocks)), label="garbage_position"
        )
        blocks.insert(position, random_padding_slice(d, payload_bytes, rng))
    if duplicate_first and blocks:
        # A repeated coefficient row makes the first-d stack singular.
        blocks.insert(1, blocks[0])
    _decode_both(coder, blocks)


def test_fast_path_and_fallback_agree_on_ragged_lengths():
    rng = np.random.default_rng(7)
    coder = SliceCoder(2)
    blocks = coder.encode(wrap(b"routing info"), rng)
    short = random_padding_slice(2, 3, rng)  # mismatched payload length
    assert decode_setup_payload(coder, [short, *blocks]) == robust_decode(
        coder, [short, *blocks]
    )


def test_insufficient_blocks_raise_in_both_paths():
    rng = np.random.default_rng(11)
    coder = SliceCoder(3)
    blocks = coder.encode(wrap(b"x"), rng)[:2]
    with pytest.raises(InsufficientSlicesError):
        robust_decode(coder, blocks)
    with pytest.raises(InsufficientSlicesError):
        decode_setup_payload(coder, blocks)


@pytest.mark.parametrize("path_length,d", [(2, 2), (3, 3)])
def test_route_setup_engines_bit_identical_end_to_end(path_length, d):
    # compare_setup_decode_engines raises AssertionError itself if the two
    # engines' structural results (relays decoded, counters) ever diverge.
    row = compare_setup_decode_engines(
        LAN_PROFILE, path_length, d, seed=23, reps=1
    )
    assert row["identical"] is True
    assert row["scalar_ms"] > 0 and row["batched_ms"] > 0
    assert row["setup_seconds"] > 0
