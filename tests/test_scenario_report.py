"""Report-merge and bench-trajectory tests.

The report contract: missing or partial cells degrade to a status instead
of failing the merge, best-scheme picks follow each metric's direction with
ties broken in matrix scheme order, baseline deltas flag real changes only,
and both outputs (JSON and markdown) are byte-deterministic functions of
their inputs.
"""

import json

import pytest

from repro.experiments.bench_history import (
    collect,
    load_trajectory,
    render_trend,
    summarise_gate,
)
from repro.experiments.report import (
    build_report,
    render_markdown,
    write_report,
)
from repro.experiments.scenarios import expand_matrix, parse_matrix

MATRIX = parse_matrix(
    {
        "name": "rep",
        "axes": {"loss": [0.0, 0.5]},
        "schemes": ["slicing", "onion"],
        "base": {"messages": 8, "anonymity_trials": 10, "num_nodes": 60},
    }
)


def _row(cell, scheme, throughput=5.0, setup=0.1, success=1.0):
    return {
        "cell": cell,
        "scheme": scheme,
        "throughput_mbps": throughput,
        "setup_seconds": setup,
        "source_anonymity": 0.8,
        "destination_anonymity": 0.7,
        "success_probability": success,
    }


def _write_artifact(results_dir, cell_name, rows):
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / f"{cell_name}.json").write_text(
        json.dumps({"experiment": cell_name, "rows": rows}), encoding="utf-8"
    )


@pytest.fixture
def full_results(tmp_path):
    results = tmp_path / "results"
    for cell in expand_matrix(MATRIX):
        _write_artifact(
            results,
            cell.name,
            [
                _row(cell.name, "slicing", throughput=9.0, setup=0.2),
                _row(cell.name, "onion", throughput=4.0, setup=0.1),
            ],
        )
    return results


def test_complete_report_statuses_and_best(full_results):
    report = build_report(MATRIX, full_results)
    assert report["summary"] == {
        "cells": 2,
        "complete": 2,
        "partial": 0,
        "missing": 0,
        "best_counts": {
            "throughput_mbps": {"slicing": 2, "onion": 0},
            "setup_seconds": {"slicing": 0, "onion": 2},
            "source_anonymity": {"slicing": 2, "onion": 0},
            "destination_anonymity": {"slicing": 2, "onion": 0},
            "success_probability": {"slicing": 2, "onion": 0},
        },
    }
    for entry in report["cells"]:
        assert entry["status"] == "ok"
        assert entry["best"]["throughput_mbps"] == "slicing"  # 9.0 > 4.0
        assert entry["best"]["setup_seconds"] == "onion"  # 0.1 < 0.2
        # Equal metrics tie-break to the first scheme in matrix order.
        assert entry["best"]["source_anonymity"] == "slicing"


def test_missing_and_partial_cells_degrade(tmp_path):
    results = tmp_path / "results"
    first, second = expand_matrix(MATRIX)
    _write_artifact(results, first.name, [_row(first.name, "onion")])
    report = build_report(MATRIX, results)
    by_name = {entry["cell"]: entry for entry in report["cells"]}
    assert by_name[first.name]["status"] == "partial"
    assert list(by_name[first.name]["schemes"]) == ["onion"]
    assert by_name[second.name]["status"] == "missing"
    assert by_name[second.name]["schemes"] == {}
    assert "best" not in by_name[second.name]
    # Markdown still renders, flagging both conditions.
    markdown = render_markdown(report)
    assert "_Partial: no rows for slicing._" in markdown
    assert "_No artifact for this cell; run the matrix first._" in markdown


def test_mismatched_artifact_counts_as_missing(tmp_path):
    results = tmp_path / "results"
    first, _ = expand_matrix(MATRIX)
    _write_artifact(results, first.name, [_row("some-other-cell", "onion")])
    (results / f"{first.name}.json").write_text("{broken", encoding="utf-8")
    report = build_report(MATRIX, results)
    assert report["cells"][0]["status"] == "missing"


def test_report_byte_deterministic(full_results, tmp_path):
    paths = []
    for attempt in ("a", "b"):
        json_path = tmp_path / attempt / "report.json"
        md_path = tmp_path / attempt / "report.md"
        write_report(MATRIX, full_results, json_path=json_path, md_path=md_path)
        paths.append((json_path, md_path))
    assert paths[0][0].read_bytes() == paths[1][0].read_bytes()
    assert paths[0][1].read_bytes() == paths[1][1].read_bytes()


def test_baseline_deltas_flag_changes_only(full_results, tmp_path):
    baseline_path = tmp_path / "baseline.json"
    write_report(MATRIX, full_results, json_path=baseline_path)
    # Perturb one metric of one scheme in one cell and re-report.
    first = expand_matrix(MATRIX)[0]
    _write_artifact(
        full_results,
        first.name,
        [
            _row(first.name, "slicing", throughput=18.0, setup=0.2),  # 2x faster
            _row(first.name, "onion", throughput=4.0, setup=0.1),
        ],
    )
    report = build_report(
        MATRIX,
        full_results,
        baseline=json.loads(baseline_path.read_text(encoding="utf-8")),
        baseline_source="baseline.json",
    )
    changed = [d for d in report["baseline"]["deltas"] if d["regressed"]]
    assert len(changed) == 1
    assert changed[0]["cell"] == first.name
    assert changed[0]["scheme"] == "slicing"
    assert changed[0]["metric"] == "throughput_mbps"
    assert changed[0]["relative_change"] == pytest.approx(0.5)
    assert report["baseline"]["regressions"] == 1
    markdown = render_markdown(report)
    assert "+50.00%" in markdown


def test_baseline_with_unknown_cells_ignored(full_results):
    baseline = {"cells": [{"cell": "scn-other-loss0", "schemes": {}}]}
    report = build_report(MATRIX, full_results, baseline=baseline, baseline_source="x")
    assert report["baseline"]["deltas"] == []


def test_trajectory_section_renders(full_results):
    trajectory = {
        "version": 1,
        "entries": [
            {
                "label": "pr6",
                "gates": {"anonbench": {"target": 10.0, "median_speedup": 25.0}},
            }
        ],
    }
    report = build_report(
        MATRIX, full_results, trajectory=trajectory, trajectory_source="BENCH.json"
    )
    markdown = render_markdown(report)
    assert "| pr6 | 25× | — | — | — | — | — | — |" in markdown


# -- bench trajectory --------------------------------------------------------------


def test_summarise_gate_requires_speedup_rows():
    with pytest.raises(ValueError, match="no rows"):
        summarise_gate({"rows": [{"other": 1}]})


def test_summarise_gate_skipped_rows_and_na_rendering():
    # A gate the host could not run (gfbench with no compiled provider,
    # distbench on one CPU) summarises to its skip reason...
    summary = summarise_gate(
        {"rows": [{"op": "matmul", "skipped": "no compiled provider"}]}
    )
    assert summary == {"skipped": "no compiled provider", "rows": 1}
    # ...and renders as n/a, distinct from the no-artifact dash.
    table = render_trend(
        {
            "version": 1,
            "entries": [
                {"label": "pr8", "gates": {"gfbench": {"target": 3.0, **summary}}}
            ],
        }
    )
    assert "| pr8 | — | — | — | — | — | n/a | — |" in table
    # Measured rows still win over skipped ones when both are present.
    mixed = summarise_gate(
        {"rows": [{"speedup": 4.0}, {"skipped": "one seed could not run"}]}
    )
    assert mixed["median_speedup"] == 4.0


def test_collect_upserts_and_reports_missing(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "anonbench.json").write_text(
        json.dumps({"rows": [{"speedup": 12.0}, {"speedup": 16.0}]}), encoding="utf-8"
    )
    out = tmp_path / "BENCH_trajectory.json"
    trajectory, missing = collect("pr6", [results], out)
    assert missing == [
        "chaumbench",
        "dataplane-bench",
        "distbench",
        "distsweep",
        "gfbench",
        "sphinxbench",
    ]
    assert trajectory["entries"][0]["gates"]["anonbench"]["median_speedup"] == 14.0
    # Re-collecting the same label replaces in place; a new label appends.
    (results / "anonbench.json").write_text(
        json.dumps({"rows": [{"speedup": 20.0}]}), encoding="utf-8"
    )
    trajectory, _ = collect("pr6", [results], out)
    assert len(trajectory["entries"]) == 1
    assert trajectory["entries"][0]["gates"]["anonbench"]["median_speedup"] == 20.0
    trajectory, _ = collect("pr7", [results], out)
    assert [entry["label"] for entry in trajectory["entries"]] == ["pr6", "pr7"]
    # Byte-deterministic: same inputs, same file.
    before = out.read_bytes()
    collect("pr7", [results], out)
    assert out.read_bytes() == before


def test_load_trajectory_rejects_wrong_version(tmp_path):
    path = tmp_path / "t.json"
    path.write_text(json.dumps({"version": 99, "entries": []}), encoding="utf-8")
    with pytest.raises(ValueError, match="version"):
        load_trajectory(path)


def test_render_trend_empty_trajectory():
    table = render_trend({"version": 1, "entries": []})
    assert table.splitlines()[0].startswith("| label |")
    assert len(table.splitlines()) == 2
