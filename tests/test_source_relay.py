"""Unit tests for the source utility and relay engine (no overlay involved)."""

import numpy as np
import pytest

from repro.core.errors import GraphConstructionError, ProtocolError
from repro.core.packet import PacketKind
from repro.core.relay import Relay
from repro.core.source import Source, data_nonce
from repro.crypto.symmetric import StreamCipher


def make_source(d=2, d_prime=None, path_length=3, seed=1):
    d_prime = d if d_prime is None else d_prime
    return Source(
        "source-addr",
        [f"pseudo-{i}" for i in range(d_prime - 1)],
        d=d,
        d_prime=d_prime,
        path_length=path_length,
        rng=np.random.default_rng(seed),
    )


def relay_pool(count=40):
    return [f"relay-{i}" for i in range(count)]


def test_source_requires_matching_pseudo_sources():
    with pytest.raises(GraphConstructionError):
        Source("s", [], d=2, path_length=3)
    with pytest.raises(ProtocolError):
        Source("s", ["p"], d=3, d_prime=2, path_length=3)


def test_setup_packets_cover_every_source_child_pair():
    source = make_source(d=2, path_length=4)
    flow = source.establish_flow(relay_pool(), "destination")
    packets = flow.setup_packets
    assert len(packets) == flow.d_prime * flow.d_prime
    senders = {p.source_address for p in packets}
    receivers = {p.destination_address for p in packets}
    assert senders == set(flow.graph.source_stage)
    assert receivers == set(flow.graph.stages[1])
    # Constant packet format: every packet has slots_per_packet equal slices.
    sizes = {p.slice_count for p in packets}
    assert sizes == {flow.plan.slots_per_packet}
    assert all(p.kind == PacketKind.SETUP for p in packets)


def test_setup_packets_use_child_flow_ids_and_lanes():
    source = make_source(d=3, path_length=3, seed=2)
    flow = source.establish_flow(relay_pool(60), "destination")
    for packet in flow.setup_packets:
        assert packet.flow_id == flow.plan.flow_ids[packet.destination_address]
        assert packet.lane == flow.graph.source_stage.index(packet.source_address)


def test_data_packets_structure_and_encryption():
    source = make_source(d=2, path_length=3, seed=3)
    flow = source.establish_flow(relay_pool(), "destination")
    message = b"meet at the usual place"
    packets = source.make_data_packets(flow, message)
    assert len(packets) == flow.d_prime * flow.d_prime
    assert all(p.kind == PacketKind.DATA for p in packets)
    assert all(p.seq == 0 for p in packets)
    # The ciphertext must not contain the plaintext.
    for packet in packets:
        assert message not in packet.to_bytes()
    # Sequence numbers advance automatically.
    second = source.make_data_packets(flow, b"second")
    assert all(p.seq == 1 for p in second)


def test_data_nonce_is_deterministic_per_sequence():
    assert data_nonce(5) == data_nonce(5)
    assert data_nonce(5) != data_nonce(6)


def test_relay_decodes_info_and_forwards_setup():
    source = make_source(d=2, path_length=3, seed=4)
    flow = source.establish_flow(relay_pool(), "destination")
    first_stage = flow.graph.stages[1]
    target = first_stage[0]
    relay = Relay(target, rng=np.random.default_rng(0))
    incoming = [p for p in flow.setup_packets if p.destination_address == target]
    outputs = []
    for packet in incoming:
        outputs.extend(relay.handle_packet(packet))
    flow_id = flow.plan.flow_ids[target]
    state = relay.flows[flow_id]
    assert state.decoded
    info = state.info
    assert info.next_hop_addresses == flow.graph.children(target)
    # One outgoing setup packet per child, stamped with the child's flow id.
    assert {p.destination_address for p in outputs} == set(info.next_hop_addresses)
    for packet in outputs:
        assert packet.flow_id == flow.plan.flow_ids[packet.destination_address]
        assert packet.lane == info.lane
        assert packet.slice_count == flow.plan.slots_per_packet


def test_relay_waits_for_all_parents_before_forwarding():
    source = make_source(d=2, d_prime=3, path_length=3, seed=5)
    flow = source.establish_flow(relay_pool(60), "destination")
    target = flow.graph.stages[1][1]
    relay = Relay(target, rng=np.random.default_rng(1))
    incoming = [p for p in flow.setup_packets if p.destination_address == target]
    outputs = relay.handle_packet(incoming[0])
    outputs += relay.handle_packet(incoming[1])
    assert outputs == []  # decoded (d=2) but still waiting for parent 3 of 3
    outputs = relay.handle_packet(incoming[2])
    assert outputs  # now forwards


def test_flush_setup_pads_missing_parent():
    source = make_source(d=2, d_prime=3, path_length=3, seed=6)
    flow = source.establish_flow(relay_pool(60), "destination")
    target = flow.graph.stages[1][0]
    relay = Relay(target, rng=np.random.default_rng(2))
    incoming = [p for p in flow.setup_packets if p.destination_address == target]
    for packet in incoming[:2]:
        relay.handle_packet(packet)
    flow_id = flow.plan.flow_ids[target]
    outputs = relay.flush_setup(flow_id)
    assert outputs
    # Flushing twice must not duplicate traffic.
    assert relay.flush_setup(flow_id) == []


def test_duplicate_packets_are_ignored():
    source = make_source(d=2, path_length=3, seed=7)
    flow = source.establish_flow(relay_pool(), "destination")
    target = flow.graph.stages[1][0]
    relay = Relay(target, rng=np.random.default_rng(3))
    incoming = [p for p in flow.setup_packets if p.destination_address == target]
    relay.handle_packet(incoming[0])
    assert relay.handle_packet(incoming[0]) == []
    assert relay.stats.packets_received == 2


def test_destination_decrypts_data_with_its_key():
    source = make_source(d=2, path_length=2, seed=8)
    flow = source.establish_flow(relay_pool(), "destination")
    # Verify the data encryption end to end at the crypto level.
    message = b"data phase ciphertext"
    packets = source.make_data_packets(flow, message, sequence=9)
    cipher = StreamCipher(flow.destination_key)
    from repro.core.coder import SliceCoder
    from repro.core.integrity import robust_decode

    blocks = [p.slices[0] for p in packets if p.destination_address == flow.graph.stages[1][0]]
    ciphertext = robust_decode(SliceCoder(flow.d), blocks)
    assert cipher.decrypt(ciphertext, data_nonce(9)) == message


def test_relay_garbage_collect():
    relay = Relay("addr", rng=np.random.default_rng(4))
    source = make_source(seed=9)
    flow = source.establish_flow(relay_pool(), "destination")
    target = flow.graph.stages[1][0]
    relay.address = target
    for packet in flow.setup_packets:
        if packet.destination_address == target:
            relay.handle_packet(packet, now=10.0)
    assert relay.flows
    flow_count = len(relay.flows)
    assert relay.garbage_collect(before=5.0) == 0
    assert relay.garbage_collect(before=20.0) == flow_count
    assert relay.flows == {}
