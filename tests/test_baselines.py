"""Tests for the onion routing, erasure coding and multipath baselines."""

import numpy as np
import pytest

from repro.baselines.erasure import ErasureCoder, ErasureShare
from repro.baselines.onion import OnionDirectory, OnionRelay, OnionSource, run_circuit
from repro.baselines.onion_erasure import OnionErasureSource, run_multipath_transfer
from repro.core.errors import CodingError, ProtocolError


def make_directory(count=20, seed=0):
    rng = np.random.default_rng(seed)
    addresses = [f"relay-{i}" for i in range(count)]
    return OnionDirectory.for_relays(addresses, rng), addresses, rng


def test_onion_circuit_end_to_end():
    directory, addresses, rng = make_directory()
    source = OnionSource(directory, rng)
    circuit, received = run_circuit(
        directory, source, addresses, "destination", 4, [b"hello", b"world"]
    )
    assert received == [b"hello", b"world"]
    assert circuit.length == 4
    assert len(set(circuit.hops)) == 4


def test_onion_layers_hide_route_from_relays():
    directory, addresses, rng = make_directory(seed=1)
    source = OnionSource(directory, rng)
    circuit, onion = source.build_circuit(addresses, "destination", 3)
    # The first relay can peel one layer and learns only the second hop.
    first = OnionRelay(circuit.hops[0], directory.key_pair(circuit.hops[0]))
    _handle, next_hop, remaining = first.handle_setup(onion)
    assert next_hop == circuit.hops[1]
    # It cannot peel the next layer (encrypted to the second relay's key).
    with pytest.raises(ValueError):
        first.key_pair.decrypt(remaining)
    # Hop addresses beyond its successor never appear in what it can read.
    assert circuit.hops[2].encode() not in remaining


def test_onion_requires_enough_relays():
    directory, addresses, rng = make_directory(count=3, seed=2)
    source = OnionSource(directory, rng)
    with pytest.raises(ProtocolError):
        source.build_circuit(addresses, "destination", 5)


def test_onion_relay_unknown_handle():
    directory, addresses, _ = make_directory(seed=3)
    relay = OnionRelay(addresses[0], directory.key_pair(addresses[0]))
    with pytest.raises(ProtocolError):
        relay.handle_data(99, b"cell")


def test_onion_data_layering_changes_ciphertext_per_hop():
    directory, addresses, rng = make_directory(seed=4)
    source = OnionSource(directory, rng)
    circuit, _ = source.build_circuit(addresses, "destination", 3)
    cell = source.wrap_data(circuit, b"payload")
    assert cell != b"payload"
    relays = {a: OnionRelay(a, directory.key_pair(a)) for a in circuit.hops}
    # Establish sessions first.
    current = source.build_circuit(addresses, "destination", 3)  # unused circuit
    # Use run_circuit for the full check instead.
    _circuit, received = run_circuit(
        directory, source, addresses, "destination", 3, [b"payload"]
    )
    assert received == [b"payload"]
    del relays, current


def test_erasure_coder_any_d_shares_decode():
    coder = ErasureCoder(2, 4)
    rng = np.random.default_rng(5)
    shares = coder.encode(b"erasure coded message", rng)
    assert len(shares) == 4
    from itertools import combinations

    for subset in combinations(shares, 2):
        assert coder.decode(list(subset)) == b"erasure coded message"
    assert coder.overhead == pytest.approx(1.0)


def test_erasure_share_serialization():
    coder = ErasureCoder(3, 5)
    rng = np.random.default_rng(6)
    share = coder.encode(b"share me", rng)[4]
    parsed = ErasureShare.from_bytes(share.to_bytes(), d=3)
    assert parsed.index == 4
    with pytest.raises(CodingError):
        ErasureShare.from_bytes(b"", d=3)
    with pytest.raises(CodingError):
        ErasureCoder(3, 2)


def test_multipath_survives_path_failures():
    directory, addresses, rng = make_directory(count=40, seed=7)
    source = OnionErasureSource(directory, rng)
    multipath = source.build_multipath(addresses, "destination", 3, d=2, d_prime=4)
    assert multipath.d_prime == 4
    # Circuits are node-disjoint.
    all_hops = [hop for circuit in multipath.circuits for hop in circuit.hops]
    assert len(all_hops) == len(set(all_hops))
    # Kill every relay of two circuits: 2 of 4 remain, still decodable.
    failed = set(multipath.circuits[0].hops) | set(multipath.circuits[1].hops)
    results = run_multipath_transfer(
        directory, source, multipath, [b"resilient"], failed_relays=failed
    )
    assert results == [b"resilient"]


def test_multipath_fails_when_too_many_paths_die():
    directory, addresses, rng = make_directory(count=40, seed=8)
    source = OnionErasureSource(directory, rng)
    multipath = source.build_multipath(addresses, "destination", 3, d=2, d_prime=3)
    failed = set(multipath.circuits[0].hops) | set(multipath.circuits[1].hops)
    results = run_multipath_transfer(
        directory, source, multipath, [b"lost"], failed_relays=failed
    )
    assert results == [None]


def test_multipath_requires_enough_relays():
    directory, addresses, rng = make_directory(count=5, seed=9)
    source = OnionErasureSource(directory, rng)
    with pytest.raises(ProtocolError):
        source.build_multipath(addresses, "destination", 3, d=2, d_prime=4)
    with pytest.raises(ProtocolError):
        source.build_multipath(addresses, "destination", 1, d=3, d_prime=2)
