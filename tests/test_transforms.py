"""Tests for the per-hop anti-pattern transforms (§9.4a)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coder import SliceCoder
from repro.core.errors import CodingError
from repro.core.transforms import AffineTransform, build_transform_chain, verify_chain


def test_identity_transform_is_noop():
    data = np.arange(256, dtype=np.uint8)
    assert np.array_equal(AffineTransform.identity().apply(data), data)


def test_invalid_parameters_rejected():
    with pytest.raises(CodingError):
        AffineTransform(multiplier=0, mask=1)
    with pytest.raises(CodingError):
        AffineTransform(multiplier=1, mask=300)


@given(a=st.integers(min_value=1, max_value=255), b=st.integers(min_value=0, max_value=255))
@settings(max_examples=100, deadline=None)
def test_transform_invert_roundtrip(a, b):
    transform = AffineTransform(multiplier=a, mask=b)
    data = np.arange(256, dtype=np.uint8)
    roundtrip = transform.invert().apply(transform.apply(data))
    assert np.array_equal(roundtrip, data)


@given(
    a1=st.integers(min_value=1, max_value=255),
    b1=st.integers(min_value=0, max_value=255),
    a2=st.integers(min_value=1, max_value=255),
    b2=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=100, deadline=None)
def test_compose_matches_sequential_application(a1, b1, a2, b2):
    inner = AffineTransform(a1, b1)
    outer = AffineTransform(a2, b2)
    data = np.arange(64, dtype=np.uint8)
    composed = outer.compose(inner)
    assert np.array_equal(composed.apply(data), outer.apply(inner.apply(data)))


def test_pack_unpack_roundtrip():
    transform = AffineTransform(multiplier=7, mask=99)
    assert AffineTransform.unpack(transform.pack()) == transform
    with pytest.raises(CodingError):
        AffineTransform.unpack(b"\x01")


def test_chain_peels_back_to_original():
    rng = np.random.default_rng(5)
    for hops in (0, 1, 3, 6):
        combined, inverses = build_transform_chain(hops, rng)
        assert len(inverses) == hops
        assert verify_chain(combined, inverses)
        data = np.arange(100, dtype=np.uint8)
        transformed = combined.apply(data)
        for inverse in inverses:
            transformed = inverse.apply(transformed)
        assert np.array_equal(transformed, data)


def test_transformed_slice_differs_at_every_hop():
    # The whole point of §9.4a: an injected bit pattern must not reappear.
    rng = np.random.default_rng(6)
    coder = SliceCoder(d=2)
    block = coder.encode(b"pattern" * 10, rng)[0]
    combined, inverses = build_transform_chain(3, rng)
    seen = {bytes(block.payload.tobytes())}
    current = combined.apply_block(block)
    for inverse in inverses:
        payload = bytes(current.payload.tobytes())
        assert payload not in seen
        seen.add(payload)
        current = inverse.apply_block(current)
    assert np.array_equal(current.payload, block.payload)


def test_negative_hop_count_rejected():
    with pytest.raises(CodingError):
        build_transform_chain(-1, np.random.default_rng(0))
