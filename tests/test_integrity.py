"""Tests for the integrity framing and churn-tolerant robust decoding."""

import numpy as np
import pytest

from repro.core.coder import SliceCoder
from repro.core.errors import CodingError, InsufficientSlicesError
from repro.core.integrity import robust_decode, unwrap, verify, wrap
from repro.core.packet import random_padding_slice


def test_wrap_unwrap_roundtrip():
    payload = b"some routing information"
    assert unwrap(wrap(payload)) == payload


def test_unwrap_rejects_corruption():
    framed = bytearray(wrap(b"data"))
    framed[-1] ^= 0xFF
    with pytest.raises(CodingError):
        unwrap(bytes(framed))


def test_unwrap_rejects_bad_magic_and_truncation():
    framed = wrap(b"data")
    with pytest.raises(CodingError):
        unwrap(b"XXXX" + framed[4:])
    with pytest.raises(CodingError):
        unwrap(framed[:8])


def test_verify_is_boolean_wrapper():
    assert verify(wrap(b"ok"))
    assert not verify(b"garbage")


def test_unwrap_ignores_trailing_padding():
    framed = wrap(b"padded payload") + b"\x00" * 32
    assert unwrap(framed) == b"padded payload"


def test_robust_decode_clean_case():
    rng = np.random.default_rng(0)
    coder = SliceCoder(d=3)
    blocks = coder.encode(wrap(b"hello"), rng)
    assert robust_decode(coder, blocks) == b"hello"


def test_robust_decode_survives_garbage_slices():
    rng = np.random.default_rng(1)
    coder = SliceCoder(d=2, d_prime=3)
    blocks = coder.encode(wrap(b"churn happened"), rng)
    payload_len = int(blocks[0].payload.shape[0])
    garbage = random_padding_slice(2, payload_len, rng)
    mixed = [blocks[0], garbage, blocks[2]]
    assert robust_decode(coder, mixed) == b"churn happened"


def test_robust_decode_insufficient_slices():
    rng = np.random.default_rng(2)
    coder = SliceCoder(d=3)
    blocks = coder.encode(wrap(b"too few"), rng)
    with pytest.raises(InsufficientSlicesError):
        robust_decode(coder, blocks[:2])


def test_robust_decode_all_garbage_fails():
    rng = np.random.default_rng(3)
    coder = SliceCoder(d=2)
    garbage = [random_padding_slice(2, 40, rng) for _ in range(4)]
    with pytest.raises(InsufficientSlicesError):
        robust_decode(coder, garbage)
