"""Property tests for the aio backend's wire format.

The asyncio backend serialises every :class:`~repro.core.packet.Packet` with
:meth:`to_bytes`, wraps it in a length-prefixed frame, and parses it back on
the receiving side.  These tests drive that encode→decode round trip across
all slot layouts with hypothesis, and check that truncated and oversized
frames are rejected rather than mis-parsed.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PacketFormatError
from repro.core.packet import Packet
from repro.overlay.aio import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    decode_frames,
    encode_frame,
    read_frame,
)

from strategies import packets


@given(packet=packets())
@settings(max_examples=150, deadline=None)
def test_packet_survives_frame_round_trip(packet):
    frame = encode_frame(packet.to_bytes())
    (payload,) = decode_frames(frame)
    parsed = Packet.from_bytes(payload, source_address="a", destination_address="b")
    assert parsed.to_bytes() == packet.to_bytes()
    assert parsed.flow_id == packet.flow_id
    assert parsed.kind == packet.kind
    assert parsed.d == packet.d
    assert parsed.lane == packet.lane
    assert parsed.seq == packet.seq
    assert parsed.slice_count == packet.slice_count
    assert parsed.size_bytes() == packet.size_bytes() == len(payload)
    for original, decoded in zip(packet.slices, parsed.slices):
        assert np.array_equal(original.coefficients, decoded.coefficients)
        assert np.array_equal(original.payload, decoded.payload)


@given(packet_list=st.lists(packets(), min_size=1, max_size=4))
@settings(max_examples=50, deadline=None)
def test_concatenated_frames_decode_in_order(packet_list):
    wire = b"".join(encode_frame(p.to_bytes()) for p in packet_list)
    payloads = decode_frames(wire)
    assert payloads == [p.to_bytes() for p in packet_list]


@given(packet=packets(), data=st.data())
@settings(max_examples=100, deadline=None)
def test_truncated_frames_are_rejected(packet, data):
    frame = encode_frame(packet.to_bytes())
    cut = data.draw(st.integers(1, len(frame) - 1), label="cut")
    with pytest.raises(PacketFormatError):
        decode_frames(frame[:cut])


@given(block=st.builds(bytes, st.lists(st.integers(0, 255), max_size=64)))
@settings(max_examples=50, deadline=None)
def test_raw_blob_frames_round_trip(block):
    assert decode_frames(encode_frame(block)) == [block]


def test_oversized_frame_is_rejected_on_decode():
    wire = FRAME_HEADER.pack(MAX_FRAME_BYTES + 1) + b"x"
    with pytest.raises(PacketFormatError):
        decode_frames(wire)


def test_oversized_payload_is_rejected_on_encode():
    with pytest.raises(PacketFormatError):
        encode_frame(bytes(MAX_FRAME_BYTES + 1))


def _read_from(data: bytes, strict: bool = False):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader, strict=strict)

    return asyncio.run(go())


def test_stream_read_frame_round_trip_and_eof():
    payload = b"hello overlay"
    assert _read_from(encode_frame(payload)) == payload
    # Clean EOF between frames: None (the peer closed), unless a frame is
    # required to follow (mid-batch), which makes EOF a protocol error.
    assert _read_from(b"") is None
    with pytest.raises(PacketFormatError):
        _read_from(b"", strict=True)


def test_stream_read_frame_rejects_truncation():
    frame = encode_frame(b"hello overlay")
    with pytest.raises(PacketFormatError):
        _read_from(frame[:2])  # inside the length prefix
    with pytest.raises(PacketFormatError):
        _read_from(frame[:-3])  # inside the payload
    with pytest.raises(PacketFormatError):
        _read_from(FRAME_HEADER.pack(MAX_FRAME_BYTES + 1))  # oversized declaration
