"""Tests for the discrete-event simulator, network models and node runtime."""

import numpy as np
import pytest

from repro.core.errors import SimulationError
from repro.core.source import Source
from repro.overlay.network import NodeResources, heterogeneous_network, uniform_network
from repro.overlay.node import SimulatedOverlayNetwork, SlicingRuntime
from repro.overlay.profiles import LAN_PROFILE, PLANETLAB_PROFILE, get_profile
from repro.overlay.simulator import EventSimulator


# -- event simulator ------------------------------------------------------------------


def test_events_run_in_time_order():
    sim = EventSimulator()
    order = []
    sim.schedule(2.0, lambda: order.append("late"))
    sim.schedule(1.0, lambda: order.append("early"))
    sim.schedule(1.0, lambda: order.append("tie-second"))
    end = sim.run()
    assert order == ["early", "tie-second", "late"]
    assert end == pytest.approx(2.0)


def test_schedule_in_past_rejected():
    sim = EventSimulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_run_until_stops_early():
    sim = EventSimulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(1))
    sim.run(until=1.0)
    assert fired == [] and sim.now == pytest.approx(1.0)
    sim.run()
    assert fired == [1]


def test_cancelled_events_do_not_fire():
    sim = EventSimulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []
    assert sim.pending == 0


def test_nested_scheduling():
    sim = EventSimulator()
    times = []

    def outer():
        times.append(sim.now)
        sim.schedule(0.5, lambda: times.append(sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert times == [pytest.approx(1.0), pytest.approx(1.5)]


# -- network models --------------------------------------------------------------------


def test_uniform_network_latency_and_resources():
    resources = NodeResources(bandwidth_bps=1e6)
    network = uniform_network(["a", "b"], 0.01, resources)
    assert network.latency("a", "b") == pytest.approx(0.01)
    assert network.latency("a", "a") == 0.0
    assert network.resources("a").transmission_time(1250) == pytest.approx(0.01)
    with pytest.raises(SimulationError):
        network.resources("missing")


def test_heterogeneous_network_is_symmetric_and_loaded():
    rng = np.random.default_rng(0)
    addresses = [f"n{i}" for i in range(6)]
    network = heterogeneous_network(
        addresses, rng, latency_mean=0.04, latency_sigma=0.5, base_resources=NodeResources()
    )
    assert network.latency("n0", "n3") == network.latency("n3", "n0")
    assert all(network.resources(a).load_factor >= 1.0 for a in addresses)


def test_node_resources_cost_helpers():
    resources = NodeResources(load_factor=2.0)
    assert resources.coding_time(1500, 5) == pytest.approx(8e-9 * 5 * 1500 * 2)
    assert resources.symmetric_time(1000) == pytest.approx(4e-9 * 1000 * 2)
    assert resources.pk_decrypt_time() > resources.pk_encrypt_time()


def test_profiles_registry():
    assert get_profile("lan") is LAN_PROFILE
    assert get_profile("planetlab") is PLANETLAB_PROFILE
    with pytest.raises(KeyError):
        get_profile("does-not-exist")
    lan_network = LAN_PROFILE.build_network(["x", "y"])
    assert lan_network.latency("x", "y") == pytest.approx(0.0002)


# -- substrate ---------------------------------------------------------------------------


def test_transmit_delivers_and_respects_failures():
    network = uniform_network(["a", "b"], 0.01, NodeResources())
    substrate = SimulatedOverlayNetwork(network, connection_bps=1e6)
    delivered = []
    substrate.transmit("a", "b", 1250, lambda: delivered.append(substrate.sim.now))
    substrate.sim.run()
    assert len(delivered) == 1
    # transmission (0.01s at 1 Mbps for 1250 B) + latency 0.01 + overhead.
    assert delivered[0] == pytest.approx(0.02, abs=2e-3)

    substrate.fail_node("b")
    substrate.transmit("a", "b", 1250, lambda: delivered.append(substrate.sim.now))
    substrate.sim.run()
    assert len(delivered) == 1
    assert substrate.stats.packets_dropped == 1


def test_connection_serialisation_queues_packets():
    network = uniform_network(["a", "b"], 0.0, NodeResources())
    substrate = SimulatedOverlayNetwork(
        network, connection_bps=8000.0, per_packet_overhead=0.0
    )
    times = []
    for _ in range(3):
        substrate.transmit("a", "b", 1000, lambda: times.append(substrate.sim.now))
    substrate.sim.run()
    # Each 1000-byte packet takes 1 s on an 8 kbit/s connection; they queue.
    assert times == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


# -- slicing runtime over the simulator -------------------------------------------------------


def run_simulated_flow(
    profile,
    d=2,
    d_prime=None,
    path_length=3,
    messages=3,
    fail_stage=None,
    min_destination_stage=1,
):
    d_prime = d if d_prime is None else d_prime
    rng = np.random.default_rng(1)
    sources = [f"s{i}" for i in range(d_prime)]
    relays = [f"r{i}" for i in range(path_length * d_prime * 2 + 10)]
    addresses = sources + relays + ["dest"]
    network = profile.build_network(addresses, rng)
    substrate = SimulatedOverlayNetwork(network, connection_bps=30e6)
    runtime = SlicingRuntime(substrate, rng=np.random.default_rng(2))
    for seed in range(1, 100):
        source = Source(
            sources[0],
            sources[1:],
            d=d,
            d_prime=d_prime,
            path_length=path_length,
            rng=np.random.default_rng(seed),
        )
        flow = source.establish_flow(relays, "dest")
        if flow.graph.destination_stage >= min_destination_stage:
            break
    progress = runtime.start_flow(source, flow)
    substrate.sim.run()
    if fail_stage is not None:
        victim = [n for n in flow.graph.stages[fail_stage] if n != "dest"][0]
        substrate.fail_node(victim)
    for index in range(messages):
        runtime.send_message(source, flow, f"message-{index}".encode())
    substrate.sim.run()
    return flow, progress


def test_simulated_flow_setup_completes_and_delivers():
    flow, progress = run_simulated_flow(LAN_PROFILE, messages=4)
    setup_time = progress.setup_complete_time(flow.graph.stages[-1])
    assert setup_time is not None and setup_time > 0
    assert len(progress.delivered_messages) == 4
    assert progress.delivered_bytes > 0


def test_simulated_flow_survives_failure_with_redundancy():
    flow, progress = run_simulated_flow(
        LAN_PROFILE, d=2, d_prime=3, path_length=3, messages=3, fail_stage=2
    )
    assert len(progress.delivered_messages) == 3


def test_simulated_flow_loses_messages_without_redundancy():
    # The failed stage-1 relay sits upstream of the destination (which we
    # force beyond stage 1), so with d' = d nothing can be recovered.
    flow, progress = run_simulated_flow(
        LAN_PROFILE,
        d=2,
        d_prime=2,
        path_length=3,
        messages=3,
        fail_stage=1,
        min_destination_stage=2,
    )
    assert len(progress.delivered_messages) == 0


def test_wide_area_flow_is_slower_but_works():
    lan_flow, lan_progress = run_simulated_flow(LAN_PROFILE, messages=2)
    wan_flow, wan_progress = run_simulated_flow(PLANETLAB_PROFILE, messages=2)
    lan_setup = lan_progress.setup_complete_time(lan_flow.graph.stages[-1])
    wan_setup = wan_progress.setup_complete_time(wan_flow.graph.stages[-1])
    assert wan_setup > lan_setup
    assert len(wan_progress.delivered_messages) == 2
