"""The unified ProtocolRuntime interface: slicing and the onion baselines
drive Figs. 11-15 through one establish/send driver over one substrate."""

import numpy as np
import pytest

from repro.experiments.dataplane import compare_data_planes
from repro.experiments.runner import run_experiment
from repro.experiments.setup_latency import measure_setup
from repro.experiments.throughput import measure_throughput
from repro.overlay.node import SimulatedOverlayNetwork
from repro.overlay.profiles import LAN_PROFILE
from repro.overlay.runtime import build_runtime, runtime_backends, runtime_schemes


def test_registry_lists_all_schemes():
    assert runtime_schemes() == ["onion", "onion-erasure", "slicing", "sphinx"]
    with pytest.raises(KeyError):
        build_runtime("carrier-pigeon", None)


def test_runtime_backends_reports_supported_substrates():
    for scheme in runtime_schemes():
        assert runtime_backends(scheme) == ("sim", "aio")
    with pytest.raises(KeyError):
        runtime_backends("carrier-pigeon")


def build_substrate(addresses, seed=0):
    network = LAN_PROFILE.build_network(addresses, np.random.default_rng(seed))
    return SimulatedOverlayNetwork(network, connection_bps=30e6)


def test_onion_runtime_delivers_plaintexts_end_to_end():
    relays = [f"onion-{i}" for i in range(4)]
    substrate = build_substrate(["src", *relays, "dst"])
    runtime = build_runtime(
        "onion",
        substrate,
        source_address="src",
        path_length=4,
        rng=np.random.default_rng(1),
    )
    progress = runtime.establish(relays, "dst")
    substrate.sim.run()
    assert runtime.setup_seconds() > 0
    # Every circuit relay peeled a layer during setup.
    assert set(runtime._driver.handles) == set(runtime._driver.circuit.hops)
    messages = [b"cell-%d" % i for i in range(5)]
    runtime.send_messages(messages)
    substrate.sim.run()
    assert len(progress.delivered_messages) == 5
    # The delivered cells are the original plaintexts: every layer stripped.
    assert [runtime.delivered[i] for i in range(5)] == messages


def test_sphinx_runtime_delivers_plaintexts_end_to_end():
    relays = [f"sphinx-{i}" for i in range(4)]
    substrate = build_substrate(["src", *relays, "dst"], seed=6)
    runtime = build_runtime(
        "sphinx",
        substrate,
        source_address="src",
        path_length=4,
        rng=np.random.default_rng(7),
    )
    progress = runtime.establish(relays, "dst")
    substrate.sim.run()
    assert runtime.setup_seconds() > 0
    assert set(runtime._driver.handles) == set(runtime._driver.circuit.hops)
    messages = [b"cell-%d" % i for i in range(5)]
    runtime.send_messages(messages)
    substrate.sim.run()
    assert len(progress.delivered_messages) == 5
    # Cells are padded on the wire but delivered unpadded: exact plaintexts.
    assert [runtime.delivered[i] for i in range(5)] == messages


def test_sphinx_sim_vs_aio_delivered_digest_parity():
    kwargs = dict(
        path_length=3, d=2, d_prime=3, num_messages=12, message_bytes=700, seed=33
    )
    sim = measure_throughput("sphinx", LAN_PROFILE, backend="sim", **kwargs)
    aio = measure_throughput("sphinx", LAN_PROFILE, backend="aio", **kwargs)
    assert sim.messages_delivered == 12
    assert sim.parity_fields() == aio.parity_fields()


def test_onion_erasure_runtime_survives_a_circuit_failure():
    d, d_prime, path_length = 2, 3, 2
    relays = [f"onion-{i}" for i in range(d_prime * path_length)]
    substrate = build_substrate(["src", *relays, "dst"], seed=2)
    runtime = build_runtime(
        "onion-erasure",
        substrate,
        source_address="src",
        path_length=path_length,
        d=d,
        d_prime=d_prime,
        rng=np.random.default_rng(3),
    )
    progress = runtime.establish(relays, "dst")
    substrate.sim.run()
    assert runtime.setup_seconds() > 0
    # Kill one whole circuit: d = 2 of the remaining d' - 1 = 2 still suffice.
    victim = runtime._drivers[0].circuit.hops[0]
    substrate.fail_node(victim)
    runtime.send_messages([b"striped message"])
    substrate.sim.run()
    assert progress.delivered_messages
    assert runtime.delivered[0] == b"striped message"


def test_onion_erasure_runtime_fails_below_d_circuits():
    d, d_prime, path_length = 2, 3, 2
    relays = [f"onion-{i}" for i in range(d_prime * path_length)]
    substrate = build_substrate(["src", *relays, "dst"], seed=4)
    runtime = build_runtime(
        "onion-erasure",
        substrate,
        source_address="src",
        path_length=path_length,
        d=d,
        d_prime=d_prime,
        rng=np.random.default_rng(5),
    )
    progress = runtime.establish(relays, "dst")
    substrate.sim.run()
    for driver in runtime._drivers[:2]:
        substrate.fail_node(driver.circuit.hops[0])
    runtime.send_messages([b"lost message"])
    substrate.sim.run()
    assert not progress.delivered_messages


def test_unified_throughput_driver_covers_all_schemes():
    results = {
        scheme: measure_throughput(
            scheme, LAN_PROFILE, path_length=3, d=2, d_prime=3,
            num_messages=20, message_bytes=600, seed=31,
        )
        for scheme in ("slicing", "onion", "onion-erasure", "sphinx")
    }
    assert results["slicing"].protocol == "information-slicing"
    assert results["onion"].protocol == "onion-routing"
    assert results["onion-erasure"].protocol == "onion-erasure"
    assert results["sphinx"].protocol == "sphinx-onion"
    for result in results.values():
        assert result.messages_delivered == 20
    # The paper's headline: parallel slicing paths beat the single chain.
    assert results["slicing"].throughput_bps > results["onion"].throughput_bps
    with pytest.raises(KeyError):
        measure_throughput("smoke-signals", LAN_PROFILE, path_length=2)


def test_unified_setup_driver_covers_all_schemes():
    onion = measure_setup("onion", LAN_PROFILE, path_length=3, seed=7)
    slicing = measure_setup("slicing", LAN_PROFILE, path_length=3, d=2, seed=7)
    multi = measure_setup("onion-erasure", LAN_PROFILE, path_length=3, d=2, d_prime=3, seed=7)
    sphinx = measure_setup("sphinx", LAN_PROFILE, path_length=3, seed=7)
    assert 0 < onion.setup_seconds < slicing.setup_seconds
    assert sphinx.setup_seconds > 0
    # d' disjoint circuits take at least as long as one.
    assert multi.setup_seconds >= onion.setup_seconds * 0.9
    with pytest.raises(KeyError):
        measure_setup("smoke-signals", LAN_PROFILE, path_length=2)


def test_dataplane_comparison_is_bit_identical_at_small_scale():
    row = compare_data_planes(reps=1, seed=3, num_messages=8, message_bytes=256)
    assert row["identical"]
    assert row["batched_events"] < row["scalar_events"]


def test_fig13_rows_identical_across_worker_counts(tmp_path):
    serial = run_experiment("fig13", scale=0.05, workers=1, out_dir=tmp_path / "serial")
    parallel = run_experiment(
        "fig13", scale=0.05, workers=2, out_dir=tmp_path / "parallel", force=True
    )
    assert serial.rows == parallel.rows
    assert (tmp_path / "serial" / "fig13.json").read_bytes() == (
        tmp_path / "parallel" / "fig13.json"
    ).read_bytes()
