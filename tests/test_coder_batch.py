"""Batched coding path: equivalence with the per-message path, round trips,
and the batched GF(2^8) kernels underneath it."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coder import SliceCoder
from repro.core.errors import CodingError, FieldError, InsufficientSlicesError
from repro.core.gf import GF


def _messages(rng, count, size):
    return [bytes(rng.integers(0, 256, size, dtype=np.uint8)) for _ in range(count)]


# -- batched GF kernels ----------------------------------------------------------


def test_batched_matmul_matches_per_item():
    rng = np.random.default_rng(1)
    a = rng.integers(0, 256, (12, 3, 5), dtype=np.uint8)
    b = rng.integers(0, 256, (12, 5, 7), dtype=np.uint8)
    batched = GF.matmul(a, b)
    assert batched.shape == (12, 3, 7)
    for i in range(12):
        assert np.array_equal(batched[i], GF.matmul(a[i], b[i]))


def test_batched_matmul_broadcasts_single_operand():
    rng = np.random.default_rng(2)
    single = rng.integers(0, 256, (3, 5), dtype=np.uint8)
    stack = rng.integers(0, 256, (8, 5, 4), dtype=np.uint8)
    result = GF.matmul(single, stack)
    for i in range(8):
        assert np.array_equal(result[i], GF.matmul(single, stack[i]))


def test_batched_matmul_shape_mismatch():
    with pytest.raises(FieldError, match="mismatch"):
        GF.batched_matmul(np.zeros((2, 3, 4), dtype=np.uint8), np.zeros((2, 5, 4), dtype=np.uint8))
    with pytest.raises(FieldError, match="dimensions"):
        GF.batched_matmul(np.zeros(3, dtype=np.uint8), np.zeros((2, 3, 4), dtype=np.uint8))


def test_invert_matrices_matches_single_inversion():
    rng = np.random.default_rng(3)
    coder = SliceCoder(4)
    stack = coder.generate_matrices(20, rng)
    inverses = GF.invert_matrices(stack)
    identity = np.eye(4, dtype=np.uint8)
    for i in range(20):
        assert np.array_equal(inverses[i], GF.invert_matrix(stack[i]))
        assert np.array_equal(GF.matmul(stack[i], inverses[i]), identity)


def test_invert_matrices_rejects_singular():
    rng = np.random.default_rng(4)
    good = SliceCoder(3).generate_matrices(4, rng)
    bad = good.copy()
    bad[2, 1] = bad[2, 0]  # duplicate row => singular
    assert GF.invertible_mask(bad).tolist() == [True, True, False, True]
    with pytest.raises(FieldError, match="singular"):
        GF.invert_matrices(bad)


def test_invert_matrices_rejects_bad_shapes():
    with pytest.raises(FieldError, match="square"):
        GF.invert_matrices(np.zeros((2, 3, 4), dtype=np.uint8))
    with pytest.raises(FieldError, match="square"):
        GF.invert_matrices(np.zeros((3, 3), dtype=np.uint8))


# -- generate_matrices -----------------------------------------------------------


@pytest.mark.parametrize("d,d_prime", [(1, 1), (2, 2), (3, 3), (2, 4), (3, 5)])
def test_generate_matrices_shapes_and_rank(d, d_prime):
    rng = np.random.default_rng(5)
    coder = SliceCoder(d, d_prime)
    stack = coder.generate_matrices(10, rng)
    assert stack.shape == (10, d_prime, d)
    for matrix in stack:
        assert GF.rank(matrix) == d


def test_generate_matrices_empty_and_invalid():
    rng = np.random.default_rng(6)
    coder = SliceCoder(2)
    assert coder.generate_matrices(0, rng).shape == (0, 2, 2)
    with pytest.raises(CodingError):
        coder.generate_matrices(-1, rng)


# -- encode_batch / decode_batch -------------------------------------------------


@pytest.mark.parametrize("d,d_prime", [(1, 1), (2, 2), (3, 5), (8, 8)])
def test_encode_batch_matches_per_message_encode(d, d_prime):
    rng = np.random.default_rng(7)
    coder = SliceCoder(d, d_prime)
    messages = _messages(rng, 16, 257)
    matrices = coder.generate_matrices(len(messages), np.random.default_rng(8))
    batch = coder.encode_batch(messages, rng, matrices=matrices)
    for i, message in enumerate(messages):
        single = coder.encode(message, rng, matrix=matrices[i])
        assert len(single) == len(batch[i]) == d_prime
        for expected, got in zip(single, batch[i]):
            assert np.array_equal(expected.coefficients, got.coefficients)
            assert np.array_equal(expected.payload, got.payload)
            assert expected.index == got.index


def test_encode_batch_shared_matrix_broadcasts():
    rng = np.random.default_rng(9)
    coder = SliceCoder(3)
    messages = _messages(rng, 5, 100)
    matrix = coder.generate_matrix(rng)
    batch = coder.encode_batch(messages, rng, matrices=matrix)
    for i, message in enumerate(messages):
        single = coder.encode(message, rng, matrix=matrix)
        for expected, got in zip(single, batch[i]):
            assert np.array_equal(expected.payload, got.payload)


def test_round_trip_through_decode_batch():
    rng = np.random.default_rng(10)
    coder = SliceCoder(3, 5)
    messages = _messages(rng, 12, 400)
    batch = coder.encode_batch(messages, rng)
    assert coder.decode_batch(batch) == messages
    # Any d of the d' blocks suffice: drop the first two from every message.
    assert coder.decode_batch([blocks[2:] for blocks in batch]) == messages


def test_decode_batch_interoperates_with_per_message_encode():
    rng = np.random.default_rng(11)
    coder = SliceCoder(2, 3)
    messages = _messages(rng, 6, 64)
    batches = [coder.encode(message, rng) for message in messages]
    assert coder.decode_batch(batches) == messages


def test_encode_batch_rejects_mixed_lengths():
    rng = np.random.default_rng(12)
    coder = SliceCoder(2)
    with pytest.raises(CodingError, match="equal-length"):
        coder.encode_batch([b"short", b"much longer message"], rng)


def test_encode_batch_rejects_bad_matrix_stack():
    rng = np.random.default_rng(13)
    coder = SliceCoder(2)
    messages = _messages(rng, 4, 32)
    with pytest.raises(CodingError, match="stack shape"):
        coder.encode_batch(messages, rng, matrices=np.zeros((3, 2, 2), dtype=np.uint8))


def test_encode_batch_empty():
    rng = np.random.default_rng(14)
    assert SliceCoder(2).encode_batch([], rng) == []
    assert SliceCoder(2).decode_batch([]) == []


def test_decode_batch_insufficient_slices():
    rng = np.random.default_rng(15)
    coder = SliceCoder(3)
    batch = coder.encode_batch(_messages(rng, 3, 50), rng)
    broken = [batch[0], batch[1][:2], batch[2]]
    with pytest.raises(InsufficientSlicesError):
        coder.decode_batch(broken)


def test_decode_batch_rejects_mixed_payload_lengths():
    rng = np.random.default_rng(16)
    coder = SliceCoder(2)
    short = coder.encode_batch(_messages(rng, 1, 10), rng)
    long = coder.encode_batch(_messages(rng, 1, 500), rng)
    with pytest.raises(CodingError, match="payload lengths"):
        coder.decode_batch([short[0], long[0]])


@settings(max_examples=25, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=5),
    redundancy=st.integers(min_value=0, max_value=3),
    count=st.integers(min_value=1, max_value=8),
    size=st.integers(min_value=0, max_value=200),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_hypothesis_batch_round_trip(d, redundancy, count, size, seed):
    rng = np.random.default_rng(seed)
    coder = SliceCoder(d, d + redundancy)
    messages = _messages(rng, count, size)
    batch = coder.encode_batch(messages, rng)
    assert coder.decode_batch(batch) == messages
    # Per-message decode agrees with the batched decode.
    for message, blocks in zip(messages, batch):
        assert coder.decode(blocks) == message
