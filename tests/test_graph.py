"""Forwarding-graph construction tests (Algorithm 1 invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import GraphConstructionError
from repro.core.graph import ForwardingGraph, build_forwarding_graph


def make_graph(path_length=3, d=2, d_prime=None, seed=0):
    d_prime = d if d_prime is None else d_prime
    rng = np.random.default_rng(seed)
    sources = [f"src-{i}" for i in range(d_prime)]
    relays = [f"relay-{i}" for i in range(path_length * d_prime * 3)]
    return build_forwarding_graph(
        sources, relays, "destination", path_length, d, d_prime, rng
    )


def test_basic_structure():
    graph = make_graph(path_length=4, d=2)
    assert graph.path_length == 4
    assert len(graph.stages) == 5
    assert all(len(stage) == 2 for stage in graph.stages)
    assert graph.destination in graph.relays
    assert 1 <= graph.destination_stage <= 4
    graph.validate()


def test_destination_never_in_source_stage():
    for seed in range(20):
        graph = make_graph(seed=seed)
        assert graph.destination_stage >= 1


def test_parents_and_children():
    graph = make_graph(path_length=3, d=2)
    first_stage_node = graph.stages[1][0]
    assert graph.parents(first_stage_node) == graph.stages[0]
    assert graph.children(first_stage_node) == graph.stages[2]
    last_stage_node = graph.stages[3][0]
    assert graph.children(last_stage_node) == []
    assert graph.parents(graph.stages[0][0]) == []


@given(
    path_length=st.integers(min_value=1, max_value=6),
    d=st.integers(min_value=1, max_value=4),
    extra=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_slice_paths_are_vertex_disjoint(path_length, d, extra, seed):
    graph = make_graph(path_length=path_length, d=d, d_prime=d + extra, seed=seed)
    graph.validate()
    for owner in graph.relays:
        paths = [graph.slice_path(owner, k) for k in range(graph.d_prime)]
        for stage in range(graph.stage_of(owner)):
            carriers = [path[stage] for path in paths]
            assert len(set(carriers)) == graph.d_prime


def test_edge_slices_structure():
    graph = make_graph(path_length=4, d=3, seed=2)
    slots = graph.max_slices_per_edge()
    assert slots == graph.path_length
    for parent, child in graph.edges():
        slices = graph.edge_slices(parent, child)
        # First slice always belongs to the child itself.
        assert slices[0][0] == child
        # One slice per downstream stage, none repeated.
        assert len(slices) == len(set(slices))
        expected = graph.path_length - graph.stage_of(parent)
        assert len(slices) == expected


def test_edge_slices_rejects_non_adjacent_nodes():
    graph = make_graph(path_length=3, d=2, seed=3)
    with pytest.raises(GraphConstructionError):
        graph.edge_slices(graph.stages[0][0], graph.stages[2][0])


def test_slices_carried_by_counts():
    graph = make_graph(path_length=4, d=2, seed=4)
    relay = graph.stages[1][0]
    carried = graph.slices_carried_by(relay)
    # Own d' slices plus one slice per node in each later stage.
    later_nodes = sum(len(stage) for stage in graph.stages[2:])
    assert len(carried) == graph.d_prime + later_nodes


def test_construction_errors():
    rng = np.random.default_rng(0)
    with pytest.raises(GraphConstructionError):
        build_forwarding_graph(["s0"], ["r0"], "dst", path_length=2, d=2, rng=rng)
    with pytest.raises(GraphConstructionError):
        build_forwarding_graph(
            ["s0", "s1"], ["r0", "r1"], "dst", path_length=3, d=2, rng=rng
        )
    with pytest.raises(GraphConstructionError):
        build_forwarding_graph(
            ["s0", "s1"],
            [f"r{i}" for i in range(10)],
            "s0",
            path_length=2,
            d=2,
            rng=rng,
        )


def test_duplicate_node_rejected():
    with pytest.raises(GraphConstructionError):
        ForwardingGraph(
            stages=[["a", "b"], ["c", "a"]], destination="c", d=2, d_prime=2
        )


def test_carrier_out_of_range_slice_index():
    graph = make_graph()
    owner = graph.stages[2][0]
    with pytest.raises(GraphConstructionError):
        graph.carrier(owner, graph.d_prime, 0)
