"""Tests for coding-matrix construction (invertible and MDS matrices)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import MatrixError
from repro.core.gf import GF
from repro.core.matrix import (
    cauchy_matrix,
    mds_matrix,
    random_invertible_matrix,
    submatrix_inverse,
    verify_mds,
)


def test_random_invertible_matrix_is_invertible():
    rng = np.random.default_rng(3)
    for d in (1, 2, 3, 5, 8):
        matrix = random_invertible_matrix(d, rng)
        assert matrix.shape == (d, d)
        assert GF.is_invertible(matrix)


def test_random_invertible_rejects_bad_dimension():
    rng = np.random.default_rng(0)
    with pytest.raises(MatrixError):
        random_invertible_matrix(0, rng)


def test_cauchy_matrix_every_entry_nonzero():
    matrix = cauchy_matrix(4, 6)
    assert matrix.shape == (4, 6)
    assert np.all(matrix != 0)


def test_cauchy_matrix_too_large_raises():
    with pytest.raises(MatrixError):
        cauchy_matrix(200, 100)


@given(d=st.integers(min_value=1, max_value=4), extra=st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_mds_matrix_every_d_rows_independent(d, extra):
    rng = np.random.default_rng(d * 10 + extra)
    matrix = mds_matrix(d + extra, d, rng=rng)
    assert matrix.shape == (d + extra, d)
    assert verify_mds(matrix, d)


def test_systematic_mds_has_identity_prefix():
    matrix = mds_matrix(5, 3, systematic=True)
    assert np.array_equal(matrix[:3], np.eye(3, dtype=np.uint8))
    assert verify_mds(matrix, 3)


def test_mds_matrix_rejects_d_prime_below_d():
    with pytest.raises(MatrixError):
        mds_matrix(2, 3)


def test_submatrix_inverse_recovers_selected_rows():
    rng = np.random.default_rng(9)
    matrix = mds_matrix(6, 3, rng=rng)
    rows = [1, 4, 5]
    inverse = submatrix_inverse(matrix, rows)
    product = GF.matmul(inverse, matrix[rows])
    assert np.array_equal(product, np.eye(3, dtype=np.uint8))


def test_submatrix_inverse_wrong_row_count_raises():
    matrix = mds_matrix(5, 3)
    with pytest.raises(MatrixError):
        submatrix_inverse(matrix, [0, 1])


def test_verify_mds_detects_dependent_rows():
    bad = np.array([[1, 0], [0, 1], [1, 0]], dtype=np.uint8)
    assert not verify_mds(bad, 2) or True  # rows 0 and 2 identical -> not MDS
    assert verify_mds(bad, 2) is False
