"""Compiled GF(2^8) kernel backend: bit-identity, selection and fallback.

The contract under test (``docs/ARCHITECTURE.md``, "Compiled kernels"): the
``"compiled"`` kernel is an *accelerator*, never an approximation — every
array it returns, including the unspecified entries of singular Gauss–Jordan
outputs, is bit-identical to the ``"numpy"`` reference — and it degrades
gracefully: when neither numba nor a C toolchain is available the numpy
kernel keeps working and ``"compiled"`` fails loudly with an actionable
:class:`~repro.core.errors.KernelUnavailableError`.
"""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gf_kernels
from repro.core.coder import SliceCoder
from repro.core.errors import FieldError, KernelUnavailableError
from repro.core.gf import (
    GF,
    GF256,
    active_kernel,
    available_kernels,
    field_for_kernel,
    resolve_field,
    use_kernel,
)

requires_compiled = pytest.mark.skipif(
    not gf_kernels.compiled_available(),
    reason=f"no compiled provider: {gf_kernels.compiled_unavailable_reason()}",
)


def _rng_array(seed, shape):
    return np.random.default_rng(seed).integers(0, 256, size=shape, dtype=np.uint8)


# -- bit-identity against the numpy reference ---------------------------------------


@requires_compiled
@settings(deadline=None, max_examples=60)
@given(seed=st.integers(0, 2**32 - 1), shape=st.sampled_from([(), (1,), (7,), (3, 5), (2, 3, 4)]))
def test_compiled_multiply_is_bit_identical(seed, shape):
    compiled = field_for_kernel("compiled")
    a = _rng_array(seed, shape)
    b = _rng_array(seed + 1, shape)
    assert np.array_equal(GF.multiply(a, b), compiled.multiply(a, b))


@requires_compiled
def test_compiled_multiply_broadcasts_like_numpy():
    compiled = field_for_kernel("compiled")
    a = _rng_array(0, (4, 1, 6))
    b = _rng_array(1, (3, 1))
    assert np.array_equal(GF.multiply(a, b), compiled.multiply(a, b))
    assert np.array_equal(GF.multiply(a, 0x83), compiled.multiply(a, 0x83))
    assert int(compiled.multiply(0x57, 0x83)) == 0xC1


@requires_compiled
@settings(deadline=None, max_examples=60)
@given(
    seed=st.integers(0, 2**32 - 1),
    batch=st.integers(1, 8),
    m=st.integers(1, 9),
    k=st.integers(1, 9),
    n=st.integers(1, 9),
)
def test_compiled_batched_matmul_is_bit_identical(seed, batch, m, k, n):
    compiled = field_for_kernel("compiled")
    a = _rng_array(seed, (batch, m, k))
    b = _rng_array(seed + 1, (batch, k, n))
    assert np.array_equal(GF.batched_matmul(a, b), compiled.batched_matmul(a, b))


@requires_compiled
@settings(deadline=None, max_examples=60)
@given(seed=st.integers(0, 2**32 - 1), batch=st.integers(1, 12), n=st.integers(1, 6))
def test_compiled_inversion_is_bit_identical_on_mixed_stacks(seed, batch, n):
    """Singular members included: even the garbage entries match bit-for-bit."""
    compiled = field_for_kernel("compiled")
    stacks = _rng_array(seed, (batch, n, n))
    # Force the first members singular in two different ways so every run
    # exercises the dead-pivot path, not just whatever chance provides.
    stacks[0] = 0
    if batch > 1 and n > 1:
        stacks[1, :, 0] = stacks[1, :, 1]
    ref_inv, ref_invertible = GF.try_invert_matrices(stacks)
    fast_inv, fast_invertible = compiled.try_invert_matrices(stacks)
    assert np.array_equal(ref_invertible, fast_invertible)
    assert np.array_equal(ref_inv, fast_inv)
    assert not bool(ref_invertible[0])  # the forced all-zero member


@requires_compiled
def test_cross_kernel_coding_round_trips():
    """Blocks encoded under one kernel decode under the other."""
    messages = [bytes([i] * 96) for i in range(6)]
    for encode_kernel, decode_kernel in (("compiled", "numpy"), ("numpy", "compiled")):
        encoder = SliceCoder(4, kernel=encode_kernel)
        decoder = SliceCoder(4, kernel=decode_kernel)
        rng = np.random.default_rng(7)
        assert decoder.decode(encoder.encode(messages[0], rng)) == messages[0]
        batches = encoder.encode_batch(messages, rng)
        assert decoder.decode_batch(batches) == messages


@requires_compiled
def test_kernel_choice_never_changes_coded_bytes():
    """The same rng seed yields byte-identical blocks on both kernels —
    the invariant that keeps cached experiment artifacts kernel-independent."""
    message = bytes(range(128))
    blocks = {
        kernel: SliceCoder(4, kernel=kernel).encode(
            message, np.random.default_rng(11)
        )
        for kernel in ("numpy", "compiled")
    }
    for numpy_block, compiled_block in zip(*blocks.values()):
        assert numpy_block.to_bytes() == compiled_block.to_bytes()


# -- kernel selection ---------------------------------------------------------------


def test_unknown_kernel_is_rejected_everywhere():
    with pytest.raises(FieldError, match="unknown kernel"):
        GF256(kernel="fortran")
    with pytest.raises(FieldError, match="unknown kernel"):
        field_for_kernel("fortran")


def test_resolve_field_precedence():
    explicit = GF256()
    assert resolve_field(explicit, None) is explicit
    assert resolve_field(explicit, "numpy") is explicit  # field beats kernel
    assert resolve_field(None, "numpy") is field_for_kernel("numpy")
    assert resolve_field() is GF


def test_use_kernel_scopes_the_active_kernel():
    assert active_kernel() == "numpy"
    with use_kernel(None):  # None is the explicit no-op
        assert active_kernel() == "numpy"
    if gf_kernels.compiled_available():
        with use_kernel("compiled"):
            assert active_kernel() == "compiled"
            assert resolve_field().kernel == "compiled"
            assert SliceCoder(3).field.kernel == "compiled"
        assert active_kernel() == "numpy"
    with pytest.raises(FieldError, match="unknown kernel"):
        with use_kernel("fortran"):
            pass
    assert active_kernel() == "numpy"


def test_available_kernels_always_includes_numpy():
    kernels = available_kernels()
    assert kernels[0] == "numpy"
    assert ("compiled" in kernels) == gf_kernels.compiled_available()


@requires_compiled
def test_shared_compiled_field_is_cached():
    assert field_for_kernel("compiled") is field_for_kernel("compiled")
    assert field_for_kernel("numpy") is GF


# -- fallback when no provider is available -----------------------------------------


def test_provider_disabled_by_env_raises_and_numpy_still_works(monkeypatch):
    monkeypatch.setenv(gf_kernels.PROVIDER_ENV, "none")
    gf_kernels.reset_provider_cache()
    try:
        assert not gf_kernels.compiled_available()
        assert "disabled" in (gf_kernels.compiled_unavailable_reason() or "")
        with pytest.raises(KernelUnavailableError):
            GF256(kernel="compiled")
        # The reference kernel is untouched by the compiled backend's absence.
        field = GF256()
        assert int(field.multiply(0x57, 0x83)) == 0xC1
    finally:
        monkeypatch.delenv(gf_kernels.PROVIDER_ENV)
        gf_kernels.reset_provider_cache()


def test_unknown_provider_env_value_raises(monkeypatch):
    monkeypatch.setenv(gf_kernels.PROVIDER_ENV, "gpu")
    gf_kernels.reset_provider_cache()
    try:
        with pytest.raises(KernelUnavailableError, match="gpu"):
            gf_kernels.load_provider()
    finally:
        monkeypatch.delenv(gf_kernels.PROVIDER_ENV)
        gf_kernels.reset_provider_cache()


def test_fallback_in_a_pristine_interpreter():
    """A subprocess with the provider disabled: import, compute, fail loudly.

    This is the exact situation of an install without the ``[fast]`` extra on
    a host with no C toolchain — nothing at import time may touch or require
    a compiled provider.
    """
    code = (
        "from repro.core.gf import GF, GF256\n"
        "from repro.core.errors import KernelUnavailableError\n"
        "assert int(GF.multiply(0x57, 0x83)) == 0xC1\n"
        "try:\n"
        "    GF256(kernel='compiled')\n"
        "except KernelUnavailableError as error:\n"
        "    assert 'REPRO_GF_KERNEL_PROVIDER' in str(error), error\n"
        "else:\n"
        "    raise SystemExit('compiled kernel loaded despite being disabled')\n"
        "print('fallback ok')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={**__import__("os").environ, gf_kernels.PROVIDER_ENV: "none"},
        check=False,
    )
    assert result.returncode == 0, result.stderr
    assert "fallback ok" in result.stdout
