"""The reproduction handbook stays healthy: docs exist, links resolve."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_handbook_files_exist():
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()
    assert (REPO_ROOT / "docs" / "anonymity-math.md").is_file()
    assert (REPO_ROOT / "docs" / "deployment.md").is_file()


def test_readme_links_the_handbook():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/anonymity-math.md" in readme
    assert "docs/deployment.md" in readme


def test_deployment_handbook_covers_the_fleet_recipe():
    # The operational page must keep its load-bearing sections: keygen,
    # the worked cross-host example, and the failure modes operators hit.
    handbook = (REPO_ROOT / "docs" / "deployment.md").read_text()
    for needle in (
        "keygen",
        "--transport secure",
        "--authorized-keys",
        "--coordinator-key",
        "Failure modes",
        "lease",
        "unauthorized static key",
    ):
        assert needle in handbook, f"deployment.md is missing {needle!r}"


def test_readme_maps_every_figure_to_an_experiment():
    # The figure-to-experiment table must cover the whole registry.
    from repro.experiments import FIGURES

    readme = (REPO_ROOT / "README.md").read_text()
    for name in FIGURES:
        assert f"`{name}`" in readme, f"README table is missing experiment {name!r}"


def test_relative_doc_links_resolve():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_doc_links.py"), str(REPO_ROOT)],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr + result.stdout
