"""Batched anonymity Monte-Carlo engine: exact equivalence with the scalar
reference path, vectorised attacker-view correctness, and input validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymity.attacker import (
    AttackerView,
    AttackerViewBatch,
    _longest_true_run,
    _longest_true_runs,
    sample_stage_layout_batch,
)
from repro.anonymity.simulation import (
    simulate_anonymity,
    simulate_anonymity_batch,
    simulate_anonymity_trials,
    sweep_anonymity,
    sweep_malicious_fraction,
    sweep_redundancy,
)
from repro.baselines.chaum import simulate_chaum_anonymity

#: Parameter grid for the exact-equivalence tests: includes the paper's
#: defaults, a redundant layout (d' > d), a degenerate short path and a
#: d' < d layout in which no stage can ever be decodable.
PARAMETER_POINTS = [
    dict(num_nodes=10_000, path_length=8, d=3, fraction_malicious=0.1),
    dict(num_nodes=10_000, path_length=8, d=3, fraction_malicious=0.4, d_prime=6),
    dict(num_nodes=10_000, path_length=2, d=2, fraction_malicious=0.5),
    dict(num_nodes=500, path_length=12, d=4, fraction_malicious=0.3, d_prime=2),
]


# -- exact statistical equivalence -------------------------------------------------


@pytest.mark.parametrize("kwargs", PARAMETER_POINTS)
def test_batched_engine_matches_scalar_per_trial(kwargs):
    scalar = simulate_anonymity_trials(
        **kwargs, trials=400, rng=np.random.default_rng(42), engine="scalar"
    )
    batched = simulate_anonymity_trials(
        **kwargs, trials=400, rng=np.random.default_rng(42), engine="batched"
    )
    # Bit-identical per-trial values, not approximate agreement.
    assert np.array_equal(scalar.source_anonymity, batched.source_anonymity)
    assert np.array_equal(scalar.destination_anonymity, batched.destination_anonymity)
    assert np.array_equal(scalar.source_case1, batched.source_case1)
    assert np.array_equal(scalar.destination_case1, batched.destination_case1)


def test_batched_result_equals_scalar_result():
    kwargs = dict(num_nodes=10_000, path_length=8, d=3, fraction_malicious=0.2)
    scalar = simulate_anonymity(**kwargs, trials=300, rng=np.random.default_rng(9))
    batched = simulate_anonymity_batch(**kwargs, trials=300, rng=np.random.default_rng(9))
    assert scalar == batched


def test_single_trial_works_in_both_engines():
    kwargs = dict(num_nodes=100, path_length=4, d=2, fraction_malicious=0.3)
    scalar = simulate_anonymity(**kwargs, trials=1, rng=np.random.default_rng(0))
    batched = simulate_anonymity_batch(**kwargs, trials=1, rng=np.random.default_rng(0))
    assert scalar == batched
    assert scalar.trials == 1


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        simulate_anonymity_trials(100, 4, 2, 0.1, trials=10, engine="turbo")


# -- trials validation (both paths + baseline + sweeps) ----------------------------


@pytest.mark.parametrize("trials", [0, -5])
def test_scalar_path_rejects_non_positive_trials(trials):
    with pytest.raises(ValueError, match="trials must be >= 1"):
        simulate_anonymity(10_000, 8, 3, 0.1, trials=trials)


@pytest.mark.parametrize("trials", [0, -1])
def test_batched_path_rejects_non_positive_trials(trials):
    with pytest.raises(ValueError, match="trials must be >= 1"):
        simulate_anonymity_batch(10_000, 8, 3, 0.1, trials=trials)


def test_sweep_driver_rejects_non_positive_trials():
    with pytest.raises(ValueError, match="trials must be >= 1"):
        sweep_malicious_fraction(10_000, 8, 3, [0.1], trials=0)


def test_chaum_baseline_rejects_non_positive_trials():
    with pytest.raises(ValueError, match="trials must be >= 1"):
        simulate_chaum_anonymity(10_000, 8, 0.1, trials=0)


# -- vectorised attacker view ------------------------------------------------------


@pytest.mark.parametrize(
    "path_length,d,d_prime,fraction",
    [(8, 3, 3, 0.3), (8, 3, 6, 0.15), (5, 4, 2, 0.6), (1, 2, 2, 0.5)],
)
def test_batch_view_matches_scalar_view_per_trial(path_length, d, d_prime, fraction):
    rng = np.random.default_rng(123)
    layouts = sample_stage_layout_batch(
        trials=64,
        path_length=path_length,
        d=d,
        fraction_malicious=fraction,
        rng=rng,
        d_prime=d_prime,
    )
    views = AttackerViewBatch.from_layouts(layouts)
    for trial in range(layouts.trials):
        reference = AttackerView.from_layout(layouts.layout(trial))
        assert tuple(views.exposed_stages[trial]) == reference.exposed_stages
        assert views.longest_chain_start[trial] == reference.longest_chain_start
        assert views.longest_chain_length[trial] == reference.longest_chain_length
        assert views.first_stage_decodable[trial] == reference.first_stage_decodable
        assert (
            views.decodable_stage_before_destination[trial]
            == reference.decodable_stage_before_destination
        )


def test_batch_sampler_rejects_non_positive_trials():
    with pytest.raises(ValueError, match="trials must be >= 1"):
        sample_stage_layout_batch(0, 8, 3, 0.1, np.random.default_rng(0))


def test_batch_sampler_source_stage_and_destination_clean():
    rng = np.random.default_rng(5)
    layouts = sample_stage_layout_batch(200, 6, 2, 1.0, rng, d_prime=4)
    assert not layouts.malicious[:, 0, :].any()
    trials = np.arange(layouts.trials)
    assert not layouts.malicious[
        trials, layouts.destination_stage, layouts.destination_position
    ].any()
    # With f=1.0 every other relay slot is malicious.
    assert layouts.malicious[:, 1:, :].sum() == 200 * 6 * 4 - 200


# -- vectorised longest-run kernel -------------------------------------------------


def test_longest_true_runs_zero_columns():
    starts, lengths = _longest_true_runs(np.zeros((3, 0), dtype=bool))
    assert starts.tolist() == [0, 0, 0]
    assert lengths.tolist() == [0, 0, 0]


def test_longest_true_runs_rejects_wrong_rank():
    with pytest.raises(ValueError, match="2-D"):
        _longest_true_runs(np.zeros(4, dtype=bool))


@given(
    rows=st.lists(
        st.lists(st.booleans(), min_size=1, max_size=12),
        min_size=1,
        max_size=8,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1)
)
@settings(max_examples=80, deadline=None)
def test_longest_true_runs_matches_scalar_helper(rows):
    mask = np.array(rows, dtype=bool)
    starts, lengths = _longest_true_runs(mask)
    for index, row in enumerate(rows):
        assert (starts[index], lengths[index]) == _longest_true_run(row)


# -- sweeps route through the batched engine ---------------------------------------


def test_sweep_driver_matches_manual_batched_calls():
    fractions = [0.05, 0.3]
    rows = sweep_malicious_fraction(1000, 6, 2, fractions, trials=50, seed=17)
    for index, (fraction, result) in enumerate(rows):
        expected = simulate_anonymity_batch(
            1000, 6, 2, fraction, trials=50, rng=np.random.default_rng(17 + index)
        )
        assert fraction == fractions[index]
        assert result == expected


def test_sweep_driver_scalar_engine_agrees_with_batched():
    points = [(0.1, dict(num_nodes=1000, path_length=5, d=2, fraction_malicious=0.1))]
    batched = sweep_anonymity(points, trials=80, seed=3)
    scalar = sweep_anonymity(points, trials=80, seed=3, simulate=simulate_anonymity)
    assert batched == scalar


def test_sweep_redundancy_reports_redundancy_keys():
    rows = sweep_redundancy(1000, 5, 2, [2, 4], fraction_malicious=0.2, trials=40)
    assert [key for key, _ in rows] == [0.0, 1.0]
