"""Scenario-matrix tests: spec validation, expansion properties, cell runs.

The expansion guarantees are property-tested with hypothesis: every cell of
a random (valid) matrix gets a unique name and a unique seed, and expansion
is deterministic and independent of spec key order.  The CLI tests pin the
one-line ``error: ...`` / exit-2 contract for malformed specs, and the
end-to-end test runs one tiny cell through the runner at two worker counts
and byte-compares the artifacts.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from strategies import scenario_axis_params

from repro.experiments.__main__ import main as experiments_main
from repro.experiments.registry import REGISTRY
from repro.experiments.scenarios import (
    AXIS_DEFAULTS,
    MATRIX_ENV_VAR,
    ScenarioSpecError,
    build_scenario_profile,
    cell_name,
    cell_seed,
    expand_matrix,
    load_env_matrices,
    load_matrix,
    parse_matrix,
    register_matrix,
    register_matrix_file,
)

# -- spec validation ---------------------------------------------------------------


def test_minimal_spec_fills_defaults():
    matrix = parse_matrix({"name": "m", "axes": {"loss": [0.0, 0.1]}})
    assert matrix.cell_count() == 2
    assert matrix.listed_axes == ("loss",)
    assert set(matrix.axes) == set(AXIS_DEFAULTS)
    assert matrix.schemes == ("slicing", "onion", "onion-erasure", "sphinx")
    assert matrix.profile == "lan"


@pytest.mark.parametrize(
    "spec, fragment",
    [
        ({}, 'needs a "name"'),
        ({"name": "-bad"}, "letters, digits and dashes"),
        ({"name": "m", "bogus": 1}, "unknown spec key"),
        ({"name": "m", "axes": {"latency": [1]}}, "unknown axis"),
        ({"name": "m", "axes": {"loss": []}}, "non-empty list"),
        ({"name": "m", "axes": {"loss": ["x"]}}, "must be numbers"),
        ({"name": "m", "axes": {"loss": [0.1, 0.1]}}, "duplicate values"),
        ({"name": "m", "axes": {"loss": [1.5]}}, "in [0, 1)"),
        ({"name": "m", "axes": {"adversary": [1.0]}}, "in [0, 1)"),
        ({"name": "m", "axes": {"jitter": [-0.1]}}, ">= 0"),
        ({"name": "m", "axes": {"asymmetry": [0.5]}}, ">= 1"),
        ({"name": "m", "axes": {"d": [2.5]}}, "integers >= 1"),
        ({"name": "m", "axes": {"d": [4], "d_prime": [3]}}, "must be >="),
        ({"name": "m", "schemes": []}, "non-empty"),
        ({"name": "m", "schemes": ["tor"]}, "unknown scheme"),
        ({"name": "m", "schemes": ["onion", "onion"]}, "duplicate"),
        ({"name": "m", "base": {"bogus": 1}}, "unknown base key"),
        ({"name": "m", "base": {"profile": "wan9"}}, "'lan' or 'planetlab'"),
        ({"name": "m", "base": {"messages": 0}}, "integer >= 1"),
    ],
)
def test_bad_specs_raise_one_line_errors(spec, fragment):
    with pytest.raises(ScenarioSpecError) as excinfo:
        parse_matrix(spec)
    message = str(excinfo.value)
    assert fragment in message
    assert "\n" not in message


def test_load_matrix_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ScenarioSpecError, match="invalid JSON"):
        load_matrix(path)
    with pytest.raises(ScenarioSpecError, match="cannot read"):
        load_matrix(tmp_path / "absent.json")


# -- expansion properties ----------------------------------------------------------

_axis_values = {
    "loss": st.lists(
        st.floats(0.0, 0.9).map(lambda v: round(v, 3)), min_size=1, max_size=3, unique=True
    ),
    "adversary": st.lists(
        st.floats(0.0, 0.9).map(lambda v: round(v, 3)), min_size=1, max_size=3, unique=True
    ),
    "jitter": st.lists(
        st.floats(0.0, 2.0).map(lambda v: round(v, 3)), min_size=1, max_size=2, unique=True
    ),
    "d": st.lists(st.integers(1, 4), min_size=1, max_size=2, unique=True),
    "path_length": st.lists(st.integers(1, 8), min_size=1, max_size=2, unique=True),
}


@st.composite
def matrix_specs(draw):
    axes = {}
    for axis in draw(
        st.sets(st.sampled_from(sorted(_axis_values)), min_size=1, max_size=3)
    ):
        axes[axis] = draw(_axis_values[axis])
    if "d" in axes:
        axes["d_prime"] = [max(axes["d"]) + draw(st.integers(0, 3))]
    return {"name": draw(st.sampled_from(["alpha", "b2", "grid-x"])), "axes": axes}


@given(spec=matrix_specs())
@settings(max_examples=60, deadline=None)
def test_every_cell_unique_name_and_seed(spec):
    cells = expand_matrix(parse_matrix(spec))
    names = [cell.name for cell in cells]
    seeds = [cell.seed for cell in cells]
    assert len(cells) == parse_matrix(spec).cell_count()
    assert len(set(names)) == len(names)
    assert len(set(seeds)) == len(seeds)
    assert all(0 <= seed < 2**31 - 1 for seed in seeds)


@given(spec=matrix_specs())
@settings(max_examples=40, deadline=None)
def test_expansion_deterministic_and_order_stable(spec):
    reordered = {
        "name": spec["name"],
        "axes": dict(reversed(list(spec["axes"].items()))),
    }
    first = expand_matrix(parse_matrix(spec))
    second = expand_matrix(parse_matrix(reordered))
    assert [cell.name for cell in first] == [cell.name for cell in second]
    assert [cell.axes for cell in first] == [cell.axes for cell in second]
    assert [cell.seed for cell in first] == [cell.seed for cell in second]


def test_cell_name_strips_underscores_and_sorts():
    name = cell_name("m", {"path_length": 5, "loss": 0.25})
    assert name == "scn-m-loss0.25-pathlength5"
    assert cell_seed("m", {"loss": 0.25}) != cell_seed("m", {"loss": 0.26})


# -- registration ------------------------------------------------------------------


def _unregister(prefix: str):
    from repro.experiments import scenarios

    for key in [k for k in REGISTRY if k.startswith(prefix)]:
        del REGISTRY[key]
    scenarios._REGISTERED_MATRICES.pop(prefix.split("-")[1], None)


def test_register_matrix_idempotent_but_conflicting_spec_rejected():
    matrix = parse_matrix({"name": "regtest", "axes": {"loss": [0.0, 0.1]}})
    try:
        first = register_matrix(matrix)
        again = register_matrix(matrix)
        assert [e.name for e in first] == [e.name for e in again]
        conflicting = parse_matrix({"name": "regtest", "axes": {"loss": [0.0, 0.2]}})
        with pytest.raises(ScenarioSpecError, match="different spec"):
            register_matrix(conflicting)
    finally:
        _unregister("scn-regtest-")


def test_register_matrix_file_exports_env(tmp_path, monkeypatch):
    monkeypatch.delenv(MATRIX_ENV_VAR, raising=False)
    spec_path = tmp_path / "envtest.json"
    spec_path.write_text(
        json.dumps({"name": "envtest", "axes": {"loss": [0.0]}}), encoding="utf-8"
    )
    try:
        register_matrix_file(spec_path)
        entries = os.environ[MATRIX_ENV_VAR].split(os.pathsep)
        assert str(spec_path.resolve()) in entries
        # A fresh registry load (what pool/dist workers do) re-registers the
        # same cells from the environment alone.
        _unregister("scn-envtest-")
        assert not any(k.startswith("scn-envtest-") for k in REGISTRY)
        load_env_matrices()
        assert any(k.startswith("scn-envtest-") for k in REGISTRY)
    finally:
        _unregister("scn-envtest-")


# -- CLI contract ------------------------------------------------------------------


def test_cli_bad_spec_is_one_line_exit_2(tmp_path, capsys):
    spec_path = tmp_path / "bad.json"
    spec_path.write_text(json.dumps({"axes": {}}), encoding="utf-8")
    code = experiments_main(["run", "--matrix", str(spec_path)])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error: ")
    assert captured.err.count("\n") == 1


def test_cli_run_without_names_or_matrix_fails(capsys):
    code = experiments_main(["run"])
    assert code == 2
    assert "no experiment names" in capsys.readouterr().err


# -- end-to-end --------------------------------------------------------------------

TINY_SPEC = {
    "name": "tiny",
    "axes": {"loss": [0.3]},
    "schemes": ["slicing", "onion"],
    "base": {"messages": 8, "anonymity_trials": 10, "num_nodes": 60},
}


def test_cell_runs_byte_identical_across_worker_counts(tmp_path, monkeypatch):
    monkeypatch.delenv(MATRIX_ENV_VAR, raising=False)
    spec_path = tmp_path / "tiny.json"
    spec_path.write_text(json.dumps(TINY_SPEC), encoding="utf-8")
    try:
        matrix = register_matrix_file(spec_path)
        (cell,) = expand_matrix(matrix)
        from repro.experiments import run_experiment

        one = run_experiment(cell.name, out_dir=tmp_path / "w1", workers=1)
        two = run_experiment(cell.name, out_dir=tmp_path / "w2", workers=2)
        assert one.artifact.read_bytes() == two.artifact.read_bytes()
        rows = one.rows
        assert [row["scheme"] for row in rows] == ["slicing", "onion"]
        for row in rows:
            assert row["throughput_mbps"] > 0
            assert row["setup_seconds"] > 0
            assert 0.0 <= row["success_probability"] <= 1.0
    finally:
        _unregister("scn-tiny-")


def test_scenario_profile_axes_change_the_network():
    base = {
        "profile": "lan",
        "bandwidth_mbps": 2.0,
        "jitter": 0.5,
        "asymmetry": 4.0,
        "cpu_heterogeneity": 1.0,
    }
    profile = build_scenario_profile(base)
    assert profile.resources.bandwidth_bps == 2.0e6
    rng = np.random.default_rng(7)
    network = profile.build_network(["src-0", "relay-1", "destination"], rng)
    assert network.resources("relay-1").bandwidth_bps == pytest.approx(0.5e6)
    assert network.resources("src-0").bandwidth_bps == pytest.approx(2.0e6)
    loads = {a: network.resources(a).load_factor for a in network.addresses()}
    assert len(set(loads.values())) > 1  # heterogeneity spread the load factors
    # Jitter produced an explicit (asymmetric-free) pairwise latency.
    assert network.latency("src-0", "relay-1") != profile.latency_seconds


# -- profile-axis properties (hypothesis over the shared strategies) ----------------

_PROFILE_ADDRESSES = ["src-0", "src-1", "relay-0", "relay-1", "sphinx-source", "destination"]


@given(params=scenario_axis_params())
@settings(max_examples=60, deadline=None)
def test_axis_assignments_always_build_valid_profiles(params):
    """Any in-range axis assignment yields a structurally valid testbed."""
    from repro.overlay.profiles import get_profile

    base = get_profile(params["profile"])
    profile = build_scenario_profile(params)
    assert profile.name == base.name
    assert profile.latency_seconds == base.latency_seconds
    # Jitter only ever adds on top of the base profile's latency spread.
    assert profile.jitter == pytest.approx(base.latency_sigma + params["jitter"])
    if params["bandwidth_mbps"] > 0.0:
        assert profile.resources.bandwidth_bps == pytest.approx(
            params["bandwidth_mbps"] * 1e6
        )
    else:
        assert profile.resources.bandwidth_bps == base.resources.bandwidth_bps
    network = profile.build_network(_PROFILE_ADDRESSES, np.random.default_rng(11))
    for address in _PROFILE_ADDRESSES:
        resources = network.resources(address)
        assert resources.bandwidth_bps > 0
        # Heterogeneity inflates load factors; it never drops below the base.
        assert resources.load_factor >= profile.resources.load_factor
    # Only relay-class addresses pay the asymmetric access link.
    expected_relay = profile.resources.bandwidth_bps / max(params["asymmetry"], 1.0)
    assert network.resources("relay-0").bandwidth_bps == pytest.approx(expected_relay)
    for endpoint in ("src-0", "sphinx-source", "destination"):
        assert network.resources(endpoint).bandwidth_bps == pytest.approx(
            profile.resources.bandwidth_bps
        )
    for i, a in enumerate(_PROFILE_ADDRESSES):
        for b in _PROFILE_ADDRESSES[i + 1 :]:
            assert network.latency(a, b) > 0.0


@given(
    seed=st.integers(0, 2**16),
    addresses=st.lists(
        st.sampled_from(_PROFILE_ADDRESSES), min_size=2, max_size=6, unique=True
    ),
)
@settings(max_examples=40, deadline=None)
def test_zero_axis_cell_matches_the_base_profile_bit_for_bit(seed, addresses):
    """All-neutral axes reproduce the base LAN testbed exactly."""
    from repro.overlay.profiles import get_profile

    base = get_profile("lan")
    profile = build_scenario_profile(
        {
            "profile": "lan",
            "jitter": 0.0,
            "bandwidth_mbps": 0.0,
            "asymmetry": 1.0,
            "cpu_heterogeneity": 0.0,
        }
    )
    assert profile.resources == base.resources
    scenario_net = profile.build_network(addresses, np.random.default_rng(seed))
    base_net = base.build_network(addresses, np.random.default_rng(seed))
    for address in addresses:
        assert scenario_net.resources(address) == base_net.resources(address)
    for a in addresses:
        for b in addresses:
            if a != b:
                assert scenario_net.latency(a, b) == base_net.latency(a, b)
