"""End-to-end integration tests over the in-memory overlay."""

import numpy as np
import pytest

from repro.core.coder import SliceCoder
from repro.core.errors import SimulationError
from repro.core.packet import PacketKind
from repro.core.source import Source
from repro.overlay.local import LocalOverlay


def build_overlay(num_relays=40):
    overlay = LocalOverlay()
    relays = [f"10.1.0.{i}" for i in range(1, num_relays + 1)]
    overlay.add_nodes(relays + ["bob"])
    return overlay, relays


def make_source(d=2, d_prime=None, path_length=3, seed=1):
    d_prime = d if d_prime is None else d_prime
    return Source(
        "alice-home",
        [f"alice-extra-{i}" for i in range(d_prime - 1)],
        d=d,
        d_prime=d_prime,
        path_length=path_length,
        rng=np.random.default_rng(seed),
    )


def test_end_to_end_delivery_basic():
    overlay, relays = build_overlay()
    source = make_source()
    flow, delivered = overlay.run_flow(
        source, relays, "bob", [b"Let's meet at 5pm", b"bring the docs"]
    )
    assert delivered == {0: b"Let's meet at 5pm", 1: b"bring the docs"}


@pytest.mark.parametrize("d,path_length", [(2, 2), (3, 3), (2, 5), (4, 3)])
def test_end_to_end_various_parameters(d, path_length):
    overlay, relays = build_overlay(60)
    source = make_source(d=d, path_length=path_length, seed=d * 10 + path_length)
    message = bytes(f"parameters d={d} L={path_length}", "ascii")
    _flow, delivered = overlay.run_flow(source, relays, "bob", [message])
    assert delivered[0] == message


def test_end_to_end_with_redundancy():
    overlay, relays = build_overlay()
    source = make_source(d=2, d_prime=4, path_length=3, seed=7)
    _flow, delivered = overlay.run_flow(source, relays, "bob", [b"redundant"])
    assert delivered[0] == b"redundant"


def test_large_message_delivery():
    overlay, relays = build_overlay()
    source = make_source(d=3, path_length=3, seed=8)
    payload = bytes(np.random.default_rng(0).integers(0, 256, 20_000, dtype=np.uint8))
    _flow, delivered = overlay.run_flow(source, relays, "bob", [payload])
    assert delivered[0] == payload


def test_only_destination_decodes_the_message():
    overlay, relays = build_overlay()
    source = make_source(seed=9)
    flow, delivered = overlay.run_flow(source, relays, "bob", [b"for bob only"])
    assert delivered[0] == b"for bob only"
    for relay_address in flow.graph.relays:
        if relay_address == "bob":
            continue
        relay = overlay.node(relay_address)
        for flow_id in relay.flows:
            assert relay.delivered_messages(flow_id) == {}


def test_relays_learn_only_parents_and_children():
    overlay, relays = build_overlay()
    source = make_source(path_length=4, seed=10)
    flow, _ = overlay.run_flow(source, relays, "bob", [b"topology secrecy"])
    graph = flow.graph
    for relay_address in graph.relays:
        relay = overlay.node(relay_address)
        flow_id = flow.plan.flow_ids[relay_address]
        info = relay.flows[flow_id].info
        assert info is not None
        # The decoded routing info names only the node's own children.
        assert set(info.next_hop_addresses) == set(graph.children(relay_address))
        known = set(info.next_hop_addresses)
        all_others = set(graph.relays) - {relay_address}
        hidden = all_others - known - set(graph.parents(relay_address))
        # Addresses of non-adjacent relays never appear in what it decoded.
        assert hidden.isdisjoint(known)


def test_eavesdropper_with_partial_slices_cannot_decode():
    overlay, relays = build_overlay()
    source = make_source(d=3, path_length=3, seed=11)
    flow, delivered = overlay.run_flow(source, relays, "bob", [b"confidential"])
    assert delivered[0] == b"confidential"
    # An attacker observing a single first-stage relay sees at most one data
    # slice per message: strictly fewer than d, so decoding must fail.
    victim = flow.graph.stages[1][0]
    observed = overlay.observed_by({victim})
    data_blocks = [
        record.packet.slices[0]
        for record in observed
        if record.packet.kind == PacketKind.DATA and record.receiver == victim
    ]
    coder = SliceCoder(flow.d)
    assert not coder.can_decode(data_blocks[: flow.d - 1])


def test_failure_before_setup_kills_flow_without_redundancy():
    overlay, relays = build_overlay()
    source = make_source(d=2, path_length=3, seed=12)
    flow = source.establish_flow(relays, "bob")
    victim = [n for n in flow.graph.stages[1] if n != "bob"][0]
    overlay.fail_node(victim)
    overlay.inject(flow.setup_packets)
    overlay.inject(source.make_data_packets(flow, b"will not arrive"))
    overlay.flush_flow(flow)
    delivered = overlay.node("bob").delivered_messages(flow.plan.flow_ids["bob"])
    assert delivered == {}


def test_failure_tolerated_with_redundancy():
    overlay, relays = build_overlay(60)
    source = make_source(d=2, d_prime=3, path_length=4, seed=13)
    flow = source.establish_flow(relays, "bob")
    overlay.inject(flow.setup_packets)
    victim = [n for n in flow.graph.stages[2] if n != "bob"][0]
    overlay.fail_node(victim)
    overlay.inject(source.make_data_packets(flow, b"survives"))
    overlay.flush_flow(flow)
    delivered = overlay.node("bob").delivered_messages(flow.plan.flow_ids["bob"])
    assert delivered == {0: b"survives"}


def test_node_recovery_restores_delivery():
    overlay, relays = build_overlay()
    source = make_source(d=2, path_length=3, seed=14)
    flow = source.establish_flow(relays, "bob")
    overlay.inject(flow.setup_packets)
    victim = [n for n in flow.graph.stages[1] if n != "bob"][0]
    overlay.fail_node(victim)
    overlay.inject(source.make_data_packets(flow, b"lost"))
    overlay.recover_node(victim)
    overlay.inject(source.make_data_packets(flow, b"found"))
    overlay.flush_flow(flow)
    delivered = overlay.node("bob").delivered_messages(flow.plan.flow_ids["bob"])
    assert delivered.get(1) == b"found"


def test_unknown_node_raises():
    overlay = LocalOverlay()
    with pytest.raises(SimulationError):
        overlay.node("missing")


def test_delivery_log_records_drops():
    overlay, relays = build_overlay()
    source = make_source(seed=15)
    flow = source.establish_flow(relays, "bob")
    victim = flow.graph.stages[1][0]
    overlay.fail_node(victim)
    overlay.inject(flow.setup_packets)
    dropped = [r for r in overlay.log if not r.delivered]
    assert dropped and all(r.receiver == victim for r in dropped)
