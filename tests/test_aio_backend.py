"""The asyncio socket backend: backend parity and lifecycle.

Every protocol runtime (slicing, onion, onion-erasure) must deliver the same
plaintexts and produce the same relay/network counters on the ``aio``
backend as on the discrete-event simulator under a shared seed — timing
fields are clock-dependent and deliberately excluded.  These are the
in-process versions of what the CI ``aio-parity`` job asserts across whole
figure artifacts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import PacketFormatError, SimulationError
from repro.experiments.runner import run_experiment
from repro.experiments.setup_latency import measure_setup
from repro.experiments.throughput import aggregate_throughput_vs_flows, measure_throughput
from repro.overlay.aio import AioOverlayNetwork
from repro.overlay.profiles import LAN_PROFILE
from repro.overlay.runtime import build_substrate


def _lan_network(addresses, seed=0):
    return LAN_PROFILE.build_network(addresses, np.random.default_rng(seed))


# -- zero-copy framing --------------------------------------------------------------


@settings(deadline=None, max_examples=80)
@given(
    batch_id=st.integers(0, 2**64 - 1),
    frames=st.lists(st.binary(max_size=256), max_size=12),
)
def test_pack_batch_matches_encode_frame_reference(batch_id, frames):
    """The writelines chunk sequence joins to exactly the per-frame encoding."""
    from repro.overlay.aio import BATCH_HEADER, encode_frame, pack_batch

    buffer = bytearray()
    chunks = pack_batch(batch_id, frames, buffer)
    reference = encode_frame(BATCH_HEADER.pack(batch_id, len(frames))) + b"".join(
        encode_frame(frame) for frame in frames
    )
    assert b"".join(chunks) == reference
    # Payload chunks are the caller's bytes objects themselves — zero-copy.
    assert [chunk for chunk in chunks if isinstance(chunk, bytes)] == frames


def test_pack_batch_reuses_and_grows_the_buffer():
    from repro.overlay.aio import pack_batch

    buffer = bytearray()
    first = pack_batch(1, [b"a", b"bb"], buffer)
    grown = len(buffer)
    assert grown > 0
    joined_small = b"".join(pack_batch(2, [b"x"], buffer))
    assert len(buffer) == grown  # a smaller batch reuses the allocation
    del first
    pack_batch(3, [bytes(2) for _ in range(10)], buffer)
    assert len(buffer) > grown  # a larger batch grows it in place
    # Stale tail bytes from earlier batches never leak into the chunks.
    assert joined_small.endswith(b"x")


def test_pack_batch_rejects_oversized_frames_before_writing():
    from repro.overlay.aio import MAX_FRAME_BYTES, pack_batch

    with pytest.raises(PacketFormatError):
        pack_batch(1, [b"ok", bytes(MAX_FRAME_BYTES + 1)], bytearray())


# -- parity -------------------------------------------------------------------------


@pytest.mark.parametrize(
    ("scheme", "kwargs"),
    [
        ("slicing", {"d": 2}),
        ("onion", {}),
        ("onion-erasure", {"d": 2, "d_prime": 3}),
    ],
)
def test_throughput_parity_with_simulator(scheme, kwargs):
    results = {
        backend: measure_throughput(
            scheme,
            LAN_PROFILE,
            path_length=2,
            num_messages=15,
            seed=42,
            backend=backend,
            **kwargs,
        )
        for backend in ("sim", "aio")
    }
    assert results["sim"].messages_delivered == 15
    assert results["sim"].parity_fields() == results["aio"].parity_fields()
    # The digest covers actual plaintext content, so this is end-to-end
    # delivery equivalence, not just equal counts.
    assert results["sim"].delivered_digest == results["aio"].delivered_digest != ""


@pytest.mark.parametrize(
    ("scheme", "d"), [("slicing", 2), ("slicing", 3), ("onion", 1)]
)
def test_setup_parity_with_simulator(scheme, d):
    sim = measure_setup(scheme, LAN_PROFILE, path_length=3, d=d, seed=17)
    aio = measure_setup(scheme, LAN_PROFILE, path_length=3, d=d, seed=17, backend="aio")
    assert sim.setup_complete and aio.setup_complete
    assert sim.parity_fields() == aio.parity_fields()
    assert aio.setup_seconds > 0


def test_aggregate_flows_parity_with_simulator():
    rows = {
        backend: aggregate_throughput_vs_flows(
            LAN_PROFILE,
            flow_counts=[2],
            overlay_size=24,
            path_length=3,
            d=2,
            num_messages=8,
            seed=9,
            backend=backend,
        )
        for backend in ("sim", "aio")
    }
    assert rows["sim"][0]["messages_delivered"] == 16
    assert rows["sim"][0]["parity"] == rows["aio"][0]["parity"]


def test_runner_parity_artifacts_are_byte_identical(tmp_path):
    """fig14 through the registry on both backends: same parity artifact."""
    paths = {}
    for backend in ("sim", "aio"):
        out = tmp_path / backend
        run_experiment("fig14", scale=0.02, out_dir=out, backend=backend)
        paths[backend] = out / "fig14.parity.json"
        assert paths[backend].exists()
    assert paths["sim"].read_bytes() == paths["aio"].read_bytes()
    # The main artifacts differ (wall-clock timing fields), which is exactly
    # why the parity file exists.
    assert (tmp_path / "sim" / "fig14.json").exists()
    assert (tmp_path / "aio" / "fig14.json").exists()


def test_runner_rejects_backend_for_sim_only_experiments(tmp_path):
    with pytest.raises(ValueError, match="does not support backend"):
        run_experiment("fig16", out_dir=tmp_path, backend="aio")


# -- lifecycle ----------------------------------------------------------------------


def test_build_substrate_selects_backends():
    network = _lan_network(["a", "b"])
    sim = build_substrate("sim", network, connection_bps=30e6)
    aio = build_substrate("aio", network, connection_bps=30e6)
    try:
        assert type(sim).__name__ == "SimulatedOverlayNetwork"
        assert isinstance(aio, AioOverlayNetwork)
        with pytest.raises(KeyError, match="unknown overlay backend"):
            build_substrate("carrier-pigeon", network, connection_bps=30e6)
    finally:
        aio.close()
        sim.close()  # no-op on the simulator backend


def test_aio_rejects_size_only_transmit_surface():
    substrate = AioOverlayNetwork(_lan_network(["a", "b"]), connection_bps=30e6)
    try:
        with pytest.raises(SimulationError, match="payload-carrying"):
            substrate.transmit("a", "b", 100, lambda: None)
        with pytest.raises(SimulationError, match="transmit_packets"):
            substrate.transmit_batch("a", "b", [100], lambda arrivals: None)
    finally:
        substrate.close()


def test_aio_blob_round_trip_and_teardown():
    substrate = AioOverlayNetwork(_lan_network(["a", "b"]), connection_bps=30e6)
    delivered = []
    substrate.transmit_blob("a", "b", b"setup-onion", delivered.append)
    substrate.sim.run()
    assert delivered == [b"setup-onion"]
    assert substrate.stats.packets_sent == 1
    substrate.close()
    substrate.close()  # idempotent
    with pytest.raises(SimulationError, match="closed"):
        substrate.transmit_blob("a", "b", b"late", delivered.append)


def test_aio_drops_to_failed_receiver():
    substrate = AioOverlayNetwork(_lan_network(["a", "b"]), connection_bps=30e6)
    try:
        delivered = []
        substrate.fail_node("b")
        substrate.transmit_blobs(
            "a", "b", [b"one", b"two"], lambda blobs, arrivals: delivered.append(blobs)
        )
        substrate.sim.run()
        assert delivered == []
        assert substrate.stats.packets_dropped == 2
    finally:
        substrate.close()


def test_aio_pace_shapes_wall_clock_delivery():
    """With pace > 0, delivery waits ~pace x the virtual link span."""
    import time

    from repro.overlay.network import NodeResources, uniform_network

    # 50 ms of virtual one-way latency at pace=1.0 must show up as >= ~50 ms
    # of wall time — well clear of localhost socket-setup noise.
    network = uniform_network(["a", "b"], 0.05, NodeResources())
    slow = AioOverlayNetwork(network, connection_bps=30e6, pace=1.0)
    try:
        delivered = []
        slow.transmit_blob("a", "b", bytes(1500), delivered.append)
        start = time.perf_counter()
        virtual = slow.sim.run()
        slow_wall = time.perf_counter() - start
        assert delivered
        assert virtual >= 0.05
        assert slow_wall >= 0.04
    finally:
        slow.close()
