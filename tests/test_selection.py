"""Tests for the synthetic AS database and AS-diverse relay selection (§9.1)."""

import numpy as np
import pytest

from repro.core.errors import SelectionError
from repro.overlay.address import (
    ASDatabase,
    assign_overlay_addresses,
    generate_as_database,
)
from repro.overlay.selection import (
    adversary_capture_probability,
    as_diverse_selection,
    uniform_selection,
)


@pytest.fixture(scope="module")
def as_setup():
    rng = np.random.default_rng(0)
    database = generate_as_database(num_ases=25, rng=rng)
    addresses = assign_overlay_addresses(database, 200, rng)
    return database, addresses


def test_database_covers_assigned_addresses(as_setup):
    database, addresses = as_setup
    for address in addresses[:50]:
        asn = database.asn_of(address)
        assert 64500 <= asn < 64500 + 25
        assert database.country_of(address) != ""


def test_prefix_allocation_is_skewed(as_setup):
    database, _ = as_setup
    counts: dict[int, int] = {}
    for prefix in database.prefixes:
        counts[prefix.asn] = counts.get(prefix.asn, 0) + 1
    largest = max(counts.values())
    smallest = min(counts.values())
    assert largest >= 4 * smallest  # Zipf-like concentration


def test_unknown_address_raises(as_setup):
    database, _ = as_setup
    with pytest.raises(SelectionError):
        database.asn_of("203.0.113.9")


def test_uniform_selection_size_and_errors(as_setup):
    _, addresses = as_setup
    rng = np.random.default_rng(1)
    chosen = uniform_selection(addresses, 24, rng)
    assert len(chosen) == 24 and len(set(chosen)) == 24
    with pytest.raises(SelectionError):
        uniform_selection(addresses[:5], 10, rng)


def test_as_diverse_selection_spreads_across_ases(as_setup):
    database, addresses = as_setup
    rng = np.random.default_rng(2)
    report = as_diverse_selection(addresses, 20, database, rng)
    assert len(report.relays) == 20
    assert report.distinct_ases >= 15
    assert report.distinct_countries >= 5


def test_as_diverse_beats_uniform_against_concentrated_adversary():
    rng = np.random.default_rng(3)
    database = generate_as_database(num_ases=20, rng=rng)
    # The adversary controls the single largest AS and fills the overlay with
    # nodes from its own space (§9.1's attack).
    addresses = assign_overlay_addresses(database, 300, rng, concentrated_fraction=0.5)
    counts: dict[int, int] = {}
    for prefix in database.prefixes:
        counts[prefix.asn] = counts.get(prefix.asn, 0) + 1
    adversary_asn = max(counts, key=counts.get)

    uniform_captures = []
    diverse_captures = []
    for seed in range(10):
        trial_rng = np.random.default_rng(100 + seed)
        uniform_relays = uniform_selection(addresses, 24, trial_rng)
        diverse_relays = as_diverse_selection(addresses, 24, database, trial_rng).relays
        uniform_captures.append(
            adversary_capture_probability(uniform_relays, {adversary_asn}, database)
        )
        diverse_captures.append(
            adversary_capture_probability(diverse_relays, {adversary_asn}, database)
        )
    assert np.mean(diverse_captures) < np.mean(uniform_captures)


def test_capture_probability_edge_cases(as_setup):
    database, addresses = as_setup
    assert adversary_capture_probability([], {64500}, database) == 0.0
    assert adversary_capture_probability(addresses[:3], set(), database) == 0.0


def test_generate_database_validation():
    with pytest.raises(SelectionError):
        generate_as_database(0, np.random.default_rng(0))
    with pytest.raises(SelectionError):
        assign_overlay_addresses(ASDatabase(), 5, np.random.default_rng(0))
