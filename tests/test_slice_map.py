"""Flow-plan compiler tests: slice-maps and data-maps must be consistent."""

import numpy as np

from repro.core.graph import build_forwarding_graph
from repro.core.slice_map import compile_flow_plan


def make_plan(path_length=4, d=2, d_prime=None, seed=1):
    d_prime = d if d_prime is None else d_prime
    rng = np.random.default_rng(seed)
    sources = [f"src-{i}" for i in range(d_prime)]
    relays = [f"relay-{i}" for i in range(path_length * d_prime * 3)]
    graph = build_forwarding_graph(
        sources, relays, "destination", path_length, d, d_prime, rng
    )
    return compile_flow_plan(graph, rng)


def test_plan_covers_every_relay():
    plan = make_plan()
    assert set(plan.node_infos) == set(plan.graph.relays)
    assert set(plan.flow_ids) == set(plan.graph.relays)
    assert len(set(plan.flow_ids.values())) == len(plan.flow_ids)


def test_receiver_flag_only_on_destination():
    plan = make_plan(seed=3)
    receivers = [addr for addr, info in plan.node_infos.items() if info.is_receiver]
    assert receivers == [plan.destination]


def test_next_hops_match_graph_children():
    plan = make_plan(seed=4)
    for relay, info in plan.node_infos.items():
        assert info.next_hop_addresses == plan.graph.children(relay)
        assert info.lane == plan.graph.position_of(relay)
        assert info.num_parents == plan.graph.d_prime
        expected_flow_ids = [
            plan.flow_ids[child] for child in plan.graph.children(relay)
        ]
        assert info.next_hop_flow_ids == expected_flow_ids


def test_slice_map_slot_zero_is_childs_own_slice():
    plan = make_plan(path_length=3, d=3, seed=5)
    graph = plan.graph
    for relay, info in plan.node_infos.items():
        stage = graph.stage_of(relay)
        for child_index, child in enumerate(graph.children(relay)):
            entries = info.slice_map.for_child(child_index)
            assert len(entries) == plan.slots_per_packet
            first = entries[0]
            assert not first.is_random
            # The referenced incoming slot must hold the child's own slice.
            parent = graph.parents(relay)[first.parent_index]
            incoming = plan.edge_slices[(parent, relay)]
            owner, _k = incoming[first.slot_index]
            assert owner == child


def test_slice_map_entries_reference_valid_incoming_slots():
    plan = make_plan(path_length=4, d=2, d_prime=3, seed=6)
    graph = plan.graph
    for relay, info in plan.node_infos.items():
        parents = graph.parents(relay)
        for child_index, child in enumerate(graph.children(relay)):
            outgoing = plan.edge_slices[(relay, child)]
            for slot, entry in enumerate(info.slice_map.for_child(child_index)):
                if entry.is_random:
                    assert slot >= len(outgoing)
                    continue
                parent = parents[entry.parent_index]
                incoming = plan.edge_slices[(parent, relay)]
                assert incoming[entry.slot_index] == outgoing[slot]


def test_data_map_gives_each_child_all_distinct_slices():
    plan = make_plan(path_length=5, d=3, seed=7)
    graph = plan.graph
    d_prime = graph.d_prime
    # Simulate the data-slice invariant: source-stage node p injects slice p.
    holdings = {
        relay: {lane: lane for lane in range(d_prime)} for relay in graph.stages[1]
    }
    for stage_index in range(1, graph.path_length):
        next_holdings: dict[str, dict[int, int]] = {}
        for relay in graph.stages[stage_index]:
            info = plan.node_infos[relay]
            for child_index, child in enumerate(graph.children(relay)):
                parent_lane = info.data_map.for_child(child_index)
                slice_id = holdings[relay][parent_lane]
                next_holdings.setdefault(child, {})[info.lane] = slice_id
        for child, received in next_holdings.items():
            assert len(received) == d_prime
            assert sorted(received.values()) == list(range(d_prime))
        holdings = next_holdings


def test_last_stage_nodes_have_no_children_maps():
    plan = make_plan(seed=8)
    for relay in plan.graph.stages[-1]:
        info = plan.node_infos[relay]
        assert info.next_hop_addresses == []
        assert info.slice_map.num_children == 0
        assert info.data_map.num_children == 0


def test_keys_are_unique_per_relay():
    plan = make_plan(seed=9)
    keys = [info.secret_key for info in plan.node_infos.values()]
    assert len(set(keys)) == len(keys)
