"""Packet-size distinguishability: the wiretap, the attacker model, the family.

The attacker math is pinned on hand-built observation records; the scheme
expectations pin the paper-level outcome (classic onion routing's shrinking
setup onions reveal hop positions, Sphinx and slicing do not); and the
runner tests push the registered family through the pool and the
distributed coordinator, byte-comparing artifacts.
"""

import threading

import pytest

from repro.experiments import run_distributed, run_experiment, run_worker
from repro.experiments.distinguishability import (
    DISTINGUISHABILITY_SCHEMES,
    RecordingOverlayNetwork,
    hop_positions,
    hop_size_unlinkability,
    observe_transfer,
    size_position_advantage,
)
from repro.overlay.network import uniform_network
from repro.overlay.profiles import LAN_PROFILE

SMALL = 0.1


# -- the wiretap --------------------------------------------------------------------


def test_recording_network_taps_every_transmission():
    network = uniform_network(["a", "b"], 0.001, LAN_PROFILE.resources)
    substrate = RecordingOverlayNetwork(network, connection_bps=1e9)
    try:
        substrate.transmit("a", "b", 100, lambda: None)
        substrate.transmit_batch("b", "a", [10, 20], lambda arrivals: None)
        substrate.sim.run()
    finally:
        substrate.close()
    assert substrate.records == [("a", "b", 100), ("b", "a", 10), ("b", "a", 20)]


def test_observe_transfer_splits_setup_and_data_phases():
    setup, data, sources = observe_transfer("sphinx", LAN_PROFILE, 3, seed=5)
    assert sources == ["sphinx-source"]
    assert setup and data
    # Sphinx is constant-size on the wire in both phases.
    assert len({size for _s, _r, size in setup}) == 1
    assert len({size for _s, _r, size in data}) == 1


# -- the attacker model -------------------------------------------------------------


def test_hop_positions_follow_observed_edges():
    records = [("s", "r1", 10), ("r1", "r2", 10), ("r2", "d", 10)]
    assert hop_positions(records, ["s"]) == {"s": 0, "r1": 1, "r2": 2, "d": 3}


def test_constant_sizes_give_zero_advantage():
    records = [("s", "r1", 64), ("r1", "r2", 64), ("r2", "d", 64)]
    assert size_position_advantage(records, ["s"]) == 0.0


def test_position_revealing_sizes_give_full_advantage():
    # One distinct size per hop: the MAP guesser places every packet.
    records = [("s", "r1", 96), ("r1", "r2", 64), ("r2", "d", 32)]
    assert size_position_advantage(records, ["s"]) == 1.0


def test_advantage_is_zero_without_observations():
    assert size_position_advantage([], ["s"]) == 0.0


# -- scheme expectations ------------------------------------------------------------


@pytest.mark.parametrize("scheme", DISTINGUISHABILITY_SCHEMES)
def test_scheme_unlinkability_matches_the_paper_story(scheme):
    row = hop_size_unlinkability(scheme, LAN_PROFILE, 3, seed=11)
    if scheme in ("sphinx", "slicing"):
        assert row["unlinkability"] == 1.0
    else:
        # Classic onion setup packets shrink one layer per hop: the observer
        # reads the hop position straight off the packet length.
        assert row["unlinkability"] == 0.0
        assert row["setup_advantage"] == 1.0
        assert row["setup_distinct_sizes"] >= 3


def test_sphinx_setup_packets_are_constant_size():
    row = hop_size_unlinkability("sphinx", LAN_PROFILE, 5, seed=13)
    assert row["setup_distinct_sizes"] == 1
    assert row["data_distinct_sizes"] == 1


# -- the registered family ----------------------------------------------------------


def test_family_runs_byte_identical_across_worker_counts(tmp_path):
    one = run_experiment("distinguishability", scale=SMALL, out_dir=tmp_path / "w1")
    two = run_experiment(
        "distinguishability", scale=SMALL, out_dir=tmp_path / "w2", workers=2
    )
    assert one.artifact.read_bytes() == two.artifact.read_bytes()
    assert {row["scheme"] for row in one.rows} == set(DISTINGUISHABILITY_SCHEMES)
    for row in one.rows:
        assert 0.0 <= row["unlinkability"] <= 1.0


def test_family_shards_over_the_coordinator(tmp_path):
    import socket

    single = run_experiment("distinguishability", scale=SMALL, out_dir=tmp_path / "s")
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    workers = [
        threading.Thread(
            target=run_worker,
            kwargs={"host": "127.0.0.1", "port": port, "label": f"t{rank}"},
            daemon=True,
        )
        for rank in range(2)
    ]
    for worker in workers:
        worker.start()
    result = run_distributed(
        "distinguishability",
        scale=SMALL,
        out_dir=tmp_path / "d",
        port=port,
        min_workers=2,
        timeout=120,
    )
    for worker in workers:
        worker.join(timeout=30)
    assert result.rows == single.rows
    assert (tmp_path / "d" / "distinguishability.json").read_bytes() == (
        tmp_path / "s" / "distinguishability.json"
    ).read_bytes()
