"""Property harness for the Sphinx-format onion construction (the tentpole).

The construction's contract, driven with hypothesis across every feasible
route shape:

* build → peel ``L`` hops → the destination recovers the exact plaintexts;
* every forwarded setup packet is exactly ``PACKET_SIZE`` bytes and every
  data cell exactly ``DATA_CELL_SIZE`` bytes, at *every* hop — the
  constant-size invariant that closes the classic onion baseline's
  length side channel;
* flipping any single byte of a setup packet fails the MAC check at the
  next relay (alpha, routing and mac regions are all covered);
* building from the same seed is bit-for-bit deterministic, and distinct
  seeds diverge;
* the batched cell path (``wrap_cells`` / ``strip_cells``) is bit-identical
  to the per-cell reference (``wrap_data`` / ``handle_data``).

Backend parity of delivered digests lives with the other runtime-parity
tests in ``tests/test_protocol_runtimes.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.sphinx import (
    DATA_CELL_SIZE,
    MAX_HOPS,
    PACKET_SIZE,
    SphinxCircuit,
    SphinxDirectory,
    SphinxPacket,
    SphinxRelay,
    SphinxSource,
    pack_cell,
    run_sphinx_circuit,
    unpack_cell,
)
from repro.core.errors import ProtocolError

from strategies import payload_blobs, routes


def build_directory(relays, seed):
    return SphinxDirectory.for_relays(relays, np.random.default_rng(seed))


def build_engines(directory):
    return {
        address: SphinxRelay(address, directory.node(address))
        for address in directory.addresses()
    }


@given(
    route=routes(max_hops=MAX_HOPS),
    messages=st.lists(payload_blobs(max_size=200), min_size=1, max_size=4),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_build_peel_round_trip_recovers_plaintexts(route, messages, seed):
    relays, destination, path_length = route
    directory = build_directory(relays, seed)
    source = SphinxSource(directory, np.random.default_rng(seed + 1))
    circuit, received = run_sphinx_circuit(
        directory, source, relays, destination, path_length, messages
    )
    assert received == messages
    assert circuit.length == path_length
    assert circuit.destination == destination
    assert len(set(circuit.hops)) == path_length  # node-disjoint route


@given(
    route=routes(max_hops=MAX_HOPS),
    message=payload_blobs(max_size=64),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_constant_size_at_every_hop(route, message, seed):
    relays, destination, path_length = route
    directory = build_directory(relays, seed)
    source = SphinxSource(directory, np.random.default_rng(seed + 1))
    engines = build_engines(directory)
    circuit, packet = source.build_circuit(relays, destination, path_length)
    handles = []
    for hop in circuit.hops:
        assert len(packet) == PACKET_SIZE
        handle, next_hop, packet = engines[hop].handle_setup(packet)
        handles.append(handle)
    assert len(packet) == PACKET_SIZE  # what the exit would forward onward
    cell = source.wrap_data(circuit, message)
    for hop, handle in zip(circuit.hops, handles):
        assert len(cell) == DATA_CELL_SIZE
        next_hop, cell = engines[hop].handle_data(handle, cell)
    assert len(cell) == DATA_CELL_SIZE
    assert next_hop == destination
    assert source.open_delivered(cell) == message


@given(
    route=routes(max_hops=MAX_HOPS),
    seed=st.integers(0, 2**31 - 1),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_any_single_byte_flip_fails_the_mac(route, seed, data):
    relays, destination, path_length = route
    directory = build_directory(relays, seed)
    source = SphinxSource(directory, np.random.default_rng(seed + 1))
    engines = build_engines(directory)
    circuit, packet = source.build_circuit(relays, destination, path_length)
    position = data.draw(st.integers(0, PACKET_SIZE - 1), label="position")
    flip = data.draw(st.integers(1, 255), label="flip")
    tampered = bytearray(packet)
    tampered[position] ^= flip
    with pytest.raises(ProtocolError, match="MAC check failed"):
        engines[circuit.hops[0]].handle_setup(bytes(tampered))


@given(route=routes(max_hops=MAX_HOPS), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_build_is_deterministic_from_seed(route, seed):
    relays, destination, path_length = route

    def build(build_seed):
        directory = build_directory(relays, seed)
        source = SphinxSource(directory, np.random.default_rng(build_seed))
        return source.build_circuit(relays, destination, path_length)

    first_circuit, first_packet = build(seed + 1)
    second_circuit, second_packet = build(seed + 1)
    assert first_packet == second_packet
    assert first_circuit.hops == second_circuit.hops
    assert first_circuit.session_keys == second_circuit.session_keys
    other_circuit, other_packet = build(seed + 2)
    assert other_packet != first_packet  # blinding chain diverges with the seed


@given(
    route=routes(max_hops=MAX_HOPS),
    messages=st.lists(payload_blobs(max_size=120), min_size=0, max_size=6),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_batched_cells_bit_identical_to_per_cell_reference(route, messages, seed):
    relays, destination, path_length = route
    directory = build_directory(relays, seed)
    source = SphinxSource(directory, np.random.default_rng(seed + 1))
    engines = build_engines(directory)
    circuit, packet = source.build_circuit(relays, destination, path_length)
    handles = []
    for hop in circuit.hops:
        handle, _next_hop, packet = engines[hop].handle_setup(packet)
        handles.append(handle)
    batched = source.wrap_cells(circuit, messages)
    stripped = [source.wrap_data(circuit, message) for message in messages]
    assert batched == stripped
    for hop, handle in zip(circuit.hops, handles):
        _next_hop, batched = engines[hop].strip_cells(handle, batched)
    for hop, handle in zip(circuit.hops, handles):
        stripped = [engines[hop].handle_data(handle, cell)[1] for cell in stripped]
    assert batched == stripped
    assert [unpack_cell(cell) for cell in batched] == messages


# -- packet and cell framing edge cases --------------------------------------------


def test_packet_from_bytes_rejects_wrong_sizes():
    with pytest.raises(ProtocolError):
        SphinxPacket.from_bytes(b"\x00" * (PACKET_SIZE - 1))
    with pytest.raises(ProtocolError):
        SphinxPacket.from_bytes(b"\x00" * (PACKET_SIZE + 1))


def test_cell_framing_round_trip_and_rejection():
    assert unpack_cell(pack_cell(b"")) == b""
    assert unpack_cell(pack_cell(b"payload")) == b"payload"
    assert len(pack_cell(b"x")) == DATA_CELL_SIZE
    with pytest.raises(ProtocolError):
        pack_cell(b"\x00" * DATA_CELL_SIZE)  # no room for the length prefix
    with pytest.raises(ProtocolError):
        unpack_cell(b"\x00" * (DATA_CELL_SIZE - 1))
    corrupt = bytearray(pack_cell(b"ok"))
    corrupt[0] = 0xFF  # length prefix far beyond the cell body
    with pytest.raises(ProtocolError):
        unpack_cell(bytes(corrupt))


def test_build_circuit_validates_route_shape():
    relays = [f"relay-{index}" for index in range(4)]
    directory = build_directory(relays, 3)
    source = SphinxSource(directory, np.random.default_rng(4))
    with pytest.raises(ProtocolError):
        source.build_circuit(relays, "destination", MAX_HOPS + 1)
    with pytest.raises(ProtocolError):
        source.build_circuit(relays[:2], "destination", 3)
    with pytest.raises(ProtocolError):
        # The destination does not count as a relay.
        source.build_circuit(["relay-0", "destination"], "destination", 2)


def test_directory_and_sessions_reject_unknowns():
    directory = build_directory(["relay-0"], 5)
    with pytest.raises(ProtocolError):
        directory.node("missing")
    relay = SphinxRelay("relay-0", directory.node("relay-0"))
    with pytest.raises(ProtocolError):
        relay.handle_data(99, b"\x00" * DATA_CELL_SIZE)


def test_oversized_hop_address_is_rejected_at_build_time():
    relays = ["relay-a", "relay-b", "relay-c"]
    directory = build_directory(relays, 6)
    source = SphinxSource(directory, np.random.default_rng(7))
    with pytest.raises(ProtocolError, match="exceeds"):
        # The destination is always packed into the exit slot.
        source.build_circuit(relays, "destination-" + "x" * 40, 3)


def test_circuit_length_property():
    circuit = SphinxCircuit(
        hops=["a", "b", "c"], session_keys=[b"k" * 16] * 3, destination="d"
    )
    assert circuit.length == 3
