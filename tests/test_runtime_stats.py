"""Coverage for bookkeeping surfaces: relay stats, substrate stats, progress."""

import numpy as np

from repro.core.source import Source
from repro.overlay.local import LocalOverlay
from repro.overlay.network import NodeResources, uniform_network
from repro.overlay.node import FlowProgress, SimulatedOverlayNetwork, SlicingRuntime
from repro.overlay.profiles import LAN_PROFILE


def test_relay_stats_track_traffic():
    overlay = LocalOverlay()
    relays = [f"n{i}" for i in range(30)]
    overlay.add_nodes(relays + ["dst"])
    source = Source("s0", ["s1"], d=2, path_length=3, rng=np.random.default_rng(0))
    flow, delivered = overlay.run_flow(source, relays, "dst", [b"x" * 600])
    assert delivered[0] == b"x" * 600
    total_received = sum(r.stats.packets_received for r in overlay.relays.values())
    total_sent = sum(r.stats.packets_sent for r in overlay.relays.values())
    assert total_received > 0 and total_sent > 0
    decoded = sum(r.stats.flows_decoded for r in overlay.relays.values())
    assert decoded == len(flow.graph.relays)
    destination = overlay.node("dst")
    assert destination.stats.messages_delivered == 1
    assert destination.stats.bytes_received > 600


def test_substrate_stats_and_progress_counters():
    network = uniform_network(["a", "b", "c"], 0.001, NodeResources())
    substrate = SimulatedOverlayNetwork(network, connection_bps=1e7)
    substrate.transmit("a", "b", 100, lambda: None)
    substrate.transmit("b", "c", 200, lambda: None)
    substrate.sim.run()
    assert substrate.stats.packets_sent == 2
    assert substrate.stats.bytes_sent == 300
    assert substrate.stats.packets_dropped == 0

    progress = FlowProgress()
    assert progress.setup_complete_time(["x"]) is None
    progress.relay_decode_times["x"] = 1.5
    progress.relay_decode_times["y"] = 2.5
    assert progress.setup_complete_time(["x", "y"]) == 2.5


def test_slicing_runtime_records_decode_times_in_stage_order():
    rng = np.random.default_rng(4)
    sources = ["s0", "s1"]
    relays = [f"r{i}" for i in range(20)]
    addresses = sources + relays + ["dst"]
    network = LAN_PROFILE.build_network(addresses, rng)
    substrate = SimulatedOverlayNetwork(network, connection_bps=30e6)
    runtime = SlicingRuntime(substrate, rng=np.random.default_rng(5))
    source = Source("s0", ["s1"], d=2, path_length=3, rng=rng)
    flow = source.establish_flow(relays, "dst")
    progress = runtime.start_flow(source, flow)
    substrate.sim.run()
    stage1 = max(progress.relay_decode_times[n] for n in flow.graph.stages[1])
    stage3 = max(progress.relay_decode_times[n] for n in flow.graph.stages[3])
    # Later stages cannot finish their setup before earlier ones.
    assert stage3 >= stage1
    assert substrate.stats.packets_sent >= len(flow.setup_packets)
