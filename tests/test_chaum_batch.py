"""The vectorised Chaum-mix Monte-Carlo engine: bit-identity with the scalar
reference and stream-compatibility with the historical per-trial sampler."""

import numpy as np
import pytest

from repro.anonymity.metrics import two_level_anonymity
from repro.baselines.chaum import (
    _chain_destination_anonymity,
    _chain_source_anonymity,
    simulate_chaum_anonymity,
    simulate_chaum_anonymity_batch,
    simulate_chaum_trials,
    sweep_chaum_anonymity,
)

POINTS = [
    # (num_nodes, path_length, fraction_malicious)
    (10_000, 8, 0.001),
    (10_000, 8, 0.1),
    (10_000, 8, 0.4),
    (10_000, 8, 0.9),
    (500, 3, 0.25),
    (10_000, 16, 0.05),
]


@pytest.mark.parametrize("num_nodes,path_length,fraction", POINTS)
def test_batched_engine_is_bit_identical_to_scalar(num_nodes, path_length, fraction):
    seed = int(fraction * 1000) + path_length
    scalar = simulate_chaum_trials(
        num_nodes, path_length, fraction, trials=400,
        rng=np.random.default_rng(seed), engine="scalar",
    )
    batched = simulate_chaum_trials(
        num_nodes, path_length, fraction, trials=400,
        rng=np.random.default_rng(seed), engine="batched",
    )
    assert np.array_equal(scalar.source_anonymity, batched.source_anonymity)
    assert np.array_equal(scalar.destination_anonymity, batched.destination_anonymity)


def test_engines_match_the_historical_per_trial_implementation():
    """The shared bulk sampler consumes the RNG stream exactly like the old
    per-trial ``rng.random(path_length)`` loop, so historical seeds (and the
    cached fig07 artifacts) keep their values."""
    num_nodes, path_length, fraction, trials, seed = 10_000, 8, 0.2, 250, 77
    clean = max(int(num_nodes * (1.0 - fraction)), 1)
    rng = np.random.default_rng(seed)
    src_total = dst_total = 0.0
    for _ in range(trials):
        malicious = rng.random(path_length) < fraction
        src_total += _chain_source_anonymity(malicious, num_nodes, clean, path_length)
        dst_total += _chain_destination_anonymity(
            malicious, num_nodes, clean, path_length
        )
    legacy_src = src_total / trials
    legacy_dst = dst_total / trials
    result = simulate_chaum_anonymity_batch(
        num_nodes, path_length, fraction, trials, rng=np.random.default_rng(seed)
    )
    assert result.source_anonymity == pytest.approx(legacy_src, abs=1e-12)
    assert result.destination_anonymity == pytest.approx(legacy_dst, abs=1e-12)


def test_rng_state_advances_identically_in_both_engines():
    # fig07 calls the slicing engine and the Chaum engine on one shared rng;
    # the two engines must leave that stream in the same state.
    rng_a = np.random.default_rng(5)
    rng_b = np.random.default_rng(5)
    simulate_chaum_trials(1000, 8, 0.3, trials=123, rng=rng_a, engine="scalar")
    simulate_chaum_trials(1000, 8, 0.3, trials=123, rng=rng_b, engine="batched")
    assert rng_a.bit_generator.state == rng_b.bit_generator.state


def test_edge_cases_match():
    for fraction in (0.0, 1.0):
        seed = 31
        scalar = simulate_chaum_trials(
            100, 4, fraction, trials=50, rng=np.random.default_rng(seed), engine="scalar"
        )
        batched = simulate_chaum_trials(
            100, 4, fraction, trials=50, rng=np.random.default_rng(seed), engine="batched"
        )
        assert np.array_equal(scalar.source_anonymity, batched.source_anonymity)
        assert np.array_equal(
            scalar.destination_anonymity, batched.destination_anonymity
        )
    # Fully malicious chains expose both endpoints.
    exposed = simulate_chaum_anonymity_batch(100, 4, 1.0, trials=10)
    assert exposed.source_anonymity == 0.0
    assert exposed.destination_anonymity == 0.0
    # A fully clean chain leaves anonymity at the uniform-entropy value.
    clean = simulate_chaum_anonymity_batch(100, 4, 0.0, trials=10)
    expected = two_level_anonymity(0, 0.0, 100, 1.0 / 100, 100)
    assert clean.source_anonymity == pytest.approx(expected)


def test_engine_validation():
    with pytest.raises(ValueError):
        simulate_chaum_trials(100, 4, 0.1, trials=0)
    with pytest.raises(ValueError):
        simulate_chaum_trials(100, 4, 0.1, trials=10, engine="quantum")


def test_sweep_uses_batched_engine_values():
    results = sweep_chaum_anonymity(1000, 8, [0.1, 0.5], trials=60, seed=11)
    for index, (fraction, result) in enumerate(results):
        reference = simulate_chaum_anonymity_batch(
            1000, 8, fraction, trials=60, rng=np.random.default_rng(11 + index)
        )
        assert result == reference
