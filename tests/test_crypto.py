"""Tests for the crypto substrates: keystream cipher, keys, PK cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from strategies import distinct_key_pairs, payload_blobs

from repro.core.errors import ProtocolError
from repro.crypto.keys import KeyMaterial, generate_flow_id, generate_key, generate_nonce
from repro.crypto.public_key import PublicKeyCostModel, SimulatedKeyPair
from repro.crypto.symmetric import NONCE_SIZE, StreamCipher, decrypt, encrypt


def test_stream_cipher_roundtrip():
    cipher = StreamCipher(b"k" * 16)
    nonce = b"\x01" * NONCE_SIZE
    plaintext = b"the quick brown fox" * 10
    ciphertext = cipher.encrypt(plaintext, nonce)
    assert ciphertext != plaintext
    assert cipher.decrypt(ciphertext, nonce) == plaintext


def test_stream_cipher_nonce_separates_keystreams():
    cipher = StreamCipher(b"key")
    plaintext = b"\x00" * 64
    a = cipher.encrypt(plaintext, b"\x00" * 8)
    b = cipher.encrypt(plaintext, b"\x01" + b"\x00" * 7)
    assert a != b


def test_stream_cipher_key_separates_keystreams():
    plaintext = b"\x00" * 64
    nonce = b"\x07" * 8
    assert encrypt(b"key-a", plaintext, nonce) != encrypt(b"key-b", plaintext, nonce)
    assert decrypt(b"key-a", encrypt(b"key-a", plaintext, nonce), nonce) == plaintext


def test_stream_cipher_rejects_bad_inputs():
    with pytest.raises(ProtocolError):
        StreamCipher(b"")
    with pytest.raises(ProtocolError):
        StreamCipher(b"key").encrypt(b"data", b"short")


def test_seal_open_roundtrip():
    cipher = StreamCipher(b"sealing key")
    blob = cipher.seal(b"hidden", b"\x09" * 8)
    assert cipher.open(blob) == b"hidden"
    with pytest.raises(ProtocolError):
        cipher.open(b"tiny")


def test_generate_key_and_flow_id_reproducible():
    a = generate_key(np.random.default_rng(1))
    b = generate_key(np.random.default_rng(1))
    assert a == b and len(a) == 16
    flow_a = generate_flow_id(np.random.default_rng(2))
    flow_b = generate_flow_id(np.random.default_rng(2))
    assert flow_a == flow_b and flow_a != 0
    assert len(generate_nonce(np.random.default_rng(3))) == 8


def test_key_material_nonce_derivation():
    material = KeyMaterial.generate(np.random.default_rng(4))
    assert material.nonce_for(1) != material.nonce_for(2)
    assert len(material.nonce_for(7)) == 8


def test_simulated_keypair_encrypt_decrypt():
    rng = np.random.default_rng(5)
    pair = SimulatedKeyPair.generate("relay-a", rng)
    envelope = pair.encrypt(b"onion layer")
    assert b"onion layer" not in envelope
    assert pair.decrypt(envelope) == b"onion layer"


def test_simulated_keypair_rejects_foreign_envelopes():
    rng = np.random.default_rng(6)
    alice = SimulatedKeyPair.generate("a", rng)
    bob = SimulatedKeyPair.generate("b", rng)
    with pytest.raises(ValueError):
        bob.decrypt(alice.encrypt(b"not for bob"))


def test_cost_model_defaults_ordering():
    model = PublicKeyCostModel()
    assert model.decrypt_seconds > model.encrypt_seconds > 0
    assert model.symmetric_seconds_per_byte > 0


# -- negative paths (hypothesis over the shared strategies) -------------------------


def test_empty_payload_roundtrips():
    cipher = StreamCipher(b"key")
    nonce = b"\x02" * NONCE_SIZE
    assert cipher.encrypt(b"", nonce) == b""
    assert cipher.open(cipher.seal(b"", nonce)) == b""


@given(plaintext=payload_blobs(min_size=1), keys=distinct_key_pairs())
@settings(max_examples=60, deadline=None)
def test_wrong_key_never_recovers_the_plaintext(plaintext, keys):
    key, wrong_key = keys
    nonce = b"\x05" * NONCE_SIZE
    ciphertext = encrypt(key, plaintext, nonce)
    assert decrypt(wrong_key, ciphertext, nonce) != plaintext
    assert decrypt(key, ciphertext, nonce) == plaintext


@given(plaintext=payload_blobs(min_size=2), cut=st.integers(1, 160))
@settings(max_examples=60, deadline=None)
def test_truncated_ciphertext_never_recovers_the_plaintext(plaintext, cut):
    cut = min(cut, len(plaintext) - 1)
    cipher = StreamCipher(b"truncation key")
    nonce = b"\x06" * NONCE_SIZE
    truncated = cipher.encrypt(plaintext, nonce)[:-cut]
    recovered = cipher.decrypt(truncated, nonce)
    assert recovered != plaintext
    assert recovered == plaintext[: len(plaintext) - cut]


@given(cut=st.integers(1, NONCE_SIZE))
@settings(max_examples=20, deadline=None)
def test_sealed_blob_truncated_into_the_nonce_is_rejected(cut):
    cipher = StreamCipher(b"sealing key")
    blob = cipher.seal(b"", b"\x08" * NONCE_SIZE)
    with pytest.raises(ProtocolError):
        cipher.open(blob[: NONCE_SIZE - cut])


def test_truncated_envelope_header_is_rejected():
    pair = SimulatedKeyPair.generate("relay-t", np.random.default_rng(9))
    envelope = pair.encrypt(b"layer")
    with pytest.raises(ValueError):
        pair.decrypt(envelope[:10])
