"""Serialization tests for per-node routing information and the maps."""

import pytest

from repro.core.errors import ProtocolError
from repro.core.node_info import (
    KEY_SIZE,
    DataMap,
    NodeInfo,
    SliceMap,
    SliceMapEntry,
)


def sample_slice_map() -> SliceMap:
    return SliceMap(
        entries=[
            [SliceMapEntry(0, 1), SliceMapEntry(1, 2), SliceMapEntry.random()],
            [SliceMapEntry(1, 1), SliceMapEntry.random(), SliceMapEntry(0, 3)],
        ]
    )


def sample_node_info(**overrides) -> NodeInfo:
    kwargs = dict(
        next_hop_addresses=["10.0.0.1", "relay.example.org"],
        next_hop_flow_ids=[0x1122334455667788, 42],
        is_receiver=True,
        secret_key=bytes(range(KEY_SIZE)),
        slice_map=sample_slice_map(),
        data_map=DataMap(slice_for_child=[1, 0]),
        lane=1,
        num_parents=2,
    )
    kwargs.update(overrides)
    return NodeInfo(**kwargs)


def test_slice_map_entry_random_flag():
    assert SliceMapEntry.random().is_random
    assert not SliceMapEntry(0, 0).is_random


def test_slice_map_pack_unpack_roundtrip():
    original = sample_slice_map()
    parsed, consumed = SliceMap.unpack(original.pack())
    assert consumed == len(original.pack())
    assert parsed.entries == original.entries


def test_slice_map_truncated_raises():
    packed = sample_slice_map().pack()
    with pytest.raises(ProtocolError):
        SliceMap.unpack(packed[:3])


def test_slice_map_for_child_out_of_range():
    with pytest.raises(ProtocolError):
        sample_slice_map().for_child(5)


def test_data_map_roundtrip_and_lookup():
    data_map = DataMap(slice_for_child=[2, 0, 1])
    parsed, consumed = DataMap.unpack(data_map.pack())
    assert parsed.slice_for_child == [2, 0, 1]
    assert consumed == 4
    assert parsed.for_child(1) == 0
    with pytest.raises(ProtocolError):
        parsed.for_child(3)


def test_node_info_roundtrip():
    info = sample_node_info()
    parsed = NodeInfo.unpack(info.pack())
    assert parsed.next_hop_addresses == info.next_hop_addresses
    assert parsed.next_hop_flow_ids == info.next_hop_flow_ids
    assert parsed.is_receiver is True
    assert parsed.secret_key == info.secret_key
    assert parsed.slice_map.entries == info.slice_map.entries
    assert parsed.data_map.slice_for_child == info.data_map.slice_for_child
    assert parsed.lane == 1
    assert parsed.num_parents == 2


def test_node_info_roundtrip_no_children():
    info = sample_node_info(
        next_hop_addresses=[],
        next_hop_flow_ids=[],
        is_receiver=False,
        slice_map=SliceMap(entries=[]),
        data_map=DataMap(slice_for_child=[]),
    )
    parsed = NodeInfo.unpack(info.pack())
    assert parsed.next_hop_addresses == []
    assert parsed.is_receiver is False


def test_node_info_roundtrip_with_trailing_padding():
    info = sample_node_info()
    parsed = NodeInfo.unpack(info.pack() + b"\x00" * 64)
    assert parsed.next_hop_addresses == info.next_hop_addresses


def test_node_info_rejects_mismatched_lists():
    with pytest.raises(ProtocolError):
        sample_node_info(next_hop_flow_ids=[1])


def test_node_info_rejects_bad_key_length():
    with pytest.raises(ProtocolError):
        sample_node_info(secret_key=b"short")


def test_node_info_unpack_garbage_raises():
    with pytest.raises(ProtocolError):
        NodeInfo.unpack(b"\xff" * 3)
