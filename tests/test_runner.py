"""Runner determinism, artifact caching and CLI coverage.

The load-bearing guarantee: the same (experiment, scale, seed) produces
byte-identical JSON artifacts no matter how many workers execute the trials.
"""

import json

import pytest

from repro.experiments import (
    experiment_names,
    get_experiment,
    run_experiment,
)
from repro.experiments.__main__ import main as experiments_main

SMALL = 0.03


def test_registry_contains_figures_and_ablations():
    names = experiment_names()
    for n in range(7, 18):
        assert f"fig{n:02d}" in names
    assert "microbench" in names
    assert {"ablation_transforms", "ablation_as_selection", "ablation_network_coding"} <= set(names)


def test_get_experiment_unknown_name():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("fig99")


def test_worker_count_does_not_change_rows_or_artifact_bytes(tmp_path):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    serial = run_experiment("fig09", scale=SMALL, workers=1, out_dir=serial_dir)
    parallel = run_experiment("fig09", scale=SMALL, workers=3, out_dir=parallel_dir)
    assert serial.rows == parallel.rows
    assert not serial.cached and not parallel.cached
    assert (serial_dir / "fig09.json").read_bytes() == (
        parallel_dir / "fig09.json"
    ).read_bytes()


def test_artifact_cache_hit_and_force(tmp_path):
    first = run_experiment("fig16", scale=SMALL, out_dir=tmp_path)
    assert not first.cached
    second = run_experiment("fig16", scale=SMALL, out_dir=tmp_path)
    assert second.cached
    assert second.rows == first.rows
    assert second.trial_count == first.trial_count
    forced = run_experiment("fig16", scale=SMALL, out_dir=tmp_path, force=True)
    assert not forced.cached
    # A different scale or seed must miss the cache.
    rescaled = run_experiment("fig16", scale=SMALL * 2, out_dir=tmp_path)
    assert not rescaled.cached
    reseeded = run_experiment("fig16", scale=SMALL * 2, seed=1, out_dir=tmp_path)
    assert not reseeded.cached


def test_cache_invalidated_when_trial_list_changes(tmp_path):
    run_experiment("fig16", scale=SMALL, out_dir=tmp_path)
    artifact = tmp_path / "fig16.json"
    document = json.loads(artifact.read_text())
    # Simulate an edited experiment definition: the stored trial list no
    # longer matches what build_trials(scale) produces today.
    document["trials"][0]["d_prime"] = 99
    artifact.write_text(json.dumps(document))
    rerun = run_experiment("fig16", scale=SMALL, out_dir=tmp_path)
    assert not rerun.cached


def test_wall_clock_experiments_never_served_from_cache(tmp_path):
    first = run_experiment("microbench", scale=0.2, out_dir=tmp_path)
    assert not first.cached
    second = run_experiment("microbench", scale=0.2, out_dir=tmp_path)
    assert not second.cached  # deterministic=False: timings always remeasured


def test_seed_changes_monte_carlo_results():
    default = run_experiment("fig09", scale=SMALL)
    reseeded = run_experiment("fig09", scale=SMALL, seed=99)
    assert default.rows != reseeded.rows
    # but the same seed reproduces exactly
    again = run_experiment("fig09", scale=SMALL, seed=99)
    assert reseeded.rows == again.rows


def test_artifact_document_shape(tmp_path):
    result = run_experiment("fig16", scale=SMALL, out_dir=tmp_path)
    document = json.loads((tmp_path / "fig16.json").read_text())
    assert document["experiment"] == "fig16"
    assert document["scale"] == SMALL
    assert document["seed"] == result.seed
    assert document["rows"] == result.rows
    assert len(document["trials"]) == result.trial_count


def test_rows_are_plain_json_types():
    rows = run_experiment("fig16", scale=SMALL).rows
    json.dumps(rows)  # would raise on numpy scalars
    assert all(isinstance(row, dict) for row in rows)


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError, match="scale"):
        run_experiment("fig16", scale=0.0)
    with pytest.raises(ValueError, match="workers"):
        run_experiment("fig16", scale=SMALL, workers=0)


def test_cli_run_subcommand(tmp_path, capsys):
    out = tmp_path / "results"
    code = experiments_main(
        ["run", "fig16", "--scale", str(SMALL), "--out", str(out), "--workers", "2"]
    )
    assert code == 0
    assert (out / "fig16.json").exists()
    output = capsys.readouterr().out
    assert "fig16" in output
    assert "information_slicing_success" in output
    # Second invocation hits the artifact cache.
    assert experiments_main(["run", "fig16", "--scale", str(SMALL), "--out", str(out)]) == 0
    assert "cached" in capsys.readouterr().out


def test_cli_run_unknown_experiment(capsys):
    # A bad name must exit with a one-line error listing the valid names on
    # stderr — never a raw KeyError traceback.
    assert experiments_main(["run", "fig99"]) == 2
    captured = capsys.readouterr()
    assert captured.err.startswith("error: unknown experiment")
    assert "fig11" in captured.err and "fig99" in captured.err
    assert captured.err.count("\n") == 1
    assert "Traceback" not in captured.err


def test_cli_run_unsupported_backend(capsys):
    # fig16 is analytic: it only runs on the simulator backend.
    assert experiments_main(["run", "fig16", "--backend", "aio"]) == 2
    captured = capsys.readouterr()
    assert "not support backend" in captured.err and "fig16" in captured.err
    assert "Traceback" not in captured.err


def test_cli_list(capsys):
    assert experiments_main(["list"]) == 0
    output = capsys.readouterr().out
    assert "fig09" in output and "ablation_transforms" in output


def test_cli_run_scheme_on_schemeless_experiment(capsys):
    # fig16 has no per-scheme mode; --scheme must be a one-line usage error.
    assert experiments_main(["run", "fig16", "--scheme", "sphinx"]) == 2
    captured = capsys.readouterr()
    assert "does not support per-scheme runs" in captured.err
    assert captured.err.count("\n") == 1
    assert "Traceback" not in captured.err


def test_cli_run_unknown_scheme_lists_supported(capsys):
    assert experiments_main(["run", "fig11", "--scheme", "carrier-pigeon"]) == 2
    captured = capsys.readouterr()
    assert "supported: slicing, onion, onion-erasure, sphinx" in captured.err
    assert captured.err.count("\n") == 1


def test_cli_run_backend_unsupported_scheme_lists_backend_schemes(capsys, monkeypatch):
    # A sim-only scheme requested on the aio backend must fail with a one-line
    # error that lists the schemes the experiment *does* support on aio.
    from dataclasses import replace

    from repro.experiments.registry import REGISTRY
    from repro.overlay.runtime import RUNTIME_SCHEMES

    class SimOnlyRuntime:
        backends = ("sim",)

    monkeypatch.setitem(RUNTIME_SCHEMES, "sim-only", SimOnlyRuntime)
    fig11 = get_experiment("fig11")
    monkeypatch.setitem(
        REGISTRY, "fig11", replace(fig11, schemes=(*fig11.schemes, "sim-only"))
    )
    assert (
        experiments_main(["run", "fig11", "--backend", "aio", "--scheme", "sim-only"])
        == 2
    )
    captured = capsys.readouterr()
    assert "does not run on backend 'aio'" in captured.err
    assert "slicing, onion, onion-erasure, sphinx" in captured.err
    assert captured.err.count("\n") == 1
    assert "Traceback" not in captured.err


def test_scheme_restriction_keys_the_artifact_cache(tmp_path):
    # The scheme rides in the trial list, so it keys the artifact cache: a
    # default run must never be served from a scheme-restricted artifact
    # (and vice versa), even though both share the artifact filename.
    default = run_experiment("fig14", scale=SMALL, out_dir=tmp_path)
    restricted = run_experiment("fig14", scale=SMALL, out_dir=tmp_path, scheme="onion")
    assert default.scheme is None
    assert restricted.scheme == "onion"
    assert not restricted.cached
    assert {row["scheme"] for row in restricted.rows} == {"onion"}
    rerun = run_experiment("fig14", scale=SMALL, out_dir=tmp_path)
    assert not rerun.cached
    assert rerun.rows == default.rows
