"""The batched overlay data plane: bit-identity with the per-packet reference,
event coalescing, the FlowDecoder store, and the runtime's retention windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coder import CodedBlock, SliceCoder
from repro.core.errors import CodingError, SimulationError
from repro.core.flow_decoder import FlowDecoder
from repro.core.integrity import robust_decode, wrap
from repro.core.packet import random_padding_slice
from repro.core.relay import Relay
from repro.core.source import Source
from repro.overlay.node import SimulatedOverlayNetwork, SlicingRuntime
from repro.overlay.profiles import LAN_PROFILE
from repro.overlay.simulator import EventSimulator

from strategies import dimension_triples

# -- FlowDecoder -------------------------------------------------------------------


def coded_blocks(d=3, payload=b"the quick brown fox jumps", d_prime=None, seed=0):
    coder = SliceCoder(d, d_prime)
    return coder, coder.encode(wrap(payload), np.random.default_rng(seed))


def test_flow_decoder_accumulates_and_rejects_duplicates():
    _, blocks = coded_blocks(d=2)
    decoder = FlowDecoder(2)
    assert decoder.add(0, 0, blocks[0])
    assert not decoder.add(0, 0, blocks[1])  # duplicate (seq, lane)
    assert decoder.add(0, 1, blocks[1])
    assert decoder.count(0) == 2
    assert decoder.lanes(0) == [0, 1]
    assert 0 in decoder and 1 not in decoder
    rebuilt = decoder.blocks(0)
    assert np.array_equal(rebuilt[0].coefficients, blocks[0].coefficients)
    assert np.array_equal(rebuilt[1].payload, blocks[1].payload)


def test_flow_decoder_decode_matches_robust_decode():
    coder, blocks = coded_blocks(d=3, d_prime=5)
    decoder = FlowDecoder(3)
    # Three seqs: clean, churn-padded (garbage first), and insufficient.
    for lane, block in enumerate(blocks[:4]):
        decoder.add(7, lane, block)
    garbage = random_padding_slice(3, blocks[0].payload.shape[0], np.random.default_rng(9))
    decoder.add(8, 0, garbage)
    for lane, block in enumerate(blocks[:3]):
        decoder.add(8, lane + 1, block)
    decoder.add(9, 0, blocks[0])
    decoded = decoder.decode_many([7, 8, 9, 1234])
    reference = SliceCoder(3)
    assert decoded[7] == robust_decode(reference, decoder.blocks(7))
    assert decoded[8] == robust_decode(reference, decoder.blocks(8))
    assert 9 not in decoded and 1234 not in decoded


def test_flow_decoder_add_run_equivalent_to_scalar_adds():
    coder, _ = coded_blocks(d=2)
    rng = np.random.default_rng(3)
    items = []
    for seq in range(10):
        blocks = coder.encode(wrap(b"msg-%d" % seq), rng)
        items.append((seq, blocks[0]))
    run_decoder = FlowDecoder(2)
    accepted = run_decoder.add_run(4, items + items)  # replay the run: all dups
    assert [seq for seq, _ in accepted] == list(range(10))
    loop_decoder = FlowDecoder(2)
    for seq, block in items:
        assert loop_decoder.add(seq, 4, block)
        assert not loop_decoder.add(seq, 4, block)
    for seq in range(10):
        a, b = run_decoder.blocks(seq), loop_decoder.blocks(seq)
        assert len(a) == len(b) == 1
        assert np.array_equal(a[0].payload, b[0].payload)


def test_flow_decoder_retire_and_drop():
    coder, blocks = coded_blocks(d=2)
    decoder = FlowDecoder(2)
    for seq in range(10):
        decoder.add(seq, 0, blocks[0])
    assert decoder.retire_before(6) == 6
    assert decoder.seqs() == [6, 7, 8, 9]
    assert decoder.drop(7) and not decoder.drop(7)
    assert decoder.count(6) == 1 and decoder.count(5) == 0
    # Freed rows are reused for new sequences.
    decoder.add(100, 0, blocks[0])
    assert decoder.count(100) == 1


def test_flow_decoder_mixed_length_slices_fall_back():
    decoder = FlowDecoder(2)
    short = CodedBlock(coefficients=[1, 2], payload=[1, 2, 3])
    longer = CodedBlock(coefficients=[3, 4], payload=[1, 2, 3, 4, 5])
    assert decoder.add(0, 0, short)
    assert decoder.add(0, 1, longer)  # parked, not rejected
    assert not decoder.add(0, 1, longer)  # still a duplicate lane
    assert decoder.count(0) == 2
    assert decoder.lanes(0) == [0, 1]
    assert decoder.decode_many([0]) == {}  # inconsistent lengths cannot decode


def test_flow_decoder_validates_split_factor():
    decoder = FlowDecoder(3)
    bad = CodedBlock(coefficients=[1, 2], payload=[0])
    with pytest.raises(CodingError):
        decoder.add(0, 0, bad)
    with pytest.raises(CodingError):
        decoder.add_run(0, [(0, bad)])


def test_relay_rejects_unknown_engine():
    from repro.core.errors import ProtocolError

    with pytest.raises(ProtocolError):
        Relay("x", engine="turbo")


# -- simulator coalescing ------------------------------------------------------------


def test_schedule_keyed_coalesces_same_instant_items():
    sim = EventSimulator()
    drained = []
    sim.schedule(1.0, lambda: sim.schedule_keyed("rx", 2.0, "a", drained.append))
    sim.schedule(1.5, lambda: sim.schedule_keyed("rx", 2.0, "b", drained.append))
    sim.schedule(1.5, lambda: sim.schedule_keyed("rx", 3.0, "c", drained.append))
    sim.run()
    assert drained == [["a", "b"], ["c"]]
    assert sim.batched_events == 1


def test_schedule_keyed_after_fire_starts_a_new_batch():
    sim = EventSimulator()
    drained = []
    sim.schedule_keyed("k", 1.0, "first", drained.append)
    sim.run()
    sim.schedule_keyed("k", 1.0, "late", drained.append)
    sim.run()
    assert drained == [["first"], ["late"]]


# -- transmit_batch -------------------------------------------------------------------


def build_substrate(addresses, bps=1e6, latency=0.01):
    from repro.overlay.network import NodeResources, uniform_network

    network = uniform_network(addresses, latency, NodeResources())
    return SimulatedOverlayNetwork(network, connection_bps=bps)


def test_transmit_batch_matches_per_packet_serialisation_times():
    substrate = build_substrate(["a", "b"], bps=8000.0)
    substrate.per_packet_overhead = 0.0
    received = []
    substrate.transmit_batch("a", "b", [1000, 1000, 1000], received.append)
    substrate.sim.run()
    # 1000 B at 8 kbit/s = 1 s serialisation each; one event, exact times.
    assert len(received) == 1
    assert received[0] == pytest.approx([1.01, 2.01, 3.01])
    assert substrate.stats.packets_sent == 3
    assert substrate.sim.events_processed == 1


def test_transmit_batch_drops_on_dead_endpoints():
    substrate = build_substrate(["a", "b"])
    substrate.fail_node("b")
    calls = []
    substrate.transmit_batch("a", "b", [10, 10], calls.append)
    substrate.sim.run()
    assert calls == [] and substrate.stats.packets_dropped == 2
    substrate.fail_node("a")
    substrate.transmit_batch("a", "c", [10], calls.append)
    assert substrate.stats.packets_dropped == 3


def test_transmit_batch_validates_cpu_list():
    substrate = build_substrate(["a", "b"])
    with pytest.raises(SimulationError):
        substrate.transmit_batch("a", "b", [10, 10], lambda _: None, sender_cpu_seconds=[0.1])


def test_reserve_cpu_sequence_matches_loop_for_any_size():
    substrate = build_substrate(["a", "b"])
    starts = [0.5, 0.1, 2.0, 2.0, 2.1, 5.0, 5.0, 5.0, 6.0, 9.0]
    durations = [0.3] * len(starts)
    expected, free = [], 0.0
    for start, duration in zip(starts, durations):
        free = max(free, start) + duration
        expected.append(free)
    dones = substrate.reserve_cpu_sequence("a", starts, durations)
    assert dones == pytest.approx(expected)
    assert substrate.reserve_cpu_sequence("a", [], []) == []


# -- the batched plane is bit-identical to the scalar reference ----------------------


def run_plane(
    data_plane,
    d=2,
    d_prime=None,
    path_length=3,
    messages=(b"hello world",),
    seed=5,
    fail_stage=None,
    seq_retention=None,
):
    d_prime = d if d_prime is None else d_prime
    rng = np.random.default_rng(seed)
    sources = [f"s{i}" for i in range(d_prime)]
    relays = [f"r{i}" for i in range(path_length * d_prime * 2 + 8)]
    network = LAN_PROFILE.build_network(sources + relays + ["dst"], rng)
    substrate = SimulatedOverlayNetwork(network, connection_bps=30e6)
    runtime = SlicingRuntime(
        substrate,
        rng=np.random.default_rng(seed + 1),
        data_plane=data_plane,
        seq_retention=seq_retention,
    )
    source = Source(
        sources[0],
        sources[1:],
        d=d,
        d_prime=d_prime,
        path_length=path_length,
        rng=np.random.default_rng(seed + 2),
    )
    flow = source.establish_flow(relays, "dst")
    progress = runtime.start_flow(source, flow)
    substrate.sim.run()
    if fail_stage is not None:
        stage = flow.graph.stages[1 + (fail_stage % (len(flow.graph.stages) - 1))]
        victims = [node for node in stage if node != "dst"]
        if victims:
            substrate.fail_node(victims[0])
    runtime.send_messages(source, flow, list(messages))
    substrate.sim.run()
    delivered = runtime.relays["dst"].delivered_messages(flow.plan.flow_ids["dst"])
    stats = {
        address: (
            relay.stats.packets_received,
            relay.stats.packets_sent,
            relay.stats.bytes_received,
            relay.stats.bytes_sent,
            relay.stats.flows_decoded,
            relay.stats.messages_delivered,
            relay.stats.regenerated_slices,
        )
        for address, relay in runtime.relays.items()
    }
    return delivered, stats, progress, runtime, flow


@settings(max_examples=12, deadline=None)
@given(
    dims=dimension_triples(),
    num_messages=st.integers(min_value=1, max_value=6),
    message_len=st.integers(min_value=1, max_value=160),
    fail_stage=st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    seed=st.integers(min_value=0, max_value=50),
)
def test_batched_plane_bit_identical_to_scalar_reference(
    dims, num_messages, message_len, fail_stage, seed
):
    """The acceptance property: across d, d', path length and loss patterns,
    the batched data plane delivers byte-identical messages and identical
    RelayStats counters under a shared seed."""
    d, d_prime, path_length = dims
    body = np.random.default_rng(seed).integers(0, 256, message_len, dtype=np.uint8)
    messages = [bytes(body)] * num_messages
    kwargs = dict(
        d=d,
        d_prime=d_prime,
        path_length=path_length,
        messages=messages,
        seed=seed,
        fail_stage=fail_stage,
    )
    scalar_delivered, scalar_stats, scalar_progress, _, _ = run_plane("scalar", **kwargs)
    batched_delivered, batched_stats, batched_progress, _, _ = run_plane(
        "batched", **kwargs
    )
    assert batched_delivered == scalar_delivered
    assert batched_stats == scalar_stats
    assert set(batched_progress.delivered_messages) == set(
        scalar_progress.delivered_messages
    )
    if fail_stage is None:
        assert len(batched_delivered) == num_messages


def test_batched_plane_survives_failure_with_redundancy():
    messages = [b"redundant-payload"] * 3
    delivered, _, _, _, _ = run_plane(
        "batched", d=2, d_prime=4, path_length=3, messages=messages, fail_stage=1, seed=9
    )
    assert len(delivered) == 3


# -- retention windows ----------------------------------------------------------------


@pytest.mark.parametrize("data_plane", ["scalar", "batched"])
def test_seq_retention_bounds_relay_state(data_plane):
    window = 8
    messages = [b"retained-message-payload"] * 40
    delivered, _, _, runtime, flow = run_plane(
        data_plane,
        d=2,
        path_length=3,
        messages=messages,
        seed=11,
        seq_retention=window,
    )
    assert len(delivered) == 40  # retention never cost a delivery
    horizon = 40 - window
    for relay_address in flow.graph.relays:
        state = runtime.relays[relay_address].flows[flow.plan.flow_ids[relay_address]]
        assert len(state.data) <= window
        assert all(seq >= horizon for seq in state.data.seqs())
        assert all(seq >= horizon for seq, _child in state.data_forwarded)
        assert all(seq >= horizon for seq in state.data_flushed)


def test_flow_retention_garbage_collects_idle_flows():
    rng = np.random.default_rng(21)
    sources = ["s0", "s1", "t0", "t1"]
    relays = [f"r{i}" for i in range(14)]
    network = LAN_PROFILE.build_network(sources + relays + ["dst1", "dst2"], rng)
    substrate = SimulatedOverlayNetwork(network, connection_bps=30e6)
    runtime = SlicingRuntime(
        substrate, rng=np.random.default_rng(22), flow_retention_seconds=10.0
    )
    source1 = Source("s0", ["s1"], d=2, path_length=3, rng=np.random.default_rng(23))
    flow1 = source1.establish_flow(relays, "dst1")
    runtime.start_flow(source1, flow1)
    substrate.sim.run()
    runtime.send_messages(source1, flow1, [b"first flow"])
    substrate.sim.run()
    assert runtime.relays["dst1"].delivered_messages(flow1.plan.flow_ids["dst1"])
    # Much later, a second flow's flush sweeps the first flow's idle state.
    substrate.sim.schedule(30.0, lambda: None)
    substrate.sim.run()
    source2 = Source("t0", ["t1"], d=2, path_length=3, rng=np.random.default_rng(24))
    flow2 = source2.establish_flow(relays, "dst2")
    runtime.start_flow(source2, flow2)
    substrate.sim.run()
    runtime.send_messages(source2, flow2, [b"second flow"])
    substrate.sim.run()
    shared = set(flow1.graph.relays) & set(flow2.graph.relays)
    assert shared, "expected the two flows to share relays with this seed"
    for relay_address in shared:
        assert flow1.plan.flow_ids[relay_address] not in runtime.relays[relay_address].flows


def test_runtime_validates_parameters():
    substrate = build_substrate(["a"])
    with pytest.raises(SimulationError):
        SlicingRuntime(substrate, data_plane="warp")
    with pytest.raises(SimulationError):
        SlicingRuntime(substrate, seq_retention=0)
    with pytest.raises(SimulationError):
        SlicingRuntime(substrate, batch_chunk=0)
