"""Tests for the anonymity metric, attacker model, analysis and Monte Carlo."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymity.analysis import (
    destination_case1_probability,
    expected_destination_anonymity,
    expected_source_anonymity,
    redundancy_overhead,
    source_case1_probability,
)
from repro.anonymity.attacker import (
    AttackerView,
    StageLayout,
    _longest_true_run,
    sample_stage_layout,
)
from repro.anonymity.metrics import (
    MetricError,
    degree_of_anonymity,
    entropy,
    information_bits_missing,
    max_entropy,
    two_level_anonymity,
)
from repro.anonymity.simulation import simulate_anonymity, sweep_malicious_fraction
from repro.baselines.chaum import simulate_chaum_anonymity


# -- metrics ---------------------------------------------------------------------------


def test_entropy_of_uniform_distribution():
    assert entropy([0.25] * 4) == pytest.approx(2.0)
    assert max_entropy(8) == pytest.approx(3.0)


def test_entropy_rejects_bad_input():
    with pytest.raises(MetricError):
        entropy([])
    with pytest.raises(MetricError):
        entropy([-0.5, 1.5])
    with pytest.raises(MetricError):
        max_entropy(0)


def test_degree_of_anonymity_bounds():
    assert degree_of_anonymity([1.0], 100) == 0.0
    uniform = [1 / 100] * 100
    assert degree_of_anonymity(uniform, 100) == pytest.approx(1.0)


def test_two_level_matches_direct_entropy():
    n = 1000
    high, p_high = 5, 0.1
    low = 200
    p_low = (1 - high * p_high) / low
    direct = degree_of_anonymity([p_high] * high + [p_low] * low, n)
    closed = two_level_anonymity(high, p_high, low, p_low, n)
    assert closed == pytest.approx(direct, rel=1e-9)


def test_information_bits_missing():
    assert information_bits_missing(0.5, 1024) == pytest.approx(5.0)


@given(
    high=st.integers(min_value=0, max_value=20),
    low=st.integers(min_value=1, max_value=500),
    p_high=st.floats(min_value=0.0, max_value=0.05),
)
@settings(max_examples=60, deadline=None)
def test_two_level_anonymity_in_unit_interval(high, low, p_high):
    remaining = max(1.0 - high * p_high, 1e-9)
    value = two_level_anonymity(high, p_high, low, remaining / low, 10_000)
    assert 0.0 <= value <= 1.0


# -- attacker view ----------------------------------------------------------------------


def test_sample_layout_shape_and_clean_source_stage():
    rng = np.random.default_rng(0)
    layout = sample_stage_layout(8, 3, 0.3, rng)
    assert layout.path_length == 8
    assert len(layout.malicious) == 9
    assert not any(layout.malicious[0])
    # The destination slot is never malicious.
    assert not layout.malicious[layout.destination_stage][layout.destination_position]


def test_attacker_view_no_malicious_nodes():
    layout = StageLayout(
        malicious=tuple([tuple([False] * 3)] * 5),
        destination_stage=2,
        destination_position=0,
        d=3,
        d_prime=3,
    )
    view = AttackerView.from_layout(layout)
    assert view.longest_chain_length == 0
    assert not view.first_stage_decodable
    assert not view.decodable_stage_before_destination


def test_attacker_view_fully_compromised_first_stage():
    malicious = [tuple([False] * 2)] + [tuple([True] * 2)] + [tuple([False] * 2)] * 3
    layout = StageLayout(
        malicious=tuple(malicious),
        destination_stage=3,
        destination_position=0,
        d=2,
        d_prime=2,
    )
    view = AttackerView.from_layout(layout)
    assert view.first_stage_decodable
    assert view.decodable_stage_before_destination
    assert view.longest_chain_length >= 2


def test_attacker_view_exposure_comes_from_neighbours():
    # One malicious node in stage 2 exposes stages 1-3 (its parents, itself,
    # its children) but not the source stage.
    malicious = [
        tuple([False, False]),
        tuple([False, False]),
        tuple([True, False]),
        tuple([False, False]),
    ]
    layout = StageLayout(
        malicious=tuple(malicious),
        destination_stage=1,
        destination_position=0,
        d=2,
        d_prime=2,
    )
    view = AttackerView.from_layout(layout)
    assert view.exposed_stages[1] and view.exposed_stages[2] and view.exposed_stages[3]
    assert not view.exposed_stages[0]
    assert view.longest_chain_length == 3


def test_longest_true_run_edge_cases():
    assert _longest_true_run([]) == (0, 0)
    assert _longest_true_run([False, False]) == (0, 0)
    assert _longest_true_run([True] * 7) == (0, 7)
    # Ties resolve to the first longest run.
    assert _longest_true_run([True, True, False, True, True]) == (0, 2)
    assert _longest_true_run([False, True, False, True]) == (1, 1)
    # A later, strictly longer run wins.
    assert _longest_true_run([True, False, True, True]) == (2, 2)


def test_d_prime_smaller_than_d_is_never_decodable():
    # With d' < d a stage can never contain d malicious relays, so neither
    # Case-1 condition can fire even under a near-total compromise.
    rng = np.random.default_rng(21)
    for _ in range(50):
        layout = sample_stage_layout(6, 4, 0.95, rng, d_prime=2)
        view = AttackerView.from_layout(layout)
        assert not view.first_stage_decodable
        assert not view.decodable_stage_before_destination


def test_d_prime_smaller_than_d_layout_shape():
    rng = np.random.default_rng(22)
    layout = sample_stage_layout(5, 3, 0.5, rng, d_prime=2)
    assert layout.d == 3 and layout.d_prime == 2
    assert all(len(stage) == 2 for stage in layout.malicious)


@given(
    path_length=st.integers(min_value=1, max_value=12),
    d_prime=st.integers(min_value=1, max_value=6),
    fraction=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=80, deadline=None)
def test_destination_slot_is_never_malicious(path_length, d_prime, fraction, seed):
    rng = np.random.default_rng(seed)
    layout = sample_stage_layout(path_length, 2, fraction, rng, d_prime=d_prime)
    assert 1 <= layout.destination_stage <= path_length
    assert not layout.malicious[layout.destination_stage][layout.destination_position]
    assert not any(layout.malicious[0])


# -- analytical formulas -------------------------------------------------------------------


def test_source_case1_probability_matches_f_power_d():
    assert source_case1_probability(0.2, 3) == pytest.approx(0.2**3)


def test_source_case1_with_redundancy_is_larger():
    assert source_case1_probability(0.2, 3, 5) > source_case1_probability(0.2, 3)


def test_destination_case1_increases_with_f_and_L():
    low = destination_case1_probability(0.05, 3, 8)
    high = destination_case1_probability(0.3, 3, 8)
    assert high > low
    longer = destination_case1_probability(0.3, 3, 16)
    assert longer > high


def test_expected_anonymity_decreases_with_chain_length():
    short = expected_source_anonymity(10_000, 8, 3, 0.1, chain_length=1)
    long = expected_source_anonymity(10_000, 8, 3, 0.1, chain_length=6)
    assert short > long
    short_d = expected_destination_anonymity(10_000, 8, 3, 0.1, chain_length=1)
    long_d = expected_destination_anonymity(10_000, 8, 3, 0.1, chain_length=6)
    assert short_d > long_d


def test_redundancy_overhead():
    assert redundancy_overhead(3, 6) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        redundancy_overhead(0, 1)


# -- Monte Carlo -------------------------------------------------------------------------


def test_simulation_low_f_gives_high_anonymity():
    result = simulate_anonymity(10_000, 8, 3, 0.01, trials=300, rng=np.random.default_rng(1))
    assert result.source_anonymity > 0.85
    assert result.destination_anonymity > 0.85


def test_simulation_anonymity_decreases_with_f():
    low = simulate_anonymity(10_000, 8, 3, 0.05, trials=300, rng=np.random.default_rng(2))
    high = simulate_anonymity(10_000, 8, 3, 0.5, trials=300, rng=np.random.default_rng(3))
    assert low.source_anonymity > high.source_anonymity
    assert low.destination_anonymity > high.destination_anonymity


def test_destination_anonymity_falls_faster_than_source():
    # Fig. 7's qualitative claim: discovering the destination only needs one
    # fully-compromised stage upstream of it, so it degrades faster.
    result = simulate_anonymity(10_000, 8, 3, 0.4, trials=400, rng=np.random.default_rng(4))
    assert result.destination_anonymity < result.source_anonymity
    assert result.destination_case1_rate > result.source_case1_rate


def test_sweep_is_monotone_in_f():
    rows = sweep_malicious_fraction(10_000, 8, 3, [0.01, 0.2, 0.6], trials=200)
    anonymities = [result.source_anonymity for _, result in rows]
    assert anonymities[0] > anonymities[1] > anonymities[2]


def test_chaum_baseline_comparable_at_low_f():
    slicing = simulate_anonymity(10_000, 8, 3, 0.05, trials=300, rng=np.random.default_rng(5))
    chaum = simulate_chaum_anonymity(10_000, 8, 0.05, trials=300, rng=np.random.default_rng(6))
    assert abs(slicing.source_anonymity - chaum.source_anonymity) < 0.15
    assert chaum.destination_anonymity > 0.7
