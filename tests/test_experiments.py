"""Tests for the per-figure experiment harness (small-scale smoke + shape checks)."""

from repro.experiments import (
    FIGURES,
    coding_microbenchmark,
    figure07_anonymity_vs_malicious,
    figure16_resilience_analysis,
    figure17_churn_resilience,
    format_table,
    measure_onion_setup,
    measure_onion_throughput,
    measure_slicing_setup,
    measure_slicing_throughput,
    setup_latency_sweep,
    throughput_vs_path_length,
)
from repro.overlay.profiles import LAN_PROFILE, PLANETLAB_PROFILE

SMALL = 0.05  # scale factor: keep the whole module under a minute


def test_registry_contains_every_figure():
    expected = {f"fig{n:02d}" for n in range(7, 18)} | {
        "microbench",
        "anonbench",
        "chaumbench",
        "dataplane-bench",
        "gfbench",
        "sphinxbench",
        "distbench",
        "distsweep",
        "distinguishability",
    }
    assert expected == set(FIGURES)


def test_fig07_shape():
    rows = figure07_anonymity_vs_malicious(scale=SMALL)
    assert rows[0]["fraction_malicious"] < rows[-1]["fraction_malicious"]
    # Low-f anonymity is near 1, and degrades as f grows.
    assert rows[0]["source_anonymity"] > 0.9
    assert rows[-1]["source_anonymity"] < rows[0]["source_anonymity"]
    assert rows[0]["chaum_source_anonymity"] > 0.8


def test_fig11_slicing_beats_onion_on_lan():
    rows = throughput_vs_path_length(
        LAN_PROFILE, path_lengths=[2, 4], d=2, num_messages=60
    )
    for row in rows:
        assert row["slicing_mbps"] > row["onion_mbps"]
        assert row["slicing_delivered"] == 60


def test_fig12_slicing_beats_onion_on_wan():
    rows = throughput_vs_path_length(
        PLANETLAB_PROFILE, path_lengths=[3], d=2, num_messages=20
    )
    assert rows[0]["slicing_mbps"] > rows[0]["onion_mbps"]


def test_fig14_setup_orderings():
    rows = setup_latency_sweep(LAN_PROFILE, path_lengths=[2, 5], split_factors=(2, 4))
    for row in rows:
        # Setup cost grows with the split factor; onion (no slicing work) is
        # the cheapest, exactly as in Fig. 14.
        assert row["onion_seconds"] < row["slicing_d2_seconds"]
        assert row["slicing_d2_seconds"] < row["slicing_d4_seconds"]
    # And it grows with path length.
    assert rows[0]["slicing_d2_seconds"] < rows[1]["slicing_d2_seconds"]


def test_setup_latency_wan_slower_than_lan():
    lan = measure_slicing_setup(LAN_PROFILE, 4, d=3)
    wan = measure_slicing_setup(PLANETLAB_PROFILE, 4, d=3)
    assert wan.setup_seconds > lan.setup_seconds
    lan_onion = measure_onion_setup(LAN_PROFILE, 4)
    wan_onion = measure_onion_setup(PLANETLAB_PROFILE, 4)
    assert wan_onion.setup_seconds > lan_onion.setup_seconds


def test_fig16_slicing_dominates_onion_erasure():
    rows = figure16_resilience_analysis()
    for row in rows:
        assert row["information_slicing_success"] >= row["onion_erasure_success"] - 1e-9
    # Higher failure probability lowers success at equal redundancy.
    p01 = [r for r in rows if r["node_failure_prob"] == 0.1]
    p03 = [r for r in rows if r["node_failure_prob"] == 0.3]
    assert p01[3]["information_slicing_success"] > p03[3]["information_slicing_success"]


def test_fig17_slicing_reaches_high_success_with_little_redundancy():
    rows = figure17_churn_resilience(scale=0.3)
    by_redundancy = {row["added_redundancy"]: row for row in rows}
    assert by_redundancy[1.5]["information_slicing_success"] > 0.7
    assert (
        by_redundancy[1.5]["information_slicing_success"]
        > by_redundancy[1.5]["onion_erasure_success"]
    )
    # Standard onion routing is flat and low regardless of redundancy.
    assert by_redundancy[2.0]["standard_onion_success"] < 0.5


def test_microbenchmark_rows():
    rows = coding_microbenchmark(scale=0.2)
    assert [row["d"] for row in rows] == [2, 3, 4, 5, 6, 8]
    for row in rows:
        assert row["encode_us_per_packet"] > 0
        assert row["max_output_mbps"] > 0


def test_throughput_result_fields():
    result = measure_slicing_throughput(LAN_PROFILE, 3, d=2, num_messages=30)
    assert result.protocol == "information-slicing"
    assert result.messages_delivered == 30
    onion = measure_onion_throughput(LAN_PROFILE, 3, num_messages=30)
    assert onion.protocol == "onion-routing"
    assert onion.messages_delivered == 30


def test_format_table_renders_all_columns():
    rows = [{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}]
    text = format_table(rows)
    assert "a" in text and "b" in text and "0.2500" in text
    assert format_table([]) == "(no rows)"
