"""Property tests for the distributed coordinator's wire protocol.

Mirrors ``tests/test_wire_format.py`` for the coordinator/worker plane: the
protocol ships length-prefixed canonical-JSON frames over TCP (the same
framing discipline as the asyncio overlay backend), so these tests drive the
encode→decode round trip of lease and result messages with hypothesis, check
that truncated and oversized frames are rejected rather than mis-parsed, and
exercise the lease ledger's idempotence guarantees (duplicate results, stale
leases, expiry re-dispatch).
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PacketFormatError
from repro.experiments.distributed import (
    Lease,
    TrialLedger,
    decode_message,
    encode_message,
    trials_digest,
)
from repro.overlay.aio import FRAME_HEADER, MAX_FRAME_BYTES, decode_frames

from strategies import json_scalars, lease_messages, result_messages


@given(message=st.one_of(lease_messages(), result_messages()))
@settings(max_examples=150, deadline=None)
def test_lease_and_result_frames_round_trip(message):
    frame = encode_message(message)
    (payload,) = decode_frames(frame)
    assert decode_message(payload) == message


@given(message=result_messages())
@settings(max_examples=50, deadline=None)
def test_row_key_order_survives_the_wire(message):
    # The artifact serialisation preserves row insertion order, so the
    # envelope must not re-order what it carries.
    frame = encode_message(message)
    (payload,) = decode_frames(frame)
    decoded = decode_message(payload)
    for original, parsed in zip(message["results"], decoded["results"]):
        assert list(original[1]) == list(parsed[1])


@given(
    messages=st.lists(
        st.one_of(lease_messages(), result_messages()), min_size=1, max_size=4
    )
)
@settings(max_examples=50, deadline=None)
def test_concatenated_message_frames_decode_in_order(messages):
    wire = b"".join(encode_message(m) for m in messages)
    payloads = decode_frames(wire)
    assert [decode_message(p) for p in payloads] == messages


@given(message=st.one_of(lease_messages(), result_messages()), data=st.data())
@settings(max_examples=100, deadline=None)
def test_truncated_message_frames_are_rejected(message, data):
    frame = encode_message(message)
    cut = data.draw(st.integers(1, len(frame) - 1), label="cut")
    with pytest.raises(PacketFormatError):
        decode_frames(frame[:cut])


def test_oversized_message_is_rejected_on_encode():
    huge = {"type": "result", "blob": "x" * (MAX_FRAME_BYTES + 1)}
    with pytest.raises(PacketFormatError):
        encode_message(huge)


def test_oversized_frame_is_rejected_on_decode():
    wire = FRAME_HEADER.pack(MAX_FRAME_BYTES + 1) + b"x"
    with pytest.raises(PacketFormatError):
        decode_frames(wire)


def test_non_message_payloads_are_rejected():
    with pytest.raises(PacketFormatError):
        decode_message(b"\xff\xfe not json")
    with pytest.raises(PacketFormatError):
        decode_message(json.dumps([1, 2, 3]).encode())  # not a dict
    with pytest.raises(PacketFormatError):
        decode_message(json.dumps({"no_type": 1}).encode())  # no "type"
    with pytest.raises(PacketFormatError):
        encode_message({"type": 7})  # non-string type
    with pytest.raises(PacketFormatError):
        encode_message(["type"])  # not a dict


@given(
    trials=st.lists(
        st.dictionaries(st.text(min_size=1, max_size=8), json_scalars, max_size=4),
        max_size=6,
    )
)
@settings(max_examples=50, deadline=None)
def test_trials_digest_is_deterministic_and_order_sensitive(trials):
    assert trials_digest(trials) == trials_digest(json.loads(json.dumps(trials)))
    if len(trials) >= 2 and trials[0] != trials[1]:
        swapped = [trials[1], trials[0], *trials[2:]]
        assert trials_digest(swapped) != trials_digest(trials)


# -- lease ledger properties --------------------------------------------------------


@given(
    total=st.integers(0, 40),
    chunk=st.integers(1, 7),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_ledger_completes_every_index_exactly_once(total, chunk, data):
    ledger = TrialLedger(total, chunk_size=chunk, lease_seconds=10.0)
    now = 0.0
    while not ledger.done:
        lease = ledger.lease("w", now)
        assert lease is not None  # work must always remain leasable until done
        deliver_twice = data.draw(st.booleans(), label="deliver_twice")
        results = {index: {"index": index} for index in lease.indices}
        newly = ledger.complete(lease.lease_id, results)
        assert newly == len(lease.indices)
        if deliver_twice:
            # Duplicate delivery of the same lease changes nothing.
            assert ledger.complete(lease.lease_id, results) == 0
    assert ledger.lease("w", now) is None
    rows = ledger.results_in_order()
    assert [row["index"] for row in rows] == list(range(total))


@given(total=st.integers(1, 30), chunk=st.integers(1, 5), data=st.data())
@settings(max_examples=100, deadline=None)
def test_ledger_redispatch_preserves_exactly_once_results(total, chunk, data):
    """Leases lost to death or expiry are re-enqueued; first result wins."""
    ledger = TrialLedger(total, chunk_size=chunk, lease_seconds=1.0)
    now = 0.0
    stale: list[Lease] = []
    while not ledger.done:
        worker = data.draw(st.sampled_from(["a", "b"]), label="worker")
        lease = ledger.lease(worker, now)
        if lease is None:
            break
        fate = data.draw(st.sampled_from(["complete", "die", "expire"]), label="fate")
        if fate == "complete":
            ledger.complete(
                lease.lease_id, {i: {"by": worker, "index": i} for i in lease.indices}
            )
        elif fate == "die":
            stale.append(lease)
            released = ledger.release_worker(worker)
            assert lease in released  # its indices went back in the queue
        else:
            stale.append(lease)
            now += 2.0  # past the 1-second lease lifetime
            assert lease in ledger.expire(now)
    # Finish whatever is left, then replay every stale lease as a duplicate.
    while not ledger.done:
        lease = ledger.lease("c", now)
        assert lease is not None
        ledger.complete(
            lease.lease_id, {i: {"by": "c", "index": i} for i in lease.indices}
        )
    before = ledger.results_in_order()
    for lease in stale:
        ledger.complete(
            lease.lease_id, {i: {"by": "late", "index": i} for i in lease.indices}
        )
    assert ledger.results_in_order() == before  # stale deliveries are no-ops
    assert [row["index"] for row in before] == list(range(total))


def test_ledger_rejects_out_of_range_results_without_losing_the_lease():
    ledger = TrialLedger(3, chunk_size=2, lease_seconds=5.0)
    lease = ledger.lease("w", 0.0)
    with pytest.raises(PacketFormatError):
        ledger.complete(lease.lease_id, {0: {}, 99: {}})
    # Validation happens before any state change: nothing was recorded, and
    # the lease is still outstanding, so expiry/death re-dispatch can
    # reclaim its indices — no index is ever stranded.
    assert ledger.completed == 0
    assert lease in ledger.outstanding()
    assert lease in ledger.expire(10.0)
    while not ledger.done:
        grant = ledger.lease("w2", 10.0)
        ledger.complete(grant.lease_id, {i: {"index": i} for i in grant.indices})
    assert [row["index"] for row in ledger.results_in_order()] == [0, 1, 2]


def test_ledger_requeues_indices_a_partial_result_frame_left_uncovered():
    ledger = TrialLedger(4, chunk_size=4, lease_seconds=5.0)
    lease = ledger.lease("w", 0.0)
    assert lease.indices == (0, 1, 2, 3)
    # The frame covers only half the lease; the other half must go back in
    # the queue rather than being stranded with the lease retired.
    assert ledger.complete(lease.lease_id, {0: {"index": 0}, 2: {"index": 2}}) == 2
    assert not ledger.outstanding()
    regrant = ledger.lease("w", 0.0)
    assert regrant is not None and set(regrant.indices) == {1, 3}
    ledger.complete(regrant.lease_id, {i: {"index": i} for i in regrant.indices})
    assert ledger.done


def test_ledger_validates_construction():
    with pytest.raises(ValueError):
        TrialLedger(-1)
    with pytest.raises(ValueError):
        TrialLedger(4, chunk_size=0)
    with pytest.raises(ValueError):
        TrialLedger(4, lease_seconds=0.0)
