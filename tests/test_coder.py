"""Tests for message slicing, decoding, redundancy and network coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coder import CodedBlock, SliceCoder
from repro.core.errors import CodingError, InsufficientSlicesError


def rng_for(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def test_roundtrip_without_redundancy():
    coder = SliceCoder(d=3)
    message = b"Let's meet at 5pm"
    blocks = coder.encode(message, rng_for(1))
    assert len(blocks) == 3
    assert coder.decode(blocks) == message


def test_roundtrip_empty_message():
    coder = SliceCoder(d=2)
    blocks = coder.encode(b"", rng_for(2))
    assert coder.decode(blocks) == b""


@given(
    data=st.binary(min_size=0, max_size=400),
    d=st.integers(min_value=1, max_value=6),
    extra=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(data, d, extra):
    coder = SliceCoder(d=d, d_prime=d + extra)
    blocks = coder.encode(data, rng_for(len(data) + d))
    assert coder.decode(blocks) == data


def test_any_d_of_d_prime_blocks_decode():
    coder = SliceCoder(d=2, d_prime=4)
    message = b"redundancy means any 2 of 4 work"
    blocks = coder.encode(message, rng_for(3))
    from itertools import combinations

    for subset in combinations(blocks, 2):
        assert coder.decode(list(subset)) == message


def test_fewer_than_d_blocks_raises():
    coder = SliceCoder(d=3)
    blocks = coder.encode(b"secret", rng_for(4))
    with pytest.raises(InsufficientSlicesError):
        coder.decode(blocks[:2])


def test_partial_blocks_reveal_nothing_about_missing_dimension():
    # pi-security sanity check: with d-1 blocks the constraint system is
    # underdetermined — for any candidate value of the missing piece there is
    # a consistent solution, so the decoder must refuse rather than guess.
    coder = SliceCoder(d=2)
    blocks = coder.encode(b"AB", rng_for(5))
    assert not coder.can_decode(blocks[:1])
    assert coder.can_decode(blocks)


def test_mismatched_split_factor_raises():
    coder2 = SliceCoder(d=2)
    coder3 = SliceCoder(d=3)
    blocks = coder3.encode(b"hello", rng_for(6))
    with pytest.raises(CodingError):
        coder2.decode(blocks)


def test_inconsistent_payload_lengths_raise():
    coder = SliceCoder(d=2)
    blocks = coder.encode(b"hello world", rng_for(7))
    truncated = CodedBlock(blocks[1].coefficients, blocks[1].payload[:-1])
    with pytest.raises(CodingError):
        coder.decode([blocks[0], truncated])


def test_recombine_produces_useful_replacement_blocks():
    coder = SliceCoder(d=3, d_prime=5)
    message = b"network coding regenerates lost redundancy"
    blocks = coder.encode(message, rng_for(8))
    survivors = blocks[:3]
    regenerated = coder.regenerate(survivors, count=2, rng=rng_for(9))
    # Decode using one original and the regenerated blocks only.
    mixture = [survivors[0]] + regenerated
    assert coder.decode(mixture) == message


def test_recombine_rejects_empty_input():
    coder = SliceCoder(d=2)
    with pytest.raises(CodingError):
        coder.recombine([], rng_for(10))


def test_coded_block_serialization_roundtrip():
    coder = SliceCoder(d=4)
    block = coder.encode(b"serialize me", rng_for(11))[2]
    parsed = CodedBlock.from_bytes(block.to_bytes(), d=4, index=2)
    assert np.array_equal(parsed.coefficients, block.coefficients)
    assert np.array_equal(parsed.payload, block.payload)


def test_coded_block_from_short_bytes_raises():
    with pytest.raises(CodingError):
        CodedBlock.from_bytes(b"\x01", d=4)


def test_invalid_coder_parameters():
    with pytest.raises(CodingError):
        SliceCoder(d=0)
    with pytest.raises(CodingError):
        SliceCoder(d=3, d_prime=2)


def test_encode_with_explicit_matrix_shape_check():
    coder = SliceCoder(d=2)
    with pytest.raises(CodingError):
        coder.encode(b"x", rng_for(12), matrix=np.eye(3, dtype=np.uint8))


def test_information_theoretic_mode_roundtrip():
    coder = SliceCoder(d=2)
    message = b"the strongest mode costs d-fold space"
    blocks = coder.encode_information_theoretic(message, rng_for(13))
    assert len(blocks) == 2 * 2
    assert coder.decode_information_theoretic(blocks) == message


def test_information_theoretic_missing_group_raises():
    coder = SliceCoder(d=2)
    blocks = coder.encode_information_theoretic(b"secret", rng_for(14))
    with pytest.raises((InsufficientSlicesError, CodingError)):
        coder.decode_information_theoretic(blocks[:2])
