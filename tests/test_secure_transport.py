"""Property and end-to-end tests for the authenticated secure transport.

The handshake/cipher layer (:mod:`repro.net.secure`) is pure logic, so the
property tests drive it entirely in memory with deterministic entropy; the
adapter tests run the sync and asyncio flavours against each other over real
sockets; and the end-to-end tests assert the load-bearing guarantee of the
whole stack: a ``--transport secure`` distributed run merges to an artifact
byte-identical to the single-process plaintext run, while a tampered frame
or an unauthorized static key is rejected before any job frame is processed.
"""

import asyncio
import hashlib
import itertools
import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import (
    FrameAuthenticationError,
    HandshakeError,
    KeyFileError,
)
from repro.experiments import run_distributed, run_experiment, run_worker
from repro.experiments.__main__ import main as experiments_main
from repro.net import (
    StaticKeyPair,
    TransportCredential,
    load_allowlist,
    load_keypair,
    load_public_key,
    write_keypair,
)
from repro.net.channel import (
    accept_secure_aio,
    accept_secure_sync,
    connect_secure_sync,
)
from repro.net.secure import (
    REKEY_INTERVAL,
    TAG_SIZE,
    HandshakeState,
    aead_decrypt,
    aead_encrypt,
)

SMALL = 0.03


def keypair(tag: bytes) -> StaticKeyPair:
    """A deterministic static keypair from a test label (secrets are 32B)."""
    return StaticKeyPair.from_secret(hashlib.sha256(tag).digest())


def entropy_from(seed: bytes):
    """A deterministic ``os.urandom`` stand-in: a counter-mode SHA-256 feed."""
    counter = itertools.count()

    def entropy(size: int) -> bytes:
        stream = b""
        label = next(counter).to_bytes(8, "big")
        while len(stream) < size:
            stream += hashlib.sha256(
                seed + label + len(stream).to_bytes(8, "big")
            ).digest()
        return stream[:size]

    return entropy


def complete_handshake(
    initiator_pair: StaticKeyPair,
    responder_pair: StaticKeyPair,
    seed: bytes = b"",
    prologue: bytes = b"",
):
    """Run all three acts in memory; returns (initiator, responder) sessions."""
    initiator = HandshakeState.initiator(
        initiator_pair,
        responder_pair.public,
        prologue=prologue,
        entropy=entropy_from(seed + b"i"),
    )
    responder = HandshakeState.responder(
        responder_pair, prologue=prologue, entropy=entropy_from(seed + b"r")
    )
    responder.read_act_one(initiator.write_act_one())
    initiator.read_act_two(responder.write_act_two())
    remote = responder.read_act_three(initiator.write_act_three())
    assert remote == initiator_pair.public
    return initiator.session(), responder.session()


secrets = st.binary(min_size=1, max_size=48)
seeds = st.binary(min_size=0, max_size=16)
payloads = st.lists(st.binary(max_size=256), min_size=1, max_size=6)


# -- handshake properties -----------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(secret_i=secrets, secret_r=secrets, seed=seeds, messages=payloads)
def test_handshake_transcript_round_trip(secret_i, secret_r, seed, messages):
    pair_i = keypair(b"i" + secret_i)
    pair_r = keypair(b"r" + secret_r)
    session_i, session_r = complete_handshake(pair_i, pair_r, seed)
    # Both sides bind the same transcript and authenticate each other.
    assert session_i.handshake_hash == session_r.handshake_hash
    assert session_i.remote_public == pair_r.public
    assert session_r.remote_public == pair_i.public
    # Frames round-trip in both directions, interleaved.
    for message in messages:
        assert session_r.decrypt_frame(session_i.encrypt_frame(message)) == message
        assert session_i.decrypt_frame(session_r.encrypt_frame(message)) == message


@settings(max_examples=25, deadline=None)
@given(secret_i=secrets, secret_r=secrets, secret_x=secrets, seed=seeds)
def test_wrong_responder_static_key_fails_act_one(
    secret_i, secret_r, secret_x, seed
):
    pair_i = keypair(b"i" + secret_i)
    pair_r = keypair(b"r" + secret_r)
    expected = keypair(b"x" + secret_x)
    if expected.public == pair_r.public:  # pragma: no cover - astronomically rare
        return
    # The initiator dials with the wrong expected static key: the responder's
    # very first MAC check fails, before any identity or payload crosses.
    initiator = HandshakeState.initiator(
        pair_i, expected.public, entropy=entropy_from(seed + b"i")
    )
    responder = HandshakeState.responder(pair_r, entropy=entropy_from(seed + b"r"))
    with pytest.raises(HandshakeError, match="MAC check failed"):
        responder.read_act_one(initiator.write_act_one())
    # The failure poisons the state: no transport keys can ever be derived.
    with pytest.raises(HandshakeError):
        responder.session()


@settings(max_examples=25, deadline=None)
@given(seed=seeds, act=st.integers(0, 2), index=st.integers(1, 48))
def test_tampered_handshake_act_is_rejected(seed, act, index):
    pair_i = keypair(seed + b"tamper-i")
    pair_r = keypair(seed + b"tamper-r")
    initiator = HandshakeState.initiator(
        pair_i, pair_r.public, entropy=entropy_from(seed + b"i")
    )
    responder = HandshakeState.responder(pair_r, entropy=entropy_from(seed + b"r"))
    acts = []
    acts.append(initiator.write_act_one())
    if act == 0:
        flipped = bytearray(acts[0])
        flipped[index % len(flipped)] ^= 0x40
        with pytest.raises(HandshakeError):
            responder.read_act_one(bytes(flipped))
        return
    responder.read_act_one(acts[0])
    acts.append(responder.write_act_two())
    if act == 1:
        flipped = bytearray(acts[1])
        flipped[index % len(flipped)] ^= 0x40
        with pytest.raises(HandshakeError):
            initiator.read_act_two(bytes(flipped))
        return
    initiator.read_act_two(acts[1])
    flipped = bytearray(initiator.write_act_three())
    flipped[index % len(flipped)] ^= 0x40
    with pytest.raises(HandshakeError):
        responder.read_act_three(bytes(flipped))


def test_handshake_acts_out_of_order_are_rejected():
    pair_i = keypair(b"order-i")
    pair_r = keypair(b"order-r")
    initiator = HandshakeState.initiator(pair_i, pair_r.public)
    with pytest.raises(HandshakeError, match="out of order"):
        initiator.write_act_three()
    with pytest.raises(HandshakeError, match="out of order"):
        initiator.read_act_one(b"\x00" * 49)
    with pytest.raises(HandshakeError, match="incomplete"):
        initiator.session()


# -- transport-frame properties -----------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(seed=seeds, message=st.binary(max_size=256))
def test_replayed_frame_is_rejected(seed, message):
    pair_i = keypair(seed + b"replay-i")
    pair_r = keypair(seed + b"replay-r")
    session_i, session_r = complete_handshake(pair_i, pair_r, seed)
    wire = session_i.encrypt_frame(message)
    assert session_r.decrypt_frame(wire) == message
    # The receive nonce advanced, so the identical bytes no longer verify.
    with pytest.raises(FrameAuthenticationError):
        session_r.decrypt_frame(wire)


@settings(max_examples=60, deadline=None)
@given(
    seed=seeds,
    message=st.binary(max_size=256),
    index=st.integers(0, 10_000),
    truncate=st.booleans(),
)
def test_tampered_or_truncated_frame_is_rejected(seed, message, index, truncate):
    pair_i = keypair(seed + b"mangle-i")
    pair_r = keypair(seed + b"mangle-r")
    session_i, session_r = complete_handshake(pair_i, pair_r, seed)
    wire = session_i.encrypt_frame(message)
    if truncate:
        mangled = wire[: index % len(wire)]
    else:
        flipped = bytearray(wire)
        flipped[index % len(flipped)] ^= 0x01
        mangled = bytes(flipped)
    with pytest.raises(FrameAuthenticationError):
        session_r.decrypt_frame(mangled)


def test_nonces_advance_and_keys_rotate_across_the_rekey_interval():
    pair_i = keypair(b"rekey-i")
    pair_r = keypair(b"rekey-r")
    session_i, session_r = complete_handshake(pair_i, pair_r)
    first_key = session_i.send_cipher.key
    # Each frame costs two nonces (length prefix + body), so this crosses
    # the REKEY_INTERVAL boundary with room to spare.
    for sequence in range(REKEY_INTERVAL // 2 + 4):
        message = b"frame %d" % sequence
        assert session_r.decrypt_frame(session_i.encrypt_frame(message)) == message
    assert session_i.send_cipher.key != first_key
    assert session_r.recv_cipher.key == session_i.send_cipher.key
    assert session_i.send_cipher.nonce < REKEY_INTERVAL


def test_aead_rejects_nonce_and_associated_data_mismatch():
    key = b"k" * 32
    sealed = aead_encrypt(key, 7, b"ad", b"payload")
    assert aead_decrypt(key, 7, b"ad", sealed) == b"payload"
    with pytest.raises(FrameAuthenticationError):
        aead_decrypt(key, 8, b"ad", sealed)  # nonce reuse/skew
    with pytest.raises(FrameAuthenticationError):
        aead_decrypt(key, 7, b"other", sealed)
    with pytest.raises(FrameAuthenticationError):
        aead_decrypt(key, 7, b"ad", sealed[:TAG_SIZE - 1])


# -- adapter interop ----------------------------------------------------------------


def _handshake_sockets():
    server, client = socket.socketpair()
    server.settimeout(10)
    client.settimeout(10)
    return server, client


def test_sync_adapters_interoperate_and_enforce_the_allowlist():
    coordinator = keypair(b"sync-coordinator")
    worker = keypair(b"sync-worker")
    server, client = _handshake_sockets()
    accepted = {}

    def serve():
        accepted["channel"] = accept_secure_sync(
            server, coordinator, frozenset({worker.public})
        )

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    channel = connect_secure_sync(client, worker, coordinator.public)
    thread.join(timeout=10)
    assert not thread.is_alive()
    channel.send_frame(b"hello over sync")
    assert accepted["channel"].recv_frame() == b"hello over sync"
    accepted["channel"].send_frame(b"hello back")
    assert channel.recv_frame() == b"hello back"
    server.close()
    client.close()

    # A rogue key completes the handshake crypto but is rejected by the
    # allowlist before any application frame is exchanged.
    rogue = keypair(b"sync-rogue")
    server, client = _handshake_sockets()
    errors = {}

    def serve_rejecting():
        try:
            accept_secure_sync(server, coordinator, frozenset({worker.public}))
        except HandshakeError as exc:
            errors["server"] = str(exc)

    thread = threading.Thread(target=serve_rejecting, daemon=True)
    thread.start()
    connect_secure_sync(client, rogue, coordinator.public)
    thread.join(timeout=10)
    assert "unauthorized static key" in errors["server"]
    server.close()
    client.close()


def test_sync_worker_interoperates_with_aio_acceptor():
    coordinator = keypair(b"interop-coordinator")
    worker = keypair(b"interop-worker")

    async def main():
        loop = asyncio.get_running_loop()
        received = []

        async def handle(reader, writer):
            channel = await accept_secure_aio(
                reader, writer, coordinator, frozenset({worker.public})
            )
            received.append(await channel.recv_frame())
            await channel.send_frame(b"ack from aio")
            writer.close()

        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]

        def sync_client():
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                channel = connect_secure_sync(sock, worker, coordinator.public)
                channel.send_frame(b"hello from sync")
                return channel.recv_frame()

        reply = await loop.run_in_executor(None, sync_client)
        server.close()
        await server.wait_closed()
        return received, reply

    received, reply = asyncio.run(main())
    assert received == [b"hello from sync"]
    assert reply == b"ack from aio"


# -- key files ----------------------------------------------------------------------


def test_keypair_files_round_trip_and_refuse_overwrite(tmp_path):
    path = tmp_path / "node.key"
    pair = write_keypair(path)
    assert path.stat().st_mode & 0o777 == 0o600
    assert load_keypair(path) == pair
    assert load_public_key(tmp_path / "node.key.pub") == pair.public
    with pytest.raises(KeyFileError, match="refusing to overwrite"):
        write_keypair(path)


def test_allowlist_parses_comments_and_rejects_empty(tmp_path):
    pair_a = keypair(b"allow-a")
    pair_b = keypair(b"allow-b")
    allowlist = tmp_path / "authorized"
    allowlist.write_text(
        "# fleet workers\n"
        f"{pair_a.public.hex()}\n"
        "\n"
        f"  {pair_b.public.hex()}  # rack 2\n",
        encoding="utf-8",
    )
    assert load_allowlist(allowlist) == frozenset({pair_a.public, pair_b.public})
    empty = tmp_path / "empty"
    empty.write_text("# nothing here\n", encoding="utf-8")
    with pytest.raises(KeyFileError, match="no keys"):
        load_allowlist(empty)


def test_ephemeral_credential_trusts_only_itself():
    credential = TransportCredential.ephemeral()
    assert credential.is_authorized(credential.keypair.public)
    other = keypair(b"someone else")
    assert not credential.is_authorized(other.public)


# -- end to end through the distributed substrate -----------------------------------


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _fleet_credentials():
    coordinator = keypair(b"e2e-coordinator")
    worker = keypair(b"e2e-worker")
    return (
        TransportCredential(
            keypair=coordinator, authorized=frozenset({worker.public})
        ),
        TransportCredential(keypair=worker, remote_public=coordinator.public),
    )


def test_secure_distributed_run_matches_plaintext_single_process_bytes(tmp_path):
    single = run_experiment("fig16", scale=SMALL, out_dir=tmp_path / "single")
    coordinator_cred, worker_cred = _fleet_credentials()
    port = _free_port()
    exit_codes = []
    threads = [
        threading.Thread(
            target=lambda rank=rank: exit_codes.append(
                run_worker(
                    host="127.0.0.1",
                    port=port,
                    label=f"s{rank}",
                    transport="secure",
                    credential=worker_cred,
                )
            ),
            daemon=True,
        )
        for rank in range(2)
    ]
    for thread in threads:
        thread.start()
    result = run_distributed(
        "fig16",
        scale=SMALL,
        out_dir=tmp_path / "secure",
        port=port,
        min_workers=2,
        timeout=120,
        transport="secure",
        credential=coordinator_cred,
    )
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()
    assert exit_codes == [0, 0]
    assert result.transport == "secure"
    assert result.workers_seen == 2
    assert (tmp_path / "secure" / "fig16.json").read_bytes() == (
        tmp_path / "single" / "fig16.json"
    ).read_bytes()


def test_unauthorized_worker_is_rejected_before_any_job_frame(tmp_path):
    coordinator_cred, worker_cred = _fleet_credentials()
    rogue_cred = TransportCredential(
        keypair=keypair(b"e2e-rogue"),
        remote_public=coordinator_cred.keypair.public,
    )
    port = _free_port()
    rogue_codes = []
    rogue = threading.Thread(
        target=lambda: rogue_codes.append(
            run_worker(
                host="127.0.0.1",
                port=port,
                label="rogue",
                transport="secure",
                credential=rogue_cred,
                log=lambda message: None,
            )
        ),
        daemon=True,
    )
    good = threading.Thread(
        target=run_worker,
        kwargs={
            "host": "127.0.0.1",
            "port": port,
            "label": "good",
            "transport": "secure",
            "credential": worker_cred,
        },
        daemon=True,
    )
    rogue.start()
    good.start()
    result = run_distributed(
        "fig16",
        scale=SMALL,
        out_dir=tmp_path / "out",
        port=port,
        min_workers=1,
        timeout=120,
        transport="secure",
        credential=coordinator_cred,
    )
    rogue.join(timeout=30)
    good.join(timeout=30)
    # The rogue never joined the job: only the allowlisted worker was seen,
    # and the rogue's run_worker exited non-zero at the handshake.
    assert result.workers_seen == 1
    assert rogue_codes == [1]


def test_plain_worker_cannot_join_a_secure_coordinator(tmp_path):
    # A plaintext hello against the secure acceptor dies at the handshake
    # layer (its bytes are not a valid act one), before the protocol runs.
    coordinator_cred, worker_cred = _fleet_credentials()
    port = _free_port()
    plain_codes = []
    plain = threading.Thread(
        target=lambda: plain_codes.append(
            run_worker(
                host="127.0.0.1",
                port=port,
                label="plain",
                connect_timeout=5,
                log=lambda message: None,
            )
        ),
        daemon=True,
    )
    good = threading.Thread(
        target=run_worker,
        kwargs={
            "host": "127.0.0.1",
            "port": port,
            "label": "good",
            "transport": "secure",
            "credential": worker_cred,
        },
        daemon=True,
    )
    plain.start()
    good.start()
    result = run_distributed(
        "fig16",
        scale=SMALL,
        out_dir=tmp_path / "out",
        port=port,
        min_workers=1,
        timeout=120,
        transport="secure",
        credential=coordinator_cred,
    )
    plain.join(timeout=30)
    good.join(timeout=30)
    assert result.workers_seen == 1
    assert plain_codes == [1]


def test_run_distributed_validates_secure_arguments(tmp_path):
    with pytest.raises(ValueError, match="transport"):
        run_distributed("fig16", scale=SMALL, transport="carrier-pigeon")
    with pytest.raises(ValueError, match="TransportCredential"):
        run_distributed(
            "fig16", scale=SMALL, transport="secure", workers=0, min_workers=1
        )


# -- CLI validation -----------------------------------------------------------------


def test_cli_worker_rejects_unresolvable_host(capsys):
    assert (
        experiments_main(
            ["worker", "--host", "no-such-host.invalid", "--port", "47613"]
        )
        == 2
    )
    assert "cannot resolve host" in capsys.readouterr().err


def test_cli_rejects_bad_ports(capsys):
    assert experiments_main(["worker", "--port", "0"]) == 2
    assert "not 0" in capsys.readouterr().err
    assert experiments_main(["worker", "--port", "70000"]) == 2
    assert "outside the valid range" in capsys.readouterr().err
    assert experiments_main(["coordinate", "fig16", "--port", "80"]) == 2
    assert "privileged" in capsys.readouterr().err


def test_cli_secure_transport_requires_key_files(capsys):
    assert experiments_main(["worker", "--port", "47613", "--transport", "secure"]) == 2
    assert "--keyfile" in capsys.readouterr().err
    assert (
        experiments_main(
            ["coordinate", "fig16", "--port", "47613", "--transport", "secure"]
        )
        == 2
    )
    assert "--keyfile" in capsys.readouterr().err


def test_cli_secure_transport_requires_companion_flags(tmp_path, capsys):
    keyfile = tmp_path / "w.key"
    write_keypair(keyfile)
    assert (
        experiments_main(
            [
                "worker",
                "--port",
                "47613",
                "--transport",
                "secure",
                "--keyfile",
                str(keyfile),
            ]
        )
        == 2
    )
    assert "--coordinator-key" in capsys.readouterr().err
    assert (
        experiments_main(
            [
                "coordinate",
                "fig16",
                "--port",
                "47613",
                "--transport",
                "secure",
                "--keyfile",
                str(keyfile),
            ]
        )
        == 2
    )
    assert "--authorized-keys" in capsys.readouterr().err


def test_cli_key_flags_require_secure_transport(tmp_path, capsys):
    keyfile = tmp_path / "w.key"
    write_keypair(keyfile)
    assert (
        experiments_main(
            ["worker", "--port", "47613", "--keyfile", str(keyfile)]
        )
        == 2
    )
    assert "require --transport secure" in capsys.readouterr().err


def test_cli_run_transport_requires_dist(capsys):
    assert experiments_main(["run", "fig16", "--transport", "secure"]) == 2
    assert "--dist" in capsys.readouterr().err


def test_cli_keygen_writes_and_refuses_overwrite(tmp_path, capsys):
    path = tmp_path / "fleet.key"
    assert experiments_main(["keygen", str(path)]) == 0
    output = capsys.readouterr().out
    assert "public hex" in output
    assert load_keypair(path).public == load_public_key(tmp_path / "fleet.key.pub")
    assert experiments_main(["keygen", str(path)]) == 2
    assert "refusing to overwrite" in capsys.readouterr().err


def test_cli_secure_dist_round_trip(tmp_path, capsys):
    # `run --dist N --transport secure` provisions throwaway keys for its
    # spawned workers and still merges byte-identically.
    single = tmp_path / "single"
    dist = tmp_path / "dist"
    assert (
        experiments_main(
            ["run", "fig16", "--scale", str(SMALL), "--out", str(single)]
        )
        == 0
    )
    assert (
        experiments_main(
            [
                "run",
                "fig16",
                "--scale",
                str(SMALL),
                "--out",
                str(dist),
                "--dist",
                "2",
                "--transport",
                "secure",
            ]
        )
        == 0
    )
    assert "dist-workers=2" in capsys.readouterr().out
    assert (dist / "fig16.json").read_bytes() == (single / "fig16.json").read_bytes()
