"""Unit and property tests for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FieldError
from repro.core.gf import GF, GF256

elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)


def test_add_is_xor():
    assert int(GF.add(0x53, 0xCA)) == 0x53 ^ 0xCA


def test_add_identity_and_self_inverse():
    values = np.arange(256, dtype=np.uint8)
    assert np.array_equal(GF.add(values, 0), values)
    assert np.array_equal(GF.add(values, values), np.zeros(256, dtype=np.uint8))


def test_multiply_by_zero_and_one():
    values = np.arange(256, dtype=np.uint8)
    assert np.array_equal(GF.multiply(values, 0), np.zeros(256, dtype=np.uint8))
    assert np.array_equal(GF.multiply(values, 1), values)


def test_known_aes_product():
    # 0x53 * 0xCA = 0x01 under the AES polynomial.
    assert int(GF.multiply(0x53, 0xCA)) == 0x01


def test_inverse_of_zero_raises():
    with pytest.raises(FieldError):
        GF.inverse(0)


def test_divide_by_zero_raises():
    with pytest.raises(FieldError):
        GF.divide(5, 0)


def test_inverse_table_consistency():
    values = np.arange(1, 256, dtype=np.uint8)
    products = GF.multiply(values, GF.inverse(values))
    assert np.all(products == 1)


@given(a=elements, b=elements, c=elements)
@settings(max_examples=200, deadline=None)
def test_multiplication_is_commutative_and_distributive(a, b, c):
    assert int(GF.multiply(a, b)) == int(GF.multiply(b, a))
    left = int(GF.multiply(a, GF.add(b, c)))
    right = int(GF.add(GF.multiply(a, b), GF.multiply(a, c)))
    assert left == right


@given(a=elements, b=nonzero_elements)
@settings(max_examples=200, deadline=None)
def test_division_inverts_multiplication(a, b):
    assert int(GF.divide(GF.multiply(a, b), b)) == a


@given(a=nonzero_elements, n=st.integers(min_value=-6, max_value=6))
@settings(max_examples=100, deadline=None)
def test_power_matches_repeated_multiplication(a, n):
    expected = np.uint8(1)
    base = np.uint8(a) if n >= 0 else GF.inverse(np.uint8(a))
    for _ in range(abs(n)):
        expected = GF.multiply(expected, base)
    assert int(GF.power(a, n)) == int(expected)


def test_matmul_against_manual_dot():
    rng = np.random.default_rng(0)
    a = GF.random_elements((3, 4), rng)
    b = GF.random_elements((4, 2), rng)
    product = GF.matmul(a, b)
    for i in range(3):
        for j in range(2):
            assert product[i, j] == GF.dot(a[i], b[:, j])


def test_matmul_shape_mismatch_raises():
    with pytest.raises(FieldError):
        GF.matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))


def test_invert_matrix_roundtrip():
    rng = np.random.default_rng(1)
    for _ in range(10):
        matrix = GF.random_elements((4, 4), rng)
        if not GF.is_invertible(matrix):
            continue
        inverse = GF.invert_matrix(matrix)
        assert np.array_equal(GF.matmul(matrix, inverse), np.eye(4, dtype=np.uint8))


def test_invert_singular_matrix_raises():
    singular = np.array([[1, 2], [2, 4]], dtype=np.uint8)
    # Row 2 = 2 * row 1 over GF(2^8): [2, 4] == 2*[1, 2].
    assert GF.rank(singular) == 1
    with pytest.raises(FieldError):
        GF.invert_matrix(singular)


def test_rank_of_identity_and_zero():
    assert GF.rank(np.eye(5, dtype=np.uint8)) == 5
    assert GF.rank(np.zeros((3, 4), dtype=np.uint8)) == 0


def test_solve_recovers_vector():
    rng = np.random.default_rng(2)
    matrix = GF.random_elements((5, 5), rng)
    while not GF.is_invertible(matrix):
        matrix = GF.random_elements((5, 5), rng)
    x = GF.random_elements(5, rng)
    b = GF.mat_vec(matrix, x)
    assert np.array_equal(GF.solve(matrix, b), x)


def test_validate_elements_rejects_out_of_range():
    with pytest.raises(FieldError):
        GF.validate_elements([0, 255, 256])


def test_bad_generator_rejected():
    # Under the AES polynomial 0x02 has multiplicative order 51, so it only
    # generates a subgroup and the table construction must refuse it.
    with pytest.raises(FieldError):
        GF256(generator=0x02, polynomial=0x11B)
