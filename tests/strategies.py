"""Shared hypothesis strategies for the test suite.

The wire-format, distributed-protocol and data-plane suites each grew their
own inline strategies for the same shapes — coded blocks, packets, JSON
rows, ``(d, d', L)`` triples.  This module is the single home for those
generators, so new suites (the sphinx property harness, the scenario-profile
tests) reuse them instead of redefining them.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core.coder import CodedBlock
from repro.core.packet import Packet, PacketKind

# -- JSON shapes (the distributed coordinator's wire protocol) ----------------------

#: JSON-able scalar values as they appear in trial rows.
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**53), 2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

#: Row-shaped dictionaries: string keys, scalar or shallow-list values.
json_rows = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(json_scalars, st.lists(json_scalars, max_size=4)),
    max_size=6,
)


@st.composite
def lease_messages(draw):
    """Coordinator→worker lease frames."""
    indices = draw(st.lists(st.integers(0, 2**32), min_size=1, max_size=16))
    return {
        "type": "lease",
        "lease_id": draw(st.integers(1, 2**53)),
        "indices": indices,
    }


@st.composite
def result_messages(draw):
    """Worker→coordinator result frames carrying row-shaped payloads."""
    entries = draw(
        st.lists(st.tuples(st.integers(0, 2**32), json_rows), min_size=1, max_size=8)
    )
    return {
        "type": "result",
        "lease_id": draw(st.integers(1, 2**53)),
        "results": [[index, row] for index, row in entries],
    }


# -- coding-layer shapes ------------------------------------------------------------


@st.composite
def coded_blocks(draw, d: int, payload_bytes: int):
    """One coded slice with ``d`` coefficients and a fixed payload width."""
    coefficients = draw(st.lists(st.integers(0, 255), min_size=d, max_size=d))
    payload = draw(
        st.lists(st.integers(0, 255), min_size=payload_bytes, max_size=payload_bytes)
    )
    index = draw(st.integers(-1, 64))
    return CodedBlock(
        coefficients=np.array(coefficients, dtype=np.uint8),
        payload=np.array(payload, dtype=np.uint8),
        index=index,
    )


@st.composite
def packets(draw):
    """Packets across all slot layouts: any d, slice count and slice size."""
    d = draw(st.integers(1, 8))
    payload_bytes = draw(st.integers(1, 48))
    slice_count = draw(st.integers(1, 6))
    slices = [draw(coded_blocks(d, payload_bytes)) for _ in range(slice_count)]
    return Packet(
        flow_id=draw(st.integers(0, 2**64 - 1)),
        kind=draw(st.sampled_from(list(PacketKind))),
        slices=slices,
        d=d,
        lane=draw(st.integers(0, 255)),
        seq=draw(st.integers(0, 2**32 - 1)),
    )


@st.composite
def dimension_triples(draw, max_d: int = 3, max_extra: int = 2, max_path: int = 4):
    """``(d, d', path_length)`` triples in the ranges figs 11–15 exercise."""
    d = draw(st.integers(2, max_d))
    d_prime = d + draw(st.integers(0, max_extra))
    path_length = draw(st.integers(2, max_path))
    return d, d_prime, path_length


# -- payloads and routes ------------------------------------------------------------


def payload_blobs(min_size: int = 0, max_size: int = 160):
    """Arbitrary binary message payloads."""
    return st.binary(min_size=min_size, max_size=max_size)


@st.composite
def distinct_key_pairs(draw, min_size: int = 1, max_size: int = 32):
    """Two unequal symmetric keys (the wrong-key negative paths)."""
    key = draw(st.binary(min_size=min_size, max_size=max_size))
    other = draw(
        st.binary(min_size=min_size, max_size=max_size).filter(lambda k: k != key)
    )
    return key, other


@st.composite
def routes(draw, max_hops: int = 8, prefix: str = "relay"):
    """A relay pool, a distinct destination and a feasible path length."""
    path_length = draw(st.integers(1, max_hops))
    pool_size = draw(st.integers(path_length, max_hops + 4))
    relays = [f"{prefix}-{index}" for index in range(pool_size)]
    return relays, "destination", path_length


# -- scenario axes ------------------------------------------------------------------


@st.composite
def scenario_axis_params(draw):
    """One cell's full axis assignment in trial-dict form.

    Spans both base profiles and the documented range of every
    profile-shaping axis (jitter, bandwidth, asymmetry, CPU heterogeneity);
    the remaining axes ride along so the dict looks exactly like a trial's
    params.
    """
    return {
        "profile": draw(st.sampled_from(["lan", "planetlab"])),
        "jitter": draw(st.floats(0.0, 1.5)),
        "bandwidth_mbps": draw(st.one_of(st.just(0.0), st.floats(0.5, 1000.0))),
        "asymmetry": draw(st.floats(1.0, 16.0)),
        "cpu_heterogeneity": draw(st.floats(0.0, 4.0)),
        "loss": draw(st.floats(0.0, 0.99)),
        "adversary": draw(st.floats(0.0, 0.99)),
        "d": draw(st.integers(2, 3)),
        "d_prime": draw(st.integers(3, 5)),
        "path_length": draw(st.integers(2, 6)),
    }
