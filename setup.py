"""Compatibility shim: lets `pip install -e . --no-use-pep517` work in
minimal environments (no `wheel` package, no network for build isolation).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
