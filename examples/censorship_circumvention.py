"""Censorship circumvention through a national firewall (§9.3 + §9.1).

A sender behind a snooping firewall wants to reach an outside destination.
She picks relays spread across many autonomous systems (so no single network
— including her own country's — hosts enough of the graph to reconstruct it),
splits every message, and tunnels one slice through a pseudo-source outside
the firewall.  The firewall sees traffic but never holds enough slices of any
one node's information to decode it.

Run with:  python examples/censorship_circumvention.py
"""

import numpy as np

from repro.core import SliceCoder, Source
from repro.core.packet import PacketKind
from repro.overlay import LocalOverlay
from repro.overlay.address import assign_overlay_addresses, generate_as_database
from repro.overlay.selection import as_diverse_selection


def main() -> None:
    rng = np.random.default_rng(11)

    # A synthetic AS-level view of the overlay (stand-in for RouteViews data).
    database = generate_as_database(num_ases=40, rng=rng)
    overlay_addresses = assign_overlay_addresses(database, 300, rng)

    # Pick relays spread over distinct ASes / countries (§9.1).
    selection = as_diverse_selection(overlay_addresses, 60, database, rng)
    print(
        f"Selected {len(selection.relays)} relays across "
        f"{selection.distinct_ases} ASes and {selection.distinct_countries} countries"
    )

    overlay = LocalOverlay()
    overlay.add_nodes(selection.relays + ["free-press.example"])

    # The sender's pseudo-source is an account outside the firewall; traffic
    # to it goes over a pre-existing secure channel (§3c).
    sender = Source(
        address="sender-inside.example",
        pseudo_sources=["friend-outside.example"],
        d=2,
        path_length=4,
        rng=rng,
    )
    flow, delivered = overlay.run_flow(
        sender,
        selection.relays,
        destination="free-press.example",
        messages=[b"report: the dam is failing, publish at 09:00"],
    )
    print(f"Destination decoded: {delivered[0].decode()!r}")

    # What does the firewall see?  Model it as an eavesdropper on every link
    # that touches the sender's country: it observes the sender's own packets.
    firewall_view = overlay.observed_by({"sender-inside.example"})
    data_slices = [
        record.packet.slices[0]
        for record in firewall_view
        if record.packet.kind == PacketKind.DATA
    ]
    coder = SliceCoder(flow.d)
    print(
        "Firewall captured "
        f"{len(data_slices)} data slice(s) from the sender's own uplink; "
        f"can it decode the message? {coder.can_decode(data_slices[:1])}"
    )
    print(
        "The second slice of every message travelled through the outside "
        "pseudo-source, which the firewall cannot read."
    )


if __name__ == "__main__":
    main()
