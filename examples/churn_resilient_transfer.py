"""Churn-resilient anonymous file transfer (§4.4, §8).

A long transfer over a flaky peer-to-peer overlay: relays die mid-session.
With redundancy (d' > d) and in-network regeneration, the transfer completes
anyway; the same failures kill a no-redundancy flow.  This is the scenario
behind Fig. 17.

Run with:  python examples/churn_resilient_transfer.py
"""

import numpy as np

from repro.core import Source
from repro.overlay import LocalOverlay


def run_transfer(d: int, d_prime: int, kill_per_stage: int, seed: int = 3) -> int:
    """Send 20 chunks of a file while killing relays; return chunks delivered."""
    rng = np.random.default_rng(seed)
    overlay = LocalOverlay()
    relays = [f"peer-{i}" for i in range(80)]
    overlay.add_nodes(relays + ["receiver"])
    source = Source(
        "sender-home",
        [f"sender-alt-{i}" for i in range(d_prime - 1)],
        d=d,
        d_prime=d_prime,
        path_length=5,
        rng=rng,
    )
    flow = source.establish_flow(relays, "receiver")
    overlay.inject(flow.setup_packets)

    file_chunks = [bytes([i]) * 4096 for i in range(20)]
    for index, chunk in enumerate(file_chunks):
        # Halfway through, churn strikes: one relay per stage disappears.
        if index == len(file_chunks) // 2:
            for stage in flow.graph.stages[1:]:
                victims = [node for node in stage if node != "receiver"]
                for victim in victims[:kill_per_stage]:
                    overlay.fail_node(victim)
        overlay.inject(source.make_data_packets(flow, chunk))
        overlay.flush_flow(flow)

    delivered = overlay.node("receiver").delivered_messages(
        flow.plan.flow_ids["receiver"]
    )
    correct = sum(
        1 for seq, chunk in enumerate(file_chunks) if delivered.get(seq) == chunk
    )
    return correct


def main() -> None:
    print("20-chunk transfer over an overlay that loses one relay per stage:")
    plain = run_transfer(d=2, d_prime=2, kill_per_stage=1)
    print(f"  no redundancy   (d=2, d'=2): {plain}/20 chunks delivered")
    coded = run_transfer(d=2, d_prime=3, kill_per_stage=1)
    print(f"  with redundancy (d=2, d'=3): {coded}/20 chunks delivered")
    print()
    print(
        "The redundant flow keeps going because surviving relays regenerate\n"
        "lost slices with network coding (§4.4.1); the plain flow stalls as\n"
        "soon as any stage loses a node."
    )


if __name__ == "__main__":
    main()
