"""Parameter study: how do L, d and redundancy affect anonymity?

Reproduces, at reduced scale, the sweeps behind Figs. 7-10 so a user can pick
protocol parameters for their own threat model (expected fraction of
colluding nodes), and prints the resulting operating points.

Run with:  python examples/anonymity_study.py
"""

from repro.anonymity import simulate_anonymity_batch
from repro.experiments import format_table


def main() -> None:
    print("Anonymity (entropy / log N) for N=10000 nodes, 300 trials per point\n")

    rows = []
    for fraction in (0.05, 0.1, 0.2, 0.4):
        for path_length, d in ((5, 2), (8, 3), (12, 3)):
            result = simulate_anonymity_batch(
                num_nodes=10_000,
                path_length=path_length,
                d=d,
                fraction_malicious=fraction,
                trials=300,
            )
            rows.append(
                {
                    "fraction_malicious": fraction,
                    "L": path_length,
                    "d": d,
                    "source_anonymity": round(result.source_anonymity, 3),
                    "destination_anonymity": round(result.destination_anonymity, 3),
                }
            )
    print(format_table(rows))
    print()
    print(
        "Reading the table: longer paths buy anonymity at the cost of setup\n"
        "latency (Fig. 14); against a stronger adversary (f=0.4) a larger\n"
        "split factor helps because whole stages are harder to capture."
    )


if __name__ == "__main__":
    main()
