"""Quickstart: send a confidential, anonymous message without any keys.

Alice wants to tell Bob "Let's meet at 5pm" without exposing the message, or
the fact that she is talking to Bob, to any relay.  She has two IP addresses
(home and work), knows a handful of overlay nodes, and Bob runs the overlay
software.  No public keys anywhere — this is the paper's opening scenario.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Source
from repro.overlay import LocalOverlay


def main() -> None:
    rng = np.random.default_rng(7)

    # The overlay Alice knows about: ordinary peer-to-peer nodes plus Bob.
    overlay = LocalOverlay()
    relay_addresses = [f"peer-{i}.p2p.example" for i in range(30)]
    overlay.add_nodes(relay_addresses + ["bob.example"])

    # Alice controls two addresses: her home connection (the real source) and
    # her work machine (a pseudo-source).  She splits every message into d=2
    # slices and routes them over L=3 stages of relays.
    alice = Source(
        address="alice-home.example",
        pseudo_sources=["alice-work.example"],
        d=2,
        path_length=3,
        rng=rng,
    )

    # Establish the forwarding graph and send two messages through it.
    flow, delivered = overlay.run_flow(
        alice,
        relay_addresses,
        destination="bob.example",
        messages=[b"Let's meet at 5pm", b"Bring the blueprints"],
    )

    print("Forwarding graph (stage -> relays):")
    for index, stage in enumerate(flow.graph.stages):
        marker = "  <- source stage" if index == 0 else ""
        print(f"  stage {index}: {stage}{marker}")
    print(f"Bob is hidden in stage {flow.graph.destination_stage}")
    print()
    print("Messages decoded by Bob:")
    for seq, message in sorted(delivered.items()):
        print(f"  #{seq}: {message.decode()}")

    # No relay other than Bob decoded anything.
    spies = [
        relay
        for relay in flow.graph.relays
        if relay != "bob.example"
        and any(
            overlay.node(relay).delivered_messages(flow_id)
            for flow_id in overlay.node(relay).flows
        )
    ]
    print()
    print(f"Relays that learned the message besides Bob: {spies or 'none'}")


if __name__ == "__main__":
    main()
