#!/usr/bin/env python
"""Check that every relative link in the repo's markdown docs resolves.

Scans the top-level ``*.md`` files and everything under ``docs/`` for
markdown links, skips external schemes (http/https/mailto) and pure
in-page anchors, and verifies that each remaining target exists relative
to the file containing the link.  Exits non-zero with one line per broken
link, so CI can gate on it.

Usage:  python scripts/check_doc_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Matches [text](target), [text](<target with spaces>) and
# [text](target "title"); group 1 or 2 is the link target.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(\s*(?:<([^>]+)>|([^)\s]+))(?:\s+\"[^\"]*\")?\s*\)")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def markdown_files(root: Path) -> list[Path]:
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def broken_links(root: Path) -> list[str]:
    failures = []
    for md_file in markdown_files(root):
        text = md_file.read_text(encoding="utf-8")
        for match in LINK_PATTERN.finditer(text):
            target = match.group(1) or match.group(2)
            if target.startswith(EXTERNAL_SCHEMES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md_file.parent / path_part).resolve()
            if not resolved.exists():
                failures.append(
                    f"{md_file.relative_to(root)}: broken link -> {target}"
                )
    return failures


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    failures = broken_links(root)
    for failure in failures:
        print(failure, file=sys.stderr)
    checked = len(markdown_files(root))
    if failures:
        print(f"{len(failures)} broken link(s) across {checked} markdown file(s)")
        return 1
    print(f"all relative links resolve across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
