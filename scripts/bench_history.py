#!/usr/bin/env python
"""Collect the benchmark speedup gates into BENCH_trajectory.json.

``collect`` reads whichever gate artifacts (anonbench, chaumbench,
dataplane-bench, distbench, distsweep, gfbench, sphinxbench) exist in the
given results directories and
upserts one entry per ``--label`` into the versioned trajectory file;
``render`` prints the trajectory as the markdown trend table that the
scenario report embeds.

Usage:
    python scripts/bench_history.py collect --label pr6 \
        --results results [--results more/results] [--out BENCH_trajectory.json]
    python scripts/bench_history.py render [--trajectory BENCH_trajectory.json]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

try:
    from repro.experiments import bench_history
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.experiments import bench_history

DEFAULT_TRAJECTORY = REPO_ROOT / "BENCH_trajectory.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    subparsers = parser.add_subparsers(dest="command", required=True)

    collect = subparsers.add_parser("collect", help="record gate speedups for a label")
    collect.add_argument("--label", required=True, help="entry label (PR number or commit)")
    collect.add_argument(
        "--results",
        action="append",
        type=Path,
        default=None,
        help="results directory to probe for gate artifacts (repeatable)",
    )
    collect.add_argument("--out", type=Path, default=DEFAULT_TRAJECTORY)

    render = subparsers.add_parser("render", help="print the trajectory trend table")
    render.add_argument("--trajectory", type=Path, default=DEFAULT_TRAJECTORY)

    args = parser.parse_args(argv)
    if args.command == "collect":
        results_dirs = args.results or [REPO_ROOT / "results"]
        try:
            trajectory, missing = bench_history.collect(args.label, results_dirs, args.out)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        entry = next(e for e in trajectory["entries"] if e["label"] == args.label)
        print(f"{args.out}: label {args.label!r} records {len(entry['gates'])} gate(s)")
        for gate in missing:
            print(f"  missing artifact for gate {gate!r}", file=sys.stderr)
        return 0
    print(bench_history.render_trend(bench_history.load_trajectory(args.trajectory)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
