"""Anonymity evaluation: entropy metric, attacker model, analysis, Monte Carlo."""

from .analysis import (
    destination_case1_probability,
    expected_destination_anonymity,
    expected_source_anonymity,
    redundancy_overhead,
    source_case1_probability,
)
from .attacker import (
    AttackerView,
    AttackerViewBatch,
    StageLayout,
    StageLayoutBatch,
    sample_stage_layout,
    sample_stage_layout_batch,
)
from .metrics import (
    degree_of_anonymity,
    entropy,
    information_bits_missing,
    max_entropy,
    two_level_anonymity,
)
from .simulation import (
    AnonymityResult,
    AnonymityTrialValues,
    destination_anonymity_for_view,
    simulate_anonymity,
    simulate_anonymity_batch,
    simulate_anonymity_trials,
    source_anonymity_for_view,
    sweep_anonymity,
    sweep_malicious_fraction,
    sweep_path_length,
    sweep_redundancy,
    sweep_split_factor,
)

__all__ = [
    "entropy",
    "max_entropy",
    "degree_of_anonymity",
    "two_level_anonymity",
    "information_bits_missing",
    "StageLayout",
    "StageLayoutBatch",
    "AttackerView",
    "AttackerViewBatch",
    "sample_stage_layout",
    "sample_stage_layout_batch",
    "AnonymityResult",
    "AnonymityTrialValues",
    "simulate_anonymity",
    "simulate_anonymity_batch",
    "simulate_anonymity_trials",
    "source_anonymity_for_view",
    "destination_anonymity_for_view",
    "sweep_anonymity",
    "sweep_malicious_fraction",
    "sweep_split_factor",
    "sweep_path_length",
    "sweep_redundancy",
    "source_case1_probability",
    "destination_case1_probability",
    "expected_source_anonymity",
    "expected_destination_anonymity",
    "redundancy_overhead",
]
