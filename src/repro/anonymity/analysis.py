"""Analytical anonymity models from Appendix A.

These closed-form expressions complement the Monte-Carlo simulation: they
give the probability of the catastrophic "Case 1" events (the attacker
decodes the graph and anonymity collapses to zero) and the conditional
probability assignments of Eqs. 8 and 11, including the redundancy-aware
variants of Appendix A.3 used for Fig. 10.
"""

from __future__ import annotations

import math

from .metrics import two_level_anonymity


def _g(x: int, y: int, z: float) -> float:
    """The helper ``g(x, y, z) = Σ_{i=1..y} C(x, i) z^i (1-z)^(x-i)`` (App. A.2)."""
    return sum(
        math.comb(x, i) * (z**i) * ((1.0 - z) ** (x - i)) for i in range(1, y + 1)
    )


def source_case1_probability(
    f: float, d: int, d_prime: int | None = None
) -> float:
    """Probability the attacker controls enough of stage 1 to unmask the source.

    Without redundancy this is ``f^d`` (all of stage 1 malicious).  With
    redundancy ``d' > d`` the attacker needs only ``d`` of the ``d'`` relays
    in stage 1 (Appendix A.3).

    >>> round(source_case1_probability(0.2, 3), 6)
    0.008
    >>> source_case1_probability(0.2, 3, 5) > source_case1_probability(0.2, 3)
    True
    """
    d_prime = d if d_prime is None else d_prime
    return sum(
        math.comb(d_prime, i) * (f**i) * ((1.0 - f) ** (d_prime - i))
        for i in range(d, d_prime + 1)
    )


def destination_case1_probability(
    f: float, d: int, path_length: int, d_prime: int | None = None
) -> float:
    """Probability some stage upstream of the destination is fully decodable.

    Implements Eqs. 9, 10 and, when ``d' > d``, Eq. 12: the destination sits
    in stage ``j + 1`` with probability ``1/L`` and the attacker wins if at
    least one of the ``j`` upstream stages contains ``d`` (of ``d'``)
    malicious relays.
    """
    d_prime = d if d_prime is None else d_prime
    per_stage = source_case1_probability(f, d, d_prime)
    if per_stage <= 0:
        return 0.0
    total = 0.0
    for j in range(0, path_length):
        # Destination in stage j+1; attacker needs >=1 decodable stage among j.
        p_fail = 1.0 - (1.0 - per_stage) ** j
        total += p_fail
    return total / path_length


def expected_source_anonymity(
    num_nodes: int,
    path_length: int,
    d: int,
    f: float,
    chain_length: float,
    d_prime: int | None = None,
) -> float:
    """Source anonymity for a given exposed-chain length ``s`` (Eq. 8 + Eq. 5).

    ``chain_length`` is the attacker's longest run of exposed stages; the
    Monte-Carlo simulation estimates its distribution, but this helper is
    useful for sensitivity studies and tests.
    """
    d_prime = d if d_prime is None else d_prime
    s = min(int(round(chain_length)), path_length - 1)
    if s <= 0:
        clean = int(num_nodes * (1.0 - f))
        return two_level_anonymity(0, 0.0, clean, 1.0 / max(clean, 1), num_nodes)
    gamma_mass = 1.0 / max(path_length - s + 2, 2)
    gamma_size = d_prime
    p_gamma = gamma_mass / gamma_size
    others = max(int(num_nodes * (1.0 - f)) - gamma_size, 1)
    p_other = (1.0 - gamma_mass) / others
    anonymity = two_level_anonymity(gamma_size, p_gamma, others, p_other, num_nodes)
    case1 = source_case1_probability(f, d, d_prime)
    return (1.0 - case1) * anonymity


def expected_destination_anonymity(
    num_nodes: int,
    path_length: int,
    d: int,
    f: float,
    chain_length: float,
    d_prime: int | None = None,
) -> float:
    """Destination anonymity for a given exposed-chain length (Eq. 11 + Eq. 5)."""
    d_prime = d if d_prime is None else d_prime
    s = min(int(round(chain_length)), path_length)
    if s <= 0:
        clean = int(num_nodes * (1.0 - f))
        return two_level_anonymity(0, 0.0, clean, 1.0 / max(clean, 1), num_nodes)
    suspects = max(int(s * d_prime * (1.0 - f)), 1)
    p_suspect = 1.0 / (path_length * d_prime * (1.0 - f))
    others = max(int((num_nodes - s * d_prime) * (1.0 - f)), 1)
    p_other = (1.0 - s / path_length) / others
    anonymity = two_level_anonymity(suspects, p_suspect, others, p_other, num_nodes)
    case1 = destination_case1_probability(f, d, path_length, d_prime)
    return (1.0 - case1) * anonymity


def redundancy_overhead(d: int, d_prime: int) -> float:
    """Added redundancy R = (d' - d)/d (§4.4, §8.1).

    >>> redundancy_overhead(3, 6)
    1.0
    >>> redundancy_overhead(2, 2)
    0.0
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    return (d_prime - d) / d
