"""Colluding-attacker view of a forwarding graph (§6.2, Appendix A).

The adversary controls a fraction ``f`` of the overlay.  A malicious relay
learns its parents (the full previous stage), its children (the full next
stage), and nothing else: slice contents are pi-secure and flow-ids change at
every hop, so malicious relays can link their observations only when they sit
in *consecutive* stages of the same graph.

:class:`AttackerView` condenses everything the colluding set can derive from
a particular graph instance:

* which stages are *exposed* (their full membership is visible),
* the longest run ``s`` of consecutive exposed stages and its first stage
  ``Γ`` (the attacker's best guess at the source stage),
* whether some stage is *decodable* — at least ``d`` of its ``d'`` members
  are malicious, letting the attacker pool slices and decode the entire
  downstream graph (Case 1 of the appendix).

Two representations coexist.  :class:`StageLayout` / :class:`AttackerView`
hold one graph instance as plain Python objects — the readable reference
implementation.  :class:`StageLayoutBatch` / :class:`AttackerViewBatch` hold
*all* Monte-Carlo trials of a parameter point as flat numpy arrays and derive
every attacker quantity with vectorised kernels; this is what
:func:`~repro.anonymity.simulation.simulate_anonymity_batch` builds on.  Both
*simulation engines* draw their randomness through
:func:`sample_stage_layout_batch`, so equal seeds give them the identical
trial set.  (The standalone per-instance sampler :func:`sample_stage_layout`
predates the batch sampler and consumes the generator in a different order —
seeding both the same does *not* reproduce the same layout.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StageLayout:
    """A lightweight stand-in for a forwarding graph used in anonymity studies.

    ``malicious[l][i]`` says whether node ``i`` of stage ``l`` is controlled
    by the attacker.  Stage 0 is the source stage, which is never malicious
    (the source uses its own machines).  ``destination_stage`` /
    ``destination_position`` locate the receiver.
    """

    malicious: tuple[tuple[bool, ...], ...]
    destination_stage: int
    destination_position: int
    d: int
    d_prime: int

    @property
    def path_length(self) -> int:
        return len(self.malicious) - 1

    def stage_malicious_count(self, stage: int) -> int:
        return sum(self.malicious[stage])

    def stage_has_malicious(self, stage: int) -> bool:
        return any(self.malicious[stage])


def sample_stage_layout(
    path_length: int,
    d: int,
    fraction_malicious: float,
    rng: np.random.Generator,
    d_prime: int | None = None,
) -> StageLayout:
    """Sample one random graph instance for the Monte-Carlo anonymity study.

    Relays are drawn from a large overlay in which a fraction ``f`` of nodes
    is malicious, so each relay slot is malicious independently with
    probability ``f``.  The source stage is clean by assumption (§3c) and the
    destination is placed uniformly at random among the relay slots, and is
    of course not malicious.
    """
    d_prime = d if d_prime is None else d_prime
    stages: list[tuple[bool, ...]] = [tuple([False] * d_prime)]
    flags = rng.random((path_length, d_prime)) < fraction_malicious
    destination_stage = int(rng.integers(1, path_length + 1))
    destination_position = int(rng.integers(0, d_prime))
    for stage_index in range(1, path_length + 1):
        row = list(flags[stage_index - 1])
        if stage_index == destination_stage:
            row[destination_position] = False
        stages.append(tuple(bool(x) for x in row))
    return StageLayout(
        malicious=tuple(stages),
        destination_stage=destination_stage,
        destination_position=destination_position,
        d=d,
        d_prime=d_prime,
    )


@dataclass
class AttackerView:
    """What a colluding adversary can infer from one graph instance."""

    layout: StageLayout
    exposed_stages: tuple[bool, ...]
    longest_chain_start: int
    longest_chain_length: int
    first_stage_decodable: bool
    decodable_stage_before_destination: bool

    @property
    def chain_stages(self) -> range:
        return range(
            self.longest_chain_start,
            self.longest_chain_start + self.longest_chain_length,
        )

    @classmethod
    def from_layout(cls, layout: StageLayout) -> "AttackerView":
        num_stages = len(layout.malicious)  # L + 1 including the source stage
        # Stage j is exposed when the attacker has a vantage point onto it: a
        # malicious node in stage j itself, a malicious child (which sees all
        # of stage j as its parents) or a malicious parent (which sees all of
        # stage j as its children).
        exposed = []
        for stage in range(num_stages):
            own = layout.stage_has_malicious(stage) if stage >= 1 else False
            before = stage - 1 >= 1 and layout.stage_has_malicious(stage - 1)
            after = stage + 1 < num_stages and layout.stage_has_malicious(stage + 1)
            exposed.append(own or before or after)
        start, length = _longest_true_run(exposed)

        # Case-1 conditions: the attacker decodes everything downstream of a
        # stage in which it controls at least d of the d' relays.
        first_stage_decodable = layout.stage_malicious_count(1) >= layout.d
        decodable_before_destination = any(
            layout.stage_malicious_count(stage) >= layout.d
            for stage in range(1, layout.destination_stage)
        )
        return cls(
            layout=layout,
            exposed_stages=tuple(exposed),
            longest_chain_start=start,
            longest_chain_length=length,
            first_stage_decodable=first_stage_decodable,
            decodable_stage_before_destination=decodable_before_destination,
        )

    def known_relay_count(self) -> int:
        """Number of relay slots inside the longest exposed chain."""
        relay_stages = [
            stage for stage in self.chain_stages if 1 <= stage <= self.layout.path_length
        ]
        return len(relay_stages) * self.layout.d_prime

    def destination_in_chain(self) -> bool:
        return self.layout.destination_stage in self.chain_stages


def _longest_true_run(values: list[bool]) -> tuple[int, int]:
    """Return (start, length) of the longest run of True values.

    Ties resolve to the *first* longest run, and an empty or all-False input
    yields ``(0, 0)``:

    >>> _longest_true_run([True, True, False, True, True, True])
    (3, 3)
    >>> _longest_true_run([True, True, False, True, True])
    (0, 2)
    >>> _longest_true_run([])
    (0, 0)
    """
    best_start, best_length = 0, 0
    current_start, current_length = 0, 0
    for index, value in enumerate(values):
        if value:
            if current_length == 0:
                current_start = index
            current_length += 1
            if current_length > best_length:
                best_start, best_length = current_start, current_length
        else:
            current_length = 0
    return best_start, best_length


def _longest_true_runs(mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`_longest_true_run` over the rows of a 2-D bool mask.

    Returns ``(starts, lengths)`` arrays of shape ``(rows,)``.  The Python
    loop runs over the ~``L + 1`` columns, never over the (many) rows: column
    ``j`` of ``streak`` holds, for every row at once, the length of the True
    run ending at ``j``.  ``argmax`` then finds the first column attaining
    each row's maximum streak, which is exactly the end of the row's *first*
    longest run — the same tie-break the scalar helper uses.

    >>> import numpy as np
    >>> starts, lengths = _longest_true_runs(
    ...     np.array([[True, True, False, True], [False, False, False, False]])
    ... )
    >>> starts.tolist(), lengths.tolist()
    ([0, 0], [2, 0])
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"expected a 2-D boolean mask, got shape {mask.shape}")
    rows, cols = mask.shape
    streak = np.zeros((rows, cols), dtype=np.int64)
    if cols == 0:
        return np.zeros(rows, dtype=np.int64), np.zeros(rows, dtype=np.int64)
    streak[:, 0] = mask[:, 0]
    for col in range(1, cols):
        np.multiply(streak[:, col - 1] + 1, mask[:, col], out=streak[:, col])
    lengths = streak.max(axis=1)
    ends = streak.argmax(axis=1)
    starts = np.where(lengths > 0, ends - lengths + 1, 0)
    return starts, lengths


@dataclass(frozen=True)
class StageLayoutBatch:
    """A stack of sampled stage layouts held as flat numpy arrays.

    ``malicious[t, l, i]`` says whether node ``i`` of stage ``l`` in trial
    ``t`` is controlled by the attacker; stage 0 (the source stage) is all
    False, and so is every trial's destination slot.  This is the batched
    twin of :class:`StageLayout`: one array instead of ``trials`` nested
    tuple objects.
    """

    malicious: np.ndarray
    destination_stage: np.ndarray
    destination_position: np.ndarray
    d: int
    d_prime: int

    @property
    def trials(self) -> int:
        return self.malicious.shape[0]

    @property
    def path_length(self) -> int:
        return self.malicious.shape[1] - 1

    def layout(self, trial: int) -> StageLayout:
        """Extract one trial as a scalar :class:`StageLayout` object."""
        return StageLayout(
            malicious=tuple(
                tuple(bool(flag) for flag in stage) for stage in self.malicious[trial]
            ),
            destination_stage=int(self.destination_stage[trial]),
            destination_position=int(self.destination_position[trial]),
            d=self.d,
            d_prime=self.d_prime,
        )


def sample_stage_layout_batch(
    trials: int,
    path_length: int,
    d: int,
    fraction_malicious: float,
    rng: np.random.Generator,
    d_prime: int | None = None,
) -> StageLayoutBatch:
    """Sample all Monte-Carlo trials of one parameter point in a single draw.

    Randomness is consumed in three bulk draws (relay flags, destination
    stages, destination positions), so both the scalar reference loop and the
    batched engine — which share this sampler — see the identical trial set
    for equal seeds.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    d_prime = d if d_prime is None else d_prime
    flags = rng.random((trials, path_length, d_prime)) < fraction_malicious
    destination_stage = rng.integers(1, path_length + 1, size=trials)
    destination_position = rng.integers(0, d_prime, size=trials)
    malicious = np.zeros((trials, path_length + 1, d_prime), dtype=bool)
    malicious[:, 1:, :] = flags
    # The destination is a clean node by construction (§3c).
    malicious[np.arange(trials), destination_stage, destination_position] = False
    return StageLayoutBatch(
        malicious=malicious,
        destination_stage=destination_stage,
        destination_position=destination_position,
        d=d,
        d_prime=d_prime,
    )


@dataclass(frozen=True)
class AttackerViewBatch:
    """Vectorised attacker view over every trial of a :class:`StageLayoutBatch`.

    Each field is the array twin of the corresponding :class:`AttackerView`
    attribute, indexed by trial.
    """

    layouts: StageLayoutBatch
    exposed_stages: np.ndarray
    longest_chain_start: np.ndarray
    longest_chain_length: np.ndarray
    first_stage_decodable: np.ndarray
    decodable_stage_before_destination: np.ndarray

    @classmethod
    def from_layouts(cls, layouts: StageLayoutBatch) -> "AttackerViewBatch":
        malicious = layouts.malicious
        num_stages = malicious.shape[1]  # L + 1 including the source stage
        stage_has_malicious = malicious.any(axis=2)  # stage 0 is always clean
        # A stage is exposed when the attacker has a vantage point onto it: a
        # malicious node in the stage itself, a malicious child (next stage)
        # or a malicious parent (previous stage).
        exposed = stage_has_malicious.copy()
        exposed[:, :-1] |= stage_has_malicious[:, 1:]
        exposed[:, 1:] |= stage_has_malicious[:, :-1]
        starts, lengths = _longest_true_runs(exposed)

        # Case-1 conditions: >= d of a stage's d' relays are malicious.
        counts = malicious.sum(axis=2)
        decodable = counts >= layouts.d
        first_stage_decodable = decodable[:, 1]
        stage_index = np.arange(num_stages)
        before_destination = (stage_index >= 1) & (
            stage_index < layouts.destination_stage[:, None]
        )
        decodable_before_destination = (decodable & before_destination).any(axis=1)
        return cls(
            layouts=layouts,
            exposed_stages=exposed,
            longest_chain_start=starts,
            longest_chain_length=lengths,
            first_stage_decodable=first_stage_decodable,
            decodable_stage_before_destination=decodable_before_destination,
        )

    def view(self, trial: int) -> AttackerView:
        """Extract one trial as a scalar :class:`AttackerView` object."""
        return AttackerView.from_layout(self.layouts.layout(trial))
