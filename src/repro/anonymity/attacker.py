"""Colluding-attacker view of a forwarding graph (§6.2, Appendix A).

The adversary controls a fraction ``f`` of the overlay.  A malicious relay
learns its parents (the full previous stage), its children (the full next
stage), and nothing else: slice contents are pi-secure and flow-ids change at
every hop, so malicious relays can link their observations only when they sit
in *consecutive* stages of the same graph.

:class:`AttackerView` condenses everything the colluding set can derive from
a particular graph instance:

* which stages are *exposed* (their full membership is visible),
* the longest run ``s`` of consecutive exposed stages and its first stage
  ``Γ`` (the attacker's best guess at the source stage),
* whether some stage is *decodable* — at least ``d`` of its ``d'`` members
  are malicious, letting the attacker pool slices and decode the entire
  downstream graph (Case 1 of the appendix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StageLayout:
    """A lightweight stand-in for a forwarding graph used in anonymity studies.

    ``malicious[l][i]`` says whether node ``i`` of stage ``l`` is controlled
    by the attacker.  Stage 0 is the source stage, which is never malicious
    (the source uses its own machines).  ``destination_stage`` /
    ``destination_position`` locate the receiver.
    """

    malicious: tuple[tuple[bool, ...], ...]
    destination_stage: int
    destination_position: int
    d: int
    d_prime: int

    @property
    def path_length(self) -> int:
        return len(self.malicious) - 1

    def stage_malicious_count(self, stage: int) -> int:
        return sum(self.malicious[stage])

    def stage_has_malicious(self, stage: int) -> bool:
        return any(self.malicious[stage])


def sample_stage_layout(
    path_length: int,
    d: int,
    fraction_malicious: float,
    rng: np.random.Generator,
    d_prime: int | None = None,
) -> StageLayout:
    """Sample one random graph instance for the Monte-Carlo anonymity study.

    Relays are drawn from a large overlay in which a fraction ``f`` of nodes
    is malicious, so each relay slot is malicious independently with
    probability ``f``.  The source stage is clean by assumption (§3c) and the
    destination is placed uniformly at random among the relay slots, and is
    of course not malicious.
    """
    d_prime = d if d_prime is None else d_prime
    stages: list[tuple[bool, ...]] = [tuple([False] * d_prime)]
    flags = rng.random((path_length, d_prime)) < fraction_malicious
    destination_stage = int(rng.integers(1, path_length + 1))
    destination_position = int(rng.integers(0, d_prime))
    for stage_index in range(1, path_length + 1):
        row = list(flags[stage_index - 1])
        if stage_index == destination_stage:
            row[destination_position] = False
        stages.append(tuple(bool(x) for x in row))
    return StageLayout(
        malicious=tuple(stages),
        destination_stage=destination_stage,
        destination_position=destination_position,
        d=d,
        d_prime=d_prime,
    )


@dataclass
class AttackerView:
    """What a colluding adversary can infer from one graph instance."""

    layout: StageLayout
    exposed_stages: tuple[bool, ...]
    longest_chain_start: int
    longest_chain_length: int
    first_stage_decodable: bool
    decodable_stage_before_destination: bool

    @property
    def chain_stages(self) -> range:
        return range(
            self.longest_chain_start,
            self.longest_chain_start + self.longest_chain_length,
        )

    @classmethod
    def from_layout(cls, layout: StageLayout) -> "AttackerView":
        num_stages = len(layout.malicious)  # L + 1 including the source stage
        # Stage j is exposed when the attacker has a vantage point onto it: a
        # malicious node in stage j itself, a malicious child (which sees all
        # of stage j as its parents) or a malicious parent (which sees all of
        # stage j as its children).
        exposed = []
        for stage in range(num_stages):
            own = layout.stage_has_malicious(stage) if stage >= 1 else False
            before = stage - 1 >= 1 and layout.stage_has_malicious(stage - 1)
            after = stage + 1 < num_stages and layout.stage_has_malicious(stage + 1)
            exposed.append(own or before or after)
        start, length = _longest_true_run(exposed)

        # Case-1 conditions: the attacker decodes everything downstream of a
        # stage in which it controls at least d of the d' relays.
        first_stage_decodable = layout.stage_malicious_count(1) >= layout.d
        decodable_before_destination = any(
            layout.stage_malicious_count(stage) >= layout.d
            for stage in range(1, layout.destination_stage)
        )
        return cls(
            layout=layout,
            exposed_stages=tuple(exposed),
            longest_chain_start=start,
            longest_chain_length=length,
            first_stage_decodable=first_stage_decodable,
            decodable_stage_before_destination=decodable_before_destination,
        )

    def known_relay_count(self) -> int:
        """Number of relay slots inside the longest exposed chain."""
        relay_stages = [
            stage for stage in self.chain_stages if 1 <= stage <= self.layout.path_length
        ]
        return len(relay_stages) * self.layout.d_prime

    def destination_in_chain(self) -> bool:
        return self.layout.destination_stage in self.chain_stages


def _longest_true_run(values: list[bool]) -> tuple[int, int]:
    """Return (start, length) of the longest run of True values."""
    best_start, best_length = 0, 0
    current_start, current_length = 0, 0
    for index, value in enumerate(values):
        if value:
            if current_length == 0:
                current_start = index
            current_length += 1
            if current_length > best_length:
                best_start, best_length = current_start, current_length
        else:
            current_length = 0
    return best_start, best_length
