"""Monte-Carlo anonymity evaluation (§6.2, §6.3).

For each trial we sample a forwarding-graph instance from an overlay with a
fraction ``f`` of colluding malicious nodes, derive the attacker's view, and
apply the probability assignments of Appendix A to compute source and
destination anonymity via the entropy metric (Eq. 5).  The reported value is
the average over many trials, exactly as in the paper (1000 trials per data
point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .attacker import AttackerView, sample_stage_layout
from .metrics import two_level_anonymity


@dataclass(frozen=True)
class AnonymityResult:
    """Average anonymity over a batch of Monte-Carlo trials."""

    source_anonymity: float
    destination_anonymity: float
    trials: int
    source_case1_rate: float
    destination_case1_rate: float


def source_anonymity_for_view(
    view: AttackerView, num_nodes: int, fraction_malicious: float
) -> float:
    """Source anonymity of one graph instance (Appendix A.1)."""
    layout = view.layout
    if view.first_stage_decodable:
        return 0.0
    s = view.longest_chain_length
    path_length = layout.path_length
    if s <= 0:
        clean = max(int(num_nodes * (1.0 - fraction_malicious)), 1)
        return two_level_anonymity(0, 0.0, clean, 1.0 / clean, num_nodes)
    # The attacker's best guess for the source stage is the first stage of its
    # longest exposed chain (Eq. 8): the chain of s exposed stages can start
    # at any of (L + 1) - s + 1 positions among the L + 1 stages, so the first
    # exposed stage is the source stage with probability 1/(L - s + 2), shared
    # equally among its d' candidate nodes.
    denominator = max(path_length - s + 2, 2)
    gamma_mass = 1.0 / denominator
    gamma_size = layout.d_prime
    p_gamma = gamma_mass / gamma_size
    others = max(int(num_nodes * (1.0 - fraction_malicious)) - gamma_size, 1)
    p_other = max(1.0 - gamma_mass, 0.0) / others
    return two_level_anonymity(gamma_size, p_gamma, others, p_other, num_nodes)


def destination_anonymity_for_view(
    view: AttackerView, num_nodes: int, fraction_malicious: float
) -> float:
    """Destination anonymity of one graph instance (Appendix A.2)."""
    layout = view.layout
    if view.decodable_stage_before_destination:
        return 0.0
    s = view.longest_chain_length
    path_length = layout.path_length
    if s <= 0:
        clean = max(int(num_nodes * (1.0 - fraction_malicious)), 1)
        return two_level_anonymity(0, 0.0, clean, 1.0 / clean, num_nodes)
    s = min(s, path_length)
    suspects = max(int(s * layout.d_prime * (1.0 - fraction_malicious)), 1)
    p_suspect = 1.0 / (path_length * layout.d_prime * (1.0 - fraction_malicious))
    others = max(
        int((num_nodes - s * layout.d_prime) * (1.0 - fraction_malicious)), 1
    )
    p_other = max(1.0 - s / path_length, 0.0) / others
    return two_level_anonymity(suspects, p_suspect, others, p_other, num_nodes)


def simulate_anonymity(
    num_nodes: int,
    path_length: int,
    d: int,
    fraction_malicious: float,
    trials: int = 1000,
    rng: np.random.Generator | None = None,
    d_prime: int | None = None,
) -> AnonymityResult:
    """Run the paper's Monte-Carlo anonymity experiment for one parameter point.

    Parameters mirror Table 1: ``num_nodes`` is N, ``path_length`` is L,
    ``d`` the split factor, ``fraction_malicious`` is f, and ``d_prime``
    enables the redundancy study of Fig. 10.
    """
    rng = np.random.default_rng() if rng is None else rng
    d_prime = d if d_prime is None else d_prime
    src_total = 0.0
    dst_total = 0.0
    src_case1 = 0
    dst_case1 = 0
    for _ in range(trials):
        layout = sample_stage_layout(
            path_length=path_length,
            d=d,
            fraction_malicious=fraction_malicious,
            rng=rng,
            d_prime=d_prime,
        )
        view = AttackerView.from_layout(layout)
        src_case1 += int(view.first_stage_decodable)
        dst_case1 += int(view.decodable_stage_before_destination)
        src_total += source_anonymity_for_view(view, num_nodes, fraction_malicious)
        dst_total += destination_anonymity_for_view(
            view, num_nodes, fraction_malicious
        )
    return AnonymityResult(
        source_anonymity=src_total / trials,
        destination_anonymity=dst_total / trials,
        trials=trials,
        source_case1_rate=src_case1 / trials,
        destination_case1_rate=dst_case1 / trials,
    )


def sweep_malicious_fraction(
    num_nodes: int,
    path_length: int,
    d: int,
    fractions: list[float],
    trials: int = 1000,
    seed: int = 1,
    d_prime: int | None = None,
) -> list[tuple[float, AnonymityResult]]:
    """Fig. 7 sweep: anonymity as a function of the malicious fraction."""
    results = []
    for index, fraction in enumerate(fractions):
        rng = np.random.default_rng(seed + index)
        results.append(
            (
                fraction,
                simulate_anonymity(
                    num_nodes, path_length, d, fraction, trials, rng, d_prime
                ),
            )
        )
    return results


def sweep_split_factor(
    num_nodes: int,
    path_length: int,
    split_factors: list[int],
    fraction_malicious: float,
    trials: int = 1000,
    seed: int = 2,
) -> list[tuple[int, AnonymityResult]]:
    """Fig. 8 sweep: anonymity as a function of the split factor d."""
    results = []
    for index, d in enumerate(split_factors):
        rng = np.random.default_rng(seed + index)
        results.append(
            (
                d,
                simulate_anonymity(
                    num_nodes, path_length, d, fraction_malicious, trials, rng
                ),
            )
        )
    return results


def sweep_path_length(
    num_nodes: int,
    path_lengths: list[int],
    d: int,
    fraction_malicious: float,
    trials: int = 1000,
    seed: int = 3,
) -> list[tuple[int, AnonymityResult]]:
    """Fig. 9 sweep: anonymity as a function of the path length L."""
    results = []
    for index, path_length in enumerate(path_lengths):
        rng = np.random.default_rng(seed + index)
        results.append(
            (
                path_length,
                simulate_anonymity(
                    num_nodes, path_length, d, fraction_malicious, trials, rng
                ),
            )
        )
    return results


def sweep_redundancy(
    num_nodes: int,
    path_length: int,
    d: int,
    d_primes: list[int],
    fraction_malicious: float,
    trials: int = 1000,
    seed: int = 4,
) -> list[tuple[float, AnonymityResult]]:
    """Fig. 10 sweep: anonymity as a function of added redundancy (d'-d)/d."""
    results = []
    for index, d_prime in enumerate(d_primes):
        rng = np.random.default_rng(seed + index)
        redundancy = (d_prime - d) / d
        results.append(
            (
                redundancy,
                simulate_anonymity(
                    num_nodes,
                    path_length,
                    d,
                    fraction_malicious,
                    trials,
                    rng,
                    d_prime=d_prime,
                ),
            )
        )
    return results
