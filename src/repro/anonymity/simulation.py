"""Monte-Carlo anonymity evaluation (§6.2, §6.3).

For each trial we sample a forwarding-graph instance from an overlay with a
fraction ``f`` of colluding malicious nodes, derive the attacker's view, and
apply the probability assignments of Appendix A to compute source and
destination anonymity via the entropy metric (Eq. 5).  The reported value is
the average over many trials, exactly as in the paper (1000 trials per data
point).

Two engines implement the evaluation:

* :func:`simulate_anonymity` — the scalar *reference* implementation: one
  :class:`~repro.anonymity.attacker.StageLayout` and
  :class:`~repro.anonymity.attacker.AttackerView` per trial, evaluated with
  plain Python.  Kept deliberately close to the appendix's prose.
* :func:`simulate_anonymity_batch` — the vectorised engine behind Figs. 7-10:
  all trials are sampled as one ``(trials, L, d')`` boolean array, and the
  exposed-stage masks, longest consecutive-exposed runs and Case-1
  decodability come out of batched numpy kernels with no per-trial Python
  objects.  The Appendix-A entropy assignment depends only on the longest
  chain length ``s`` once the parameter point is fixed, so it is evaluated
  once per distinct ``s`` (at most ``L + 2`` values) and gathered per trial.

Both engines draw randomness through
:func:`~repro.anonymity.attacker.sample_stage_layout_batch`, so the same seed
yields bit-identical per-trial anonymity values from either — asserted in
``tests/test_anonymity_batch.py`` and checked again inside the ``anonbench``
experiment.

The four figure sweeps (malicious fraction, split factor, path length,
redundancy) are thin declarative wrappers over the shared
:func:`sweep_anonymity` driver.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from .attacker import (
    AttackerView,
    AttackerViewBatch,
    StageLayoutBatch,
    sample_stage_layout_batch,
)
from .metrics import two_level_anonymity


@dataclass(frozen=True)
class AnonymityResult:
    """Average anonymity over a batch of Monte-Carlo trials."""

    source_anonymity: float
    destination_anonymity: float
    trials: int
    source_case1_rate: float
    destination_case1_rate: float


@dataclass(frozen=True)
class AnonymityTrialValues:
    """Per-trial outcomes of one Monte-Carlo run, before averaging.

    Exposing the raw per-trial arrays is what lets the test suite assert
    *exact* statistical equivalence between the scalar and batched engines:
    same seed in, same array of per-trial anonymity values out.
    """

    source_anonymity: np.ndarray
    destination_anonymity: np.ndarray
    source_case1: np.ndarray
    destination_case1: np.ndarray

    @property
    def trials(self) -> int:
        return int(self.source_anonymity.size)

    def result(self) -> AnonymityResult:
        """Reduce the per-trial values to the averages the paper plots."""
        return AnonymityResult(
            source_anonymity=float(self.source_anonymity.mean()),
            destination_anonymity=float(self.destination_anonymity.mean()),
            trials=self.trials,
            source_case1_rate=float(self.source_case1.mean()),
            destination_case1_rate=float(self.destination_case1.mean()),
        )


def _validate_trials(trials: int) -> None:
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")


# -- Appendix-A probability assignments as functions of the chain length ---------


def _source_anonymity_from_chain(
    s: int, num_nodes: int, path_length: int, d_prime: int, fraction_malicious: float
) -> float:
    """Source anonymity given the longest exposed chain ``s`` (Appendix A.1).

    The attacker's best guess for the source stage is the first stage of its
    longest exposed chain (Eq. 8): the chain of s exposed stages can start at
    any of (L + 1) - s + 1 positions among the L + 1 stages, so the first
    exposed stage is the source stage with probability 1/(L - s + 2), shared
    equally among its d' candidate nodes.
    """
    if s <= 0:
        clean = max(int(num_nodes * (1.0 - fraction_malicious)), 1)
        return two_level_anonymity(0, 0.0, clean, 1.0 / clean, num_nodes)
    denominator = max(path_length - s + 2, 2)
    gamma_mass = 1.0 / denominator
    p_gamma = gamma_mass / d_prime
    others = max(int(num_nodes * (1.0 - fraction_malicious)) - d_prime, 1)
    p_other = max(1.0 - gamma_mass, 0.0) / others
    return two_level_anonymity(d_prime, p_gamma, others, p_other, num_nodes)


def _destination_anonymity_from_chain(
    s: int, num_nodes: int, path_length: int, d_prime: int, fraction_malicious: float
) -> float:
    """Destination anonymity given the longest exposed chain ``s`` (Appendix A.2)."""
    if s <= 0:
        clean = max(int(num_nodes * (1.0 - fraction_malicious)), 1)
        return two_level_anonymity(0, 0.0, clean, 1.0 / clean, num_nodes)
    s = min(s, path_length)
    suspects = max(int(s * d_prime * (1.0 - fraction_malicious)), 1)
    p_suspect = 1.0 / (path_length * d_prime * (1.0 - fraction_malicious))
    others = max(int((num_nodes - s * d_prime) * (1.0 - fraction_malicious)), 1)
    p_other = max(1.0 - s / path_length, 0.0) / others
    return two_level_anonymity(suspects, p_suspect, others, p_other, num_nodes)


def source_anonymity_for_view(
    view: AttackerView, num_nodes: int, fraction_malicious: float
) -> float:
    """Source anonymity of one graph instance (Appendix A.1)."""
    if view.first_stage_decodable:
        return 0.0
    layout = view.layout
    return _source_anonymity_from_chain(
        view.longest_chain_length,
        num_nodes,
        layout.path_length,
        layout.d_prime,
        fraction_malicious,
    )


def destination_anonymity_for_view(
    view: AttackerView, num_nodes: int, fraction_malicious: float
) -> float:
    """Destination anonymity of one graph instance (Appendix A.2)."""
    if view.decodable_stage_before_destination:
        return 0.0
    layout = view.layout
    return _destination_anonymity_from_chain(
        view.longest_chain_length,
        num_nodes,
        layout.path_length,
        layout.d_prime,
        fraction_malicious,
    )


# -- engines ---------------------------------------------------------------------


def _scalar_trial_values(
    layouts: StageLayoutBatch, num_nodes: int, fraction_malicious: float
) -> AnonymityTrialValues:
    """Reference engine: per-trial Python objects, exactly as the appendix reads."""
    trials = layouts.trials
    source = np.empty(trials, dtype=float)
    destination = np.empty(trials, dtype=float)
    source_case1 = np.empty(trials, dtype=bool)
    destination_case1 = np.empty(trials, dtype=bool)
    for trial in range(trials):
        view = AttackerView.from_layout(layouts.layout(trial))
        source_case1[trial] = view.first_stage_decodable
        destination_case1[trial] = view.decodable_stage_before_destination
        source[trial] = source_anonymity_for_view(view, num_nodes, fraction_malicious)
        destination[trial] = destination_anonymity_for_view(
            view, num_nodes, fraction_malicious
        )
    return AnonymityTrialValues(source, destination, source_case1, destination_case1)


def _batched_trial_values(
    layouts: StageLayoutBatch, num_nodes: int, fraction_malicious: float
) -> AnonymityTrialValues:
    """Vectorised engine: numpy kernels over the whole trial stack at once."""
    views = AttackerViewBatch.from_layouts(layouts)
    path_length = layouts.path_length
    d_prime = layouts.d_prime
    # For a fixed parameter point the Appendix-A assignment is a pure function
    # of the longest exposed chain length s in {0, ..., L + 1}, so tabulating
    # it once and gathering per trial is exact — and avoids any per-trial
    # Python or large transcendental arrays.
    chain_lengths = np.arange(path_length + 2)
    source_table = np.array(
        [
            _source_anonymity_from_chain(
                int(s), num_nodes, path_length, d_prime, fraction_malicious
            )
            for s in chain_lengths
        ]
    )
    destination_table = np.array(
        [
            _destination_anonymity_from_chain(
                int(s), num_nodes, path_length, d_prime, fraction_malicious
            )
            for s in chain_lengths
        ]
    )
    s = views.longest_chain_length
    source = np.where(views.first_stage_decodable, 0.0, source_table[s])
    destination = np.where(
        views.decodable_stage_before_destination, 0.0, destination_table[s]
    )
    return AnonymityTrialValues(
        source_anonymity=source,
        destination_anonymity=destination,
        source_case1=views.first_stage_decodable.copy(),
        destination_case1=views.decodable_stage_before_destination.copy(),
    )


_ENGINES = {"scalar": _scalar_trial_values, "batched": _batched_trial_values}


def simulate_anonymity_trials(
    num_nodes: int,
    path_length: int,
    d: int,
    fraction_malicious: float,
    trials: int = 1000,
    rng: np.random.Generator | None = None,
    d_prime: int | None = None,
    engine: str = "batched",
) -> AnonymityTrialValues:
    """Run one parameter point and return the raw per-trial values.

    ``engine`` selects ``"batched"`` (vectorised numpy, the default) or
    ``"scalar"`` (the per-trial reference loop).  Both consume randomness
    identically, so equal seeds give bit-identical per-trial values.
    """
    _validate_trials(trials)
    try:
        evaluate = _ENGINES[engine]
    except KeyError:
        known = ", ".join(sorted(_ENGINES))
        raise ValueError(f"unknown engine {engine!r} (known: {known})") from None
    rng = np.random.default_rng() if rng is None else rng
    layouts = sample_stage_layout_batch(
        trials=trials,
        path_length=path_length,
        d=d,
        fraction_malicious=fraction_malicious,
        rng=rng,
        d_prime=d_prime,
    )
    return evaluate(layouts, num_nodes, fraction_malicious)


def simulate_anonymity(
    num_nodes: int,
    path_length: int,
    d: int,
    fraction_malicious: float,
    trials: int = 1000,
    rng: np.random.Generator | None = None,
    d_prime: int | None = None,
) -> AnonymityResult:
    """Run the paper's Monte-Carlo anonymity experiment for one parameter point.

    Parameters mirror Table 1: ``num_nodes`` is N, ``path_length`` is L,
    ``d`` the split factor, ``fraction_malicious`` is f, and ``d_prime``
    enables the redundancy study of Fig. 10.  This is the scalar reference
    implementation; :func:`simulate_anonymity_batch` computes the identical
    values vectorised.
    """
    return simulate_anonymity_trials(
        num_nodes,
        path_length,
        d,
        fraction_malicious,
        trials,
        rng,
        d_prime,
        engine="scalar",
    ).result()


def simulate_anonymity_batch(
    num_nodes: int,
    path_length: int,
    d: int,
    fraction_malicious: float,
    trials: int = 1000,
    rng: np.random.Generator | None = None,
    d_prime: int | None = None,
) -> AnonymityResult:
    """Vectorised twin of :func:`simulate_anonymity` (same seed, same values).

    All trials are evaluated as numpy arrays in one pass; at the paper's 1000
    trials per point this is well over an order of magnitude faster than the
    scalar loop (asserted by the ``anonbench`` experiment).
    """
    return simulate_anonymity_trials(
        num_nodes,
        path_length,
        d,
        fraction_malicious,
        trials,
        rng,
        d_prime,
        engine="batched",
    ).result()


# -- sweeps ----------------------------------------------------------------------


def sweep_anonymity(
    points: list[tuple[Any, dict]],
    trials: int = 1000,
    seed: int = 0,
    simulate: Callable[..., AnonymityResult] = simulate_anonymity_batch,
) -> list[tuple[Any, AnonymityResult]]:
    """Shared driver behind the Fig. 7-10 sweeps.

    ``points`` is a list of ``(key, kwargs)`` pairs: ``key`` is the x-axis
    value reported back, ``kwargs`` the :func:`simulate_anonymity_batch`
    parameters of that point.  Each point gets its own deterministic
    generator (``seed + index``), matching the historical behaviour of the
    individual sweep loops this driver replaced.  ``simulate`` defaults to
    the batched engine; pass :func:`simulate_anonymity` to force the scalar
    reference path.
    """
    _validate_trials(trials)
    results = []
    for index, (key, kwargs) in enumerate(points):
        rng = np.random.default_rng(seed + index)
        results.append((key, simulate(trials=trials, rng=rng, **kwargs)))
    return results


def sweep_malicious_fraction(
    num_nodes: int,
    path_length: int,
    d: int,
    fractions: list[float],
    trials: int = 1000,
    seed: int = 1,
    d_prime: int | None = None,
) -> list[tuple[float, AnonymityResult]]:
    """Fig. 7 sweep: anonymity as a function of the malicious fraction."""
    points = [
        (
            fraction,
            {
                "num_nodes": num_nodes,
                "path_length": path_length,
                "d": d,
                "fraction_malicious": fraction,
                "d_prime": d_prime,
            },
        )
        for fraction in fractions
    ]
    return sweep_anonymity(points, trials=trials, seed=seed)


def sweep_split_factor(
    num_nodes: int,
    path_length: int,
    split_factors: list[int],
    fraction_malicious: float,
    trials: int = 1000,
    seed: int = 2,
) -> list[tuple[int, AnonymityResult]]:
    """Fig. 8 sweep: anonymity as a function of the split factor d."""
    points = [
        (
            d,
            {
                "num_nodes": num_nodes,
                "path_length": path_length,
                "d": d,
                "fraction_malicious": fraction_malicious,
            },
        )
        for d in split_factors
    ]
    return sweep_anonymity(points, trials=trials, seed=seed)


def sweep_path_length(
    num_nodes: int,
    path_lengths: list[int],
    d: int,
    fraction_malicious: float,
    trials: int = 1000,
    seed: int = 3,
) -> list[tuple[int, AnonymityResult]]:
    """Fig. 9 sweep: anonymity as a function of the path length L."""
    points = [
        (
            path_length,
            {
                "num_nodes": num_nodes,
                "path_length": path_length,
                "d": d,
                "fraction_malicious": fraction_malicious,
            },
        )
        for path_length in path_lengths
    ]
    return sweep_anonymity(points, trials=trials, seed=seed)


def sweep_redundancy(
    num_nodes: int,
    path_length: int,
    d: int,
    d_primes: list[int],
    fraction_malicious: float,
    trials: int = 1000,
    seed: int = 4,
) -> list[tuple[float, AnonymityResult]]:
    """Fig. 10 sweep: anonymity as a function of added redundancy (d'-d)/d."""
    points = [
        (
            (d_prime - d) / d,
            {
                "num_nodes": num_nodes,
                "path_length": path_length,
                "d": d,
                "fraction_malicious": fraction_malicious,
                "d_prime": d_prime,
            },
        )
        for d_prime in d_primes
    ]
    return sweep_anonymity(points, trials=trials, seed=seed)
