"""Entropy-based anonymity metric (§6.1, Eq. 5).

The anonymity of a system is the entropy of the attacker's probability
distribution over candidate senders (or receivers), normalised by the maximum
possible entropy ``log(N)``:

    Anonymity = H(x) / log(N)

A value of 1 means the attacker has learned nothing (every node is equally
likely); 0 means the attacker has identified the node.  The paper stresses
that 0.5 is still strong: the attacker is missing half the bits needed for
identification.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from ..core.errors import ReproError


class MetricError(ReproError):
    """Invalid input to an anonymity metric computation."""


def entropy(probabilities: Iterable[float]) -> float:
    """Shannon entropy (natural units cancel in the normalised metric; we use bits).

    >>> entropy([0.25, 0.25, 0.25, 0.25])
    2.0
    >>> entropy([1.0, 0.0])
    0.0
    """
    probs = np.asarray(list(probabilities), dtype=float)
    if probs.size == 0:
        raise MetricError("cannot compute the entropy of an empty distribution")
    if np.any(probs < -1e-12):
        raise MetricError("probabilities must be non-negative")
    total = probs.sum()
    if total <= 0:
        raise MetricError("probabilities must sum to a positive value")
    probs = probs / total
    nonzero = probs[probs > 0]
    # ``+ 0.0`` normalises the -0.0 of a deterministic distribution.
    return float(-(nonzero * np.log2(nonzero)).sum() + 0.0)


def max_entropy(num_candidates: int) -> float:
    """The entropy of the uniform distribution over ``num_candidates`` nodes.

    >>> max_entropy(8)
    3.0
    """
    if num_candidates < 1:
        raise MetricError("need at least one candidate node")
    return math.log2(num_candidates)


def degree_of_anonymity(probabilities: Iterable[float], num_candidates: int) -> float:
    """Normalised anonymity ``H(x) / log(N)`` (Eq. 5), clamped to [0, 1].

    >>> degree_of_anonymity([1 / 16] * 16, 16)
    1.0
    >>> degree_of_anonymity([1.0], 16)
    0.0
    """
    if num_candidates <= 1:
        return 0.0
    value = entropy(probabilities) / max_entropy(num_candidates)
    # ``+ 0.0`` normalises the -0.0 that a zero-entropy distribution produces.
    return float(min(max(value, 0.0), 1.0) + 0.0)


def two_level_anonymity(
    count_high: int, prob_high: float, count_low: int, prob_low: float, total_nodes: int
) -> float:
    """Anonymity of a two-level distribution, computed in closed form.

    The attacker models used in the paper's appendix always produce
    distributions with (at most) two distinct probability values: one for the
    small suspect set and one for everyone else.  Computing the entropy in
    closed form keeps the Monte-Carlo simulation at ``O(1)`` per trial even
    for ``N = 10000`` nodes.
    """
    if total_nodes <= 1:
        return 0.0
    if count_high < 0 or count_low < 0:
        raise MetricError("candidate counts must be non-negative")
    mass = count_high * prob_high + count_low * prob_low
    if mass <= 0:
        raise MetricError("distribution has no probability mass")
    p_high = prob_high / mass
    p_low = prob_low / mass
    h = 0.0
    if count_high > 0 and p_high > 0:
        h -= count_high * p_high * math.log2(p_high)
    if count_low > 0 and p_low > 0:
        h -= count_low * p_low * math.log2(p_low)
    return float(min(max(h / math.log2(total_nodes), 0.0), 1.0))


def information_bits_missing(anonymity: float, total_nodes: int) -> float:
    """How many bits the attacker still lacks to pin down the node.

    An anonymity of 0.5 over 10 000 nodes means the attacker is missing about
    6.6 bits — the paper's "still missing half the information" observation.

    >>> information_bits_missing(0.5, 1024)
    5.0
    """
    return anonymity * max_entropy(total_nodes)
