"""The overlay relay daemon (§4.3.5, §4.3.6, §7.1).

A :class:`Relay` is the per-node protocol engine.  It keeps a flow table
keyed on flow-id; for each flow it collects setup packets from its parents,
decodes its own routing information (§4.3.5), forwards the remaining slices
to its children as instructed by its slice-map (§4.3.6), and relays data
slices according to its data-map (§4.3.7), regenerating lost redundancy with
network coding when a parent has failed (§4.4.1).

The relay is transport-agnostic: :meth:`handle_packet` returns the packets to
transmit, and the overlay layer (local loop, discrete-event simulator, or a
real socket daemon) decides how and when to deliver them.  Timeout-driven
behaviour (forwarding despite missing parents) is triggered by the overlay
calling :meth:`flush_setup` / :meth:`flush_data`.

Data-plane engines
------------------
Per-(flow, seq) data slices live in a :class:`~repro.core.flow_decoder.FlowDecoder`
(array-native accumulation).  Two engines turn accumulated slices into
delivered messages:

* ``"scalar"`` — the reference path: one
  :func:`~repro.core.integrity.robust_decode` per message, attempted the
  moment the ``d``-th slice arrives.  Kept deliberately close to the paper's
  prose.
* ``"batched"`` (default) — deliveries are deferred to the end of each
  :meth:`handle_packets` call and decoded together through the batched
  Gauss–Jordan kernels, and the *setup-phase* decode of a relay's own
  routing slices (§4.3.5) goes through the same kernel
  (:func:`~repro.core.flow_decoder.decode_setup_payload`).  Bit-identical to
  the scalar engine (matrix inverses are unique and irregular cases fall
  back to ``robust_decode``), asserted in ``tests/test_dataplane.py`` and
  ``tests/test_setup_decode.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..crypto.symmetric import StreamCipher
from .coder import CodedBlock, SliceCoder
from .errors import CodingError, InsufficientSlicesError, ProtocolError
from .flow_decoder import FlowDecoder, decode_setup_payload
from .gf import GF256, resolve_field
from .integrity import robust_decode
from .node_info import NodeInfo
from .packet import Packet, PacketKind, random_padding_slice
from .source import data_nonce

#: Valid relay data-plane engines.
ENGINES = ("scalar", "batched")


@dataclass
class FlowState:
    """Per-flow state kept by a relay (the paper's flow-table entry)."""

    flow_id: int
    d: int
    coding_field: GF256 | None = None
    setup_packets: dict[int, Packet] = field(default_factory=dict)
    info: NodeInfo | None = None
    setup_forwarded: bool = False
    pending_data: list[Packet] = field(default_factory=list)
    data: FlowDecoder = field(init=False)
    data_forwarded: set[tuple[int, int]] = field(default_factory=set)
    data_flushed: set[int] = field(default_factory=set)
    delivered: dict[int, bytes] = field(default_factory=dict)
    last_activity: float = 0.0
    retired_before: int = 0

    def __post_init__(self) -> None:
        self.data = FlowDecoder(self.d, field=self.coding_field)

    @property
    def decoded(self) -> bool:
        return self.info is not None

    def own_setup_blocks(self) -> list[CodedBlock]:
        """The slices addressed to this node (slot 0 of every setup packet)."""
        return [packet.own_slice for packet in self.setup_packets.values()]

    def retire_before(self, before_seq: int) -> int:
        """Drop per-seq data state older than ``before_seq``; returns seqs dropped."""
        if before_seq <= self.retired_before:
            return 0
        self.retired_before = before_seq
        dropped = self.data.retire_before(before_seq)
        self.data_forwarded = {
            (seq, child) for seq, child in self.data_forwarded if seq >= before_seq
        }
        self.data_flushed = {seq for seq in self.data_flushed if seq >= before_seq}
        return dropped


@dataclass
class RelayStats:
    """Counters useful for experiments and debugging."""

    packets_received: int = 0
    packets_sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    flows_decoded: int = 0
    messages_delivered: int = 0
    regenerated_slices: int = 0


class Relay:
    """Protocol engine for one overlay node.

    Parameters
    ----------
    address:
        This node's overlay address.
    rng:
        Randomness source for padding and network-coding coefficients.
    auto_forward_setup:
        When True (default), setup slices are forwarded as soon as packets
        from all ``d'`` parents have arrived.  The overlay can also force
        forwarding earlier via :meth:`flush_setup` (e.g. on a timeout).
    regenerate_redundancy:
        Enable the network-coding regeneration of §4.4.1.  Disabling it gives
        the plain "erasure-coding only" behaviour used by the ablation bench.
    engine:
        ``"batched"`` (default) decodes deliverable messages in batched
        GF(2^8) kernels; ``"scalar"`` keeps the per-message reference path.
        Both produce bit-identical delivered messages and stats.
    field / kernel:
        The GF(2^8) implementation every coder and decoder of this relay
        uses (see :func:`repro.core.gf.resolve_field`); kernels are
        bit-identical by construction, so delivered messages and stats do
        not depend on the choice.
    """

    def __init__(
        self,
        address: str,
        rng: np.random.Generator | None = None,
        auto_forward_setup: bool = True,
        regenerate_redundancy: bool = True,
        engine: str = "batched",
        field: GF256 | None = None,
        kernel: str | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise ProtocolError(f"unknown relay engine {engine!r} (known: {ENGINES})")
        self.address = address
        self.rng = np.random.default_rng() if rng is None else rng
        self.auto_forward_setup = auto_forward_setup
        self.regenerate_redundancy = regenerate_redundancy
        self.engine = engine
        self.field = resolve_field(field, kernel)
        self.flows: dict[int, FlowState] = {}
        self.stats = RelayStats()

    # -- flow-table helpers ----------------------------------------------------------

    def _state_for(self, packet: Packet) -> FlowState:
        state = self.flows.get(packet.flow_id)
        if state is None:
            state = FlowState(
                flow_id=packet.flow_id, d=packet.d, coding_field=self.field
            )
            self.flows[packet.flow_id] = state
        return state

    def garbage_collect(self, before: float) -> int:
        """Drop flow entries idle since before ``before``; returns count dropped."""
        stale = [
            flow_id
            for flow_id, state in self.flows.items()
            if state.last_activity < before
        ]
        for flow_id in stale:
            del self.flows[flow_id]
        return len(stale)

    def retire_data(self, flow_id: int, before_seq: int) -> int:
        """Drop a flow's per-seq data state older than ``before_seq``.

        This is the retention window of a long-running flow: slices, forward
        markers and flush markers for sequence numbers below ``before_seq``
        are forgotten (the flow entry itself and delivered plaintexts stay).
        Returns the number of sequence numbers retired.
        """
        state = self.flows.get(flow_id)
        if state is None:
            return 0
        return state.retire_before(before_seq)

    def is_receiver(self, flow_id: int) -> bool:
        state = self.flows.get(flow_id)
        return bool(state and state.info and state.info.is_receiver)

    def delivered_messages(self, flow_id: int) -> dict[int, bytes]:
        """Messages this node has decoded as the flow's destination."""
        state = self.flows.get(flow_id)
        if state is None:
            return {}
        return dict(state.delivered)

    # -- packet handling ---------------------------------------------------------------

    def handle_packet(self, packet: Packet, now: float = 0.0) -> list[Packet]:
        """Process one incoming packet; returns the packets to transmit."""
        return self.handle_packets([packet], now=now)

    def handle_packets(self, packets: list[Packet], now: float = 0.0) -> list[Packet]:
        """Process a batch of incoming packets; returns the packets to transmit.

        Packets are processed in order, so a batch behaves exactly like the
        equivalent sequence of :meth:`handle_packet` calls — except that with
        the ``"batched"`` engine all messages that become deliverable during
        the batch are decoded together in one batched kernel pass.
        """
        outgoing: list[Packet] = []
        pending: list[tuple[FlowState, int]] = []
        self.stats.packets_received += len(packets)
        self.stats.bytes_received += sum(p.size_bytes() for p in packets)
        index, total = 0, len(packets)
        while index < total:
            packet = packets[index]
            state = self._state_for(packet)
            state.last_activity = now
            if packet.kind == PacketKind.SETUP:
                outgoing.extend(self._handle_setup(state, packet, pending))
            elif packet.kind == PacketKind.DATA:
                if self.engine == "batched" and state.decoded:
                    # Consume the whole same-connection run (one flow, one
                    # lane, consecutive data packets) in one pass.
                    run = index + 1
                    while (
                        run < total
                        and packets[run].kind == PacketKind.DATA
                        and packets[run].flow_id == packet.flow_id
                        and packets[run].lane == packet.lane
                    ):
                        run += 1
                    outgoing.extend(
                        self._handle_data_run(
                            state, packet.lane, packets[index:run], pending
                        )
                    )
                    index = run
                    continue
                outgoing.extend(self._handle_data(state, packet, pending))
            else:  # pragma: no cover - PacketKind is a closed enum
                raise ProtocolError(f"unknown packet kind {packet.kind}")
            index += 1
        if pending:
            self._deliver_pending(pending)
        self._account_sent(outgoing)
        return outgoing

    def _account_sent(self, packets: list[Packet]) -> None:
        self.stats.packets_sent += len(packets)
        self.stats.bytes_sent += sum(p.size_bytes() for p in packets)

    # -- setup phase -------------------------------------------------------------------

    def _handle_setup(
        self, state: FlowState, packet: Packet, pending: list[tuple[FlowState, int]]
    ) -> list[Packet]:
        if packet.lane in state.setup_packets:
            return []
        state.setup_packets[packet.lane] = packet
        if not state.decoded:
            self._try_decode_info(state)
        outgoing: list[Packet] = []
        if (
            state.decoded
            and not state.setup_forwarded
            and self.auto_forward_setup
            and len(state.setup_packets) >= state.info.num_parents
        ):
            outgoing.extend(self._build_setup_forwards(state))
        # Data packets may have raced ahead of the setup decode.
        if state.decoded and state.pending_data:
            buffered, state.pending_data = state.pending_data, []
            for data_packet in buffered:
                outgoing.extend(self._handle_data(state, data_packet, pending))
        return outgoing

    def _try_decode_info(self, state: FlowState) -> None:
        blocks = state.own_setup_blocks()
        if len(blocks) < state.d:
            return
        coder = SliceCoder(state.d, field=self.field)
        try:
            # The batched engine decodes its routing slices through the
            # batched Gauss-Jordan kernel (bit-identical fast path, scalar
            # robust_decode fallback); the scalar engine keeps the
            # per-message reference decode.
            if self.engine == "batched":
                payload = decode_setup_payload(coder, blocks, field=self.field)
            else:
                payload = robust_decode(coder, blocks)
            state.info = NodeInfo.unpack(payload)
            self.stats.flows_decoded += 1
        except (InsufficientSlicesError, CodingError, ProtocolError):
            state.info = None

    def _build_setup_forwards(self, state: FlowState) -> list[Packet]:
        info = state.info
        assert info is not None
        state.setup_forwarded = True
        if not info.next_hop_addresses:
            return []
        sample = next(iter(state.setup_packets.values())).own_slice
        payload_bytes = int(sample.payload.shape[0])
        outgoing: list[Packet] = []
        for child_index, (child, child_flow) in enumerate(
            zip(info.next_hop_addresses, info.next_hop_flow_ids)
        ):
            slices: list[CodedBlock] = []
            for entry in info.slice_map.for_child(child_index):
                block = None
                if not entry.is_random:
                    incoming = state.setup_packets.get(entry.parent_index)
                    if incoming is not None and entry.slot_index < len(incoming.slices):
                        block = incoming.slices[entry.slot_index]
                if block is None:
                    block = random_padding_slice(state.d, payload_bytes, self.rng)
                slices.append(block)
            outgoing.append(
                Packet(
                    flow_id=child_flow,
                    kind=PacketKind.SETUP,
                    slices=slices,
                    d=state.d,
                    lane=info.lane,
                    seq=0,
                    source_address=self.address,
                    destination_address=child,
                )
            )
        return outgoing

    def flush_setup(self, flow_id: int) -> list[Packet]:
        """Forward setup slices now, padding slots whose parents never arrived.

        Called by the overlay on a timeout when churn has made some parents
        fail.  Returns an empty list when this node could not decode its own
        information (fewer than ``d`` of its slices arrived), in which case
        the flow is dead at this node.
        """
        state = self.flows.get(flow_id)
        if state is None or state.setup_forwarded:
            return []
        if not state.decoded:
            self._try_decode_info(state)
        if not state.decoded:
            return []
        outgoing = self._build_setup_forwards(state)
        self._account_sent(outgoing)
        return outgoing

    # -- data phase --------------------------------------------------------------------

    def _handle_data(
        self, state: FlowState, packet: Packet, pending: list[tuple[FlowState, int]]
    ) -> list[Packet]:
        if not state.decoded:
            state.pending_data.append(packet)
            return []
        info = state.info
        assert info is not None
        if not state.data.add(packet.seq, packet.lane, packet.own_slice):
            return []
        block = packet.own_slice
        if info.is_receiver:
            if self.engine == "batched":
                pending.append((state, packet.seq))
            else:
                self._try_deliver(state, packet.seq)
        outgoing: list[Packet] = []
        for child_index, (child, child_flow) in enumerate(
            zip(info.next_hop_addresses, info.next_hop_flow_ids)
        ):
            if info.data_map.for_child(child_index) != packet.lane:
                continue
            if (packet.seq, child_index) in state.data_forwarded:
                continue
            state.data_forwarded.add((packet.seq, child_index))
            outgoing.append(
                Packet(
                    flow_id=child_flow,
                    kind=PacketKind.DATA,
                    slices=[block],
                    d=state.d,
                    lane=info.lane,
                    seq=packet.seq,
                    source_address=self.address,
                    destination_address=child,
                )
            )
        return outgoing

    def _handle_data_run(
        self,
        state: FlowState,
        lane: int,
        packets: list[Packet],
        pending: list[tuple[FlowState, int]],
    ) -> list[Packet]:
        """Batched :meth:`_handle_data` for a same-lane run on a decoded flow.

        Equivalent to handling each packet in order; the accumulation, the
        receiver's pending-delivery bookkeeping and the forward construction
        all run once per run instead of once per packet.
        """
        info = state.info
        assert info is not None
        accepted = state.data.add_run(
            lane, [(packet.seq, packet.slices[0]) for packet in packets]
        )
        if not accepted:
            return []
        if info.is_receiver:
            pending.extend((state, seq) for seq, _ in accepted)
        outgoing: list[Packet] = []
        data_forwarded = state.data_forwarded
        for child_index, (child, child_flow) in enumerate(
            zip(info.next_hop_addresses, info.next_hop_flow_ids)
        ):
            if info.data_map.for_child(child_index) != lane:
                continue
            for seq, block in accepted:
                key = (seq, child_index)
                if key in data_forwarded:
                    continue
                data_forwarded.add(key)
                outgoing.append(
                    Packet(
                        flow_id=child_flow,
                        kind=PacketKind.DATA,
                        slices=[block],
                        d=state.d,
                        lane=info.lane,
                        seq=seq,
                        source_address=self.address,
                        destination_address=child,
                    )
                )
        return outgoing

    def flush_data(self, flow_id: int, seq: int) -> list[Packet]:
        """Regenerate and forward slices for children whose parent slice is lost.

        Implements §4.4.1: when this relay holds at least ``d`` slices of data
        message ``seq`` it can synthesise a fresh random linear combination to
        replace any slice a failed parent should have delivered.  Without
        ``regenerate_redundancy`` the lost slice stays lost (erasure-coding
        baseline behaviour).
        """
        state = self.flows.get(flow_id)
        if state is None or not state.decoded:
            return []
        return self._flush_data_state(state, seq)

    def flush_data_many(self, flow_id: int, seqs: list[int]) -> list[Packet]:
        """Batched :meth:`flush_data`: one flow-table resolution for a burst.

        Identical behaviour and RNG consumption to flushing each ``seq`` in
        order; the per-sequence flow lookup and decode check happen once.
        """
        state = self.flows.get(flow_id)
        if state is None or not state.decoded:
            return []
        outgoing: list[Packet] = []
        for seq in seqs:
            outgoing.extend(self._flush_data_state(state, seq))
        return outgoing

    def _flush_data_state(self, state: FlowState, seq: int) -> list[Packet]:
        info = state.info
        assert info is not None
        if seq in state.data_flushed or not info.next_hop_addresses:
            state.data_flushed.add(seq)
            return []
        state.data_flushed.add(seq)
        blocks: list[CodedBlock] | None = None
        coder = SliceCoder(state.d, field=self.field)
        outgoing: list[Packet] = []
        for child_index, (child, child_flow) in enumerate(
            zip(info.next_hop_addresses, info.next_hop_flow_ids)
        ):
            if (seq, child_index) in state.data_forwarded:
                continue
            if not self.regenerate_redundancy or state.data.count(seq) < state.d:
                continue
            if blocks is None:
                blocks = state.data.blocks(seq)
            replacement = coder.recombine(blocks, self.rng)
            self.stats.regenerated_slices += 1
            state.data_forwarded.add((seq, child_index))
            outgoing.append(
                Packet(
                    flow_id=child_flow,
                    kind=PacketKind.DATA,
                    slices=[replacement],
                    d=state.d,
                    lane=info.lane,
                    seq=seq,
                    source_address=self.address,
                    destination_address=child,
                )
            )
        self._account_sent(outgoing)
        return outgoing

    def _deliver_pending(self, pending: list[tuple[FlowState, int]]) -> None:
        """Batched delivery decode for every (flow, seq) touched by a batch."""
        per_state: dict[int, tuple[FlowState, list[int]]] = {}
        seen: set[tuple[int, int]] = set()
        for state, seq in pending:
            key = (id(state), seq)
            if key in seen:
                continue
            seen.add(key)
            per_state.setdefault(id(state), (state, []))[1].append(seq)
        for state, seqs in per_state.values():
            ready = [
                seq
                for seq in seqs
                if seq not in state.delivered and state.data.count(seq) >= state.d
            ]
            if not ready:
                continue
            decoded = state.data.decode_many(ready)
            if not decoded:
                continue
            info = state.info
            assert info is not None
            cipher = StreamCipher(info.secret_key)
            for seq in ready:
                ciphertext = decoded.get(seq)
                if ciphertext is None:
                    continue
                state.delivered[seq] = cipher.decrypt(ciphertext, data_nonce(seq))
                self.stats.messages_delivered += 1

    def _try_deliver(self, state: FlowState, seq: int) -> None:
        if seq in state.delivered:
            return
        info = state.info
        assert info is not None
        if state.data.count(seq) < state.d:
            return
        blocks = state.data.blocks(seq)
        coder = SliceCoder(state.d, field=self.field)
        try:
            ciphertext = robust_decode(coder, blocks)
        except (InsufficientSlicesError, CodingError):
            return
        cipher = StreamCipher(info.secret_key)
        state.delivered[seq] = cipher.decrypt(ciphertext, data_nonce(seq))
        self.stats.messages_delivered += 1
