"""The overlay relay daemon (§4.3.5, §4.3.6, §7.1).

A :class:`Relay` is the per-node protocol engine.  It keeps a flow table
keyed on flow-id; for each flow it collects setup packets from its parents,
decodes its own routing information (§4.3.5), forwards the remaining slices
to its children as instructed by its slice-map (§4.3.6), and relays data
slices according to its data-map (§4.3.7), regenerating lost redundancy with
network coding when a parent has failed (§4.4.1).

The relay is transport-agnostic: :meth:`handle_packet` returns the packets to
transmit, and the overlay layer (local loop, discrete-event simulator, or a
real socket daemon) decides how and when to deliver them.  Timeout-driven
behaviour (forwarding despite missing parents) is triggered by the overlay
calling :meth:`flush_setup` / :meth:`flush_data`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..crypto.symmetric import StreamCipher
from .coder import CodedBlock, SliceCoder
from .errors import CodingError, InsufficientSlicesError, ProtocolError
from .integrity import robust_decode
from .node_info import NodeInfo
from .packet import Packet, PacketKind, random_padding_slice
from .source import data_nonce


@dataclass
class FlowState:
    """Per-flow state kept by a relay (the paper's flow-table entry)."""

    flow_id: int
    d: int
    setup_packets: dict[int, Packet] = field(default_factory=dict)
    info: NodeInfo | None = None
    setup_forwarded: bool = False
    pending_data: list[Packet] = field(default_factory=list)
    data_blocks: dict[int, dict[int, CodedBlock]] = field(default_factory=dict)
    data_forwarded: set[tuple[int, int]] = field(default_factory=set)
    data_flushed: set[int] = field(default_factory=set)
    delivered: dict[int, bytes] = field(default_factory=dict)
    last_activity: float = 0.0

    @property
    def decoded(self) -> bool:
        return self.info is not None

    def own_setup_blocks(self) -> list[CodedBlock]:
        """The slices addressed to this node (slot 0 of every setup packet)."""
        return [packet.own_slice for packet in self.setup_packets.values()]


@dataclass
class RelayStats:
    """Counters useful for experiments and debugging."""

    packets_received: int = 0
    packets_sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    flows_decoded: int = 0
    messages_delivered: int = 0
    regenerated_slices: int = 0


class Relay:
    """Protocol engine for one overlay node.

    Parameters
    ----------
    address:
        This node's overlay address.
    rng:
        Randomness source for padding and network-coding coefficients.
    auto_forward_setup:
        When True (default), setup slices are forwarded as soon as packets
        from all ``d'`` parents have arrived.  The overlay can also force
        forwarding earlier via :meth:`flush_setup` (e.g. on a timeout).
    regenerate_redundancy:
        Enable the network-coding regeneration of §4.4.1.  Disabling it gives
        the plain "erasure-coding only" behaviour used by the ablation bench.
    """

    def __init__(
        self,
        address: str,
        rng: np.random.Generator | None = None,
        auto_forward_setup: bool = True,
        regenerate_redundancy: bool = True,
    ) -> None:
        self.address = address
        self.rng = np.random.default_rng() if rng is None else rng
        self.auto_forward_setup = auto_forward_setup
        self.regenerate_redundancy = regenerate_redundancy
        self.flows: dict[int, FlowState] = {}
        self.stats = RelayStats()

    # -- flow-table helpers ----------------------------------------------------------

    def _state_for(self, packet: Packet) -> FlowState:
        state = self.flows.get(packet.flow_id)
        if state is None:
            state = FlowState(flow_id=packet.flow_id, d=packet.d)
            self.flows[packet.flow_id] = state
        return state

    def garbage_collect(self, before: float) -> int:
        """Drop flow entries idle since before ``before``; returns count dropped."""
        stale = [
            flow_id
            for flow_id, state in self.flows.items()
            if state.last_activity < before
        ]
        for flow_id in stale:
            del self.flows[flow_id]
        return len(stale)

    def is_receiver(self, flow_id: int) -> bool:
        state = self.flows.get(flow_id)
        return bool(state and state.info and state.info.is_receiver)

    def delivered_messages(self, flow_id: int) -> dict[int, bytes]:
        """Messages this node has decoded as the flow's destination."""
        state = self.flows.get(flow_id)
        if state is None:
            return {}
        return dict(state.delivered)

    # -- packet handling ---------------------------------------------------------------

    def handle_packet(self, packet: Packet, now: float = 0.0) -> list[Packet]:
        """Process one incoming packet; returns the packets to transmit."""
        self.stats.packets_received += 1
        self.stats.bytes_received += packet.size_bytes()
        state = self._state_for(packet)
        state.last_activity = now
        if packet.kind == PacketKind.SETUP:
            outgoing = self._handle_setup(state, packet)
        elif packet.kind == PacketKind.DATA:
            outgoing = self._handle_data(state, packet)
        else:  # pragma: no cover - PacketKind is a closed enum
            raise ProtocolError(f"unknown packet kind {packet.kind}")
        self._account_sent(outgoing)
        return outgoing

    def _account_sent(self, packets: list[Packet]) -> None:
        self.stats.packets_sent += len(packets)
        self.stats.bytes_sent += sum(p.size_bytes() for p in packets)

    # -- setup phase -------------------------------------------------------------------

    def _handle_setup(self, state: FlowState, packet: Packet) -> list[Packet]:
        if packet.lane in state.setup_packets:
            return []
        state.setup_packets[packet.lane] = packet
        if not state.decoded:
            self._try_decode_info(state)
        outgoing: list[Packet] = []
        if (
            state.decoded
            and not state.setup_forwarded
            and self.auto_forward_setup
            and len(state.setup_packets) >= state.info.num_parents
        ):
            outgoing.extend(self._build_setup_forwards(state))
        # Data packets may have raced ahead of the setup decode.
        if state.decoded and state.pending_data:
            pending, state.pending_data = state.pending_data, []
            for buffered in pending:
                outgoing.extend(self._handle_data(state, buffered))
        return outgoing

    def _try_decode_info(self, state: FlowState) -> None:
        blocks = state.own_setup_blocks()
        if len(blocks) < state.d:
            return
        coder = SliceCoder(state.d)
        try:
            payload = robust_decode(coder, blocks)
            state.info = NodeInfo.unpack(payload)
            self.stats.flows_decoded += 1
        except (InsufficientSlicesError, CodingError, ProtocolError):
            state.info = None

    def _build_setup_forwards(self, state: FlowState) -> list[Packet]:
        info = state.info
        assert info is not None
        state.setup_forwarded = True
        if not info.next_hop_addresses:
            return []
        sample = next(iter(state.setup_packets.values())).own_slice
        payload_bytes = int(sample.payload.shape[0])
        outgoing: list[Packet] = []
        for child_index, (child, child_flow) in enumerate(
            zip(info.next_hop_addresses, info.next_hop_flow_ids)
        ):
            slices: list[CodedBlock] = []
            for entry in info.slice_map.for_child(child_index):
                block = None
                if not entry.is_random:
                    incoming = state.setup_packets.get(entry.parent_index)
                    if incoming is not None and entry.slot_index < len(incoming.slices):
                        block = incoming.slices[entry.slot_index]
                if block is None:
                    block = random_padding_slice(state.d, payload_bytes, self.rng)
                slices.append(block)
            outgoing.append(
                Packet(
                    flow_id=child_flow,
                    kind=PacketKind.SETUP,
                    slices=slices,
                    d=state.d,
                    lane=info.lane,
                    seq=0,
                    source_address=self.address,
                    destination_address=child,
                )
            )
        return outgoing

    def flush_setup(self, flow_id: int) -> list[Packet]:
        """Forward setup slices now, padding slots whose parents never arrived.

        Called by the overlay on a timeout when churn has made some parents
        fail.  Returns an empty list when this node could not decode its own
        information (fewer than ``d`` of its slices arrived), in which case
        the flow is dead at this node.
        """
        state = self.flows.get(flow_id)
        if state is None or state.setup_forwarded:
            return []
        if not state.decoded:
            self._try_decode_info(state)
        if not state.decoded:
            return []
        outgoing = self._build_setup_forwards(state)
        self._account_sent(outgoing)
        return outgoing

    # -- data phase --------------------------------------------------------------------

    def _handle_data(self, state: FlowState, packet: Packet) -> list[Packet]:
        if not state.decoded:
            state.pending_data.append(packet)
            return []
        info = state.info
        assert info is not None
        per_seq = state.data_blocks.setdefault(packet.seq, {})
        if packet.lane in per_seq:
            return []
        block = packet.own_slice
        per_seq[packet.lane] = block
        if info.is_receiver:
            self._try_deliver(state, packet.seq)
        outgoing: list[Packet] = []
        for child_index, (child, child_flow) in enumerate(
            zip(info.next_hop_addresses, info.next_hop_flow_ids)
        ):
            if info.data_map.for_child(child_index) != packet.lane:
                continue
            if (packet.seq, child_index) in state.data_forwarded:
                continue
            state.data_forwarded.add((packet.seq, child_index))
            outgoing.append(
                Packet(
                    flow_id=child_flow,
                    kind=PacketKind.DATA,
                    slices=[block],
                    d=state.d,
                    lane=info.lane,
                    seq=packet.seq,
                    source_address=self.address,
                    destination_address=child,
                )
            )
        return outgoing

    def flush_data(self, flow_id: int, seq: int) -> list[Packet]:
        """Regenerate and forward slices for children whose parent slice is lost.

        Implements §4.4.1: when this relay holds at least ``d`` slices of data
        message ``seq`` it can synthesise a fresh random linear combination to
        replace any slice a failed parent should have delivered.  Without
        ``regenerate_redundancy`` the lost slice stays lost (erasure-coding
        baseline behaviour).
        """
        state = self.flows.get(flow_id)
        if state is None or not state.decoded:
            return []
        info = state.info
        assert info is not None
        per_seq = state.data_blocks.get(seq, {})
        if seq in state.data_flushed or not info.next_hop_addresses:
            state.data_flushed.add(seq)
            return []
        state.data_flushed.add(seq)
        blocks = list(per_seq.values())
        coder = SliceCoder(state.d)
        outgoing: list[Packet] = []
        for child_index, (child, child_flow) in enumerate(
            zip(info.next_hop_addresses, info.next_hop_flow_ids)
        ):
            if (seq, child_index) in state.data_forwarded:
                continue
            if not self.regenerate_redundancy or len(blocks) < state.d:
                continue
            replacement = coder.recombine(blocks, self.rng)
            self.stats.regenerated_slices += 1
            state.data_forwarded.add((seq, child_index))
            outgoing.append(
                Packet(
                    flow_id=child_flow,
                    kind=PacketKind.DATA,
                    slices=[replacement],
                    d=state.d,
                    lane=info.lane,
                    seq=seq,
                    source_address=self.address,
                    destination_address=child,
                )
            )
        self._account_sent(outgoing)
        return outgoing

    def _try_deliver(self, state: FlowState, seq: int) -> None:
        if seq in state.delivered:
            return
        info = state.info
        assert info is not None
        blocks = list(state.data_blocks.get(seq, {}).values())
        if len(blocks) < state.d:
            return
        coder = SliceCoder(state.d)
        try:
            ciphertext = robust_decode(coder, blocks)
        except (InsufficientSlicesError, CodingError):
            return
        cipher = StreamCipher(info.secret_key)
        state.delivered[seq] = cipher.decrypt(ciphertext, data_nonce(seq))
        self.stats.messages_delivered += 1
