"""Flow-plan compilation: graph -> per-node routing information.

Given a :class:`~repro.core.graph.ForwardingGraph`, the source needs concrete
per-node artefacts (§4.3.1):

* a flow-id and a secret key per relay,
* the slice-map describing how each relay shuffles setup slices into the
  packets it sends to each child (§4.3.6), and
* the data-map describing how data slices are routed so every node ends up
  with exactly ``d'`` distinct data slices (§4.3.7).

:func:`compile_flow_plan` produces all of these as a :class:`FlowPlan`, which
the :class:`~repro.core.source.Source` then slices, codes and ships.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..crypto.keys import KeyMaterial, generate_flow_id
from .errors import GraphConstructionError
from .graph import ForwardingGraph, SliceId
from .node_info import DataMap, NodeInfo, SliceMap, SliceMapEntry


@dataclass
class FlowPlan:
    """Everything the source knows about one anonymous flow.

    Only the source ever holds a complete plan; each relay receives just its
    own :class:`~repro.core.node_info.NodeInfo` (confidentially, as slices).
    """

    graph: ForwardingGraph
    flow_ids: dict[str, int]
    keys: dict[str, KeyMaterial]
    node_infos: dict[str, NodeInfo]
    slots_per_packet: int
    edge_slices: dict[tuple[str, str], list[SliceId]] = field(default_factory=dict)

    @property
    def destination(self) -> str:
        return self.graph.destination

    @property
    def destination_key(self) -> KeyMaterial:
        return self.keys[self.graph.destination]

    def flow_id_of(self, address: str) -> int:
        return self.flow_ids[address]

    def info_of(self, address: str) -> NodeInfo:
        return self.node_infos[address]


def compile_flow_plan(graph: ForwardingGraph, rng: np.random.Generator) -> FlowPlan:
    """Compile the forwarding graph into per-node routing information."""
    graph.validate()
    d_prime = graph.d_prime
    slots = graph.max_slices_per_edge()

    flow_ids: dict[str, int] = {}
    keys: dict[str, KeyMaterial] = {}
    for relay in graph.relays:
        flow_ids[relay] = generate_flow_id(rng)
        keys[relay] = KeyMaterial.generate(rng)

    # Pre-compute the slice lists for every edge once; they are needed both to
    # build the slice-maps and, by the source, to build the initial packets.
    edge_lists: dict[tuple[str, str], list[SliceId]] = {}
    for parent, child in graph.edges():
        edge_lists[(parent, child)] = graph.edge_slices(parent, child)

    node_infos: dict[str, NodeInfo] = {}
    for relay in graph.relays:
        stage = graph.stage_of(relay)
        position = graph.position_of(relay)
        children = graph.children(relay)
        slice_map = _build_slice_map(graph, relay, children, edge_lists, slots)
        data_map = _build_data_map(graph, relay, children)
        node_infos[relay] = NodeInfo(
            next_hop_addresses=children,
            next_hop_flow_ids=[flow_ids[child] for child in children],
            is_receiver=(relay == graph.destination),
            secret_key=keys[relay].key,
            slice_map=slice_map,
            data_map=data_map,
            lane=position,
            num_parents=d_prime,
        )
        # Silence unused warning for stage; kept for readability of intent.
        del stage
    return FlowPlan(
        graph=graph,
        flow_ids=flow_ids,
        keys=keys,
        node_infos=node_infos,
        slots_per_packet=slots,
        edge_slices=edge_lists,
    )


def _build_slice_map(
    graph: ForwardingGraph,
    relay: str,
    children: list[str],
    edge_lists: dict[tuple[str, str], list[SliceId]],
    slots: int,
) -> SliceMap:
    """Build the setup-phase shuffle instructions for one relay."""
    stage = graph.stage_of(relay)
    parents = graph.parents(relay)
    parent_index = {parent: index for index, parent in enumerate(parents)}
    entries: list[list[SliceMapEntry]] = []
    for child in children:
        outgoing = edge_lists[(relay, child)]
        child_entries: list[SliceMapEntry] = []
        for slot in range(slots):
            if slot >= len(outgoing):
                child_entries.append(SliceMapEntry.random())
                continue
            owner, k = outgoing[slot]
            carrier_parent = graph.carrier(owner, k, stage - 1)
            incoming = edge_lists[(carrier_parent, relay)]
            try:
                incoming_slot = incoming.index((owner, k))
            except ValueError as exc:  # pragma: no cover - defensive
                raise GraphConstructionError(
                    f"slice {(owner, k)} expected on edge "
                    f"{carrier_parent}->{relay} but not found"
                ) from exc
            child_entries.append(
                SliceMapEntry(parent_index[carrier_parent], incoming_slot)
            )
        entries.append(child_entries)
    return SliceMap(entries=entries)


def _build_data_map(
    graph: ForwardingGraph, relay: str, children: list[str]
) -> DataMap:
    """Build the data-phase forwarding instructions for one relay.

    During the data phase, source-stage node ``p`` injects data slice ``p``
    to every first-stage relay.  We maintain the invariant that the node at
    position ``a`` of stage ``m >= 2`` receives original slice ``(a + p) mod
    d'`` from its parent at position ``p``.  The maps below establish and
    preserve that invariant, which guarantees every node collects all ``d'``
    distinct data slices:

    * a first-stage relay at position ``a`` forwards to the child at position
      ``b`` the slice it received from source-stage node ``(a + b) mod d'``;
    * a deeper relay forwards to the child at position ``b`` the slice it
      received from its parent at position ``b``.
    """
    if not children:
        return DataMap(slice_for_child=[])
    stage = graph.stage_of(relay)
    position = graph.position_of(relay)
    d_prime = graph.d_prime
    if stage == 1:
        mapping = [
            (position + graph.position_of(child)) % d_prime for child in children
        ]
    else:
        mapping = [graph.position_of(child) % d_prime for child in children]
    return DataMap(slice_for_child=mapping)
