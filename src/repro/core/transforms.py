"""Per-hop anti-pattern transforms (§9.4a).

Colluding attackers in non-consecutive stages could try to track a flow by
injecting a recognisable bit pattern and watching it reappear downstream.
The countermeasure: before transmission the source passes every slice through
a chain of random invertible transforms — one per relay that will handle the
slice — and confidentially tells each of those relays the inverse of "its"
transform.  Every hop peels one transform, so the slice never looks the same
on two links, yet arrives at its owner unmodified.

We use affine transforms over GF(2^8): ``y = a * x + b`` applied element-wise
with a non-zero multiplier ``a`` and mask ``b``.  Affine maps compose and
invert in closed form, which keeps the per-hop cost at one multiply and one
XOR per byte — the same order as the coding itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .coder import CodedBlock
from .errors import CodingError
from .gf import GF, GF256


@dataclass(frozen=True)
class AffineTransform:
    """An invertible element-wise transform ``y = a*x + b`` over GF(2^8)."""

    multiplier: int
    mask: int

    def __post_init__(self) -> None:
        if not 1 <= self.multiplier <= 255:
            raise CodingError(
                f"transform multiplier must be a non-zero field element, "
                f"got {self.multiplier}"
            )
        if not 0 <= self.mask <= 255:
            raise CodingError(f"transform mask must be a field element, got {self.mask}")

    @classmethod
    def random(cls, rng: np.random.Generator) -> "AffineTransform":
        return cls(
            multiplier=int(rng.integers(1, 256)), mask=int(rng.integers(0, 256))
        )

    @classmethod
    def identity(cls) -> "AffineTransform":
        return cls(multiplier=1, mask=0)

    def apply(self, data: np.ndarray, field: GF256 = GF) -> np.ndarray:
        """Apply the transform element-wise to a uint8 array."""
        data = np.asarray(data, dtype=np.uint8)
        return field.add(field.multiply(data, np.uint8(self.multiplier)), np.uint8(self.mask))

    def apply_block(self, block: CodedBlock, field: GF256 = GF) -> CodedBlock:
        """Apply the transform to a coded slice (payload and coefficients)."""
        return CodedBlock(
            coefficients=self.apply(block.coefficients, field),
            payload=self.apply(block.payload, field),
            index=block.index,
        )

    def invert(self, field: GF256 = GF) -> "AffineTransform":
        """The transform ``x = a^{-1} * (y + b)`` undoing this one."""
        inv_a = int(field.inverse(np.uint8(self.multiplier)))
        new_mask = int(field.multiply(np.uint8(inv_a), np.uint8(self.mask)))
        return AffineTransform(multiplier=inv_a, mask=new_mask)

    def compose(self, inner: "AffineTransform", field: GF256 = GF) -> "AffineTransform":
        """The transform equivalent to applying ``inner`` first, then ``self``."""
        a = int(field.multiply(np.uint8(self.multiplier), np.uint8(inner.multiplier)))
        b = int(
            field.add(
                field.multiply(np.uint8(self.multiplier), np.uint8(inner.mask)),
                np.uint8(self.mask),
            )
        )
        return AffineTransform(multiplier=a, mask=b)

    def pack(self) -> bytes:
        return bytes([self.multiplier, self.mask])

    @classmethod
    def unpack(cls, data: bytes) -> "AffineTransform":
        if len(data) < 2:
            raise CodingError("transform encoding truncated")
        return cls(multiplier=data[0], mask=data[1])


def build_transform_chain(
    hops: int, rng: np.random.Generator, field: GF256 = GF
) -> tuple[AffineTransform, list[AffineTransform]]:
    """Create the chain applied by the source and the per-hop inverses.

    For a slice that will traverse ``hops`` relays before reaching its owner,
    the source applies ``T_{hops} ∘ ... ∘ T_1`` and relay ``i`` (in traversal
    order) applies the inverse of ``T_i``... except that inverses must be
    peeled outermost-first, so relay ``i`` actually receives the inverse of
    ``T_{hops - i + 1}``.  Returns ``(combined, per_hop_inverses)`` where
    ``per_hop_inverses[i]`` is what the ``i``-th relay on the path applies.
    """
    if hops < 0:
        raise CodingError(f"hop count must be non-negative, got {hops}")
    transforms = [AffineTransform.random(rng) for _ in range(hops)]
    combined = AffineTransform.identity()
    for transform in transforms:
        combined = transform.compose(combined, field)
    # Relay i peels the outermost remaining layer: T_{hops}, then T_{hops-1}, ...
    inverses = [transforms[hops - 1 - i].invert(field) for i in range(hops)]
    return combined, inverses


def verify_chain(
    combined: AffineTransform,
    inverses: list[AffineTransform],
    field: GF256 = GF,
) -> bool:
    """Check that applying all per-hop inverses undoes the combined transform."""
    current = combined
    for inverse in inverses:
        current = inverse.compose(current, field)
    return current == AffineTransform.identity()
