"""Message slicing, coding, and decoding (§4.1, §4.3.2, §4.4).

The :class:`SliceCoder` turns an arbitrary byte string into ``d'`` coded
*blocks*, each tagged with the coefficient row that produced it.  Any ``d``
blocks with linearly independent rows suffice to reconstruct the message;
fewer reveal nothing (pi-security, Lemma 5.1).

Pipeline (encode):

1. pad the message to a multiple of ``d`` and prefix its true length;
2. reshape into a ``d x k`` matrix ``M`` over GF(2^8) — row ``i`` is message
   piece ``m_i``;
3. multiply by the ``d' x d`` coding matrix: ``C = A' @ M``;
4. emit ``d'`` :class:`CodedBlock` objects, block ``i`` carrying row ``A'_i``
   and coded payload ``C_i``.

Decoding stacks any ``d`` independent rows into a square matrix, inverts it,
recovers ``M``, strips the length prefix and padding.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from .errors import CodingError, InsufficientSlicesError
from .gf import GF256, resolve_field
from .matrix import mds_matrix, random_invertible_matrix

#: Number of bytes used to prefix the plaintext with its length.
_LENGTH_PREFIX = 4


@dataclass(frozen=True, slots=True)
class CodedBlock:
    """One coded slice of a message: a coefficient row plus the coded payload.

    ``coefficients`` has length ``d`` (the split factor used at encode time);
    ``payload`` is the coded byte block.  ``index`` records which row of the
    coding matrix produced this block — it is informational only and not
    required for decoding.
    """

    coefficients: np.ndarray
    payload: np.ndarray
    index: int = -1

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "coefficients", np.asarray(self.coefficients, dtype=np.uint8).reshape(-1)
        )
        object.__setattr__(
            self, "payload", np.asarray(self.payload, dtype=np.uint8).reshape(-1)
        )

    @property
    def d(self) -> int:
        """Split factor this block was coded with."""
        return int(self.coefficients.shape[0])

    def to_bytes(self) -> bytes:
        """Serialize as ``d`` coefficient bytes followed by the payload."""
        return bytes(self.coefficients.tobytes()) + bytes(self.payload.tobytes())

    @classmethod
    def from_bytes(cls, data: bytes, d: int, index: int = -1) -> "CodedBlock":
        """Parse a block serialized by :meth:`to_bytes` given the split factor."""
        if len(data) < d:
            raise CodingError(
                f"coded block too short: {len(data)} bytes for split factor {d}"
            )
        coefficients = np.frombuffer(data[:d], dtype=np.uint8)
        payload = np.frombuffer(data[d:], dtype=np.uint8)
        return cls(coefficients=coefficients, payload=payload, index=index)

    def size_bytes(self) -> int:
        """Total serialized size in bytes."""
        return self.coefficients.size + self.payload.size


def _pad_message(message: bytes, d: int) -> np.ndarray:
    """Length-prefix and zero-pad ``message`` so it reshapes into ``d`` rows."""
    prefixed = struct.pack(">I", len(message)) + message
    remainder = len(prefixed) % d
    if remainder:
        prefixed += b"\x00" * (d - remainder)
    return np.frombuffer(prefixed, dtype=np.uint8).reshape(d, -1, order="C")


def _pad_messages(messages: list[bytes], d: int) -> np.ndarray:
    """Batched :func:`_pad_message`: equal-length messages to a ``(B, d, k)`` stack."""
    batch = len(messages)
    length = len(messages[0])
    prefixed_len = _LENGTH_PREFIX + length
    padded_len = prefixed_len + (-prefixed_len % d)
    buf = np.zeros((batch, padded_len), dtype=np.uint8)
    buf[:, :_LENGTH_PREFIX] = np.frombuffer(struct.pack(">I", length), dtype=np.uint8)
    if length:
        stacked = np.frombuffer(b"".join(messages), dtype=np.uint8)
        buf[:, _LENGTH_PREFIX:prefixed_len] = stacked.reshape(batch, length)
    return buf.reshape(batch, d, -1)


def _unpad_message(matrix: np.ndarray) -> bytes:
    """Invert :func:`_pad_message`."""
    flat = matrix.reshape(-1, order="C").tobytes()
    if len(flat) < _LENGTH_PREFIX:
        raise CodingError("decoded data shorter than the length prefix")
    (length,) = struct.unpack(">I", flat[:_LENGTH_PREFIX])
    body = flat[_LENGTH_PREFIX:]
    if length > len(body):
        raise CodingError(
            f"decoded length prefix {length} exceeds available payload {len(body)}"
        )
    return body[:length]


class SliceCoder:
    """Encode and decode messages as random linear combinations over GF(2^8).

    Parameters
    ----------
    d:
        Split factor — the number of independent pieces the message is chopped
        into.  Any ``d`` coded blocks reconstruct the message.
    d_prime:
        Total number of coded blocks emitted (``d_prime >= d``).  The extra
        ``d_prime - d`` blocks are redundancy against churn (§4.4).  Defaults
        to ``d`` (no redundancy).
    field:
        Finite field implementation.  Defaults to the shared instance for
        the active kernel (see :func:`repro.core.gf.use_kernel`).
    kernel:
        Shorthand for ``field=field_for_kernel(kernel)``; ignored when an
        explicit ``field`` is given.
    """

    def __init__(
        self,
        d: int,
        d_prime: int | None = None,
        field: GF256 | None = None,
        kernel: str | None = None,
    ) -> None:
        if d < 1:
            raise CodingError(f"split factor d must be >= 1, got {d}")
        d_prime = d if d_prime is None else d_prime
        if d_prime < d:
            raise CodingError(f"d' ({d_prime}) must be >= d ({d})")
        self.d = d
        self.d_prime = d_prime
        self.field = resolve_field(field, kernel)

    # -- encoding ----------------------------------------------------------------

    def generate_matrix(self, rng: np.random.Generator) -> np.ndarray:
        """Sample a fresh coding matrix of shape ``(d', d)``.

        With no redundancy this is a uniformly random invertible matrix (the
        matrix ``A`` of Eq. 3); with redundancy it is an MDS matrix whose
        every ``d``-row subset is invertible (the matrix ``A'`` of Eq. 4).
        """
        if self.d_prime == self.d:
            return random_invertible_matrix(self.d, rng, field=self.field)
        return mds_matrix(self.d_prime, self.d, rng=rng, field=self.field)

    def generate_matrices(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``count`` fresh coding matrices as a ``(count, d', d)`` stack.

        The square (no-redundancy) case samples all candidates at once and
        keeps the invertible ones via the batched elimination kernel, so the
        rejection loop runs a constant number of numpy passes instead of one
        rank computation per matrix.
        """
        if count < 0:
            raise CodingError(f"matrix count must be >= 0, got {count}")
        if count == 0:
            return np.empty((0, self.d_prime, self.d), dtype=np.uint8)
        if self.d_prime != self.d:
            return np.stack(
                [
                    mds_matrix(self.d_prime, self.d, rng=rng, field=self.field)
                    for _ in range(count)
                ]
            )
        matrices = np.empty((count, self.d, self.d), dtype=np.uint8)
        missing = np.ones(count, dtype=bool)
        for _ in range(64):
            slots = np.flatnonzero(missing)
            if slots.size == 0:
                return matrices
            candidates = self.field.random_elements((slots.size, self.d, self.d), rng)
            accepted = self.field.invertible_mask(candidates)
            matrices[slots[accepted]] = candidates[accepted]
            missing[slots[accepted]] = False
        raise CodingError(
            "failed to sample invertible coding matrices (should be unreachable)"
        )

    def encode(
        self, message: bytes, rng: np.random.Generator, matrix: np.ndarray | None = None
    ) -> list[CodedBlock]:
        """Encode ``message`` into ``d'`` coded blocks.

        A coding matrix is sampled unless ``matrix`` is supplied (it must then
        have shape ``(d', d)``).
        """
        if matrix is None:
            matrix = self.generate_matrix(rng)
        matrix = np.asarray(matrix, dtype=np.uint8)
        if matrix.shape != (self.d_prime, self.d):
            raise CodingError(
                f"coding matrix shape {matrix.shape} does not match "
                f"(d'={self.d_prime}, d={self.d})"
            )
        pieces = _pad_message(bytes(message), self.d)
        coded = self.field.matmul(matrix, pieces)
        return [
            CodedBlock(coefficients=matrix[i], payload=coded[i], index=i)
            for i in range(self.d_prime)
        ]

    def encode_batch(
        self,
        messages: list[bytes],
        rng: np.random.Generator,
        matrices: np.ndarray | None = None,
    ) -> list[list[CodedBlock]]:
        """Encode a batch of equal-length messages in one 3-D coding pass.

        Semantically identical to calling :meth:`encode` once per message —
        each message still gets its own independent coding matrix — but the
        padding, matrix sampling and GF(2^8) multiply all run as single
        batched numpy kernels, which is what the throughput experiments
        (Figs. 11–13) lean on.  ``matrices`` may supply a pre-sampled
        ``(batch, d', d)`` stack (or one shared ``(d', d)`` matrix).
        """
        messages = [bytes(message) for message in messages]
        if not messages:
            return []
        length = len(messages[0])
        if any(len(message) != length for message in messages):
            raise CodingError("encode_batch requires equal-length messages")
        batch = len(messages)
        if matrices is None:
            matrices = self.generate_matrices(batch, rng)
        matrices = np.asarray(matrices, dtype=np.uint8)
        if matrices.shape == (self.d_prime, self.d):
            matrices = np.broadcast_to(matrices, (batch, self.d_prime, self.d))
        if matrices.shape != (batch, self.d_prime, self.d):
            raise CodingError(
                f"coding matrix stack shape {matrices.shape} does not match "
                f"(batch={batch}, d'={self.d_prime}, d={self.d})"
            )
        pieces = _pad_messages(messages, self.d)
        coded = self.field.matmul(matrices, pieces)
        return [
            [
                CodedBlock(coefficients=matrices[b, i], payload=coded[b, i], index=i)
                for i in range(self.d_prime)
            ]
            for b in range(batch)
        ]

    # -- decoding ----------------------------------------------------------------

    def decode(self, blocks: list[CodedBlock]) -> bytes:
        """Reconstruct the original message from any ``d`` independent blocks.

        Raises :class:`InsufficientSlicesError` when fewer than ``d``
        linearly independent blocks are available, and :class:`CodingError`
        when block shapes are inconsistent.
        """
        independent = self.select_independent(blocks)
        if len(independent) < self.d:
            raise InsufficientSlicesError(self.d, len(independent))
        rows = np.stack([b.coefficients for b in independent[: self.d]])
        payloads = np.stack([b.payload for b in independent[: self.d]])
        inverse = self.field.invert_matrix(rows)
        pieces = self.field.matmul(inverse, payloads)
        return _unpad_message(pieces)

    def decode_batch(self, blocks_batch: list[list[CodedBlock]]) -> list[bytes]:
        """Decode a batch of block lists in one 3-D pass; see :meth:`decode`.

        All coefficient matrices are inverted together by the batched
        Gauss–Jordan kernel and all payloads recovered by one batched
        multiply.  Every entry must decode to a message of the same padded
        length (the common case: equal-size packets).
        """
        blocks_batch = list(blocks_batch)
        if not blocks_batch:
            return []
        selections: list[list[CodedBlock]] = []
        for blocks in blocks_batch:
            independent = self.select_independent(blocks)
            if len(independent) < self.d:
                raise InsufficientSlicesError(self.d, len(independent))
            selections.append(independent[: self.d])
        payload_len = selections[0][0].payload.shape[0]
        for selection in selections:
            if any(block.payload.shape[0] != payload_len for block in selection):
                raise CodingError(
                    "decode_batch requires equal payload lengths across the batch"
                )
        rows = np.stack(
            [np.stack([block.coefficients for block in sel]) for sel in selections]
        )
        payloads = np.stack(
            [np.stack([block.payload for block in sel]) for sel in selections]
        )
        inverses = self.field.invert_matrices(rows)
        pieces = self.field.matmul(inverses, payloads)
        return [_unpad_message(piece) for piece in pieces]

    def select_independent(self, blocks: list[CodedBlock]) -> list[CodedBlock]:
        """Return a maximal linearly independent subset of ``blocks`` (greedy)."""
        if not blocks:
            return []
        payload_len = blocks[0].payload.shape[0]
        selected: list[CodedBlock] = []
        rows: list[np.ndarray] = []
        for block in blocks:
            if block.coefficients.shape[0] != self.d:
                raise CodingError(
                    f"block coded with split factor {block.coefficients.shape[0]}, "
                    f"decoder expects {self.d}"
                )
            if block.payload.shape[0] != payload_len:
                raise CodingError("coded blocks have inconsistent payload lengths")
            candidate = rows + [block.coefficients]
            if self.field.rank(np.stack(candidate)) == len(candidate):
                rows.append(block.coefficients)
                selected.append(block)
            if len(selected) == self.d:
                break
        return selected

    def can_decode(self, blocks: list[CodedBlock]) -> bool:
        """True iff ``blocks`` contain ``d`` linearly independent rows."""
        try:
            return len(self.select_independent(blocks)) >= self.d
        except CodingError:
            return False

    # -- network coding (§4.4.1) ---------------------------------------------------

    def recombine(
        self, blocks: list[CodedBlock], rng: np.random.Generator
    ) -> CodedBlock:
        """Produce a fresh coded block as a random linear combination of ``blocks``.

        This is the relay-side redundancy regeneration of §4.4.1: a relay that
        received at least ``d`` blocks can synthesise replacements for blocks
        lost upstream.  The combination coefficients are drawn uniformly at
        random (non-zero for at least one input so the result is never the
        zero block).
        """
        if not blocks:
            raise CodingError("cannot recombine an empty block list")
        payload_len = blocks[0].payload.shape[0]
        for block in blocks:
            if block.payload.shape[0] != payload_len:
                raise CodingError("cannot recombine blocks of different payload lengths")
            if block.coefficients.shape[0] != self.d:
                raise CodingError("cannot recombine blocks with mismatched split factors")
        while True:
            weights = self.field.random_elements(len(blocks), rng)
            if np.any(weights != 0):
                break
        coeff_stack = np.stack([b.coefficients for b in blocks])
        payload_stack = np.stack([b.payload for b in blocks])
        new_coeff = self.field.matmul(weights[None, :], coeff_stack)[0]
        new_payload = self.field.matmul(weights[None, :], payload_stack)[0]
        return CodedBlock(coefficients=new_coeff, payload=new_payload, index=-1)

    def regenerate(
        self, blocks: list[CodedBlock], count: int, rng: np.random.Generator
    ) -> list[CodedBlock]:
        """Create ``count`` recombined blocks (convenience wrapper)."""
        return [self.recombine(blocks, rng) for _ in range(count)]

    # -- information-theoretic mode (§5) -------------------------------------------

    def encode_information_theoretic(
        self, message: bytes, rng: np.random.Generator
    ) -> list[CodedBlock]:
        """Encode with the stronger information-theoretic scheme of §5.

        Each of the ``d`` message pieces is mixed with ``d - 1`` uniformly
        random pieces before coding, at a ``d``-fold space cost.  The output
        is ``d' * d`` blocks grouped so that blocks ``[i*d, (i+1)*d)`` carry
        piece ``i``; all blocks of all groups are required to reconstruct.
        """
        pieces = _pad_message(bytes(message), self.d)
        blocks: list[CodedBlock] = []
        sub_coder = SliceCoder(self.d, self.d_prime * 1, field=self.field)
        for i in range(self.d):
            # Mix the real piece with d-1 random pieces: the real piece is the
            # XOR of all d sub-pieces, so every sub-piece is required.
            randoms = self.field.random_elements((self.d - 1, pieces.shape[1]), rng)
            real = pieces[i]
            for row in randoms:
                real = self.field.add(real, row)
            group = np.concatenate([real[None, :], randoms], axis=0)
            group_bytes = group.reshape(-1).tobytes()
            blocks.extend(
                CodedBlock(b.coefficients, b.payload, index=i * self.d_prime + b.index)
                for b in sub_coder.encode(group_bytes, rng)
            )
        return blocks

    def decode_information_theoretic(self, blocks: list[CodedBlock]) -> bytes:
        """Inverse of :meth:`encode_information_theoretic`.

        Blocks must be supplied grouped in the order they were produced (the
        ``index`` attribute preserves grouping across shuffles).
        """
        if len(blocks) < self.d * self.d:
            raise InsufficientSlicesError(self.d * self.d, len(blocks))
        groups: dict[int, list[CodedBlock]] = {}
        for block in blocks:
            groups.setdefault(block.index // self.d_prime, []).append(block)
        sub_coder = SliceCoder(self.d, self.d_prime, field=self.field)
        recovered_rows: list[np.ndarray] = []
        for i in range(self.d):
            if i not in groups:
                raise InsufficientSlicesError(self.d, len(groups))
            group_bytes = sub_coder.decode(groups[i])
            group = np.frombuffer(group_bytes, dtype=np.uint8).reshape(self.d, -1)
            piece = group[0]
            for row in group[1:]:
                piece = self.field.add(piece, row)
            recovered_rows.append(piece)
        matrix = np.stack(recovered_rows)
        return _unpad_message(matrix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SliceCoder(d={self.d}, d_prime={self.d_prime})"
