"""Coding-matrix construction over GF(2^8).

The paper uses two kinds of matrices:

* an invertible ``d x d`` matrix ``A`` used to randomise a message before
  splitting it into ``d`` slices (§4.1, Eq. 3); and
* a ``d' x d`` matrix ``A'`` (``d' > d``) of rank ``d`` whose *every* set of
  ``d`` rows is linearly independent, used to add churn redundancy
  (§4.4, Eq. 4) — i.e. an MDS generator matrix.

This module builds both.  For the MDS case we use Cauchy matrices, whose
square submatrices are all invertible by construction, optionally stacked
under an identity block (a "systematic" layout) when callers want the first
``d`` slices to carry the plain randomised message.
"""

from __future__ import annotations

import numpy as np

from .errors import MatrixError
from .gf import GF, GF256


def random_invertible_matrix(
    d: int, rng: np.random.Generator, field: GF256 = GF
) -> np.ndarray:
    """Return a uniformly random invertible ``d x d`` matrix over GF(2^8).

    Sampling is rejection-based: random matrices over GF(2^8) are invertible
    with probability > 0.99, so this loop nearly always succeeds on the first
    draw.
    """
    if d < 1:
        raise MatrixError(f"matrix dimension must be >= 1, got {d}")
    for _ in range(64):
        candidate = field.random_elements((d, d), rng)
        if field.is_invertible(candidate):
            return candidate
    raise MatrixError("failed to sample an invertible matrix (should be unreachable)")


def cauchy_matrix(
    rows: int, cols: int, field: GF256 = GF, x_offset: int = 0
) -> np.ndarray:
    """Build a ``rows x cols`` Cauchy matrix ``C[i, j] = 1 / (x_i + y_j)``.

    ``x_i`` and ``y_j`` are distinct field elements, which guarantees that
    every square submatrix is invertible.  GF(2^8) has 256 elements, so
    ``rows + cols`` must not exceed 256.
    """
    if rows < 1 or cols < 1:
        raise MatrixError("Cauchy matrix dimensions must be positive")
    if rows + cols > field.order:
        raise MatrixError(
            f"cannot build a {rows}x{cols} Cauchy matrix over GF({field.order}): "
            f"needs {rows + cols} distinct evaluation points"
        )
    xs = np.arange(x_offset, x_offset + rows, dtype=np.uint8)
    ys = np.arange(x_offset + rows, x_offset + rows + cols, dtype=np.uint8)
    sums = field.add(xs[:, None], ys[None, :])
    return field.inverse(sums)


def mds_matrix(
    d_prime: int,
    d: int,
    rng: np.random.Generator | None = None,
    field: GF256 = GF,
    systematic: bool = False,
) -> np.ndarray:
    """Return a ``d' x d`` matrix in which any ``d`` rows are independent.

    This is the redundancy matrix ``A'`` of §4.4.  When ``systematic`` is
    True the top ``d x d`` block is the identity, which keeps the first ``d``
    slices equal to the input vector (useful for debugging and for the
    information-theoretic mode where inputs are already randomised).

    When ``rng`` is given, the rows and columns of the underlying Cauchy
    matrix are scaled by random non-zero elements.  Scaling rows/columns of a
    Cauchy matrix preserves the MDS property while decorrelating repeated
    graph setups from one another.
    """
    if d < 1:
        raise MatrixError(f"d must be >= 1, got {d}")
    if d_prime < d:
        raise MatrixError(f"d' ({d_prime}) must be >= d ({d})")
    if systematic:
        if d_prime == d:
            return np.eye(d, dtype=np.uint8)
        parity = cauchy_matrix(d_prime - d, d, field=field)
        if rng is not None:
            parity = _scale_rows_cols(parity, rng, field)
        return np.concatenate([np.eye(d, dtype=np.uint8), parity], axis=0)
    matrix = cauchy_matrix(d_prime, d, field=field)
    if rng is not None:
        matrix = _scale_rows_cols(matrix, rng, field)
    if d_prime == d and not field.is_invertible(matrix):  # pragma: no cover - defensive
        raise MatrixError("generated square MDS matrix is singular")
    return matrix


def _scale_rows_cols(
    matrix: np.ndarray, rng: np.random.Generator, field: GF256
) -> np.ndarray:
    """Scale each row and column by a random non-zero field element."""
    rows, cols = matrix.shape
    row_scale = field.random_nonzero_elements(rows, rng)
    col_scale = field.random_nonzero_elements(cols, rng)
    scaled = field.multiply(matrix, row_scale[:, None])
    return field.multiply(scaled, col_scale[None, :])


def verify_mds(matrix: np.ndarray, d: int, field: GF256 = GF) -> bool:
    """Exhaustively check that every ``d``-row subset of ``matrix`` is full rank.

    Exponential in the number of rows; intended for tests and small ``d'``.
    """
    from itertools import combinations

    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.shape[1] != d:
        raise MatrixError(f"matrix has {matrix.shape[1]} columns, expected {d}")
    for subset in combinations(range(matrix.shape[0]), d):
        if field.rank(matrix[list(subset)]) != d:
            return False
    return True


def submatrix_inverse(
    matrix: np.ndarray, rows: list[int] | np.ndarray, field: GF256 = GF
) -> np.ndarray:
    """Invert the square submatrix of ``matrix`` formed by the given rows.

    Raises :class:`MatrixError` if the selected rows do not form a square,
    invertible matrix — decoders use this to recover a message from any ``d``
    of the ``d'`` redundant slices.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    selected = matrix[list(rows)]
    if selected.shape[0] != selected.shape[1]:
        raise MatrixError(
            f"selected {selected.shape[0]} rows from a matrix with "
            f"{selected.shape[1]} columns; need exactly {selected.shape[1]}"
        )
    try:
        return field.invert_matrix(selected)
    except Exception as exc:
        raise MatrixError(f"selected rows are not linearly independent: {exc}") from exc
