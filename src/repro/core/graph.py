"""Forwarding-graph construction (Algorithm 1, §4.3.4).

The source arranges ``L * d'`` relays (the destination hidden among them)
into ``L`` stages of ``d'`` nodes, preceded by a *source stage* (stage 0)
holding the source and its pseudo-sources.  Every node of stage ``l-1`` is
connected to every node of stage ``l``.

Each relay ``x`` in stage ``l`` must receive its ``d'`` information slices
along vertex-disjoint paths.  We assign slice ``k`` of the ``j``-th node of
stage ``l`` to carrier position ``(m*j + k + rho_l) mod d'`` in every earlier
stage ``m``.  This satisfies Algorithm 1's constraints and additionally
balances load so that the edge between stage ``m`` and ``m+1`` carries exactly
one slice per downstream stage — which is what lets every packet contain a
constant ``L`` slices (Fig. 3, Fig. 4).

The graph object knows, for every edge, the ordered list of slices that
traverse it; the slice-map compiler (:mod:`repro.core.slice_map`) turns that
knowledge into the per-node instructions the protocol ships around.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import GraphConstructionError

#: Type alias: a slice is identified by (owner address, slice index).
SliceId = tuple[str, int]


@dataclass
class ForwardingGraph:
    """A compiled forwarding graph.

    Attributes
    ----------
    stages:
        ``stages[0]`` is the source stage (source + pseudo-sources);
        ``stages[1..L]`` are relay stages, each of size ``d_prime``.
    destination:
        Address of the intended receiver (always somewhere in stages 1..L).
    d / d_prime:
        Split factor and number of slices actually sent (``d_prime >= d``).
    stage_offsets:
        Per-stage random offsets used by the carrier-assignment formula.
    """

    stages: list[list[str]]
    destination: str
    d: int
    d_prime: int
    stage_offsets: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._stage_of: dict[str, int] = {}
        self._position_of: dict[str, int] = {}
        for stage_index, members in enumerate(self.stages):
            for position, address in enumerate(members):
                if address in self._stage_of:
                    raise GraphConstructionError(
                        f"node {address} appears twice in the forwarding graph"
                    )
                self._stage_of[address] = stage_index
                self._position_of[address] = position
        if self.destination not in self._stage_of:
            raise GraphConstructionError("destination is not on the forwarding graph")
        if self._stage_of[self.destination] == 0:
            raise GraphConstructionError("destination cannot be in the source stage")
        if not self.stage_offsets:
            self.stage_offsets = [0] * len(self.stages)

    # -- basic accessors -----------------------------------------------------------

    @property
    def num_stages(self) -> int:
        """Number of relay stages L (source stage excluded)."""
        return len(self.stages) - 1

    @property
    def path_length(self) -> int:
        """Alias for :attr:`num_stages` matching the paper's ``L``."""
        return self.num_stages

    @property
    def source_stage(self) -> list[str]:
        return self.stages[0]

    @property
    def relay_stages(self) -> list[list[str]]:
        return self.stages[1:]

    @property
    def relays(self) -> list[str]:
        """All relay addresses in stage order."""
        return [node for stage in self.relay_stages for node in stage]

    @property
    def destination_stage(self) -> int:
        return self._stage_of[self.destination]

    def stage_of(self, address: str) -> int:
        try:
            return self._stage_of[address]
        except KeyError as exc:
            raise GraphConstructionError(f"{address} is not on the graph") from exc

    def position_of(self, address: str) -> int:
        try:
            return self._position_of[address]
        except KeyError as exc:
            raise GraphConstructionError(f"{address} is not on the graph") from exc

    def parents(self, address: str) -> list[str]:
        """All nodes in the stage preceding ``address`` (its parents)."""
        stage = self.stage_of(address)
        if stage == 0:
            return []
        return list(self.stages[stage - 1])

    def children(self, address: str) -> list[str]:
        """All nodes in the stage following ``address`` (its children)."""
        stage = self.stage_of(address)
        if stage >= self.num_stages:
            return []
        return list(self.stages[stage + 1])

    def edges(self) -> list[tuple[str, str]]:
        """Every directed edge (parent, child) of the graph."""
        result = []
        for stage_index in range(len(self.stages) - 1):
            for parent in self.stages[stage_index]:
                for child in self.stages[stage_index + 1]:
                    result.append((parent, child))
        return result

    # -- slice carrier assignment ----------------------------------------------------

    def carrier(self, owner: str, slice_index: int, stage: int) -> str:
        """The node at ``stage`` that carries slice ``slice_index`` of ``owner``.

        Defined for ``0 <= stage < stage_of(owner)``; at the owner's own stage
        the owner itself holds all its slices.
        """
        owner_stage = self.stage_of(owner)
        if not 0 <= slice_index < self.d_prime:
            raise GraphConstructionError(
                f"slice index {slice_index} out of range for d'={self.d_prime}"
            )
        if stage >= owner_stage:
            return owner
        j = self.position_of(owner)
        offset = self.stage_offsets[owner_stage]
        position = (stage * j + slice_index + offset) % self.d_prime
        return self.stages[stage][position]

    def slice_path(self, owner: str, slice_index: int) -> list[str]:
        """The full vertex path taken by one slice, ending at its owner."""
        owner_stage = self.stage_of(owner)
        path = [self.carrier(owner, slice_index, m) for m in range(owner_stage)]
        path.append(owner)
        return path

    def slices_carried_by(self, address: str) -> list[SliceId]:
        """All slices that transit (or terminate at) ``address``.

        For a relay this is its own ``d'`` slices plus exactly one slice of
        every node in every later stage.
        """
        stage = self.stage_of(address)
        carried: list[SliceId] = []
        if stage > 0:
            carried.extend((address, k) for k in range(self.d_prime))
        for later_stage in range(stage + 1, len(self.stages)):
            for owner in self.stages[later_stage]:
                for k in range(self.d_prime):
                    if self.carrier(owner, k, stage) == address:
                        carried.append((owner, k))
        return carried

    def edge_slices(self, parent: str, child: str) -> list[SliceId]:
        """Ordered list of slices traversing the edge ``parent -> child``.

        The child's own slice always comes first, followed by downstream
        slices ordered by (stage, position, slice index).  This ordering is
        the shared convention between the slice-map compiler and the source's
        initial packet construction.
        """
        parent_stage = self.stage_of(parent)
        child_stage = self.stage_of(child)
        if child_stage != parent_stage + 1:
            raise GraphConstructionError(
                f"{parent} (stage {parent_stage}) and {child} (stage {child_stage}) "
                "are not adjacent"
            )
        result: list[SliceId] = []
        # The child's own slice carried by this parent.
        for k in range(self.d_prime):
            if self.carrier(child, k, parent_stage) == parent:
                result.append((child, k))
        if len(result) != 1:
            raise GraphConstructionError(
                f"expected exactly one slice of {child} at parent {parent}, "
                f"found {len(result)}"
            )
        # Downstream slices that ride this edge.
        for later_stage in range(child_stage + 1, len(self.stages)):
            for owner in self.stages[later_stage]:
                for k in range(self.d_prime):
                    if (
                        self.carrier(owner, k, parent_stage) == parent
                        and self.carrier(owner, k, child_stage) == child
                    ):
                        result.append((owner, k))
        return result

    def max_slices_per_edge(self) -> int:
        """The packet slot count needed so no edge overflows (equals L here)."""
        best = 0
        for stage_index in range(len(self.stages) - 1):
            parent = self.stages[stage_index][0]
            child = self.stages[stage_index + 1][0]
            best = max(best, len(self.edge_slices(parent, child)))
        return best

    # -- validation -----------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants required by the protocol.

        * every relay's slices travel vertex-disjoint paths,
        * every stage of every owner carries each slice exactly once,
        * every edge carries exactly one slice of the child node.

        Raises :class:`GraphConstructionError` on any violation.
        """
        for stage in self.relay_stages:
            if len(stage) != self.d_prime:
                raise GraphConstructionError(
                    f"relay stage has {len(stage)} nodes, expected d'={self.d_prime}"
                )
        if len(self.source_stage) != self.d_prime:
            raise GraphConstructionError(
                f"source stage has {len(self.source_stage)} nodes, expected "
                f"d'={self.d_prime}"
            )
        for owner in self.relays:
            paths = [self.slice_path(owner, k) for k in range(self.d_prime)]
            for m in range(self.stage_of(owner)):
                carriers = {path[m] for path in paths}
                if len(carriers) != self.d_prime:
                    raise GraphConstructionError(
                        f"slices of {owner} are not vertex-disjoint at stage {m}"
                    )


def build_forwarding_graph(
    source_addresses: list[str],
    relay_addresses: list[str],
    destination: str,
    path_length: int,
    d: int,
    d_prime: int | None = None,
    rng: np.random.Generator | None = None,
) -> ForwardingGraph:
    """Build a forwarding graph per Algorithm 1.

    Parameters
    ----------
    source_addresses:
        The source and its pseudo-sources; exactly ``d_prime`` of them are
        required (the paper's stage 0).
    relay_addresses:
        Candidate relay addresses; ``path_length * d_prime`` are used.  The
        destination is inserted at a random position if it is not already in
        the list, exactly as §4.2.1 prescribes ("the destination node is
        randomly assigned to one of the stages").
    destination:
        The intended receiver.
    path_length / d / d_prime:
        The paper's ``L``, ``d`` and ``d'``.
    rng:
        Randomness source (defaults to a fresh default generator).
    """
    rng = np.random.default_rng() if rng is None else rng
    d_prime = d if d_prime is None else d_prime
    if d < 1 or d_prime < d:
        raise GraphConstructionError(f"invalid split factors d={d}, d'={d_prime}")
    if path_length < 1:
        raise GraphConstructionError(f"path length must be >= 1, got {path_length}")
    if len(source_addresses) != d_prime:
        raise GraphConstructionError(
            f"need exactly d'={d_prime} source-stage addresses "
            f"(source + pseudo-sources), got {len(source_addresses)}"
        )

    pool = [addr for addr in relay_addresses if addr != destination]
    needed = path_length * d_prime - 1
    if len(pool) < needed:
        raise GraphConstructionError(
            f"need at least {needed} distinct relays plus the destination, "
            f"got {len(pool)}"
        )
    if len(set(pool)) != len(pool):
        raise GraphConstructionError("relay addresses contain duplicates")
    overlap = set(pool) & set(source_addresses)
    if overlap or destination in source_addresses:
        raise GraphConstructionError(
            f"source-stage addresses overlap relay pool / destination: {overlap}"
        )

    chosen = list(rng.choice(pool, size=needed, replace=False))
    insert_at = int(rng.integers(0, needed + 1))
    chosen.insert(insert_at, destination)

    stages: list[list[str]] = [list(source_addresses)]
    for stage_index in range(path_length):
        start = stage_index * d_prime
        stages.append([str(a) for a in chosen[start : start + d_prime]])

    offsets = [int(rng.integers(0, d_prime)) for _ in range(path_length + 1)]
    graph = ForwardingGraph(
        stages=stages,
        destination=destination,
        d=d,
        d_prime=d_prime,
        stage_offsets=offsets,
    )
    return graph
