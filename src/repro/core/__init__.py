"""Core information-slicing protocol: coding, graphs, source, relay."""

from .coder import CodedBlock, SliceCoder
from .errors import (
    CodingError,
    FieldError,
    GraphConstructionError,
    InsufficientSlicesError,
    MatrixError,
    PacketFormatError,
    ProtocolError,
    ReproError,
)
from .gf import GF, GF256
from .graph import ForwardingGraph, build_forwarding_graph
from .integrity import robust_decode, unwrap, verify, wrap
from .matrix import cauchy_matrix, mds_matrix, random_invertible_matrix, verify_mds
from .node_info import DataMap, NodeInfo, SliceMap, SliceMapEntry
from .packet import Packet, PacketKind, random_padding_slice
from .relay import FlowState, Relay, RelayStats
from .slice_map import FlowPlan, compile_flow_plan
from .source import FlowSetup, Source, data_nonce
from .transforms import AffineTransform, build_transform_chain, verify_chain

__all__ = [
    "GF",
    "GF256",
    "CodedBlock",
    "SliceCoder",
    "ForwardingGraph",
    "build_forwarding_graph",
    "FlowPlan",
    "compile_flow_plan",
    "NodeInfo",
    "SliceMap",
    "SliceMapEntry",
    "DataMap",
    "Packet",
    "PacketKind",
    "random_padding_slice",
    "Relay",
    "RelayStats",
    "FlowState",
    "Source",
    "FlowSetup",
    "data_nonce",
    "AffineTransform",
    "build_transform_chain",
    "verify_chain",
    "wrap",
    "unwrap",
    "verify",
    "robust_decode",
    "random_invertible_matrix",
    "mds_matrix",
    "cauchy_matrix",
    "verify_mds",
    "ReproError",
    "FieldError",
    "MatrixError",
    "CodingError",
    "InsufficientSlicesError",
    "GraphConstructionError",
    "ProtocolError",
    "PacketFormatError",
]
