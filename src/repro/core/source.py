"""The source utility: flow establishment and data transmission (§4.3, §7.1).

A :class:`Source` owns one IP address and ``d' - 1`` pseudo-source addresses
(§3c).  To talk to a destination it:

1. picks relays, builds a forwarding graph (Algorithm 1) and compiles the
   per-node routing information (:func:`~repro.core.slice_map.compile_flow_plan`);
2. slices every relay's information into ``d'`` coded slices and bundles them
   into the initial packets that the source-stage nodes transmit to the first
   relay stage (§4.3.4);
3. for each data message, encrypts it with the destination's key, codes it
   into ``d'`` data slices, and has each source-stage node inject one slice
   into every first-stage relay (§4.3.7, §4.4c).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..crypto.symmetric import StreamCipher
from .coder import CodedBlock, SliceCoder
from .errors import GraphConstructionError, ProtocolError
from .gf import GF256, resolve_field
from .graph import ForwardingGraph, build_forwarding_graph
from .integrity import wrap
from .packet import Packet, PacketKind, random_padding_slice
from .slice_map import FlowPlan, compile_flow_plan


def data_nonce(sequence: int) -> bytes:
    """The per-message nonce used to encrypt data message ``sequence``."""
    return struct.pack(">Q", sequence)


@dataclass
class FlowSetup:
    """A fully prepared anonymous flow, ready to be driven over an overlay."""

    plan: FlowPlan
    coder: SliceCoder
    setup_packets: list[Packet]
    d: int
    d_prime: int
    next_sequence: int = 0
    info_blocks: dict[str, list[CodedBlock]] = field(default_factory=dict)

    @property
    def graph(self) -> ForwardingGraph:
        return self.plan.graph

    @property
    def destination(self) -> str:
        return self.plan.destination

    @property
    def destination_key(self) -> bytes:
        return self.plan.keys[self.plan.destination].key

    def total_setup_bytes(self) -> int:
        """Total bytes injected by the source stage during route setup."""
        return sum(packet.size_bytes() for packet in self.setup_packets)


class Source:
    """Builds anonymous flows and produces the packets that drive them.

    Parameters
    ----------
    address:
        The source's own address (stage-0 position 0).
    pseudo_sources:
        ``d' - 1`` additional addresses under the source's control (§3c).
    d / d_prime / path_length:
        Protocol parameters (paper's ``d``, ``d'`` and ``L``).
    rng:
        Randomness source; pass a seeded generator for reproducible flows.
    field / kernel:
        The GF(2^8) implementation this source's coders use (see
        :func:`repro.core.gf.resolve_field`); output is bit-identical
        across kernels by construction.
    """

    def __init__(
        self,
        address: str,
        pseudo_sources: list[str],
        d: int,
        path_length: int,
        d_prime: int | None = None,
        rng: np.random.Generator | None = None,
        field: GF256 | None = None,
        kernel: str | None = None,
    ) -> None:
        self.address = address
        self.pseudo_sources = list(pseudo_sources)
        self.d = d
        self.d_prime = d if d_prime is None else d_prime
        self.path_length = path_length
        self.rng = np.random.default_rng() if rng is None else rng
        self.field = resolve_field(field, kernel)
        if self.d_prime < self.d:
            raise ProtocolError(f"d' ({self.d_prime}) must be >= d ({self.d})")
        if len(self.pseudo_sources) != self.d_prime - 1:
            raise GraphConstructionError(
                f"need exactly d'-1={self.d_prime - 1} pseudo-sources, "
                f"got {len(self.pseudo_sources)}"
            )

    @property
    def source_stage(self) -> list[str]:
        """The stage-0 addresses: the source itself plus its pseudo-sources."""
        return [self.address, *self.pseudo_sources]

    # -- flow establishment --------------------------------------------------------

    def establish_flow(
        self, relay_candidates: list[str], destination: str
    ) -> FlowSetup:
        """Build the forwarding graph and the initial setup packets."""
        graph = build_forwarding_graph(
            source_addresses=self.source_stage,
            relay_addresses=relay_candidates,
            destination=destination,
            path_length=self.path_length,
            d=self.d,
            d_prime=self.d_prime,
            rng=self.rng,
        )
        return self.prepare_flow(graph)

    def prepare_flow(self, graph: ForwardingGraph) -> FlowSetup:
        """Compile an existing graph into a flow (useful for tests/analysis)."""
        plan = compile_flow_plan(graph, self.rng)
        coder = SliceCoder(self.d, self.d_prime, field=self.field)
        info_blocks = self._encode_node_infos(plan, coder)
        setup_packets = self._build_setup_packets(plan, info_blocks)
        return FlowSetup(
            plan=plan,
            coder=coder,
            setup_packets=setup_packets,
            d=self.d,
            d_prime=self.d_prime,
            info_blocks=info_blocks,
        )

    def _encode_node_infos(
        self, plan: FlowPlan, coder: SliceCoder
    ) -> dict[str, list[CodedBlock]]:
        """Slice every relay's routing information into ``d'`` coded blocks.

        All payloads are padded to a common length before coding so that every
        slice in the system has the same size — a requirement of the constant
        packet format (§9.4c).
        """
        wrapped = {
            relay: wrap(plan.node_infos[relay].pack()) for relay in plan.graph.relays
        }
        max_len = max(len(blob) for blob in wrapped.values())
        blocks: dict[str, list[CodedBlock]] = {}
        for relay, blob in wrapped.items():
            padded = blob + b"\x00" * (max_len - len(blob))
            blocks[relay] = coder.encode(padded, self.rng)
        return blocks

    def _build_setup_packets(
        self, plan: FlowPlan, info_blocks: dict[str, list[CodedBlock]]
    ) -> list[Packet]:
        """Build the packets the source stage sends to the first relay stage."""
        graph = plan.graph
        sample_block = next(iter(info_blocks.values()))[0]
        payload_bytes = int(sample_block.payload.shape[0])
        packets: list[Packet] = []
        for lane, origin in enumerate(graph.source_stage):
            for child in graph.stages[1]:
                slice_ids = plan.edge_slices[(origin, child)]
                slices = [info_blocks[owner][k] for owner, k in slice_ids]
                while len(slices) < plan.slots_per_packet:
                    slices.append(
                        random_padding_slice(self.d, payload_bytes, self.rng)
                    )
                packets.append(
                    Packet(
                        flow_id=plan.flow_ids[child],
                        kind=PacketKind.SETUP,
                        slices=slices,
                        d=self.d,
                        lane=lane,
                        seq=0,
                        source_address=origin,
                        destination_address=child,
                    )
                )
        return packets

    # -- data transmission -----------------------------------------------------------

    def make_data_packets(
        self, flow: FlowSetup, message: bytes, sequence: int | None = None
    ) -> list[Packet]:
        """Encrypt, slice and packetise one data message (§4.3.7, §4.4c).

        Returns one packet per (source-stage node, first-stage relay) pair:
        source-stage node ``a`` injects data slice ``a`` into every first-stage
        relay, establishing the invariant the data-maps rely on.
        """
        if sequence is None:
            sequence = flow.next_sequence
            flow.next_sequence += 1
        cipher = StreamCipher(flow.destination_key)
        ciphertext = cipher.encrypt(bytes(message), data_nonce(sequence))
        blocks = flow.coder.encode(wrap(ciphertext), self.rng)
        return self._packetise_data(flow, blocks, sequence)

    def make_data_packets_batch(
        self, flow: FlowSetup, messages: list[bytes]
    ) -> list[list[Packet]]:
        """Batched :meth:`make_data_packets`: one packet list per message.

        Equal-length messages (the steady-state data path sends fixed-size
        packets) are coded in a single batched GF(2^8) pass via
        :meth:`~repro.core.coder.SliceCoder.encode_batch`; mixed lengths fall
        back to per-message coding.
        """
        if not messages:
            return []
        sequences = list(
            range(flow.next_sequence, flow.next_sequence + len(messages))
        )
        flow.next_sequence += len(messages)
        cipher = StreamCipher(flow.destination_key)
        wrapped = [
            wrap(cipher.encrypt(bytes(message), data_nonce(sequence)))
            for sequence, message in zip(sequences, messages)
        ]
        if len({len(blob) for blob in wrapped}) == 1:
            blocks_batch = flow.coder.encode_batch(wrapped, self.rng)
        else:
            blocks_batch = [flow.coder.encode(blob, self.rng) for blob in wrapped]
        return [
            self._packetise_data(flow, blocks, sequence)
            for sequence, blocks in zip(sequences, blocks_batch)
        ]

    def _packetise_data(
        self, flow: FlowSetup, blocks: list[CodedBlock], sequence: int
    ) -> list[Packet]:
        """One data packet per (source-stage node, first-stage relay) pair."""
        plan = flow.plan
        packets: list[Packet] = []
        for lane, origin in enumerate(plan.graph.source_stage):
            for child in plan.graph.stages[1]:
                packets.append(
                    Packet(
                        flow_id=plan.flow_ids[child],
                        kind=PacketKind.DATA,
                        slices=[blocks[lane]],
                        d=self.d,
                        lane=lane,
                        seq=sequence,
                        source_address=origin,
                        destination_address=child,
                    )
                )
        return packets

    def data_overhead_factor(self, flow: FlowSetup) -> float:
        """Redundancy overhead R = (d' - d) / d of the data phase (§8.1)."""
        return (flow.d_prime - flow.d) / flow.d
