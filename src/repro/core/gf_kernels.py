"""Compiled kernel providers for GF(2^8) arithmetic.

:class:`~repro.core.gf.GF256` dispatches its hot loops — elementwise
multiply, batched matrix multiply and batched Gauss–Jordan elimination — to
a *kernel*.  The ``"numpy"`` kernel is the in-process reference
implementation living in :mod:`repro.core.gf`; the ``"compiled"`` kernel is
provided by this module and is required to be bit-identical to it (the
guarantee is asserted by hypothesis property tests and re-checked inside
every ``gfbench`` run).

Two compiled providers are known, tried in order:

``numba``
    The primary provider, enabled by installing the ``fast`` extra
    (``pip install .[fast]``).  Kernels are ``@njit(cache=True,
    parallel=True)`` functions with ``prange`` over the batch axis, so
    repeat runs hit numba's on-disk cache and large stacks use every core.

``cext``
    A fallback provider for hosts with a C toolchain but no numba: a tiny
    C file is compiled once into a shared library cached under
    ``~/.cache/repro-information-slicing/`` (keyed by source hash) and
    loaded through :mod:`ctypes`.  Set ``CC`` to override the compiler.

Both providers work on contiguous ``uint8`` stacks and take the field's
flattened 256x256 multiplication table (and the 256-entry inverse table)
as arguments, so non-default polynomials work unchanged.  The environment
variable ``REPRO_GF_KERNEL_PROVIDER`` forces provider selection:
``numba`` / ``cext`` require that provider (error if it cannot load) and
``none`` disables compiled kernels entirely — the knob the fallback tests
use to exercise the numpy-only path even on hosts where a provider exists.

To add a provider: write a loader returning an object with the three
methods of :class:`KernelProvider`, add it to ``_LOADERS``, and the
bit-identity suite in ``tests/test_gf_kernels.py`` covers it for free.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Protocol

import numpy as np

from .errors import KernelUnavailableError

#: Environment variable forcing provider selection (``numba``/``cext``/``none``).
PROVIDER_ENV = "REPRO_GF_KERNEL_PROVIDER"

#: Cache directory for the compiled C provider's shared libraries.
CACHE_DIR = Path(
    os.environ.get("XDG_CACHE_HOME", Path.home() / ".cache")
) / "repro-information-slicing"


class KernelProvider(Protocol):
    """The three hot loops a compiled provider must implement.

    All arrays are C-contiguous ``uint8``.  ``mul`` is the flattened
    256x256 multiplication table (``mul[a * 256 + b] == a * b``), ``inv``
    the 256-entry inverse table with ``inv[0] == 0``.
    """

    name: str

    def multiply(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray, mul: np.ndarray
    ) -> None:
        """Elementwise product of flat arrays ``a`` and ``b`` into ``out``."""

    def batched_matmul(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray, mul: np.ndarray
    ) -> None:
        """``(B, m, k) @ (B, k, n) -> (B, m, n)`` into ``out``."""

    def gauss_jordan(
        self,
        aug: np.ndarray,
        singular: np.ndarray,
        mul: np.ndarray,
        inv: np.ndarray,
    ) -> None:
        """In-place Gauss–Jordan over an augmented ``(B, n, 2n)`` stack.

        Mirrors ``GF256._gauss_jordan_batch`` exactly (pivot choice, the
        safe-pivot substitution for singular entries, elimination order) so
        even the garbage rows of singular entries stay bit-identical.
        ``singular`` is a ``(B,)`` uint8 output mask.
        """


_C_SOURCE = r"""
#include <stddef.h>
#include <stdint.h>

void gf_mul_elementwise(const uint8_t *a, const uint8_t *b, uint8_t *out,
                        ptrdiff_t count, const uint8_t *mul) {
    for (ptrdiff_t i = 0; i < count; i++)
        out[i] = mul[((size_t)a[i] << 8) | b[i]];
}

void gf_batched_matmul(const uint8_t *a, const uint8_t *b, uint8_t *out,
                       ptrdiff_t batch, ptrdiff_t m, ptrdiff_t k, ptrdiff_t n,
                       const uint8_t *mul) {
    for (ptrdiff_t s = 0; s < batch; s++) {
        const uint8_t *A = a + s * m * k;
        const uint8_t *B = b + s * k * n;
        uint8_t *O = out + s * m * n;
        for (ptrdiff_t i = 0; i < m; i++) {
            const uint8_t *arow = A + i * k;
            uint8_t *orow = O + i * n;
            for (ptrdiff_t j = 0; j < n; j++)
                orow[j] = 0;
            for (ptrdiff_t kk = 0; kk < k; kk++) {
                const uint8_t *mrow = mul + ((size_t)arow[kk] << 8);
                const uint8_t *brow = B + kk * n;
                for (ptrdiff_t j = 0; j < n; j++)
                    orow[j] ^= mrow[brow[j]];
            }
        }
    }
}

void gf_gauss_jordan(uint8_t *aug, uint8_t *singular,
                     ptrdiff_t batch, ptrdiff_t n,
                     const uint8_t *mul, const uint8_t *inv) {
    ptrdiff_t w = 2 * n;
    for (ptrdiff_t s = 0; s < batch; s++) {
        uint8_t *M = aug + s * n * w;
        uint8_t sing = 0;
        for (ptrdiff_t col = 0; col < n; col++) {
            /* First non-zero entry at or below the diagonal; stay on the
             * diagonal when the column is dead (matches argmax-of-zeros). */
            ptrdiff_t pivot = col;
            ptrdiff_t r;
            for (r = col; r < n; r++) {
                if (M[r * w + col] != 0) {
                    pivot = r;
                    break;
                }
            }
            if (r == n)
                sing = 1;
            if (pivot != col) {
                uint8_t *crow = M + col * w;
                uint8_t *prow = M + pivot * w;
                for (ptrdiff_t j = 0; j < w; j++) {
                    uint8_t t = crow[j];
                    crow[j] = prow[j];
                    prow[j] = t;
                }
            }
            /* Normalise via the pivot's inverse; substitute 1 for a zero
             * pivot so singular entries keep the reference's garbage. */
            uint8_t p = M[col * w + col];
            const uint8_t *nrow = mul + ((size_t)inv[p ? p : 1] << 8);
            uint8_t *crow = M + col * w;
            for (ptrdiff_t j = 0; j < w; j++)
                crow[j] = nrow[crow[j]];
            for (ptrdiff_t r2 = 0; r2 < n; r2++) {
                if (r2 == col)
                    continue;
                uint8_t f = M[r2 * w + col];
                if (f == 0)
                    continue;
                const uint8_t *frow = mul + ((size_t)f << 8);
                uint8_t *row = M + r2 * w;
                for (ptrdiff_t j = 0; j < w; j++)
                    row[j] ^= frow[crow[j]];
            }
        }
        singular[s] = sing;
    }
}
"""


#: Flags the C provider is always built with (part of the cache digest).
_CFLAGS = ("-O3", "-fPIC", "-shared")


def _compile_shared_library() -> Path:
    """Compile the C provider into the cache directory, reusing prior builds."""
    compiler = os.environ.get("CC", "cc")
    # The digest covers the *whole* build recipe — source, compiler and
    # flags — so any change to it invalidates the cached .so instead of
    # silently reusing a library built under a different recipe.
    recipe = "\0".join([_C_SOURCE, compiler, *_CFLAGS])
    digest = hashlib.sha256(recipe.encode("utf-8")).hexdigest()[:16]
    library = CACHE_DIR / f"gf_kernels_{digest}.so"
    if library.is_file():
        return library
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    source = CACHE_DIR / f"gf_kernels_{digest}.c"
    source.write_text(_C_SOURCE, encoding="utf-8")
    with tempfile.NamedTemporaryFile(
        dir=CACHE_DIR, suffix=".so", delete=False
    ) as handle:
        temporary = Path(handle.name)
    try:
        subprocess.run(
            [compiler, *_CFLAGS, "-o", str(temporary), str(source)],
            check=True,
            capture_output=True,
            text=True,
        )
    except FileNotFoundError as error:
        temporary.unlink(missing_ok=True)
        raise KernelUnavailableError(f"C compiler {compiler!r} not found") from error
    except subprocess.CalledProcessError as error:
        temporary.unlink(missing_ok=True)
        raise KernelUnavailableError(
            f"C compilation failed: {error.stderr.strip()}"
        ) from error
    os.replace(temporary, library)  # atomic: concurrent builders race safely
    return library


_UINT8_P = ctypes.POINTER(ctypes.c_uint8)


def _as_ptr(array: np.ndarray):
    return array.ctypes.data_as(_UINT8_P)


class _CExtensionProvider:
    """The three kernels as C functions loaded through ctypes."""

    name = "cext"

    def __init__(self) -> None:
        self._lib = ctypes.CDLL(str(_compile_shared_library()))
        self._lib.gf_mul_elementwise.restype = None
        self._lib.gf_mul_elementwise.argtypes = [
            _UINT8_P, _UINT8_P, _UINT8_P, ctypes.c_ssize_t, _UINT8_P,
        ]
        self._lib.gf_batched_matmul.restype = None
        self._lib.gf_batched_matmul.argtypes = [
            _UINT8_P, _UINT8_P, _UINT8_P,
            ctypes.c_ssize_t, ctypes.c_ssize_t, ctypes.c_ssize_t, ctypes.c_ssize_t,
            _UINT8_P,
        ]
        self._lib.gf_gauss_jordan.restype = None
        self._lib.gf_gauss_jordan.argtypes = [
            _UINT8_P, _UINT8_P, ctypes.c_ssize_t, ctypes.c_ssize_t,
            _UINT8_P, _UINT8_P,
        ]

    def multiply(self, a, b, out, mul) -> None:
        self._lib.gf_mul_elementwise(
            _as_ptr(a), _as_ptr(b), _as_ptr(out), a.size, _as_ptr(mul)
        )

    def batched_matmul(self, a, b, out, mul) -> None:
        batch, m, k = a.shape
        n = b.shape[2]
        self._lib.gf_batched_matmul(
            _as_ptr(a), _as_ptr(b), _as_ptr(out), batch, m, k, n, _as_ptr(mul)
        )

    def gauss_jordan(self, aug, singular, mul, inv) -> None:
        batch, n, _ = aug.shape
        self._lib.gf_gauss_jordan(
            _as_ptr(aug), _as_ptr(singular), batch, n, _as_ptr(mul), _as_ptr(inv)
        )


def _load_cext_provider() -> KernelProvider:
    return _CExtensionProvider()


def _load_numba_provider() -> KernelProvider:
    try:
        import numba
    except ImportError as error:
        raise KernelUnavailableError(
            "numba is not installed (pip install .[fast])"
        ) from error

    @numba.njit(cache=True, parallel=True)
    def _mul(a, b, out, mul):  # pragma: no cover - compiled
        for i in numba.prange(a.shape[0]):
            out[i] = mul[np.int64(a[i]) * 256 + np.int64(b[i])]

    @numba.njit(cache=True, parallel=True)
    def _matmul(a, b, out, mul):  # pragma: no cover - compiled
        batch, m, k = a.shape
        n = b.shape[2]
        for s in numba.prange(batch):
            for i in range(m):
                for j in range(n):
                    out[s, i, j] = 0
                for kk in range(k):
                    base = np.int64(a[s, i, kk]) * 256
                    for j in range(n):
                        out[s, i, j] ^= mul[base + np.int64(b[s, kk, j])]

    @numba.njit(cache=True, parallel=True)
    def _gauss_jordan(aug, singular, mul, inv):  # pragma: no cover - compiled
        batch, n, w = aug.shape
        for s in numba.prange(batch):
            sing = np.uint8(0)
            for col in range(n):
                pivot = col
                found = False
                for r in range(col, n):
                    if aug[s, r, col] != 0:
                        pivot = r
                        found = True
                        break
                if not found:
                    sing = np.uint8(1)
                if pivot != col:
                    for j in range(w):
                        t = aug[s, col, j]
                        aug[s, col, j] = aug[s, pivot, j]
                        aug[s, pivot, j] = t
                p = aug[s, col, col]
                safe = p if p != 0 else np.uint8(1)
                base = np.int64(inv[safe]) * 256
                for j in range(w):
                    aug[s, col, j] = mul[base + np.int64(aug[s, col, j])]
                for r2 in range(n):
                    if r2 == col:
                        continue
                    f = aug[s, r2, col]
                    if f == 0:
                        continue
                    fbase = np.int64(f) * 256
                    for j in range(w):
                        aug[s, r2, j] ^= mul[fbase + np.int64(aug[s, col, j])]
            singular[s] = sing

    class _NumbaProvider:
        name = "numba"

        def multiply(self, a, b, out, mul) -> None:
            _mul(a, b, out, mul)

        def batched_matmul(self, a, b, out, mul) -> None:
            _matmul(a, b, out, mul)

        def gauss_jordan(self, aug, singular, mul, inv) -> None:
            _gauss_jordan(aug, singular, mul, inv)

    provider = _NumbaProvider()
    # Trigger compilation now so a broken numba install fails loudly at
    # selection time instead of mid-experiment.
    mul = np.zeros(65536, dtype=np.uint8)
    inv = np.zeros(256, dtype=np.uint8)
    provider.multiply(
        np.zeros(1, dtype=np.uint8),
        np.zeros(1, dtype=np.uint8),
        np.zeros(1, dtype=np.uint8),
        mul,
    )
    provider.batched_matmul(
        np.zeros((1, 1, 1), dtype=np.uint8),
        np.zeros((1, 1, 1), dtype=np.uint8),
        np.zeros((1, 1, 1), dtype=np.uint8),
        mul,
    )
    provider.gauss_jordan(
        np.zeros((1, 1, 2), dtype=np.uint8), np.zeros(1, dtype=np.uint8), mul, inv
    )
    return provider


#: Provider loaders in preference order.
_LOADERS: dict[str, Callable[[], KernelProvider]] = {
    "numba": _load_numba_provider,
    "cext": _load_cext_provider,
}

_PROVIDER: KernelProvider | None = None
_PROVIDER_ERROR: KernelUnavailableError | None = None
_PROVIDER_RESOLVED = False


def _select_provider() -> KernelProvider:
    forced = os.environ.get(PROVIDER_ENV, "").strip().lower()
    if forced == "none":
        raise KernelUnavailableError(
            f"compiled kernels disabled by {PROVIDER_ENV}=none"
        )
    if forced:
        if forced not in _LOADERS:
            raise KernelUnavailableError(
                f"unknown {PROVIDER_ENV} value {forced!r}; "
                f"expected one of {', '.join([*sorted(_LOADERS), 'none'])}"
            )
        return _LOADERS[forced]()
    errors = []
    for name, loader in _LOADERS.items():
        try:
            return loader()
        except KernelUnavailableError as error:
            errors.append(f"{name}: {error}")
    raise KernelUnavailableError(
        "no compiled GF(2^8) provider available — " + "; ".join(errors)
    )


def load_provider() -> KernelProvider:
    """The selected compiled provider, loading (and caching) it on first use.

    Raises :class:`~repro.core.errors.KernelUnavailableError` when no
    provider can load; the failure is cached too, so repeated probes are
    cheap.
    """
    global _PROVIDER, _PROVIDER_ERROR, _PROVIDER_RESOLVED
    if not _PROVIDER_RESOLVED:
        try:
            _PROVIDER = _select_provider()
        except KernelUnavailableError as error:
            _PROVIDER_ERROR = error
        _PROVIDER_RESOLVED = True
    if _PROVIDER is None:
        assert _PROVIDER_ERROR is not None
        raise _PROVIDER_ERROR
    return _PROVIDER


def reset_provider_cache() -> None:
    """Forget the cached provider selection (tests flip ``PROVIDER_ENV``)."""
    global _PROVIDER, _PROVIDER_ERROR, _PROVIDER_RESOLVED
    _PROVIDER = None
    _PROVIDER_ERROR = None
    _PROVIDER_RESOLVED = False


def compiled_available() -> bool:
    """True when a compiled provider can load on this host."""
    try:
        load_provider()
    except KernelUnavailableError:
        return False
    return True


def compiled_unavailable_reason() -> str | None:
    """Why compiled kernels cannot load, or ``None`` when they can."""
    try:
        load_provider()
    except KernelUnavailableError as error:
        return str(error)
    return None


def provider_name() -> str | None:
    """Name of the loaded provider (``numba``/``cext``), or ``None``."""
    try:
        return load_provider().name
    except KernelUnavailableError:
        return None
