"""Exception hierarchy for the information-slicing library.

All errors raised by :mod:`repro` derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish coding errors from protocol errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class FieldError(ReproError):
    """Invalid finite-field operation (e.g. division by zero, bad element)."""


class KernelUnavailableError(FieldError):
    """The requested GF(2^8) kernel backend cannot be loaded on this host.

    Raised when ``kernel="compiled"`` is requested but no compiled provider
    (the ``numba`` extra or a C toolchain) is available, or when the
    ``REPRO_GF_KERNEL_PROVIDER`` override names a provider that cannot load.
    """


class MatrixError(ReproError):
    """Matrix construction or inversion failed (e.g. singular matrix)."""


class CodingError(ReproError):
    """Encoding or decoding of slices failed."""


class InsufficientSlicesError(CodingError):
    """A decoder was asked to decode with fewer than ``d`` independent slices."""

    def __init__(self, needed: int, received: int) -> None:
        super().__init__(
            f"need at least {needed} linearly independent slices, got {received}"
        )
        self.needed = needed
        self.received = received


class GraphConstructionError(ReproError):
    """The forwarding graph could not be built with the requested parameters."""


class ProtocolError(ReproError):
    """A protocol invariant was violated (malformed packet, unknown flow, ...)."""


class PacketFormatError(ProtocolError):
    """A packet could not be parsed or serialized."""


class RoutingError(ProtocolError):
    """A relay could not determine where to forward a packet."""


class SecureTransportError(ProtocolError):
    """The authenticated transport layer (:mod:`repro.net`) failed."""


class HandshakeError(SecureTransportError):
    """The Noise-style handshake failed: bad MAC, bad group element, or an
    unauthorized static key.  Raised *before* any application frame of the
    session is processed."""


class FrameAuthenticationError(SecureTransportError):
    """An encrypted frame failed authentication (tampered ciphertext, a
    replayed or reordered message hitting the wrong nonce, or a truncated
    body)."""


class KeyFileError(SecureTransportError):
    """A static-key or allowlist file is missing or malformed."""


class SimulationError(ReproError):
    """The overlay simulator was driven into an invalid state."""


class ChurnError(SimulationError):
    """A churn model was configured with invalid parameters."""


class SelectionError(ReproError):
    """Relay selection could not satisfy the requested constraints."""


class ConfidentialityError(ReproError):
    """A confidentiality invariant would be violated (e.g. reusing slices)."""
