"""Integrity framing and robust decoding helpers.

With node churn a relay may be forced to pad a slot it cannot fill (its own
parent failed before delivering the slice).  The downstream node then holds a
mix of genuine coded slices and random padding and must not let padding
corrupt a decode.  We frame every sliced payload with a magic tag and a CRC32
so a decoder can *verify* a candidate decode, and we provide
:func:`robust_decode`, which searches subsets of the received slices until a
verifying combination is found.

This framing is applied before coding, so it travels inside the confidential
payload and reveals nothing to intermediate nodes.
"""

from __future__ import annotations

import struct
import zlib
from itertools import combinations

from .coder import CodedBlock, SliceCoder
from .errors import CodingError, InsufficientSlicesError

#: Magic tag marking a framed payload.
MAGIC = b"ISLC"

_FRAME_HEADER = struct.Struct(">4sII")  # magic, length, crc32


def wrap(payload: bytes) -> bytes:
    """Frame ``payload`` with a magic tag, its length, and a CRC32."""
    return _FRAME_HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def unwrap(data: bytes) -> bytes:
    """Validate and strip the frame added by :func:`wrap`.

    Raises :class:`CodingError` if the frame is malformed or the checksum
    does not match.
    """
    if len(data) < _FRAME_HEADER.size:
        raise CodingError("framed payload shorter than its header")
    magic, length, crc = _FRAME_HEADER.unpack(data[: _FRAME_HEADER.size])
    if magic != MAGIC:
        raise CodingError("framed payload has a bad magic tag")
    body = data[_FRAME_HEADER.size : _FRAME_HEADER.size + length]
    if len(body) != length:
        raise CodingError("framed payload truncated")
    if zlib.crc32(body) != crc:
        raise CodingError("framed payload failed its integrity check")
    return body


def verify(data: bytes) -> bool:
    """True iff ``data`` is a well-formed frame with a matching checksum."""
    try:
        unwrap(data)
    except CodingError:
        return False
    return True


def robust_decode(
    coder: SliceCoder, blocks: list[CodedBlock], max_subsets: int = 256
) -> bytes:
    """Decode a framed payload from ``blocks``, tolerating garbage slices.

    First attempts the straightforward greedy decode; if the result fails the
    integrity check (some received slices were churn padding or corrupted),
    searches subsets of ``d`` blocks — up to ``max_subsets`` of them — for a
    combination that verifies.

    Returns the unwrapped payload.  Raises
    :class:`~repro.core.errors.InsufficientSlicesError` if no verifying
    subset exists.
    """
    if len(blocks) < coder.d:
        raise InsufficientSlicesError(coder.d, len(blocks))
    try:
        candidate = coder.decode(blocks)
        if verify(candidate):
            return unwrap(candidate)
    except CodingError:
        pass

    tried = 0
    for subset in combinations(range(len(blocks)), coder.d):
        if tried >= max_subsets:
            break
        tried += 1
        chosen = [blocks[i] for i in subset]
        try:
            candidate = coder.decode(chosen)
        except CodingError:
            continue
        if verify(candidate):
            return unwrap(candidate)
    raise InsufficientSlicesError(coder.d, len(blocks))
