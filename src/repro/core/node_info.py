"""Per-node routing information ``I_x`` and the slice / data maps (§4.3.1).

For every relay ``x`` on the forwarding graph the source assembles an
:class:`NodeInfo` record containing:

* the IP addresses of ``x``'s children (next hops),
* the flow-ids to stamp on packets sent to each child,
* a receiver flag,
* a symmetric secret key,
* a *slice-map* describing how to shuffle received setup slices into the
  packets sent to each child (§4.3.6, Fig. 6), and
* a *data-map* describing how to forward data slices (§4.3.7).

The record serializes to bytes so it can itself be sliced with
:class:`~repro.core.coder.SliceCoder` and delivered confidentially along
disjoint paths.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .errors import ProtocolError

#: Sentinel used in slice-maps for "fill this slot with random padding".
RANDOM_SLOT = (0xFF, 0xFF)

#: Size in bytes of the symmetric key carried in the node info.
KEY_SIZE = 16

#: Size in bytes of a flow id (the paper uses 64-bit ids).
FLOW_ID_SIZE = 8


@dataclass(frozen=True)
class SliceMapEntry:
    """Where one outgoing slice slot gets its contents from.

    ``parent_index`` / ``slot_index`` identify an incoming slot (which parent's
    packet and which position in it).  The special value :data:`RANDOM_SLOT`
    (exposed via :meth:`random`) tells the relay to fill the slot with random
    padding bytes instead.
    """

    parent_index: int
    slot_index: int

    @classmethod
    def random(cls) -> "SliceMapEntry":
        """Entry instructing the relay to insert random padding."""
        return cls(*RANDOM_SLOT)

    @property
    def is_random(self) -> bool:
        return (self.parent_index, self.slot_index) == RANDOM_SLOT

    def pack(self) -> bytes:
        return struct.pack(">BB", self.parent_index, self.slot_index)

    @classmethod
    def unpack(cls, data: bytes) -> "SliceMapEntry":
        parent, slot = struct.unpack(">BB", data)
        return cls(parent, slot)


@dataclass
class SliceMap:
    """Per-child shuffle instructions for setup slices (§4.3.6).

    ``entries[c][s]`` says what to place in slot ``s`` of the packet sent to
    child ``c``.  Slot 0 is, by construction, always the child's own slice.
    """

    entries: list[list[SliceMapEntry]] = field(default_factory=list)

    @property
    def num_children(self) -> int:
        return len(self.entries)

    @property
    def slots_per_packet(self) -> int:
        return len(self.entries[0]) if self.entries else 0

    def for_child(self, child_index: int) -> list[SliceMapEntry]:
        try:
            return self.entries[child_index]
        except IndexError as exc:
            raise ProtocolError(
                f"slice-map has no child index {child_index} "
                f"(has {self.num_children})"
            ) from exc

    def pack(self) -> bytes:
        header = struct.pack(">BB", self.num_children, self.slots_per_packet)
        body = b"".join(
            entry.pack() for child in self.entries for entry in child
        )
        return header + body

    @classmethod
    def unpack(cls, data: bytes) -> tuple["SliceMap", int]:
        """Parse a slice-map; returns ``(map, bytes_consumed)``."""
        if len(data) < 2:
            raise ProtocolError("slice-map header truncated")
        num_children, slots = struct.unpack(">BB", data[:2])
        needed = 2 + num_children * slots * 2
        if len(data) < needed:
            raise ProtocolError("slice-map body truncated")
        entries: list[list[SliceMapEntry]] = []
        offset = 2
        for _ in range(num_children):
            child_entries = []
            for _ in range(slots):
                child_entries.append(SliceMapEntry.unpack(data[offset : offset + 2]))
                offset += 2
            entries.append(child_entries)
        return cls(entries=entries), needed


@dataclass
class DataMap:
    """Per-child forwarding instructions for data slices (§4.3.7).

    ``slice_for_child[c]`` is the *parent index* (0..d'-1) whose data slice
    this relay forwards to child ``c``.  The source constructs the maps so
    every node ends up with all ``d'`` distinct data slices, one from each
    parent, with no duplicates and no wasted bandwidth.
    """

    slice_for_child: list[int] = field(default_factory=list)

    @property
    def num_children(self) -> int:
        return len(self.slice_for_child)

    def for_child(self, child_index: int) -> int:
        try:
            return self.slice_for_child[child_index]
        except IndexError as exc:
            raise ProtocolError(
                f"data-map has no child index {child_index} (has {self.num_children})"
            ) from exc

    def pack(self) -> bytes:
        return struct.pack(">B", self.num_children) + bytes(self.slice_for_child)

    @classmethod
    def unpack(cls, data: bytes) -> tuple["DataMap", int]:
        if len(data) < 1:
            raise ProtocolError("data-map header truncated")
        count = data[0]
        if len(data) < 1 + count:
            raise ProtocolError("data-map body truncated")
        return cls(slice_for_child=list(data[1 : 1 + count])), 1 + count


@dataclass
class NodeInfo:
    """The routing information ``I_x`` delivered confidentially to node ``x``.

    ``lane`` is the node's position within its stage; relays stamp it on the
    packets they emit so that the next hop can match incoming packets against
    the parent indices used in its own slice-map and data-map.  ``num_parents``
    tells the relay how many distinct parents feed it (``d'``), which it uses
    to decide when it has heard from everyone upstream.
    """

    next_hop_addresses: list[str]
    next_hop_flow_ids: list[int]
    is_receiver: bool
    secret_key: bytes
    slice_map: SliceMap
    data_map: DataMap
    lane: int = 0
    num_parents: int = 0

    def __post_init__(self) -> None:
        if len(self.next_hop_addresses) != len(self.next_hop_flow_ids):
            raise ProtocolError(
                "next-hop address and flow-id lists must have equal length"
            )
        if len(self.secret_key) != KEY_SIZE:
            raise ProtocolError(
                f"secret key must be {KEY_SIZE} bytes, got {len(self.secret_key)}"
            )

    @property
    def num_children(self) -> int:
        return len(self.next_hop_addresses)

    # -- serialization -----------------------------------------------------------

    def pack(self) -> bytes:
        """Serialize to bytes (the payload that the source slices and codes)."""
        parts = [struct.pack(">B", self.num_children)]
        for address in self.next_hop_addresses:
            encoded = address.encode("utf-8")
            if len(encoded) > 255:
                raise ProtocolError(f"address too long: {address!r}")
            parts.append(struct.pack(">B", len(encoded)) + encoded)
        for flow_id in self.next_hop_flow_ids:
            parts.append(struct.pack(">Q", flow_id & 0xFFFFFFFFFFFFFFFF))
        parts.append(struct.pack(">B", 1 if self.is_receiver else 0))
        parts.append(struct.pack(">BB", self.lane, self.num_parents))
        parts.append(self.secret_key)
        parts.append(self.slice_map.pack())
        parts.append(self.data_map.pack())
        return b"".join(parts)

    @classmethod
    def unpack(cls, data: bytes) -> "NodeInfo":
        """Parse bytes produced by :meth:`pack`."""
        try:
            offset = 0
            num_children = data[offset]
            offset += 1
            addresses = []
            for _ in range(num_children):
                length = data[offset]
                offset += 1
                addresses.append(data[offset : offset + length].decode("utf-8"))
                offset += length
            flow_ids = []
            for _ in range(num_children):
                (flow_id,) = struct.unpack(">Q", data[offset : offset + FLOW_ID_SIZE])
                flow_ids.append(flow_id)
                offset += FLOW_ID_SIZE
            is_receiver = bool(data[offset])
            offset += 1
            lane = data[offset]
            num_parents = data[offset + 1]
            offset += 2
            secret_key = bytes(data[offset : offset + KEY_SIZE])
            offset += KEY_SIZE
            slice_map, consumed = SliceMap.unpack(data[offset:])
            offset += consumed
            data_map, consumed = DataMap.unpack(data[offset:])
            offset += consumed
        except (IndexError, struct.error, UnicodeDecodeError) as exc:
            raise ProtocolError(f"malformed NodeInfo payload: {exc}") from exc
        return cls(
            next_hop_addresses=addresses,
            next_hop_flow_ids=flow_ids,
            is_receiver=is_receiver,
            secret_key=secret_key,
            slice_map=slice_map,
            data_map=data_map,
            lane=lane,
            num_parents=num_parents,
        )
