"""Per-flow batched data-slice store and decoder (the relay's data plane).

A relay on the steady-state data path used to keep one ``dict[int,
CodedBlock]`` per sequence number and run a scalar Gauss–Jordan per message
(:func:`~repro.core.integrity.robust_decode`).  :class:`FlowDecoder` replaces
that per-message structure with array-native accumulation: slices of a flow
live in ``(seqs, slots, d)`` coefficient stacks and ``(seqs, slots,
block_len)`` payload stacks, so a burst of deliverable messages decodes
through the batched GF(2^8) kernels (:meth:`GF256.invert_matrices
<repro.core.gf.GF256.invert_matrices>` / :meth:`GF256.batched_matmul
<repro.core.gf.GF256.batched_matmul>`) in a constant number of numpy passes.

One stack (*plane*) exists per distinct payload length; the protocol's
constant packet format (§9.4c) means a steady-state flow has exactly one.
Slices whose length clashes with their sequence's plane — impossible from a
conforming sender — are kept in a per-seq side list and decoded through the
scalar fallback.

Decoding is deterministic (matrix inverses over GF(2^8) are unique), so the
batched path is *bit-identical* to the scalar reference: the fast path takes
the first ``d`` slices in arrival order — exactly what the greedy
:meth:`SliceCoder.select_independent
<repro.core.coder.SliceCoder.select_independent>` picks when they are
independent — and anything irregular (dependent rows, churn padding that
fails the integrity frame) falls back to :func:`robust_decode` on the very
same blocks.
"""

from __future__ import annotations

import numpy as np

from .coder import CodedBlock, SliceCoder, _unpad_message
from .errors import CodingError, InsufficientSlicesError
from .gf import GF256, resolve_field
from .integrity import robust_decode, unwrap, verify

def decode_setup_payload(
    coder: SliceCoder,
    blocks: list[CodedBlock],
    field: GF256 | None = None,
    kernel: str | None = None,
) -> bytes:
    """Robust-decode one slice set through the batched Gauss–Jordan kernel.

    This is the route-setup counterpart of :meth:`FlowDecoder.decode_many`:
    a relay decoding its own routing information (§4.3.5) stacks the first
    ``d`` received slices — arrival order — into a ``(1, d, d)``
    coefficient stack and a ``(1, d, block_len)`` payload stack and decodes
    through :meth:`GF256.try_invert_matrices
    <repro.core.gf.GF256.try_invert_matrices>` /
    :meth:`GF256.batched_matmul <repro.core.gf.GF256.batched_matmul>`,
    instead of paying :func:`~repro.core.integrity.robust_decode`'s greedy
    per-block rank eliminations.

    Bit-identical to ``robust_decode(coder, blocks)``: when the first ``d``
    blocks are independent they are exactly what the greedy scalar selection
    picks (matrix inverses over GF(2^8) are unique), and anything irregular
    — dependent rows, churn padding that fails the integrity frame, ragged
    payload lengths — falls back to :func:`robust_decode` on the very same
    blocks.  Asserted in ``tests/test_setup_decode.py`` and re-checked by
    :func:`repro.experiments.setup_latency.compare_setup_decode_engines`.
    """
    field = resolve_field(field, kernel)
    d = coder.d
    if len(blocks) < d:
        raise InsufficientSlicesError(d, len(blocks))
    head = blocks[:d]
    block_len = head[0].payload.shape[0]
    if all(
        block.coefficients.shape[0] == d and block.payload.shape[0] == block_len
        for block in head
    ):
        coeffs = np.stack([block.coefficients for block in head])[None, :, :]
        inverses, invertible = field.try_invert_matrices(coeffs)
        if invertible[0]:
            payloads = np.stack([block.payload for block in head])[None, :, :]
            pieces = field.batched_matmul(inverses, payloads)[0]
            try:
                candidate = _unpad_message(pieces)
            except CodingError:
                candidate = None
            if candidate is not None and verify(candidate):
                return unwrap(candidate)
    return robust_decode(coder, blocks)


#: Initial number of sequence rows allocated per plane.
_INITIAL_ROWS = 8

#: Initial number of slice slots per sequence row (grown on demand; ``d'``
#: parents is the steady state).
_INITIAL_SLOTS = 4


class _Plane:
    """Array storage for all sequences sharing one payload length.

    Coefficients and payloads live in numpy stacks (the decode kernels read
    them in place); per-row bookkeeping (arrival-ordered lanes, duplicate
    sets) stays in plain Python containers, which are markedly cheaper than
    element-wise numpy indexing on the per-packet path.
    """

    def __init__(self, d: int, block_len: int) -> None:
        self.d = d
        self.block_len = block_len
        self.rows: dict[int, int] = {}
        self.free: list[int] = []
        self.coeffs = np.zeros((_INITIAL_ROWS, _INITIAL_SLOTS, d), dtype=np.uint8)
        self.payloads = np.zeros(
            (_INITIAL_ROWS, _INITIAL_SLOTS, block_len), dtype=np.uint8
        )
        #: Arrival-ordered lane of every filled slot, per row.
        self.lane_lists: list[list[int]] = [[] for _ in range(_INITIAL_ROWS)]
        #: Per-row lane membership for O(1) duplicate detection.
        self.lane_sets: list[set[int]] = [set() for _ in range(_INITIAL_ROWS)]

    def count(self, seq: int) -> int:
        row = self.rows.get(seq)
        return 0 if row is None else len(self.lane_lists[row])

    def lanes_for(self, seq: int) -> list[int]:
        row = self.rows.get(seq)
        return [] if row is None else list(self.lane_lists[row])

    def add(self, seq: int, lane: int, block: CodedBlock) -> bool:
        row = self.rows.get(seq)
        if row is None:
            row = self._allocate_row(seq)
        lane_set = self.lane_sets[row]
        if lane in lane_set:
            return False
        lanes = self.lane_lists[row]
        count = len(lanes)
        if count == self.coeffs.shape[1]:
            self._grow_slots()
        self.coeffs[row, count] = block.coefficients
        self.payloads[row, count] = block.payload
        lanes.append(lane)
        lane_set.add(lane)
        return True

    def blocks(self, seq: int) -> list[CodedBlock]:
        row = self.rows.get(seq)
        if row is None:
            return []
        return [
            CodedBlock(
                coefficients=self.coeffs[row, slot].copy(),
                payload=self.payloads[row, slot].copy(),
                index=lane,
            )
            for slot, lane in enumerate(self.lane_lists[row])
        ]

    def drop(self, seq: int) -> bool:
        row = self.rows.pop(seq, None)
        if row is None:
            return False
        self.lane_lists[row].clear()
        self.lane_sets[row].clear()
        self.free.append(row)
        return True

    def _allocate_row(self, seq: int) -> int:
        if self.free:
            row = self.free.pop()
        else:
            row = len(self.rows)
            if row >= self.coeffs.shape[0]:
                self._grow_rows()
        self.rows[seq] = row
        return row

    def _grow_rows(self) -> None:
        old = self.coeffs.shape[0]
        new = old * 2
        slots = self.coeffs.shape[1]
        self.coeffs = _grown(self.coeffs, (new, slots, self.d))
        self.payloads = _grown(self.payloads, (new, slots, self.block_len))
        self.lane_lists.extend([] for _ in range(new - old))
        self.lane_sets.extend(set() for _ in range(new - old))

    def _grow_slots(self) -> None:
        rows, old = self.coeffs.shape[0], self.coeffs.shape[1]
        new = old * 2
        self.coeffs = _grown(self.coeffs, (rows, new, self.d), axis=1)
        self.payloads = _grown(self.payloads, (rows, new, self.block_len), axis=1)


def _grown(array: np.ndarray, shape: tuple[int, ...], axis: int = 0) -> np.ndarray:
    out = np.zeros(shape, dtype=array.dtype)
    if axis == 0:
        out[: array.shape[0]] = array
    else:
        out[:, : array.shape[1]] = array
    return out


class FlowDecoder:
    """Array-native store of a flow's data slices, with batched robust decode.

    Parameters
    ----------
    d:
        Split factor of the flow; any ``d`` independent slices reconstruct a
        message.
    field:
        Finite-field implementation.  Defaults to the shared instance for
        the active kernel (see :func:`repro.core.gf.use_kernel`).
    kernel:
        Shorthand for ``field=field_for_kernel(kernel)``; ignored when an
        explicit ``field`` is given.
    """

    def __init__(
        self,
        d: int,
        field: GF256 | None = None,
        kernel: str | None = None,
    ) -> None:
        if d < 1:
            raise CodingError(f"split factor d must be >= 1, got {d}")
        self.d = d
        self.field = resolve_field(field, kernel)
        self._coder = SliceCoder(d, field=self.field)
        self._planes: dict[int, _Plane] = {}
        self._seq_plane: dict[int, int] = {}
        self._extras: dict[int, list[CodedBlock]] = {}

    # -- storage ---------------------------------------------------------------------

    def __contains__(self, seq: int) -> bool:
        return seq in self._seq_plane

    def __len__(self) -> int:
        """Number of sequence numbers currently holding slices."""
        return len(self._seq_plane)

    def seqs(self) -> list[int]:
        """Sequence numbers with stored slices, in first-seen order."""
        return list(self._seq_plane)

    def count(self, seq: int) -> int:
        """Number of slices stored for ``seq`` (0 if unknown)."""
        block_len = self._seq_plane.get(seq)
        if block_len is None:
            return 0
        count = self._planes[block_len].count(seq)
        extras = self._extras.get(seq)
        return count if extras is None else count + len(extras)

    def lanes(self, seq: int) -> list[int]:
        """Lanes that have delivered a slice for ``seq``, in arrival order."""
        block_len = self._seq_plane.get(seq)
        if block_len is None:
            return []
        lanes = self._planes[block_len].lanes_for(seq)
        lanes.extend(block.index for block in self._extras.get(seq, []))
        return lanes

    def add(self, seq: int, lane: int, block: CodedBlock) -> bool:
        """Store one slice; returns False for a duplicate (seq, lane)."""
        if block.coefficients.shape[0] != self.d:
            raise CodingError(
                f"slice coded with split factor {block.coefficients.shape[0]}, "
                f"flow decoder expects {self.d}"
            )
        block_len = block.payload.shape[0]
        owner = self._seq_plane.get(seq)
        if owner is None:
            self._seq_plane[seq] = owner = block_len
            if owner not in self._planes:
                self._planes[owner] = _Plane(self.d, owner)
        extras = self._extras.get(seq)
        if extras is not None and any(extra.index == lane for extra in extras):
            return False
        if block_len != owner:
            # Length clash within one sequence: a non-conforming sender.  Park
            # the slice; decoding this seq goes through the scalar fallback.
            if lane in self._planes[owner].lanes_for(seq):
                return False
            self._extras.setdefault(seq, []).append(
                CodedBlock(block.coefficients, block.payload, index=lane)
            )
            return True
        return self._planes[owner].add(seq, lane, block)

    def add_run(
        self, lane: int, items: list[tuple[int, CodedBlock]]
    ) -> list[tuple[int, CodedBlock]]:
        """Store a same-lane run of slices; returns the accepted (seq, block) pairs.

        This is the shape a relay receives on the steady-state data path —
        one parent connection delivering a burst of consecutive sequence
        numbers on one lane — so the per-slice bookkeeping is inlined here
        (no per-call re-resolution of the plane) and anything irregular drops
        to :meth:`add`.
        """
        accepted: list[tuple[int, CodedBlock]] = []
        seq_plane = self._seq_plane
        planes = self._planes
        extras = self._extras
        plane: _Plane | None = None
        plane_len = -1
        d = self.d
        # Slot targets of the run's regular slices, written in two fancy-index
        # passes at the end instead of one pair of row writes per packet.
        write_rows: list[int] = []
        write_slots: list[int] = []
        write_blocks: list[CodedBlock] = []

        def flush_writes() -> None:
            if not write_rows:
                return
            plane.coeffs[write_rows, write_slots] = np.stack(
                [block.coefficients for block in write_blocks]
            )
            plane.payloads[write_rows, write_slots] = np.stack(
                [block.payload for block in write_blocks]
            )
            write_rows.clear()
            write_slots.clear()
            write_blocks.clear()

        for seq, block in items:
            if block.coefficients.shape[0] != d:
                flush_writes()
                raise CodingError(
                    f"slice coded with split factor {block.coefficients.shape[0]}, "
                    f"flow decoder expects {d}"
                )
            payload = block.payload
            block_len = payload.shape[0]
            owner = seq_plane.get(seq)
            if owner is None:
                seq_plane[seq] = owner = block_len
                if owner not in planes:
                    planes[owner] = _Plane(d, owner)
            if owner != block_len or (extras and seq in extras):
                flush_writes()
                if self.add(seq, lane, block):
                    accepted.append((seq, block))
                continue
            if owner != plane_len:
                flush_writes()
                plane = planes[owner]
                plane_len = owner
            row = plane.rows.get(seq)
            if row is None:
                grown_before = plane.coeffs.shape[0]
                row = plane._allocate_row(seq)
                if plane.coeffs.shape[0] != grown_before:
                    flush_writes()
            lane_set = plane.lane_sets[row]
            if lane in lane_set:
                continue
            lanes = plane.lane_lists[row]
            count = len(lanes)
            if count == plane.coeffs.shape[1]:
                flush_writes()
                plane._grow_slots()
            lanes.append(lane)
            lane_set.add(lane)
            write_rows.append(row)
            write_slots.append(count)
            write_blocks.append(block)
            accepted.append((seq, block))
        flush_writes()
        return accepted

    def blocks(self, seq: int) -> list[CodedBlock]:
        """Reconstruct the stored slices of ``seq`` as blocks, in arrival order."""
        block_len = self._seq_plane.get(seq)
        if block_len is None:
            return []
        blocks = self._planes[block_len].blocks(seq)
        blocks.extend(self._extras.get(seq, []))
        return blocks

    def drop(self, seq: int) -> bool:
        """Forget all slices of ``seq``; returns False if it held none."""
        block_len = self._seq_plane.pop(seq, None)
        if block_len is None:
            return False
        self._planes[block_len].drop(seq)
        self._extras.pop(seq, None)
        return True

    def retire_before(self, before_seq: int) -> int:
        """Drop every sequence number ``< before_seq``; returns count dropped."""
        stale = [seq for seq in self._seq_plane if seq < before_seq]
        for seq in stale:
            self.drop(seq)
        return len(stale)

    # -- batched decode ----------------------------------------------------------------

    def decodable(self, seq: int) -> bool:
        """True when ``seq`` holds at least ``d`` slices (decode may be tried)."""
        return self.count(seq) >= self.d

    def decode_many(self, seqs: list[int]) -> dict[int, bytes]:
        """Robust-decode every listed sequence that can decode, in one batch.

        Returns ``{seq: unwrapped payload}``; sequences whose slices cannot
        produce a verifying decode (not enough independent slices, or only
        churn padding) are simply absent from the result.  Byte-identical to
        calling :func:`~repro.core.integrity.robust_decode` per sequence.
        """
        per_plane: dict[int, list[int]] = {}
        fallback: list[int] = []
        for seq in seqs:
            if self.count(seq) < self.d:
                continue
            block_len = self._seq_plane[seq]
            if seq in self._extras or self._planes[block_len].count(seq) < self.d:
                fallback.append(seq)
            else:
                per_plane.setdefault(block_len, []).append(seq)
        decoded: dict[int, bytes] = {}
        for block_len, candidates in per_plane.items():
            plane = self._planes[block_len]
            rows = np.array([plane.rows[seq] for seq in candidates])
            coeffs = plane.coeffs[rows, : self.d]
            payloads = plane.payloads[rows, : self.d]
            inverses, invertible = self.field.try_invert_matrices(coeffs)
            if invertible.any():
                sub = np.flatnonzero(invertible)
                pieces = self.field.batched_matmul(inverses[sub], payloads[sub])
                for position, batch_index in enumerate(sub):
                    seq = candidates[int(batch_index)]
                    try:
                        candidate = _unpad_message(pieces[position])
                    except CodingError:
                        fallback.append(seq)
                        continue
                    if verify(candidate):
                        decoded[seq] = unwrap(candidate)
                    else:
                        fallback.append(seq)
            fallback.extend(candidates[int(i)] for i in np.flatnonzero(~invertible))
        for seq in fallback:
            try:
                decoded[seq] = robust_decode(self._coder, self.blocks(seq))
            except (InsufficientSlicesError, CodingError):
                continue
        return decoded
