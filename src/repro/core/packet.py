"""Wire format for information-slicing packets (§4.3.3, Fig. 3).

A packet carries, in cleartext, a flow id, and then a fixed number of
*slices*.  Each slice is a coefficient row (``d`` bytes) followed by a coded
block.  The first slice in every packet belongs to the node that receives the
packet; the remaining slices are opaque payload destined for nodes further
down the forwarding graph.

All slices in a packet have the same size, and every packet of a flow carries
the same number of slices, so packet sizes are constant along the path
(§9.4(c)).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from .coder import CodedBlock
from .errors import PacketFormatError

# flow_id, kind, slice_count, slice_bytes, d, lane, seq
_HEADER = struct.Struct(">QBBHBBI")


class PacketKind(IntEnum):
    """Distinguishes route-setup packets from data packets."""

    SETUP = 0
    DATA = 1


@dataclass(slots=True)
class Packet:
    """One information-slicing packet.

    Attributes
    ----------
    flow_id:
        Cleartext 64-bit flow identifier; all parents of a node stamp the same
        flow id on packets destined to it so the node can group them.
    kind:
        Whether this packet belongs to the route-setup or the data phase.
    slices:
        The slices carried, ``slices[0]`` being the slice addressed to the
        receiving node itself.
    d:
        Split factor the slices were coded with (length of coefficient rows).
    lane:
        Position of the *sending* node within its stage.  Receivers use it to
        match incoming packets against the parent indices in their slice-map.
        It carries no identity information (it is an arbitrary 0..d'-1 index
        assigned by the source).
    source_address / destination_address:
        Transport-level addressing used by the overlay when delivering the
        packet.  They are not part of the anonymity-bearing payload.
    """

    flow_id: int
    kind: PacketKind
    slices: list[CodedBlock]
    d: int
    lane: int = 0
    seq: int = 0
    source_address: str = ""
    destination_address: str = ""
    _size: int | None = field(default=None, init=False, repr=False, compare=False)

    @property
    def slice_count(self) -> int:
        return len(self.slices)

    @property
    def own_slice(self) -> CodedBlock:
        """The slice addressed to the receiving node (always slot 0)."""
        if not self.slices:
            raise PacketFormatError("packet carries no slices")
        return self.slices[0]

    def payload_slices(self) -> list[CodedBlock]:
        """The slices to be forwarded downstream (everything after slot 0)."""
        return self.slices[1:]

    def size_bytes(self) -> int:
        """Serialized size, used by the simulator's bandwidth model.

        Computed arithmetically (header plus ``slice_count`` equal-sized
        slices, enforcing the constant packet format like :meth:`to_bytes`)
        and cached on first call, so the hot simulation path never
        serialises just to measure; always equals ``len(self.to_bytes())``.
        Mutating ``slices`` after the first call is not supported.
        """
        if self._size is None:
            if not self.slices:
                raise PacketFormatError("cannot size a packet with no slices")
            first = self.slices[0].size_bytes()
            for block in self.slices[1:]:
                if block.size_bytes() != first:
                    raise PacketFormatError("all slices in a packet must be equal-sized")
            self._size = _HEADER.size + len(self.slices) * first
        return self._size

    # -- serialization -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        if not self.slices:
            raise PacketFormatError("cannot serialize a packet with no slices")
        slice_bytes = self.slices[0].size_bytes()
        for block in self.slices:
            if block.size_bytes() != slice_bytes:
                raise PacketFormatError("all slices in a packet must be equal-sized")
            if block.d != self.d:
                raise PacketFormatError(
                    f"slice coded with d={block.d} in a packet declaring d={self.d}"
                )
        header = _HEADER.pack(
            self.flow_id & 0xFFFFFFFFFFFFFFFF,
            int(self.kind),
            len(self.slices),
            slice_bytes,
            self.d,
            self.lane & 0xFF,
            self.seq & 0xFFFFFFFF,
        )
        return header + b"".join(block.to_bytes() for block in self.slices)

    @classmethod
    def from_bytes(
        cls, data: bytes, source_address: str = "", destination_address: str = ""
    ) -> "Packet":
        if len(data) < _HEADER.size:
            raise PacketFormatError("packet shorter than header")
        flow_id, kind, slice_count, slice_bytes, d, lane, seq = _HEADER.unpack(
            data[: _HEADER.size]
        )
        expected = _HEADER.size + slice_count * slice_bytes
        if len(data) != expected:
            raise PacketFormatError(
                f"packet length {len(data)} does not match header "
                f"({slice_count} slices of {slice_bytes} bytes)"
            )
        slices = []
        offset = _HEADER.size
        for index in range(slice_count):
            chunk = data[offset : offset + slice_bytes]
            slices.append(CodedBlock.from_bytes(chunk, d=d, index=index))
            offset += slice_bytes
        return cls(
            flow_id=flow_id,
            kind=PacketKind(kind),
            slices=slices,
            d=d,
            lane=lane,
            seq=seq,
            source_address=source_address,
            destination_address=destination_address,
        )


def random_padding_slice(
    d: int, payload_bytes: int, rng: np.random.Generator
) -> CodedBlock:
    """A slice filled with uniformly random bytes (§4.3.6 ``rand`` entries)."""
    coefficients = rng.integers(0, 256, size=d, dtype=np.uint8)
    payload = rng.integers(0, 256, size=payload_bytes, dtype=np.uint8)
    return CodedBlock(coefficients=coefficients, payload=payload, index=-1)
