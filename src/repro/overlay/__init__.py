"""Overlay substrates: local in-memory overlay, discrete-event simulator,
asyncio socket backend, churn models, latency/load profiles, and AS-aware
relay selection."""

from .address import ASDatabase, Prefix, assign_overlay_addresses, generate_as_database
from .churn import PLANETLAB_CHURN, STABLE_CHURN, ChurnModel
from .local import DeliveryRecord, LocalOverlay
from .network import (
    NetworkModel,
    NodeResources,
    heterogeneous_network,
    uniform_network,
)
from .node import (
    DEFAULT_PER_PACKET_OVERHEAD,
    FlowProgress,
    OverlayTransport,
    SimulatedOverlayNetwork,
    SlicingRuntime,
)
from .profiles import LAN_PROFILE, PLANETLAB_PROFILE, PROFILES, OverlayProfile, get_profile
from .runtime import (
    SUBSTRATE_BACKENDS,
    ProtocolRuntime,
    SlicingProtocolRuntime,
    build_runtime,
    build_substrate,
    register_runtime,
    runtime_schemes,
)
from .selection import (
    SelectionReport,
    adversary_capture_probability,
    as_diverse_selection,
    uniform_selection,
)
from .simulator import EventHandle, EventSimulator

__all__ = [
    "LocalOverlay",
    "DeliveryRecord",
    "EventSimulator",
    "EventHandle",
    "NetworkModel",
    "NodeResources",
    "uniform_network",
    "heterogeneous_network",
    "OverlayTransport",
    "SimulatedOverlayNetwork",
    "SlicingRuntime",
    "FlowProgress",
    "ProtocolRuntime",
    "SlicingProtocolRuntime",
    "build_runtime",
    "build_substrate",
    "SUBSTRATE_BACKENDS",
    "register_runtime",
    "runtime_schemes",
    "DEFAULT_PER_PACKET_OVERHEAD",
    "ChurnModel",
    "PLANETLAB_CHURN",
    "STABLE_CHURN",
    "OverlayProfile",
    "LAN_PROFILE",
    "PLANETLAB_PROFILE",
    "PROFILES",
    "get_profile",
    "ASDatabase",
    "Prefix",
    "generate_as_database",
    "assign_overlay_addresses",
    "uniform_selection",
    "as_diverse_selection",
    "SelectionReport",
    "adversary_capture_probability",
]
