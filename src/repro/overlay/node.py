"""Simulated overlay node runtime.

:class:`SimulatedOverlayNetwork` combines the event loop
(:class:`~repro.overlay.simulator.EventSimulator`), the network model
(latency, per-connection capacity), per-node CPU accounting, and node
failures into a generic substrate over which protocol adapters run.  The
information-slicing adapter (:class:`SlicingRuntime`) wires the real
:class:`~repro.core.relay.Relay` engines into this substrate; the onion
baselines in :mod:`repro.baselines` provide their own adapters.

Resource model
--------------
* every directed (sender, receiver) pair is a *connection* with a serialisation
  rate (``connection_bps``); packets queue on it in FIFO order — this is what
  makes a single onion path top out at one connection's worth of throughput
  while information slicing's ``d`` parallel connections scale further (§7.2);
* every node has a CPU; work items (coding, symmetric crypto, per-packet
  handling) queue on it;
* a failed node silently drops everything addressed to it (the paper's
  unreachable PlanetLab nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.packet import Packet, PacketKind
from ..core.relay import Relay
from ..core.source import FlowSetup, Source
from .network import NetworkModel
from .simulator import EventSimulator

#: Fixed per-packet handling overhead (seconds) on the steady-state data path
#: (flow-table hit, copy, forward).
DEFAULT_PER_PACKET_OVERHEAD = 3e-5

#: Extra per-packet cost (seconds) of processing a *setup* packet in the
#: prototype's user-space daemon: thread dispatch, flow-table creation and the
#: pure-Python matrix work of §4.3.5.  This is what makes route setup take
#: hundreds of milliseconds in the paper's Fig. 14 despite a quiet LAN.
DEFAULT_SETUP_PROCESSING_OVERHEAD = 0.008


@dataclass
class TransmissionStats:
    """Aggregate counters maintained by the simulated network."""

    packets_sent: int = 0
    packets_dropped: int = 0
    bytes_sent: int = 0


class SimulatedOverlayNetwork:
    """Shared transport substrate: connections, CPUs, failures."""

    def __init__(
        self,
        network: NetworkModel,
        connection_bps: float,
        per_packet_overhead: float = DEFAULT_PER_PACKET_OVERHEAD,
        simulator: EventSimulator | None = None,
    ) -> None:
        self.network = network
        self.connection_bps = connection_bps
        self.per_packet_overhead = per_packet_overhead
        self.sim = EventSimulator() if simulator is None else simulator
        self.stats = TransmissionStats()
        self._link_free_at: dict[tuple[str, str], float] = {}
        self._cpu_free_at: dict[str, float] = {}
        self._failed_at: dict[str, float] = {}

    # -- failures ------------------------------------------------------------------

    def fail_node(self, address: str, at_time: float | None = None) -> None:
        """Kill ``address`` now or at an absolute simulated time."""
        when = self.sim.now if at_time is None else at_time
        previous = self._failed_at.get(address)
        if previous is None or when < previous:
            self._failed_at[address] = when

    def is_alive(self, address: str, at_time: float | None = None) -> bool:
        when = self.sim.now if at_time is None else at_time
        failed_at = self._failed_at.get(address)
        return failed_at is None or when < failed_at

    # -- resource accounting ----------------------------------------------------------

    def _reserve_link(self, sender: str, receiver: str, size_bytes: int) -> float:
        """Queue a packet on the (sender, receiver) connection; return send-done time."""
        key = (sender, receiver)
        start = max(self.sim.now, self._link_free_at.get(key, 0.0))
        done = start + size_bytes * 8.0 / self.connection_bps
        self._link_free_at[key] = done
        return done

    def reserve_cpu(self, address: str, work_seconds: float) -> float:
        """Queue ``work_seconds`` of CPU work on a node; return completion time."""
        start = max(self.sim.now, self._cpu_free_at.get(address, 0.0))
        done = start + work_seconds
        self._cpu_free_at[address] = done
        return done

    # -- transmission -------------------------------------------------------------------

    def transmit(
        self,
        sender: str,
        receiver: str,
        size_bytes: int,
        on_delivered: Callable[[], None],
        sender_cpu_seconds: float = 0.0,
    ) -> None:
        """Send ``size_bytes`` from ``sender`` to ``receiver``.

        The sender first spends ``sender_cpu_seconds`` of CPU (plus the fixed
        per-packet overhead), then the packet serialises onto the connection,
        propagates, and ``on_delivered`` fires at the receiver — unless either
        endpoint has failed by the relevant instant.
        """
        if not self.is_alive(sender):
            self.stats.packets_dropped += 1
            return
        cpu_done = self.reserve_cpu(
            sender, sender_cpu_seconds + self.per_packet_overhead
        )

        def start_transmission() -> None:
            if not self.is_alive(sender):
                self.stats.packets_dropped += 1
                return
            link_done = self._reserve_link(sender, receiver, size_bytes)
            arrival = link_done + self.network.latency(sender, receiver)
            self.stats.packets_sent += 1
            self.stats.bytes_sent += size_bytes

            def deliver() -> None:
                if not self.is_alive(receiver):
                    self.stats.packets_dropped += 1
                    return
                on_delivered()

            self.sim.schedule_at(arrival, deliver)

        self.sim.schedule_at(cpu_done, start_transmission)


@dataclass
class FlowProgress:
    """Observable progress of one information-slicing flow in the simulator."""

    setup_injected_at: float = 0.0
    relay_decode_times: dict[str, float] = field(default_factory=dict)
    delivered_messages: dict[int, float] = field(default_factory=dict)
    delivered_bytes: int = 0
    first_delivery_at: float | None = None
    last_delivery_at: float | None = None

    def setup_complete_time(self, relays: list[str]) -> float | None:
        """Time at which every listed relay had decoded its routing info."""
        times = [self.relay_decode_times.get(relay) for relay in relays]
        if any(time is None for time in times):
            return None
        return max(times)


class SlicingRuntime:
    """Runs real :class:`~repro.core.relay.Relay` engines over the simulator."""

    def __init__(
        self,
        substrate: SimulatedOverlayNetwork,
        rng: np.random.Generator | None = None,
        flush_timeout: float = 2.0,
        setup_processing_overhead: float = DEFAULT_SETUP_PROCESSING_OVERHEAD,
    ) -> None:
        self.substrate = substrate
        self.rng = np.random.default_rng() if rng is None else rng
        self.flush_timeout = flush_timeout
        self.setup_processing_overhead = setup_processing_overhead
        self.relays: dict[str, Relay] = {}
        self.progress: dict[int, FlowProgress] = {}
        self._flow_setups: dict[int, FlowSetup] = {}

    @property
    def sim(self) -> EventSimulator:
        return self.substrate.sim

    def add_relay(self, address: str) -> Relay:
        if address not in self.relays:
            seed = abs(hash(address)) % (2**32)
            self.relays[address] = Relay(address, rng=np.random.default_rng(seed))
        return self.relays[address]

    # -- driving a flow ------------------------------------------------------------------

    def start_flow(self, source: Source, flow: FlowSetup) -> FlowProgress:
        """Inject a flow's setup packets and arm the per-relay flush timers."""
        for relay_address in flow.graph.relays:
            self.add_relay(relay_address)
        progress = FlowProgress(setup_injected_at=self.sim.now)
        key = id(flow)
        self.progress[key] = progress
        self._flow_setups[key] = flow
        for packet in flow.setup_packets:
            self._send_packet(packet, flow, progress, sender_cpu=0.0)
        # Timeout-driven flush so churn cannot wedge the setup forever.
        self.sim.schedule(self.flush_timeout, lambda: self._flush_setup(flow, progress))
        return progress

    def send_message(
        self, source: Source, flow: FlowSetup, message: bytes
    ) -> None:
        """Code and inject one data message from the source stage."""
        packets = source.make_data_packets(flow, message)
        progress = self.progress[id(flow)]
        source_resources = self.substrate.network.resources(source.address)
        per_packet_cpu = source_resources.coding_time(
            max(len(message) // max(flow.d, 1), 1), flow.d
        )
        for packet in packets:
            self._send_packet(packet, flow, progress, sender_cpu=per_packet_cpu)
        seq = packets[0].seq
        self.sim.schedule(
            self.flush_timeout, lambda: self._flush_data(flow, progress, seq)
        )

    def send_messages(
        self, source: Source, flow: FlowSetup, messages: list[bytes]
    ) -> None:
        """Batched :meth:`send_message`: code all messages in one pass.

        The coding happens through
        :meth:`~repro.core.source.Source.make_data_packets_batch`, so the
        GF(2^8) work for the whole burst is a single batched kernel call; the
        per-message CPU *cost model* charged to the source is unchanged, so
        simulated timings stay comparable with the per-message path.
        """
        if not messages:
            return
        packet_batches = source.make_data_packets_batch(flow, messages)
        progress = self.progress[id(flow)]
        source_resources = self.substrate.network.resources(source.address)
        for message, packets in zip(messages, packet_batches):
            per_packet_cpu = source_resources.coding_time(
                max(len(message) // max(flow.d, 1), 1), flow.d
            )
            for packet in packets:
                self._send_packet(packet, flow, progress, sender_cpu=per_packet_cpu)
            seq = packets[0].seq
            self.sim.schedule(
                self.flush_timeout,
                lambda seq=seq: self._flush_data(flow, progress, seq),
            )

    # -- internals -------------------------------------------------------------------------

    def _send_packet(
        self,
        packet: Packet,
        flow: FlowSetup,
        progress: FlowProgress,
        sender_cpu: float,
    ) -> None:
        receiver = packet.destination_address

        def deliver() -> None:
            self._deliver_packet(packet, flow, progress)

        self.substrate.transmit(
            sender=packet.source_address,
            receiver=receiver,
            size_bytes=packet.size_bytes(),
            on_delivered=deliver,
            sender_cpu_seconds=sender_cpu,
        )

    def _deliver_packet(
        self, packet: Packet, flow: FlowSetup, progress: FlowProgress
    ) -> None:
        receiver = packet.destination_address
        relay = self.relays.get(receiver)
        if relay is None:
            return
        resources = self.substrate.network.resources(receiver)
        payload_bytes = sum(block.payload.shape[0] for block in packet.slices)
        cpu = resources.coding_time(payload_bytes, packet.d)
        if packet.kind == PacketKind.SETUP:
            cpu += self.setup_processing_overhead * resources.load_factor
        done = self.substrate.reserve_cpu(
            receiver, cpu + self.substrate.per_packet_overhead
        )

        def process() -> None:
            before_decoded = self._relay_decoded(relay, flow, receiver)
            outputs = relay.handle_packet(packet, now=self.sim.now)
            if not before_decoded and self._relay_decoded(relay, flow, receiver):
                progress.relay_decode_times.setdefault(receiver, self.sim.now)
            self._record_delivery(relay, flow, progress, receiver)
            for output in outputs:
                self._send_packet(output, flow, progress, sender_cpu=0.0)

        self.sim.schedule_at(done, process)

    def _relay_decoded(self, relay: Relay, flow: FlowSetup, address: str) -> bool:
        flow_id = flow.plan.flow_ids.get(address)
        state = relay.flows.get(flow_id) if flow_id is not None else None
        return bool(state and state.decoded)

    def _record_delivery(
        self, relay: Relay, flow: FlowSetup, progress: FlowProgress, address: str
    ) -> None:
        if address != flow.destination:
            return
        flow_id = flow.plan.flow_ids[address]
        for seq, message in relay.delivered_messages(flow_id).items():
            if seq not in progress.delivered_messages:
                progress.delivered_messages[seq] = self.sim.now
                progress.delivered_bytes += len(message)
                if progress.first_delivery_at is None:
                    progress.first_delivery_at = self.sim.now
                progress.last_delivery_at = self.sim.now

    def _flush_setup(self, flow: FlowSetup, progress: FlowProgress) -> None:
        for relay_address in flow.graph.relays:
            relay = self.relays.get(relay_address)
            if relay is None or not self.substrate.is_alive(relay_address):
                continue
            flow_id = flow.plan.flow_ids[relay_address]
            for output in relay.flush_setup(flow_id):
                self._send_packet(output, flow, progress, sender_cpu=0.0)

    def _flush_data(self, flow: FlowSetup, progress: FlowProgress, seq: int) -> None:
        for relay_address in flow.graph.relays:
            relay = self.relays.get(relay_address)
            if relay is None or not self.substrate.is_alive(relay_address):
                continue
            flow_id = flow.plan.flow_ids[relay_address]
            for output in relay.flush_data(flow_id, seq):
                self._send_packet(output, flow, progress, sender_cpu=0.0)
            self._record_delivery(relay, flow, progress, relay_address)
