"""Simulated overlay node runtime.

:class:`SimulatedOverlayNetwork` combines the event loop
(:class:`~repro.overlay.simulator.EventSimulator`), the network model
(latency, per-connection capacity), per-node CPU accounting, and node
failures into a generic substrate over which protocol adapters run.  The
information-slicing adapter (:class:`SlicingRuntime`) wires the real
:class:`~repro.core.relay.Relay` engines into this substrate; the onion
baselines in :mod:`repro.baselines` provide their own adapters.

The accounting and the payload-carrying transmit surface live on the
:class:`OverlayTransport` base class, which the asyncio socket backend
(:mod:`repro.overlay.aio`) also implements — the adapters run unchanged on
either backend.

Resource model
--------------
* every directed (sender, receiver) pair is a *connection* with a serialisation
  rate (``connection_bps``); packets queue on it in FIFO order — this is what
  makes a single onion path top out at one connection's worth of throughput
  while information slicing's ``d`` parallel connections scale further (§7.2);
* every node has a CPU; work items (coding, symmetric crypto, per-packet
  handling) queue on it;
* a failed node silently drops everything addressed to it (the paper's
  unreachable PlanetLab nodes).

Data planes
-----------
The runtime drives the protocol through one of two data planes:

* ``"scalar"`` — the reference: every packet is its own transmit, arrival and
  CPU event, and the relay decodes per message.  Kept deliberately simple;
  this is the behaviour of the original per-packet simulator.
* ``"batched"`` (default) — a burst of packets on one connection becomes one
  :meth:`~SimulatedOverlayNetwork.transmit_batch` (per-packet serialisation
  and CPU *times* are still accounted exactly, so the simulated clock stays
  comparable), deliveries landing at one relay at one simulated instant
  coalesce into a single batch event
  (:meth:`~repro.overlay.simulator.EventSimulator.schedule_keyed`), and the
  relay decodes whole batches through the batched GF(2^8) kernels.  Delivered
  messages and relay counters are bit-identical to the scalar plane under a
  shared seed (asserted in ``tests/test_dataplane.py``); only host wall-clock
  and sub-millisecond event interleavings differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.errors import SimulationError
from ..core.gf import resolve_field
from ..core.packet import Packet, PacketKind
from ..core.relay import Relay
from ..core.source import FlowSetup, Source
from .network import NetworkModel
from .simulator import EventSimulator

#: Fixed per-packet handling overhead (seconds) on the steady-state data path
#: (flow-table hit, copy, forward).
DEFAULT_PER_PACKET_OVERHEAD = 3e-5

#: Extra per-packet cost (seconds) of processing a *setup* packet in the
#: prototype's user-space daemon: thread dispatch, flow-table creation and the
#: pure-Python matrix work of §4.3.5.  This is what makes route setup take
#: hundreds of milliseconds in the paper's Fig. 14 despite a quiet LAN.
DEFAULT_SETUP_PROCESSING_OVERHEAD = 0.008

#: Valid runtime data planes.
DATA_PLANES = ("scalar", "batched")

#: Default per-flow retention window (sequence numbers) for relay data state.
DEFAULT_SEQ_RETENTION = 1024

#: Default idle time (simulated seconds) after which relay flow-table entries
#: are garbage collected.
DEFAULT_FLOW_RETENTION_SECONDS = 900.0

#: Default pipelining quantum of the batched data plane: bursts ship in
#: chunks of this many packets per connection.  A chunk is one simulator
#: event, so events collapse by up to this factor, while chunks of one hop
#: still overlap the next hop's serialisation — keeping the stage-pipelining
#: behaviour (and therefore the throughput figures) of the per-packet path.
DEFAULT_BATCH_CHUNK = 16


def _queue_dones(
    free: float, starts: Sequence[float], durations: Sequence[float]
) -> list[float]:
    """Completion times of a FIFO queue: ``done_i = max(start_i, done_{i-1}) + dur_i``.

    Small batches run the plain recurrence; larger ones use its closed form
    ``done_i = c_i + max(free, max_{j<=i}(start_j - c_{j-1}))`` (``c`` the
    duration cumsum), which is three numpy passes instead of a Python loop.
    """
    if len(durations) < 8:
        dones: list[float] = []
        for start, duration in zip(starts, durations):
            begin = start if start > free else free
            free = begin + duration
            dones.append(free)
        return dones
    durations_arr = np.asarray(durations, dtype=float)
    starts_arr = np.asarray(starts, dtype=float)
    csum = np.cumsum(durations_arr)
    slack = np.maximum.accumulate(starts_arr - (csum - durations_arr))
    return (csum + np.maximum(slack, free)).tolist()


@dataclass
class TransmissionStats:
    """Aggregate counters maintained by the simulated network."""

    packets_sent: int = 0
    packets_dropped: int = 0
    bytes_sent: int = 0


class OverlayTransport:
    """Accounting shared by every overlay backend: connections, CPUs, failures.

    The virtual-time arithmetic (per-connection FIFO serialisation, per-node
    CPU queues, drop-on-failure, aggregate counters) lives here so the
    discrete-event backend (:class:`SimulatedOverlayNetwork`) and the asyncio
    socket backend (:class:`~repro.overlay.aio.AioOverlayNetwork`) account
    packets identically; only *how* a packet travels differs.  Subclasses
    provide ``self.sim`` (an :class:`~repro.overlay.simulator.EventSimulator`
    or a compatible clock) and the payload-carrying transmit surface.
    """

    sim: EventSimulator

    def __init__(
        self,
        network: NetworkModel,
        connection_bps: float,
        per_packet_overhead: float = DEFAULT_PER_PACKET_OVERHEAD,
    ) -> None:
        self.network = network
        self.connection_bps = connection_bps
        self.per_packet_overhead = per_packet_overhead
        self.stats = TransmissionStats()
        self._link_free_at: dict[tuple[str, str], float] = {}
        self._cpu_free_at: dict[str, float] = {}
        self._failed_at: dict[str, float] = {}

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (sockets, loops); a no-op for the sim."""

    def __enter__(self) -> "OverlayTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- payload-carrying transmit surface ----------------------------------------
    #
    # The protocol runtimes ship through these three calls only, so they run
    # unchanged on any backend.  ``deliver`` receives the delivered payload
    # objects: the simulator hands back the originals, the asyncio backend
    # hands back what it parsed off the wire.

    def transmit_packets(
        self,
        sender: str,
        receiver: str,
        packets: list[Packet],
        deliver: Callable[[list[Packet], list[float]], None],
        sender_cpu_seconds: Sequence[float] | None = None,
    ) -> None:
        raise NotImplementedError

    def transmit_blobs(
        self,
        sender: str,
        receiver: str,
        blobs: list[bytes],
        deliver: Callable[[list[bytes], list[float]], None],
        sender_cpu_seconds: Sequence[float] | None = None,
    ) -> None:
        raise NotImplementedError

    def transmit_blob(
        self,
        sender: str,
        receiver: str,
        blob: bytes,
        deliver: Callable[[bytes], None],
        sender_cpu_seconds: float = 0.0,
    ) -> None:
        raise NotImplementedError

    # -- failures ------------------------------------------------------------------

    def fail_node(self, address: str, at_time: float | None = None) -> None:
        """Kill ``address`` now or at an absolute simulated time."""
        when = self.sim.now if at_time is None else at_time
        previous = self._failed_at.get(address)
        if previous is None or when < previous:
            self._failed_at[address] = when

    def is_alive(self, address: str, at_time: float | None = None) -> bool:
        when = self.sim.now if at_time is None else at_time
        failed_at = self._failed_at.get(address)
        return failed_at is None or when < failed_at

    # -- resource accounting ----------------------------------------------------------

    def _reserve_link(self, sender: str, receiver: str, size_bytes: int) -> float:
        """Queue a packet on the (sender, receiver) connection; return send-done time."""
        key = (sender, receiver)
        start = max(self.sim.now, self._link_free_at.get(key, 0.0))
        done = start + size_bytes * 8.0 / self.connection_bps
        self._link_free_at[key] = done
        return done

    def reserve_cpu(self, address: str, work_seconds: float) -> float:
        """Queue ``work_seconds`` of CPU work on a node; return completion time."""
        start = max(self.sim.now, self._cpu_free_at.get(address, 0.0))
        done = start + work_seconds
        self._cpu_free_at[address] = done
        return done

    def reserve_cpu_sequence(
        self, address: str, starts: Sequence[float], durations: Sequence[float]
    ) -> list[float]:
        """Queue a batch of CPU work items in one pass; returns completion times.

        Item ``i`` begins no earlier than ``starts[i]`` (its packet's arrival
        instant) and no earlier than the CPU becomes free — exactly the
        arithmetic ``count`` individual :meth:`reserve_cpu` calls at those
        instants would produce, collapsed into one bookkeeping pass so a
        whole batch needs a single completion event.
        """
        if not durations:
            return []
        free = self._cpu_free_at.get(address, 0.0)
        dones = _queue_dones(free, starts, durations)
        self._cpu_free_at[address] = dones[-1]
        return dones

    # -- shared batch arithmetic --------------------------------------------------------

    def _normalise_cpus(
        self, count: int, sender_cpu_seconds: Sequence[float] | None
    ) -> list[float]:
        """One CPU cost per packet, validated."""
        if sender_cpu_seconds is None:
            return [0.0] * count
        cpus = list(sender_cpu_seconds)
        if len(cpus) != count:
            raise SimulationError(
                "transmit_batch needs one CPU cost per packet "
                f"({len(cpus)} costs for {count} packets)"
            )
        return cpus

    def _account_batch(
        self, sender: str, receiver: str, sizes: Sequence[int], cpus: Sequence[float]
    ) -> list[float]:
        """Reserve sender CPU and the connection for a burst; return arrivals.

        This is the exact per-packet arithmetic of the per-packet path — each
        packet queues on the sender CPU (its cost plus the fixed per-packet
        overhead), serialises on the (sender, receiver) connection in order,
        and arrives one propagation delay later — collapsed into one
        bookkeeping pass.  Both backends call it, so their virtual clocks and
        counters agree.
        """
        now = self.sim.now
        ready_times = self.reserve_cpu_sequence(
            sender,
            [now] * len(sizes),
            [cpu + self.per_packet_overhead for cpu in cpus],
        )
        key = (sender, receiver)
        latency = self.network.latency(sender, receiver)
        scale = 8.0 / self.connection_bps
        link_dones = _queue_dones(
            self._link_free_at.get(key, 0.0),
            ready_times,
            [size * scale for size in sizes],
        )
        self._link_free_at[key] = link_dones[-1]
        self.stats.packets_sent += len(sizes)
        self.stats.bytes_sent += sum(sizes)
        return [done + latency for done in link_dones]


class SimulatedOverlayNetwork(OverlayTransport):
    """Discrete-event transport substrate: everything runs on a virtual clock."""

    def __init__(
        self,
        network: NetworkModel,
        connection_bps: float,
        per_packet_overhead: float = DEFAULT_PER_PACKET_OVERHEAD,
        simulator: EventSimulator | None = None,
    ) -> None:
        super().__init__(network, connection_bps, per_packet_overhead)
        self.sim = EventSimulator() if simulator is None else simulator

    # -- transmission -------------------------------------------------------------------

    def transmit(
        self,
        sender: str,
        receiver: str,
        size_bytes: int,
        on_delivered: Callable[[], None],
        sender_cpu_seconds: float = 0.0,
    ) -> None:
        """Send ``size_bytes`` from ``sender`` to ``receiver``.

        The sender first spends ``sender_cpu_seconds`` of CPU (plus the fixed
        per-packet overhead), then the packet serialises onto the connection,
        propagates, and ``on_delivered`` fires at the receiver — unless either
        endpoint has failed by the relevant instant.
        """
        if not self.is_alive(sender):
            self.stats.packets_dropped += 1
            return
        cpu_done = self.reserve_cpu(
            sender, sender_cpu_seconds + self.per_packet_overhead
        )

        def start_transmission() -> None:
            if not self.is_alive(sender):
                self.stats.packets_dropped += 1
                return
            link_done = self._reserve_link(sender, receiver, size_bytes)
            arrival = link_done + self.network.latency(sender, receiver)
            self.stats.packets_sent += 1
            self.stats.bytes_sent += size_bytes

            def deliver() -> None:
                if not self.is_alive(receiver):
                    self.stats.packets_dropped += 1
                    return
                on_delivered()

            self.sim.schedule_at(arrival, deliver)

        self.sim.schedule_at(cpu_done, start_transmission)

    def transmit_batch(
        self,
        sender: str,
        receiver: str,
        sizes: Sequence[int],
        on_delivered: Callable[[list[float]], None],
        sender_cpu_seconds: Sequence[float] | None = None,
    ) -> None:
        """Send a burst of packets on one connection with one delivery event.

        Per-packet times are accounted exactly as :meth:`transmit` would:
        each packet queues on the sender CPU (its cost plus the fixed
        per-packet overhead), then serialises on the connection in order, and
        arrives one propagation delay later.  But the whole burst raises a
        *single* simulator event, fired at the last packet's arrival instant,
        and ``on_delivered`` receives every packet's individual arrival time
        so the receiver can charge its CPU faithfully.

        Two modelling simplifications relative to the per-packet path: link
        and CPU capacity are reserved when the batch is submitted (competing
        traffic submitted later queues behind the whole burst), and a sender
        failing mid-burst no longer truncates it — the batch is committed
        once submission succeeds.  Neither changes any experiment that fails
        nodes between phases, which is how churn is modelled.
        """
        sizes = list(sizes)
        if not sizes:
            return
        if not self.is_alive(sender):
            self.stats.packets_dropped += len(sizes)
            return
        cpus = self._normalise_cpus(len(sizes), sender_cpu_seconds)
        arrivals = self._account_batch(sender, receiver, sizes, cpus)

        def deliver() -> None:
            if not self.is_alive(receiver):
                self.stats.packets_dropped += len(sizes)
                return
            on_delivered(arrivals)

        self.sim.schedule_at(arrivals[-1], deliver)

    # -- payload-carrying surface (the originals are delivered directly) ---------------

    def transmit_packets(
        self,
        sender: str,
        receiver: str,
        packets: list[Packet],
        deliver: Callable[[list[Packet], list[float]], None],
        sender_cpu_seconds: Sequence[float] | None = None,
    ) -> None:
        self.transmit_batch(
            sender,
            receiver,
            [packet.size_bytes() for packet in packets],
            lambda arrivals: deliver(packets, arrivals),
            sender_cpu_seconds=sender_cpu_seconds,
        )

    def transmit_blobs(
        self,
        sender: str,
        receiver: str,
        blobs: list[bytes],
        deliver: Callable[[list[bytes], list[float]], None],
        sender_cpu_seconds: Sequence[float] | None = None,
    ) -> None:
        self.transmit_batch(
            sender,
            receiver,
            [len(blob) for blob in blobs],
            lambda arrivals: deliver(blobs, arrivals),
            sender_cpu_seconds=sender_cpu_seconds,
        )

    def transmit_blob(
        self,
        sender: str,
        receiver: str,
        blob: bytes,
        deliver: Callable[[bytes], None],
        sender_cpu_seconds: float = 0.0,
    ) -> None:
        self.transmit(
            sender,
            receiver,
            len(blob),
            lambda: deliver(blob),
            sender_cpu_seconds=sender_cpu_seconds,
        )


@dataclass
class FlowProgress:
    """Observable progress of one information-slicing flow in the simulator."""

    setup_injected_at: float = 0.0
    relay_decode_times: dict[str, float] = field(default_factory=dict)
    delivered_messages: dict[int, float] = field(default_factory=dict)
    delivered_bytes: int = 0
    first_delivery_at: float | None = None
    last_delivery_at: float | None = None

    def setup_complete_time(self, relays: list[str]) -> float | None:
        """Time at which every listed relay had decoded its routing info."""
        times = [self.relay_decode_times.get(relay) for relay in relays]
        if any(time is None for time in times):
            return None
        return max(times)


class SlicingRuntime:
    """Runs real :class:`~repro.core.relay.Relay` engines over the simulator.

    Parameters
    ----------
    substrate:
        The shared transport substrate.
    rng:
        Randomness source (currently only used to derive relay seeds).
    flush_timeout:
        Simulated seconds after which un-forwardable state is flushed
        (timeout-driven padding/regeneration, §4.4.1).
    setup_processing_overhead:
        Per-setup-packet daemon cost (see
        :data:`DEFAULT_SETUP_PROCESSING_OVERHEAD`).
    data_plane:
        ``"batched"`` (default) or ``"scalar"`` — see the module docstring.
    seq_retention:
        Per-flow retention window: when data message ``seq`` is flushed,
        relay state for sequence numbers below ``seq + 1 - seq_retention``
        (stored slices, forward and flush markers) is retired, bounding relay
        memory on long-running flows.  ``None`` disables retirement.
    flow_retention_seconds:
        Relay flow-table entries idle longer than this are garbage collected
        (the satellite of :meth:`Relay.garbage_collect
        <repro.core.relay.Relay.garbage_collect>`).  ``None`` disables.
    kernel:
        The GF(2^8) kernel every relay of this runtime codes with
        (``"numpy"``/``"compiled"``, see :mod:`repro.core.gf_kernels`);
        ``None`` follows the active kernel.  Delivered bytes
        and stats are bit-identical across kernels by construction.
    """

    def __init__(
        self,
        substrate: OverlayTransport,
        rng: np.random.Generator | None = None,
        flush_timeout: float = 2.0,
        setup_processing_overhead: float = DEFAULT_SETUP_PROCESSING_OVERHEAD,
        data_plane: str = "batched",
        seq_retention: int | None = DEFAULT_SEQ_RETENTION,
        flow_retention_seconds: float | None = DEFAULT_FLOW_RETENTION_SECONDS,
        batch_chunk: int = DEFAULT_BATCH_CHUNK,
        kernel: str | None = None,
    ) -> None:
        if data_plane not in DATA_PLANES:
            raise SimulationError(
                f"unknown data plane {data_plane!r} (known: {DATA_PLANES})"
            )
        if seq_retention is not None and seq_retention < 1:
            raise SimulationError(f"seq_retention must be >= 1, got {seq_retention}")
        if batch_chunk < 1:
            raise SimulationError(f"batch_chunk must be >= 1, got {batch_chunk}")
        self.substrate = substrate
        self.rng = np.random.default_rng() if rng is None else rng
        self.flush_timeout = flush_timeout
        self.setup_processing_overhead = setup_processing_overhead
        self.data_plane = data_plane
        self.seq_retention = seq_retention
        self.flow_retention_seconds = flow_retention_seconds
        self.batch_chunk = batch_chunk
        self.field = resolve_field(kernel=kernel)
        self.relays: dict[str, Relay] = {}
        self.progress: dict[int, FlowProgress] = {}
        self._flow_setups: dict[int, FlowSetup] = {}
        self._flows_by_id: dict[int, tuple[FlowSetup, FlowProgress]] = {}

    @property
    def sim(self) -> EventSimulator:
        return self.substrate.sim

    def add_relay(self, address: str) -> Relay:
        if address not in self.relays:
            seed = abs(hash(address)) % (2**32)
            # Data-plane names deliberately match the relay engine names, so
            # a relay decodes the way its runtime ships.
            self.relays[address] = Relay(
                address,
                rng=np.random.default_rng(seed),
                engine=self.data_plane,
                field=self.field,
            )
        return self.relays[address]

    # -- driving a flow ------------------------------------------------------------------

    def start_flow(self, source: Source, flow: FlowSetup) -> FlowProgress:
        """Inject a flow's setup packets and arm the per-relay flush timers."""
        for relay_address in flow.graph.relays:
            self.add_relay(relay_address)
        progress = FlowProgress(setup_injected_at=self.sim.now)
        key = id(flow)
        self.progress[key] = progress
        self._flow_setups[key] = flow
        for flow_id in flow.plan.flow_ids.values():
            self._flows_by_id[flow_id] = (flow, progress)
        if self.data_plane == "batched":
            for packet in flow.setup_packets:
                self._transmit_packets(
                    packet.source_address,
                    packet.destination_address,
                    [packet],
                    [0.0],
                )
        else:
            for packet in flow.setup_packets:
                self._send_packet(packet, flow, progress, sender_cpu=0.0)
        # Timeout-driven flush so churn cannot wedge the setup forever.
        self.sim.schedule(self.flush_timeout, lambda: self._flush_setup(flow, progress))
        return progress

    def send_message(
        self, source: Source, flow: FlowSetup, message: bytes
    ) -> None:
        """Code and inject one data message from the source stage."""
        if self.data_plane == "batched":
            self.send_messages(source, flow, [message])
            return
        packets = source.make_data_packets(flow, message)
        progress = self.progress[id(flow)]
        source_resources = self.substrate.network.resources(source.address)
        per_packet_cpu = source_resources.coding_time(
            max(len(message) // max(flow.d, 1), 1), flow.d
        )
        for packet in packets:
            self._send_packet(packet, flow, progress, sender_cpu=per_packet_cpu)
        seq = packets[0].seq
        self.sim.schedule(
            self.flush_timeout, lambda: self._flush_data(flow, progress, seq)
        )

    def send_messages(
        self, source: Source, flow: FlowSetup, messages: list[bytes]
    ) -> None:
        """Batched :meth:`send_message`: code and ship a burst in one pass.

        The coding happens through
        :meth:`~repro.core.source.Source.make_data_packets_batch`, so the
        GF(2^8) work for the whole burst is a single batched kernel call; the
        per-message CPU *cost model* charged to the source is unchanged, so
        simulated timings stay comparable with the per-message path.  On the
        batched data plane the burst additionally ships as one
        :meth:`~SimulatedOverlayNetwork.transmit_batch` per connection and is
        covered by a single flush timer.
        """
        if not messages:
            return
        packet_batches = source.make_data_packets_batch(flow, messages)
        progress = self.progress[id(flow)]
        source_resources = self.substrate.network.resources(source.address)
        if self.data_plane == "scalar":
            for message, packets in zip(messages, packet_batches):
                per_packet_cpu = source_resources.coding_time(
                    max(len(message) // max(flow.d, 1), 1), flow.d
                )
                for packet in packets:
                    self._send_packet(packet, flow, progress, sender_cpu=per_packet_cpu)
                seq = packets[0].seq
                self.sim.schedule(
                    self.flush_timeout,
                    lambda seq=seq: self._flush_data(flow, progress, seq),
                )
            return
        per_connection: dict[tuple[str, str], tuple[list[Packet], list[float]]] = {}
        for message, packets in zip(messages, packet_batches):
            per_packet_cpu = source_resources.coding_time(
                max(len(message) // max(flow.d, 1), 1), flow.d
            )
            for packet in packets:
                key = (packet.source_address, packet.destination_address)
                entry = per_connection.setdefault(key, ([], []))
                entry[0].append(packet)
                entry[1].append(per_packet_cpu)
        for (sender, receiver), (packets, cpus) in per_connection.items():
            self._transmit_packets(sender, receiver, packets, cpus)
        seqs = [packets[0].seq for packets in packet_batches]
        self.sim.schedule(
            self.flush_timeout,
            lambda: self._flush_data_burst(flow, progress, seqs),
        )

    # -- batched data plane ----------------------------------------------------------------

    def _transmit_packets(
        self,
        sender: str,
        receiver: str,
        packets: list[Packet],
        sender_cpus: list[float],
    ) -> None:
        """Ship a same-connection burst; deliveries coalesce per receiver.

        Bursts larger than ``batch_chunk`` ship as consecutive chunks, each a
        single delivery event, so one hop's chunks overlap the next hop's
        serialisation (stage pipelining) instead of the whole burst marching
        stage by stage.
        """
        chunk = self.batch_chunk
        for start in range(0, len(packets), chunk):
            chunk_packets = packets[start : start + chunk]
            chunk_cpus = sender_cpus[start : start + chunk]

            def on_delivered(delivered: list[Packet], arrivals: list[float]) -> None:
                self.sim.schedule_keyed(
                    ("rx", receiver),
                    self.sim.now,
                    (delivered, arrivals),
                    lambda items: self._process_inbox(receiver, items),
                )

            self.substrate.transmit_packets(
                sender,
                receiver,
                chunk_packets,
                on_delivered,
                sender_cpu_seconds=chunk_cpus,
            )

    def _process_inbox(
        self, receiver: str, items: list[tuple[list[Packet], list[float]]]
    ) -> None:
        """Charge receiver CPU for every coalesced packet; then process once."""
        relay = self.relays.get(receiver)
        if relay is None:
            return
        packets: list[Packet] = []
        arrivals: list[float] = []
        for batch_packets, batch_arrivals in items:
            packets.extend(batch_packets)
            arrivals.extend(batch_arrivals)
        resources = self.substrate.network.resources(receiver)
        durations = self._batch_durations(packets, resources)
        dones = self.substrate.reserve_cpu_sequence(receiver, arrivals, durations)
        self.sim.schedule_at(dones[-1], lambda: self._handle_batch(receiver, packets))

    def _batch_durations(self, packets: list[Packet], resources) -> list[float]:
        """Per-packet CPU durations; one cost computation for a uniform batch.

        Uniformity is judged on what the cost actually depends on — kind,
        split factor and payload bytes (the single-slice steady state makes
        the latter one attribute read per packet); anything else takes the
        per-packet path.
        """
        first = packets[0]
        kind0 = first.kind
        d0 = first.d
        slices0 = first.slices
        if len(slices0) == 1:
            payload0 = slices0[0].payload.shape[0]
            uniform = all(
                p.kind is kind0
                and p.d == d0
                and len(p.slices) == 1
                and p.slices[0].payload.shape[0] == payload0
                for p in packets
            )
            if uniform:
                cost = self._packet_cpu_cost(first, resources)
                return [cost] * len(packets)
        return [self._packet_cpu_cost(packet, resources) for packet in packets]

    def _packet_cpu_cost(self, packet: Packet, resources) -> float:
        slices = packet.slices
        if len(slices) == 1:
            payload_bytes = slices[0].payload.shape[0]
        else:
            payload_bytes = sum(block.payload.shape[0] for block in slices)
        cost = resources.coding_time(payload_bytes, packet.d)
        if packet.kind == PacketKind.SETUP:
            cost += self.setup_processing_overhead * resources.load_factor
        return cost + self.substrate.per_packet_overhead

    def _handle_batch(self, receiver: str, packets: list[Packet]) -> None:
        relay = self.relays.get(receiver)
        if relay is None:
            return
        tracked: dict[int, tuple[FlowSetup, FlowProgress, bool]] = {}
        for packet in packets:
            if packet.flow_id in tracked:
                continue
            entry = self._flows_by_id.get(packet.flow_id)
            if entry is None:
                continue
            flow, progress = entry
            tracked[packet.flow_id] = (
                flow,
                progress,
                self._relay_decoded(relay, flow, receiver),
            )
        outputs = relay.handle_packets(packets, now=self.sim.now)
        for flow, progress, decoded_before in tracked.values():
            if not decoded_before and self._relay_decoded(relay, flow, receiver):
                progress.relay_decode_times.setdefault(receiver, self.sim.now)
            self._record_delivery(relay, flow, progress, receiver)
        self._dispatch_outputs(receiver, outputs)

    def _dispatch_outputs(self, sender: str, outputs: list[Packet]) -> None:
        if not outputs:
            return
        per_receiver: dict[str, list[Packet]] = {}
        for packet in outputs:
            per_receiver.setdefault(packet.destination_address, []).append(packet)
        for receiver, packets in per_receiver.items():
            self._transmit_packets(sender, receiver, packets, [0.0] * len(packets))

    # -- scalar (per-packet) data plane ------------------------------------------------------

    def _send_packet(
        self,
        packet: Packet,
        flow: FlowSetup,
        progress: FlowProgress,
        sender_cpu: float,
    ) -> None:
        receiver = packet.destination_address

        def deliver() -> None:
            self._deliver_packet(packet, flow, progress)

        self.substrate.transmit(
            sender=packet.source_address,
            receiver=receiver,
            size_bytes=packet.size_bytes(),
            on_delivered=deliver,
            sender_cpu_seconds=sender_cpu,
        )

    def _deliver_packet(
        self, packet: Packet, flow: FlowSetup, progress: FlowProgress
    ) -> None:
        receiver = packet.destination_address
        relay = self.relays.get(receiver)
        if relay is None:
            return
        resources = self.substrate.network.resources(receiver)
        payload_bytes = sum(block.payload.shape[0] for block in packet.slices)
        cpu = resources.coding_time(payload_bytes, packet.d)
        if packet.kind == PacketKind.SETUP:
            cpu += self.setup_processing_overhead * resources.load_factor
        done = self.substrate.reserve_cpu(
            receiver, cpu + self.substrate.per_packet_overhead
        )

        def process() -> None:
            before_decoded = self._relay_decoded(relay, flow, receiver)
            outputs = relay.handle_packet(packet, now=self.sim.now)
            if not before_decoded and self._relay_decoded(relay, flow, receiver):
                progress.relay_decode_times.setdefault(receiver, self.sim.now)
            self._record_delivery(relay, flow, progress, receiver)
            for output in outputs:
                self._send_packet(output, flow, progress, sender_cpu=0.0)

        self.sim.schedule_at(done, process)

    # -- shared internals ---------------------------------------------------------------------

    def _relay_decoded(self, relay: Relay, flow: FlowSetup, address: str) -> bool:
        flow_id = flow.plan.flow_ids.get(address)
        state = relay.flows.get(flow_id) if flow_id is not None else None
        return bool(state and state.decoded)

    def _record_delivery(
        self, relay: Relay, flow: FlowSetup, progress: FlowProgress, address: str
    ) -> None:
        if address != flow.destination:
            return
        flow_id = flow.plan.flow_ids[address]
        state = relay.flows.get(flow_id)
        if state is None or len(state.delivered) == len(progress.delivered_messages):
            return
        for seq, message in state.delivered.items():
            if seq not in progress.delivered_messages:
                progress.delivered_messages[seq] = self.sim.now
                progress.delivered_bytes += len(message)
                if progress.first_delivery_at is None:
                    progress.first_delivery_at = self.sim.now
                progress.last_delivery_at = self.sim.now

    def _flush_setup(self, flow: FlowSetup, progress: FlowProgress) -> None:
        for relay_address in flow.graph.relays:
            relay = self.relays.get(relay_address)
            if relay is None or not self.substrate.is_alive(relay_address):
                continue
            flow_id = flow.plan.flow_ids[relay_address]
            outputs = relay.flush_setup(flow_id)
            if self.data_plane == "batched":
                self._dispatch_outputs(relay_address, outputs)
            else:
                for output in outputs:
                    self._send_packet(output, flow, progress, sender_cpu=0.0)

    def _flush_data_burst(
        self, flow: FlowSetup, progress: FlowProgress, seqs: list[int]
    ) -> None:
        """Flush a whole burst: per relay, all of its sequence numbers at once.

        Equivalent to per-seq flushes (each relay draws from its own RNG in
        the same per-relay order), but one relay lookup, one output dispatch
        and one delivery scan per relay instead of one per (relay, seq).
        """
        for relay_address in flow.graph.relays:
            relay = self.relays.get(relay_address)
            if relay is None or not self.substrate.is_alive(relay_address):
                continue
            flow_id = flow.plan.flow_ids[relay_address]
            outputs = relay.flush_data_many(flow_id, seqs)
            self._dispatch_outputs(relay_address, outputs)
            self._record_delivery(relay, flow, progress, relay_address)
        if seqs:
            self._retire(flow, max(seqs))

    def _flush_data(self, flow: FlowSetup, progress: FlowProgress, seq: int) -> None:
        for relay_address in flow.graph.relays:
            relay = self.relays.get(relay_address)
            if relay is None or not self.substrate.is_alive(relay_address):
                continue
            flow_id = flow.plan.flow_ids[relay_address]
            outputs = relay.flush_data(flow_id, seq)
            if self.data_plane == "batched":
                self._dispatch_outputs(relay_address, outputs)
            else:
                for output in outputs:
                    self._send_packet(output, flow, progress, sender_cpu=0.0)
            self._record_delivery(relay, flow, progress, relay_address)
        self._retire(flow, seq)

    def _retire(self, flow: FlowSetup, seq: int) -> None:
        """Apply the retention windows after data message ``seq`` was flushed."""
        if self.seq_retention is not None:
            horizon = seq + 1 - self.seq_retention
            if horizon > 0:
                for relay_address in flow.graph.relays:
                    relay = self.relays.get(relay_address)
                    if relay is None:
                        continue
                    relay.retire_data(flow.plan.flow_ids[relay_address], horizon)
        if self.flow_retention_seconds is not None:
            before = self.sim.now - self.flow_retention_seconds
            if before > 0:
                for relay_address in flow.graph.relays:
                    relay = self.relays.get(relay_address)
                    if relay is not None:
                        relay.garbage_collect(before)
