"""Asyncio socket overlay backend: the same transport surface, real TCP.

The discrete-event backend (:class:`~repro.overlay.node.SimulatedOverlayNetwork`)
delivers packets by invoking callbacks on a virtual clock.  This module
implements the *same* transport surface — :meth:`transmit_packets` /
:meth:`transmit_blobs` / :meth:`transmit_blob`, per-node CPU accounting,
keyed event coalescing — over real TCP streams (loopback by default, any
interface via ``bind_host``), so :class:`~repro.overlay.node.SlicingRuntime`
and the onion runtimes in :mod:`repro.baselines.runtime` run unchanged on
either backend.  With ``transport="secure"`` every connection opens with the
:mod:`repro.net` Noise-style handshake and each frame rides one AEAD
message; because the encryption sits *below* the framing, delivered
payloads — and the parity artifacts built from them — are bit-identical to
a plaintext run.

How the two clocks relate
-------------------------
Virtual time still exists here: every burst is accounted with the exact
arithmetic of the simulator (sender CPU queue, per-connection FIFO
serialisation, propagation delay — see
:meth:`~repro.overlay.node.OverlayTransport._account_batch`), and the
resulting virtual arrival instants ride along with the frames.  What changes
is *transport and scheduling*: frames really are serialised
(length-prefixed :meth:`Packet.to_bytes <repro.core.packet.Packet.to_bytes>`),
really cross a socket, and are parsed back on the receiving side, whose
relay engines are driven from that address's own asyncio reader task.

Timer events (CPU completions, flush timeouts) are kept on a virtual-time
heap and fired in virtual order whenever the data plane is *quiescent* (no
frame in flight, nothing unread).  On profiles where the simulator's flush
timers fire after the transfer has settled — the LAN figures — this makes
delivered plaintexts and relay counters bit-identical to the simulator;
wall-clock-dependent timing fields are not comparable by value.  See
``docs/ARCHITECTURE.md`` ("Overlay backends") for the exact contract.

Wire format
-----------
Every message on a connection is a *frame*: a 4-byte big-endian length
followed by that many payload bytes (:func:`encode_frame` /
:func:`decode_frames`).  A connection opens with a hello frame
(``sender\\x00receiver``), then carries batches: one batch-header frame
(``>QI``: batch id, frame count) followed by the batch's payload frames —
serialised :class:`~repro.core.packet.Packet` bytes for the slicing data
plane, opaque onion cells for the baselines.  Frames larger than
:data:`MAX_FRAME_BYTES` are rejected, as are truncated frames.

The transmit path is zero-copy: instead of building one ``bytes`` per frame
(length prefix + payload copy), a batch packs its header frame and every
4-byte length prefix into a reused ``bytearray`` and hands the writer an
interleaved sequence of :class:`memoryview` slices and the payload ``bytes``
objects themselves via ``writelines`` — the payloads are never copied in
Python, and the per-batch allocation is one pooled buffer instead of
``n + 1`` throwaway ``bytes``.  The bytes on the wire are identical to the
``encode_frame`` reference (asserted in ``tests/test_aio_backend.py``).
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import struct
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.errors import PacketFormatError, SimulationError
from ..core.packet import Packet
from ..net import TransportCredential
from ..net.channel import accept_secure_aio, connect_secure_aio
from .network import NetworkModel
from .node import DEFAULT_PER_PACKET_OVERHEAD, OverlayTransport
from .simulator import EventSimulator

#: Length prefix of every frame on the wire.
FRAME_HEADER = struct.Struct(">I")

#: Batch header payload: (batch id, number of payload frames that follow).
BATCH_HEADER = struct.Struct(">QI")

#: Upper bound on a single frame's payload; anything larger is a protocol
#: error (slicing packets are a few KiB even at large split factors).
MAX_FRAME_BYTES = 1 << 22

#: Bytes of a batch's leading frame: length prefix plus the batch header.
_BATCH_PREFIX = FRAME_HEADER.size + BATCH_HEADER.size

#: Wall-clock seconds the backend may sit non-quiescent with no delivery
#: progress before it declares itself wedged instead of hanging CI.
DEFAULT_STALL_TIMEOUT = 60.0


# -- framing ------------------------------------------------------------------------


def encode_frame(payload: bytes) -> bytes:
    """Length-prefix ``payload`` for the wire."""
    if len(payload) > MAX_FRAME_BYTES:
        raise PacketFormatError(
            f"frame payload of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return FRAME_HEADER.pack(len(payload)) + payload


def decode_frames(data: bytes) -> list[bytes]:
    """Split a byte string into exact frames; reject truncated or oversized ones.

    The incremental socket path reads frame by frame; this strict batch form
    is the reference the property tests exercise: the buffer must contain a
    whole number of well-formed frames.
    """
    frames: list[bytes] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < FRAME_HEADER.size:
            raise PacketFormatError("truncated frame header")
        (length,) = FRAME_HEADER.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            raise PacketFormatError(
                f"frame declares {length} bytes, over the {MAX_FRAME_BYTES}-byte limit"
            )
        offset += FRAME_HEADER.size
        if total - offset < length:
            raise PacketFormatError("truncated frame payload")
        frames.append(data[offset : offset + length])
        offset += length
    return frames


def pack_batch(
    batch_id: int, frames: list[bytes], buffer: bytearray
) -> list[bytes | memoryview]:
    """Assemble a batch's wire chunks without copying any payload.

    Packs the batch-header frame and every frame's 4-byte length prefix into
    ``buffer`` (grown in place if needed, so callers can pool it across
    batches) and returns the chunk sequence for ``StreamWriter.writelines``:
    memoryview slices of ``buffer`` interleaved with the payload ``bytes``
    objects themselves.  Joining the chunks yields exactly
    ``encode_frame(BATCH_HEADER.pack(batch_id, len(frames)))`` followed by
    ``encode_frame(frame)`` for each frame — the reference the property
    tests compare against.

    Callers must drop the returned memoryviews before reusing or growing
    ``buffer`` (a bytearray with live exports cannot resize).
    """
    for frame in frames:
        if len(frame) > MAX_FRAME_BYTES:
            raise PacketFormatError(
                f"frame payload of {len(frame)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
    needed = _BATCH_PREFIX + FRAME_HEADER.size * len(frames)
    if len(buffer) < needed:
        buffer.extend(bytes(needed - len(buffer)))
    FRAME_HEADER.pack_into(buffer, 0, BATCH_HEADER.size)
    BATCH_HEADER.pack_into(buffer, FRAME_HEADER.size, batch_id, len(frames))
    view = memoryview(buffer)
    chunks: list[bytes | memoryview] = [view[:_BATCH_PREFIX]]
    offset = _BATCH_PREFIX
    for frame in frames:
        FRAME_HEADER.pack_into(buffer, offset, len(frame))
        chunks.append(view[offset : offset + FRAME_HEADER.size])
        chunks.append(frame)
        offset += FRAME_HEADER.size
    return chunks


async def read_frame(reader: asyncio.StreamReader, strict: bool = False) -> bytes | None:
    """Read one frame from a stream; ``None`` on a clean EOF between frames.

    With ``strict`` (mid-batch reads, where a frame *must* follow) EOF is a
    protocol error too.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial or strict:
            raise PacketFormatError("truncated frame header") from None
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise PacketFormatError(
            f"frame declares {length} bytes, over the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise PacketFormatError("truncated frame payload") from None


# -- the virtual clock --------------------------------------------------------------


class AioClock(EventSimulator):
    """The simulator's scheduling surface, drained by the asyncio backend.

    ``schedule`` / ``schedule_at`` / ``schedule_keyed`` behave exactly as on
    :class:`~repro.overlay.simulator.EventSimulator` (same heap, same
    deterministic tie-breaking); only :meth:`run` differs — it hands control
    to the owning :class:`AioOverlayNetwork`, which interleaves heap events
    with real socket traffic.
    """

    def __init__(self, substrate: "AioOverlayNetwork") -> None:
        super().__init__()
        self._substrate = substrate

    def advance(self, time: float) -> None:
        """Move the virtual clock forward (never backwards)."""
        if time > self.now:
            self.now = time

    def next_event(self, until: float | None = None):
        """Pop the earliest live event, or ``None`` (heap drained / past ``until``)."""
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                return None
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            return event
        return None

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        return self._substrate.drive(until=until, max_events=max_events)


@dataclass
class _PendingBatch:
    """Sender-side record of a batch in flight, resolved when frames land."""

    kind: str  # "packets" | "blobs" | "blob"
    deliver: Callable
    arrivals: list[float]
    submitted_at: float


# -- the backend --------------------------------------------------------------------


class AioOverlayNetwork(OverlayTransport):
    """Overlay transport over asyncio TCP streams on localhost.

    Parameters
    ----------
    network, connection_bps, per_packet_overhead:
        Same meaning as on the simulated backend; they feed the shared
        virtual-time accounting.
    pace:
        Wall-clock seconds per *virtual* second of link delay: each batch's
        delivery is delayed by ``pace`` times its virtual (serialisation +
        propagation) span, so the per-link shaping of a
        :class:`~repro.overlay.profiles.OverlayProfile` is mirrored in real
        time.  The default 0.0 delivers as fast as the sockets allow.
    stall_timeout:
        Wall-clock watchdog: if the data plane stops making progress for this
        long while work is outstanding, :meth:`drive` raises instead of
        hanging.
    bind_host:
        Interface the per-address servers bind and connections dial
        (default ``127.0.0.1``; any resolvable address works — all overlay
        endpoints live in this process, so host and dial address coincide).
    transport:
        ``"plain"`` (default) or ``"secure"`` — the latter runs the
        :mod:`repro.net` handshake per connection and AEAD-protects every
        frame.  Delivered payloads are bit-identical either way.
    credential:
        Static identity and allowlist for the secure transport; defaults to
        a per-backend ephemeral credential (every endpoint shares this
        process, so one self-trusting keypair covers the mesh).
    """

    def __init__(
        self,
        network: NetworkModel,
        connection_bps: float,
        per_packet_overhead: float = DEFAULT_PER_PACKET_OVERHEAD,
        pace: float = 0.0,
        stall_timeout: float = DEFAULT_STALL_TIMEOUT,
        bind_host: str = "127.0.0.1",
        transport: str = "plain",
        credential: TransportCredential | None = None,
    ) -> None:
        super().__init__(network, connection_bps, per_packet_overhead)
        if pace < 0:
            raise SimulationError(f"pace must be >= 0, got {pace}")
        if transport not in ("plain", "secure"):
            raise SimulationError(
                f"unknown transport {transport!r} (supported: plain, secure)"
            )
        self.pace = pace
        self.stall_timeout = stall_timeout
        self.bind_host = bind_host
        self.transport = transport
        if transport == "secure" and credential is None:
            credential = TransportCredential.ephemeral()
        self.credential = credential
        self.sim = AioClock(self)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server_tasks: dict[str, asyncio.Task] = {}
        self._writer_tasks: dict[tuple[str, str], asyncio.Task] = {}
        self._send_tasks: set[asyncio.Task] = set()
        self._handler_tasks: set[asyncio.Task] = set()
        self._handler_writers: set[asyncio.StreamWriter] = set()
        self._pending: dict[int, _PendingBatch] = {}
        self._outbox: list[tuple[str, str, int, list[bytes]]] = []
        #: Pool of prefix buffers for pack_batch: concurrent sends each pop
        #: one, so a buffer is never shared by two in-flight batches.
        self._prefix_buffers: list[bytearray] = []
        self._inflight = 0
        self._pacing = 0
        self._idle = asyncio.Event()
        self._failure: BaseException | None = None
        self._batch_ids = itertools.count(1)
        self._closed = False

    # -- payload-carrying transmit surface ----------------------------------------

    def transmit_packets(
        self,
        sender: str,
        receiver: str,
        packets: list[Packet],
        deliver: Callable[[list[Packet], list[float]], None],
        sender_cpu_seconds: Sequence[float] | None = None,
    ) -> None:
        self._submit(
            sender,
            receiver,
            [packet.to_bytes() for packet in packets],
            [packet.size_bytes() for packet in packets],
            self._normalise_cpus(len(packets), sender_cpu_seconds),
            kind="packets",
            deliver=deliver,
        )

    def transmit_blobs(
        self,
        sender: str,
        receiver: str,
        blobs: list[bytes],
        deliver: Callable[[list[bytes], list[float]], None],
        sender_cpu_seconds: Sequence[float] | None = None,
    ) -> None:
        self._submit(
            sender,
            receiver,
            list(blobs),
            [len(blob) for blob in blobs],
            self._normalise_cpus(len(blobs), sender_cpu_seconds),
            kind="blobs",
            deliver=deliver,
        )

    def transmit_blob(
        self,
        sender: str,
        receiver: str,
        blob: bytes,
        deliver: Callable[[bytes], None],
        sender_cpu_seconds: float = 0.0,
    ) -> None:
        self._submit(
            sender,
            receiver,
            [blob],
            [len(blob)],
            [sender_cpu_seconds],
            kind="blob",
            deliver=deliver,
        )

    # The size-only callback API cannot cross a real socket: there is no
    # payload to frame.  The batched data plane and the baseline runtimes all
    # ship through the payload-carrying surface instead.

    def transmit(self, *args, **kwargs) -> None:
        raise SimulationError(
            "the aio backend has no size-only transmit(); use the payload-carrying "
            "surface (for SlicingRuntime this means data_plane='batched')"
        )

    def transmit_batch(self, *args, **kwargs) -> None:
        raise SimulationError(
            "the aio backend has no size-only transmit_batch(); use transmit_packets()/"
            "transmit_blobs() (for SlicingRuntime this means data_plane='batched')"
        )

    def _submit(
        self,
        sender: str,
        receiver: str,
        frames: list[bytes],
        sizes: list[int],
        cpus: list[float],
        kind: str,
        deliver: Callable,
    ) -> None:
        if self._closed:
            raise SimulationError("aio backend is closed")
        if not frames:
            return
        if not self.is_alive(sender):
            self.stats.packets_dropped += len(frames)
            return
        arrivals = self._account_batch(sender, receiver, sizes, cpus)
        batch_id = next(self._batch_ids)
        self._pending[batch_id] = _PendingBatch(
            kind=kind, deliver=deliver, arrivals=arrivals, submitted_at=self.sim.now
        )
        self._outbox.append((sender, receiver, batch_id, frames))
        self._inflight += 1

    # -- driving ------------------------------------------------------------------

    def drive(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Drain the data plane and the timer heap; returns the virtual time.

        This is what ``substrate.sim.run()`` resolves to on this backend:
        socket traffic is pumped until quiescent, then the earliest pending
        timer (CPU completion, flush timeout) fires in virtual order, and the
        cycle repeats until nothing is left.
        """
        loop = self._ensure_loop()
        if loop.is_running():
            raise SimulationError("drive() re-entered from within the event loop")
        return loop.run_until_complete(self._drain(until, max_events))

    async def _drain(self, until: float | None, max_events: int) -> float:
        clock = self.sim
        processed = 0
        while True:
            await self._quiesce()
            event = clock.next_event(until)
            if event is None:
                break
            processed += 1
            if processed > max_events:
                raise SimulationError("event budget exceeded; possible livelock")
            clock.advance(event.time)
            clock.events_processed += 1
            event.callback()
        if until is not None:
            clock.advance(until)
        return clock.now

    async def _quiesce(self) -> None:
        """Wait until no frame is in flight and nothing is queued to send."""
        while True:
            if self._failure is not None:
                failure, self._failure = self._failure, None
                raise failure
            if self._outbox:
                self._flush_outbox()
            if self._inflight == 0 and not self._outbox:
                return
            self._idle.clear()
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=self.stall_timeout)
            except asyncio.TimeoutError:
                if self._pacing:
                    continue  # deliveries are sleeping in pace shaping, not wedged
                raise SimulationError(
                    f"aio backend stalled: {self._inflight} batch(es) in flight made "
                    f"no progress for {self.stall_timeout}s"
                ) from None

    def _flush_outbox(self) -> None:
        outbox, self._outbox = self._outbox, []
        for sender, receiver, batch_id, frames in outbox:
            task = self._loop.create_task(
                self._send_batch(sender, receiver, batch_id, frames)
            )
            self._send_tasks.add(task)
            task.add_done_callback(self._send_tasks.discard)

    # -- sender side --------------------------------------------------------------

    async def _send_batch(
        self, sender: str, receiver: str, batch_id: int, frames: list[bytes]
    ) -> None:
        try:
            writer, session = await self._connection(sender, receiver)
            if session is not None:
                # Secure path: one AEAD message per frame, encrypted and
                # handed to the transport in a single synchronous block so
                # the cipher's nonce order always matches wire order even
                # with several batches in flight on one connection.
                chunks = [
                    session.encrypt_frame(BATCH_HEADER.pack(batch_id, len(frames)))
                ]
                chunks.extend(session.encrypt_frame(frame) for frame in frames)
                writer.writelines(chunks)
                await writer.drain()
                return
            buffer = (
                self._prefix_buffers.pop() if self._prefix_buffers else bytearray()
            )
            handed_to_transport = False
            try:
                chunks = pack_batch(batch_id, frames, buffer)
                # One writelines per batch: the transport joins/queues the
                # chunks itself, so payload bytes are never copied at the
                # Python level and frame writes stay contiguous
                # (per-connection FIFO intact).
                handed_to_transport = True
                writer.writelines(chunks)
                del chunks  # release our own memoryview exports
                await writer.drain()
            finally:
                # drain() only waits for the write buffer to fall below the
                # high-water mark — the transport may still hold memoryviews
                # of `buffer` queued for send.  Reusing it then would
                # pack_into over unsent wire bytes (or BufferError on
                # extend), so only pool it once the transport has flushed
                # everything; otherwise drop it and let the next batch
                # allocate fresh.
                if not handed_to_transport or (
                    writer.transport.get_write_buffer_size() == 0
                ):
                    self._prefix_buffers.append(buffer)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: B036 - must not strand _quiesce
            self._fail(exc)

    async def _connection(self, sender: str, receiver: str):
        key = (sender, receiver)
        task = self._writer_tasks.get(key)
        if task is None:
            # Memoised as a task so concurrent batches for a new connection
            # share one dial; TCP then keeps per-connection FIFO order, like
            # the simulator's per-connection link queue.
            task = self._loop.create_task(self._open_connection(sender, receiver))
            self._writer_tasks[key] = task
        return await task

    async def _open_connection(self, sender: str, receiver: str):
        """Dial ``receiver``'s server; returns ``(writer, session | None)``."""
        server = await self._ensure_server(receiver)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection(self.bind_host, port)
        hello = f"{sender}\x00{receiver}".encode()
        if self.transport == "secure":
            channel = await connect_secure_aio(
                reader, writer, self.credential.keypair, self.credential.remote_public
            )
            writer.write(channel.session.encrypt_frame(hello))
            await writer.drain()
            return writer, channel.session
        writer.write(encode_frame(hello))
        await writer.drain()
        return writer, None

    async def _ensure_server(self, address: str):
        # Memoised as a task (like _connection): two senders dialling the
        # same receiver concurrently must share one listening server, not
        # race start_server and leak the loser.
        task = self._server_tasks.get(address)
        if task is None:
            task = self._loop.create_task(
                asyncio.start_server(
                    self._handle_connection, host=self.bind_host, port=0
                )
            )
            self._server_tasks[address] = task
        return await task

    # -- receiver side ------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One relay-side task per inbound connection: parse frames, deliver."""
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        self._handler_writers.add(writer)
        try:
            if self.transport == "secure":
                channel = await accept_secure_aio(
                    reader, writer, self.credential.keypair, self.credential.authorized
                )
                recv = channel.recv_frame
            else:

                async def recv(strict: bool = False) -> bytes | None:
                    return await read_frame(reader, strict=strict)

            hello = await recv()
            if hello is None:
                return
            sender, _, receiver = hello.decode("utf-8").partition("\x00")
            while True:
                header = await recv()
                if header is None:
                    break
                batch_id, count = BATCH_HEADER.unpack(header)
                frames = []
                for _ in range(count):
                    frame = await recv()
                    if frame is None:
                        raise PacketFormatError("truncated frame header")
                    frames.append(frame)
                batch = self._pending.pop(batch_id)
                await self._deliver_batch(sender, receiver, frames, batch)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: B036 - must not strand _quiesce
            self._fail(exc)
        finally:
            self._handler_writers.discard(writer)
            writer.close()

    async def _deliver_batch(
        self, sender: str, receiver: str, frames: list[bytes], batch: _PendingBatch
    ) -> None:
        if self.pace:
            delay = max(0.0, batch.arrivals[-1] - batch.submitted_at) * self.pace
            if delay:
                # A paced sleep is progress, not a stall — _quiesce's
                # watchdog must keep waiting through it.
                self._pacing += 1
                try:
                    await asyncio.sleep(delay)
                finally:
                    self._pacing -= 1
        try:
            # The virtual clock reaches the arrival instant whether or not
            # the receiver is still alive — exactly like the simulator,
            # whose deliver event advances `now` before the is_alive check.
            self.sim.advance(batch.arrivals[-1])
            if not self.is_alive(receiver):
                self.stats.packets_dropped += len(frames)
            else:
                if batch.kind == "packets":
                    packets = [
                        Packet.from_bytes(
                            frame, source_address=sender, destination_address=receiver
                        )
                        for frame in frames
                    ]
                    batch.deliver(packets, batch.arrivals)
                elif batch.kind == "blobs":
                    batch.deliver(frames, batch.arrivals)
                else:
                    batch.deliver(frames[0])
        finally:
            self._inflight -= 1
            if self._outbox:
                # The delivery callback transmitted; keep the plane moving.
                self._flush_outbox()
            if self._inflight == 0 and not self._outbox:
                self._idle.set()

    def _fail(self, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = exc
        self._idle.set()

    # -- lifecycle ----------------------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._closed:
            raise SimulationError("aio backend is closed")
        if self._loop is None:
            self._loop = asyncio.new_event_loop()
        return self._loop

    def close(self) -> None:
        """Graceful teardown: close every stream, server and the loop."""
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        self._loop = None
        if loop is None or loop.is_closed():
            return
        try:
            loop.run_until_complete(self._shutdown())
        finally:
            loop.close()

    async def _shutdown(self) -> None:
        cancelled: list[asyncio.Task] = []
        for task in list(self._send_tasks):
            task.cancel()
            cancelled.append(task)
        writers: list[asyncio.StreamWriter] = []
        for task in self._writer_tasks.values():
            if task.done() and not task.cancelled() and task.exception() is None:
                writers.append(task.result()[0])
            else:
                task.cancel()
                cancelled.append(task)
        self._writer_tasks.clear()
        for writer in writers:
            writer.close()
        for writer in writers:
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        servers = []
        for task in self._server_tasks.values():
            if task.done() and not task.cancelled() and task.exception() is None:
                servers.append(task.result())
            else:
                task.cancel()
                cancelled.append(task)
        self._server_tasks.clear()
        if cancelled:
            # Deliver the CancelledErrors now; the loop closes right after
            # _shutdown returns and must not see pending tasks.
            await asyncio.gather(*cancelled, return_exceptions=True)
        for server in servers:
            server.close()
        for server in servers:
            await server.wait_closed()
        # The per-connection reader tasks park in read_frame(); closing
        # their transports wakes them with a clean EOF so they finish
        # normally before the loop closes.  Cancellation is a last resort
        # (a handler wedged inside a delivery callback).
        for handler_writer in list(self._handler_writers):
            handler_writer.close()
        handlers = [task for task in self._handler_tasks if not task.done()]
        if handlers:
            _done, pending = await asyncio.wait(handlers, timeout=1.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        self._handler_tasks.clear()
        self._handler_writers.clear()
        self._pending.clear()
        self._outbox.clear()
        self._inflight = 0
