"""Synthetic IP / AS address space (§9.1 substrate).

The paper defends against an adversary who owns a large, contiguous chunk of
IP space by selecting relays from *different autonomous systems*, using
publicly available inter-domain routing tables.  We do not have RouteViews
data offline, so this module synthesises an AS-level view of an overlay:

* a configurable number of ASes with a skewed (Zipf-like) prefix allocation —
  a few large carriers own many prefixes, a long tail owns one or two;
* overlay nodes assigned addresses inside those prefixes.

The selection policy in :mod:`repro.overlay.selection` only needs the mapping
"address → AS", so this synthetic allocation exercises the same code path the
real routing tables would.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

import numpy as np

from ..core.errors import SelectionError


@dataclass(frozen=True)
class Prefix:
    """One advertised IPv4 prefix belonging to an AS."""

    network: ipaddress.IPv4Network
    asn: int

    def contains(self, address: str) -> bool:
        return ipaddress.IPv4Address(address) in self.network


@dataclass
class ASDatabase:
    """A miniature inter-domain view: prefixes, their owning ASes, and countries."""

    prefixes: list[Prefix] = field(default_factory=list)
    as_countries: dict[int, str] = field(default_factory=dict)

    def asn_of(self, address: str) -> int:
        """The AS number owning ``address`` (longest-prefix match)."""
        candidate: Prefix | None = None
        ip = ipaddress.IPv4Address(address)
        for prefix in self.prefixes:
            if ip in prefix.network:
                if candidate is None or prefix.network.prefixlen > candidate.network.prefixlen:
                    candidate = prefix
        if candidate is None:
            raise SelectionError(f"{address} is not covered by any known prefix")
        return candidate.asn

    def country_of(self, address: str) -> str:
        return self.as_countries.get(self.asn_of(address), "unknown")

    def distinct_as_count(self, addresses: list[str]) -> int:
        return len({self.asn_of(address) for address in addresses})


_COUNTRIES = ["us", "de", "cn", "ir", "br", "jp", "in", "ru", "fr", "za", "kr", "gb"]


def generate_as_database(
    num_ases: int,
    rng: np.random.Generator,
    base_octet: int = 10,
) -> ASDatabase:
    """Create a synthetic AS database with a Zipf-skewed prefix allocation.

    AS ``i`` (1-based) receives roughly ``1/i``-proportional prefix counts,
    mirroring the concentration of real address space in a few large carriers
    — the property the attacker of §9.1 exploits.
    """
    if num_ases < 1:
        raise SelectionError("need at least one AS")
    prefixes: list[Prefix] = []
    as_countries: dict[int, str] = {}
    weights = 1.0 / np.arange(1, num_ases + 1)
    allocations = np.maximum(1, np.round(weights / weights.sum() * num_ases * 4)).astype(int)
    second_octet = 0
    for index in range(num_ases):
        asn = 64500 + index
        as_countries[asn] = _COUNTRIES[index % len(_COUNTRIES)]
        for _ in range(int(allocations[index])):
            network = ipaddress.IPv4Network(
                f"{base_octet}.{second_octet % 256}.{(second_octet // 256) % 256}.0/24"
            )
            prefixes.append(Prefix(network=network, asn=asn))
            second_octet += 1
    return ASDatabase(prefixes=prefixes, as_countries=as_countries)


def assign_overlay_addresses(
    database: ASDatabase,
    count: int,
    rng: np.random.Generator,
    concentrated_fraction: float = 0.0,
) -> list[str]:
    """Assign ``count`` overlay node addresses inside the database's prefixes.

    ``concentrated_fraction`` places that share of the nodes inside the single
    largest AS — modelling an adversary who fills the overlay with nodes from
    address space it controls (§9.1's attack scenario).
    """
    if not database.prefixes:
        raise SelectionError("AS database has no prefixes")
    by_asn: dict[int, list[Prefix]] = {}
    for prefix in database.prefixes:
        by_asn.setdefault(prefix.asn, []).append(prefix)
    largest_asn = max(by_asn, key=lambda asn: len(by_asn[asn]))
    addresses: list[str] = []
    seen: set[str] = set()
    while len(addresses) < count:
        if rng.random() < concentrated_fraction:
            prefix = by_asn[largest_asn][int(rng.integers(0, len(by_asn[largest_asn])))]
        else:
            prefix = database.prefixes[int(rng.integers(0, len(database.prefixes)))]
        host = int(rng.integers(1, 255))
        address = str(prefix.network.network_address + host)
        if address in seen:
            continue
        seen.add(address)
        addresses.append(address)
    return addresses
