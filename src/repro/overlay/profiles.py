"""Testbed profiles: the paper's LAN and a PlanetLab-like wide-area overlay.

A profile knows how to turn a list of addresses into a
:class:`~repro.overlay.network.NetworkModel` and which churn model applies.
Substituting these profiles for the paper's physical testbeds is documented
in DESIGN.md §2; the knobs below are the calibration points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .churn import PLANETLAB_CHURN, STABLE_CHURN, ChurnModel
from .network import NetworkModel, NodeResources, heterogeneous_network, uniform_network


@dataclass(frozen=True)
class OverlayProfile:
    """A named testbed configuration."""

    name: str
    latency_seconds: float
    latency_sigma: float
    resources: NodeResources
    churn: ChurnModel
    heterogeneous: bool

    def build_network(
        self, addresses: list[str], rng: np.random.Generator | None = None
    ) -> NetworkModel:
        """Instantiate the network model for a concrete set of addresses."""
        if not self.heterogeneous:
            return uniform_network(addresses, self.latency_seconds, self.resources)
        rng = np.random.default_rng() if rng is None else rng
        return heterogeneous_network(
            addresses,
            rng,
            latency_mean=self.latency_seconds,
            latency_sigma=self.latency_sigma,
            base_resources=self.resources,
        )


#: The paper's local testbed: 1 Gbps switched LAN, 2.8 GHz Pentiums, no churn.
LAN_PROFILE = OverlayProfile(
    name="lan",
    latency_seconds=0.0002,
    latency_sigma=0.0,
    resources=NodeResources(
        coding_seconds_per_byte_per_d=8e-9,
        symmetric_seconds_per_byte=4e-9,
        pk_encrypt_seconds=0.0015,
        pk_decrypt_seconds=0.006,
        bandwidth_bps=1e9,
        load_factor=1.0,
    ),
    churn=STABLE_CHURN,
    heterogeneous=False,
)

#: PlanetLab-like wide-area overlay: tens-of-milliseconds RTTs, contended
#: CPUs (heavy-tailed load factors), modest access bandwidth, real churn.
PLANETLAB_PROFILE = OverlayProfile(
    name="planetlab",
    latency_seconds=0.04,
    latency_sigma=0.6,
    resources=NodeResources(
        coding_seconds_per_byte_per_d=8e-9,
        symmetric_seconds_per_byte=4e-9,
        pk_encrypt_seconds=0.0015,
        pk_decrypt_seconds=0.006,
        bandwidth_bps=10e6,
        load_factor=8.0,
    ),
    churn=PLANETLAB_CHURN,
    heterogeneous=True,
)

PROFILES: dict[str, OverlayProfile] = {
    profile.name: profile for profile in (LAN_PROFILE, PLANETLAB_PROFILE)
}


def get_profile(name: str) -> OverlayProfile:
    """Look up a profile by name ("lan" or "planetlab")."""
    try:
        return PROFILES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from exc
