"""Network and CPU cost models used by the simulated overlay.

The paper's evaluation ran on two substrates: a 1 Gbps switched LAN of
2.8 GHz Pentiums, and PlanetLab (wide-area RTTs, heavily loaded nodes).  The
absolute numbers in our reproduction come from these models; their *ratios*
— coding vs. public-key cost, LAN vs. WAN latency, lightly vs. heavily loaded
CPUs — are what shape the figures.

Cost anchors taken from the paper (§7.1): coding/decoding needs ``d`` finite
field multiplications per byte, and a Celeron 800 MHz coded a 1500-byte
packet with ``d = 5`` in ~60 µs, i.e. 8 ns per byte per unit of ``d``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import SimulationError


@dataclass(frozen=True)
class NodeResources:
    """Per-node CPU and access-link characteristics."""

    #: Seconds per byte per unit of split factor for GF(2^8) coding.
    coding_seconds_per_byte_per_d: float = 8e-9
    #: Seconds per byte for symmetric (stream/AES-like) crypto.
    symmetric_seconds_per_byte: float = 4e-9
    #: Seconds per public-key encryption (onion route setup).
    pk_encrypt_seconds: float = 0.0015
    #: Seconds per public-key decryption (onion route setup).
    pk_decrypt_seconds: float = 0.006
    #: Access-link bandwidth in bits per second.
    bandwidth_bps: float = 1e9
    #: Multiplier applied to all CPU costs (models a loaded PlanetLab node).
    load_factor: float = 1.0

    def coding_time(self, payload_bytes: int, d: int) -> float:
        """CPU time to code or decode ``payload_bytes`` with split factor ``d``."""
        return self.coding_seconds_per_byte_per_d * d * payload_bytes * self.load_factor

    def coding_time_batch(self, payload_bytes: int, d: int, count: int) -> float:
        """CPU time to code or decode ``count`` equal-size payloads as one batch.

        The modelled work is byte-proportional, so a batch costs exactly the
        sum of its per-packet costs: batching collapses *scheduler events*
        (one CPU reservation instead of ``count``), not the finite-field work
        itself.  Keeping the totals equal is what makes the batched data
        plane's simulated clock comparable with the per-packet reference.
        """
        return self.coding_time(payload_bytes, d) * count

    def symmetric_time(self, payload_bytes: int) -> float:
        """CPU time for one symmetric crypto pass over ``payload_bytes``."""
        return self.symmetric_seconds_per_byte * payload_bytes * self.load_factor

    def pk_encrypt_time(self) -> float:
        return self.pk_encrypt_seconds * self.load_factor

    def pk_decrypt_time(self) -> float:
        return self.pk_decrypt_seconds * self.load_factor

    def transmission_time(self, size_bytes: int) -> float:
        """Serialisation delay of a packet on the access link."""
        return size_bytes * 8.0 / self.bandwidth_bps


class NetworkModel:
    """Pairwise latency plus per-node resources for a set of addresses."""

    def __init__(
        self,
        resources: dict[str, NodeResources],
        latency_matrix: dict[tuple[str, str], float],
        default_latency: float = 0.05,
    ) -> None:
        self._resources = dict(resources)
        self._latency = dict(latency_matrix)
        self.default_latency = default_latency

    def resources(self, address: str) -> NodeResources:
        try:
            return self._resources[address]
        except KeyError as exc:
            raise SimulationError(f"no resources registered for {address}") from exc

    def has_node(self, address: str) -> bool:
        return address in self._resources

    def addresses(self) -> list[str]:
        return list(self._resources)

    def latency(self, sender: str, receiver: str) -> float:
        """One-way propagation delay between two addresses (seconds)."""
        if sender == receiver:
            return 0.0
        key = (sender, receiver)
        if key in self._latency:
            return self._latency[key]
        reverse = (receiver, sender)
        if reverse in self._latency:
            return self._latency[reverse]
        return self.default_latency

    def delivery_time(self, sender: str, receiver: str, size_bytes: int) -> float:
        """Transmission plus propagation delay for one packet."""
        return self.resources(sender).transmission_time(size_bytes) + self.latency(
            sender, receiver
        )


def uniform_network(
    addresses: list[str],
    latency_seconds: float,
    resources: NodeResources,
) -> NetworkModel:
    """A homogeneous network: same latency everywhere, same resources everywhere."""
    return NetworkModel(
        resources={address: resources for address in addresses},
        latency_matrix={},
        default_latency=latency_seconds,
    )


def heterogeneous_network(
    addresses: list[str],
    rng: np.random.Generator,
    latency_mean: float,
    latency_sigma: float,
    base_resources: NodeResources,
    load_factors: np.ndarray | None = None,
) -> NetworkModel:
    """A wide-area style network with log-normal latencies and per-node load.

    ``latency_mean`` is the median one-way delay; ``latency_sigma`` the
    log-normal shape parameter.  ``load_factors`` (one per address) scale the
    CPU costs; when omitted they are drawn from a heavy-tailed distribution
    that mimics contended PlanetLab nodes.
    """
    if load_factors is None:
        load_factors = 1.0 + rng.pareto(2.5, size=len(addresses)) * 4.0
    if len(load_factors) != len(addresses):
        raise SimulationError("need one load factor per address")
    resources = {
        address: NodeResources(
            coding_seconds_per_byte_per_d=base_resources.coding_seconds_per_byte_per_d,
            symmetric_seconds_per_byte=base_resources.symmetric_seconds_per_byte,
            pk_encrypt_seconds=base_resources.pk_encrypt_seconds,
            pk_decrypt_seconds=base_resources.pk_decrypt_seconds,
            bandwidth_bps=base_resources.bandwidth_bps,
            load_factor=float(factor),
        )
        for address, factor in zip(addresses, load_factors)
    }
    latency: dict[tuple[str, str], float] = {}
    for i, a in enumerate(addresses):
        for b in addresses[i + 1 :]:
            latency[(a, b)] = float(
                rng.lognormal(mean=np.log(latency_mean), sigma=latency_sigma)
            )
    return NetworkModel(
        resources=resources, latency_matrix=latency, default_latency=latency_mean
    )
