"""Unified protocol-runtime interface over the simulated overlay substrate.

Figs. 11–15 compare information slicing against onion routing (and its
erasure-coded variant) over *identical* substrates: same latencies, same
per-node CPU model, same per-connection capacity.  Historically every scheme
had a bespoke driver loop inside the experiment modules; this module defines
the one interface they all implement, so the experiments drive every scheme
through the same two calls:

1. :meth:`ProtocolRuntime.establish` — inject the scheme's route setup;
2. :meth:`ProtocolRuntime.send_messages` — ship a burst of data messages.

Progress is observable through the shared
:class:`~repro.overlay.node.FlowProgress` (delivered messages and per-relay
setup instants) and :meth:`ProtocolRuntime.setup_seconds`.

Concrete runtimes: :class:`SlicingProtocolRuntime` (here) wraps the real
relay engines via :class:`~repro.overlay.node.SlicingRuntime`;
``OnionProtocolRuntime`` and ``OnionErasureProtocolRuntime`` live in
:mod:`repro.baselines.runtime` and register themselves under ``"onion"`` and
``"onion-erasure"``.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import fields as dataclass_fields
from typing import Callable

import numpy as np

from ..core.relay import RelayStats
from ..core.source import FlowSetup, Source
from .network import NetworkModel
from .node import (
    FlowProgress,
    OverlayTransport,
    SimulatedOverlayNetwork,
    SlicingRuntime,
)


class ProtocolRuntime(abc.ABC):
    """One anonymous transfer (setup + data burst) of one scheme."""

    #: Registry key; subclasses set this and call :func:`register_runtime`.
    scheme: str = ""

    #: Overlay transport backends the scheme supports.  Every shipped scheme
    #: runs on both, but a runtime that depends on simulator-only facilities
    #: can narrow this; the CLI rejects mismatched ``--scheme``/``--backend``
    #: combinations with a one-line error (see :func:`runtime_backends`).
    backends: tuple[str, ...] = ("sim", "aio")

    def __init__(self, substrate: OverlayTransport) -> None:
        self.substrate = substrate
        self.progress = FlowProgress()

    @property
    def sim(self):
        return self.substrate.sim

    @abc.abstractmethod
    def establish(self, relays: list[str], destination: str) -> FlowProgress:
        """Inject the scheme's route setup; returns the progress tracker.

        The caller drives the simulator (``substrate.sim.run()``) afterwards;
        nothing is processed until it does.
        """

    @abc.abstractmethod
    def send_messages(self, messages: list[bytes]) -> None:
        """Code/wrap and inject a burst of data messages."""

    @abc.abstractmethod
    def setup_seconds(self) -> float | None:
        """Measured route-setup latency, or None if setup never completed."""

    # -- structural observables (backend-parity surface) ---------------------------
    #
    # These are the fields asserted identical between the simulated and the
    # asyncio backend under a shared seed: *what* was delivered and *how
    # much* work the relays did — never virtual/wall timestamps.

    def delivered_plaintexts(self) -> dict[int, bytes]:
        """Messages the destination decoded, by sequence number."""
        return {}

    def delivered_digest(self) -> str:
        """Order-independent digest of the delivered (seq, plaintext) pairs."""
        delivered = self.delivered_plaintexts()
        digest = hashlib.sha256()
        for seq in sorted(delivered):
            digest.update(seq.to_bytes(8, "big"))
            digest.update(delivered[seq])
        return digest.hexdigest()

    def relay_counters(self) -> dict[str, int]:
        """Aggregate relay-engine counters (empty for engines without stats)."""
        return {}

    def network_counters(self) -> dict[str, int]:
        """The substrate's transport counters (packets/bytes sent, drops)."""
        stats = self.substrate.stats
        return {
            "packets_sent": stats.packets_sent,
            "packets_dropped": stats.packets_dropped,
            "bytes_sent": stats.bytes_sent,
        }


def aggregate_relay_stats(relays) -> dict[str, int]:
    """Sum :class:`~repro.core.relay.RelayStats` counters across relay engines."""
    totals = {field.name: 0 for field in dataclass_fields(RelayStats)}
    for relay in relays:
        for name in totals:
            totals[name] += getattr(relay.stats, name)
    return totals


#: Overlay transport backends selectable on the registry and the CLI.
SUBSTRATE_BACKENDS = ("sim", "aio")


def build_substrate(
    backend: str, network: NetworkModel, connection_bps: float, **kwargs
) -> OverlayTransport:
    """Instantiate an overlay transport backend by name.

    ``"sim"`` is the discrete-event simulator; ``"aio"`` runs the same
    protocol runtimes over real asyncio TCP streams
    (:class:`~repro.overlay.aio.AioOverlayNetwork` — loopback by default,
    any interface via its ``bind_host`` knob).  Extra keyword arguments go
    to the backend constructor (e.g. ``pace=`` for the aio backend's
    wall-clock link shaping).

    The aio backend also honours two environment knobs so experiment code
    that never touches constructor kwargs — the registered figure runners —
    can still be deployed off-loopback or over the authenticated transport:
    ``REPRO_AIO_HOST`` (bind/dial address, default ``127.0.0.1``) and
    ``REPRO_AIO_TRANSPORT`` (``plain`` | ``secure``).  Explicit kwargs win
    over the environment.  Structural results are bit-identical across all
    of these settings (CI's ``aio-parity`` and ``secure-transport`` jobs
    gate exactly that).
    """
    if backend == "sim":
        return SimulatedOverlayNetwork(network, connection_bps=connection_bps, **kwargs)
    if backend == "aio":
        import os

        from .aio import AioOverlayNetwork

        env_host = os.environ.get("REPRO_AIO_HOST")
        if env_host and "bind_host" not in kwargs:
            kwargs["bind_host"] = env_host
        env_transport = os.environ.get("REPRO_AIO_TRANSPORT")
        if env_transport and "transport" not in kwargs:
            kwargs["transport"] = env_transport
        return AioOverlayNetwork(network, connection_bps=connection_bps, **kwargs)
    known = ", ".join(SUBSTRATE_BACKENDS)
    raise KeyError(f"unknown overlay backend {backend!r} (known: {known})")


#: Registered runtime factories by scheme name.
RUNTIME_SCHEMES: dict[str, Callable[..., ProtocolRuntime]] = {}


def register_runtime(name: str, factory: Callable[..., ProtocolRuntime]) -> None:
    """Register a runtime factory; names must be unique."""
    if name in RUNTIME_SCHEMES:
        raise ValueError(f"runtime scheme {name!r} is already registered")
    RUNTIME_SCHEMES[name] = factory


def build_runtime(scheme: str, substrate: SimulatedOverlayNetwork, **kwargs) -> ProtocolRuntime:
    """Instantiate the runtime registered under ``scheme``."""
    _ensure_runtimes_loaded()
    try:
        factory = RUNTIME_SCHEMES[scheme]
    except KeyError:
        known = ", ".join(sorted(RUNTIME_SCHEMES))
        raise KeyError(f"unknown runtime scheme {scheme!r} (known: {known})") from None
    return factory(substrate, **kwargs)


def runtime_schemes() -> list[str]:
    """Sorted names of every registered protocol runtime."""
    _ensure_runtimes_loaded()
    return sorted(RUNTIME_SCHEMES)


def runtime_backends(scheme: str) -> tuple[str, ...]:
    """The overlay backends the runtime registered under ``scheme`` supports.

    Factories that are not :class:`ProtocolRuntime` subclasses (plain
    callables) are assumed to support every substrate backend.
    """
    _ensure_runtimes_loaded()
    try:
        factory = RUNTIME_SCHEMES[scheme]
    except KeyError:
        known = ", ".join(sorted(RUNTIME_SCHEMES))
        raise KeyError(f"unknown runtime scheme {scheme!r} (known: {known})") from None
    return tuple(getattr(factory, "backends", SUBSTRATE_BACKENDS))


def _ensure_runtimes_loaded() -> None:
    # Importing the baselines registers their runtimes, mirroring how the
    # experiment registry loads its definitions.
    from ..baselines import runtime as _baseline_runtimes  # noqa: F401


class SlicingProtocolRuntime(ProtocolRuntime):
    """Information slicing through the real relay engines (§4, §7).

    Parameters mirror the paper: split factor ``d``, redundancy ``d'`` and
    path length ``L``.  ``source_stage`` names the ``d'`` addresses the
    source controls (they must be part of the substrate's network model).
    ``data_plane`` selects the batched overlay data plane (default) or the
    per-packet scalar reference; both deliver bit-identical messages.
    """

    scheme = "slicing"

    def __init__(
        self,
        substrate: OverlayTransport,
        source_stage: list[str],
        d: int,
        path_length: int,
        d_prime: int | None = None,
        rng: np.random.Generator | None = None,
        runtime_rng: np.random.Generator | None = None,
        data_plane: str = "batched",
        runtime_kwargs: dict | None = None,
    ) -> None:
        super().__init__(substrate)
        rng = np.random.default_rng() if rng is None else rng
        if runtime_rng is None:
            runtime_rng = np.random.default_rng(int(rng.integers(0, 2**31 - 1)))
        self.source = Source(
            source_stage[0],
            source_stage[1:],
            d=d,
            d_prime=d_prime,
            path_length=path_length,
            rng=rng,
        )
        self.runtime = SlicingRuntime(
            substrate,
            rng=runtime_rng,
            data_plane=data_plane,
            **(runtime_kwargs or {}),
        )
        self.flow: FlowSetup | None = None

    def establish(self, relays: list[str], destination: str) -> FlowProgress:
        self.flow = self.source.establish_flow(relays, destination)
        self.progress = self.runtime.start_flow(self.source, self.flow)
        return self.progress

    def send_messages(self, messages: list[bytes]) -> None:
        assert self.flow is not None, "establish() must run before send_messages()"
        self.runtime.send_messages(self.source, self.flow, messages)

    def setup_seconds(self) -> float | None:
        """Time until the last relay stage decoded its routing information."""
        if self.flow is None:
            return None
        last_stage = self.flow.graph.stages[-1]
        complete = self.progress.setup_complete_time(last_stage)
        if complete is None:
            return None
        return complete - self.progress.setup_injected_at

    def delivered_plaintexts(self) -> dict[int, bytes]:
        if self.flow is None:
            return {}
        relay = self.runtime.relays.get(self.flow.destination)
        if relay is None:
            return {}
        return relay.delivered_messages(self.flow.plan.flow_ids[self.flow.destination])

    def relay_counters(self) -> dict[str, int]:
        return aggregate_relay_stats(self.runtime.relays.values())


register_runtime(SlicingProtocolRuntime.scheme, SlicingProtocolRuntime)
