"""A small discrete-event simulator.

The performance experiments (§7) need controlled time: wide-area latencies,
per-node CPU costs, node failures at precise instants, and reproducibility.
Rather than racing wall-clock asyncio tasks, we schedule everything on a
simulated clock.  The simulator is deliberately tiny — an event heap with
deterministic tie-breaking — because all domain behaviour lives in the node
runtimes built on top of it (:mod:`repro.overlay.node`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.errors import SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventSimulator.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time


class _KeyedBatch:
    """Items accumulated for one (key, instant) pair; drained by one event."""

    __slots__ = ("time", "items")

    def __init__(self, time: float, items: list) -> None:
        self.time = time
        self.items = items


class EventSimulator:
    """Deterministic discrete-event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._batches: dict[object, _KeyedBatch] = {}
        self.events_processed = 0
        self.batched_events = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        event = _ScheduledEvent(
            time=self.now + delay, sequence=next(self._sequence), callback=callback
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``time``."""
        return self.schedule(max(time - self.now, 0.0), callback)

    def schedule_keyed(
        self,
        key: object,
        time: float,
        item: Any,
        drain: Callable[[list], None],
    ) -> None:
        """Coalesce ``item`` with others landing on ``key`` at the same instant.

        The first item for a ``(key, time)`` pair schedules one event at
        absolute time ``time``; items added for the same pair before it fires
        join its batch instead of scheduling further events.  When the event
        fires, ``drain`` receives every accumulated item in arrival order —
        this is what lets the overlay runtime process all packets landing at
        one relay at one simulated instant as a single batch.  Tie-breaking
        stays deterministic: batch events obey the same (time, sequence)
        order as everything else, and items within a batch keep the order in
        which they were enqueued.
        """
        batch = self._batches.get(key)
        if batch is not None and batch.time == time:
            batch.items.append(item)
            self.batched_events += 1
            return
        batch = _KeyedBatch(time, [item])
        self._batches[key] = batch

        def fire() -> None:
            if self._batches.get(key) is batch:
                del self._batches[key]
            drain(batch.items)

        self.schedule_at(time, fire)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulated time at which processing stopped.
        """
        processed = 0
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            processed += 1
            if processed > max_events:
                raise SimulationError("event budget exceeded; possible livelock")
            self.now = event.time
            self.events_processed += 1
            event.callback()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events still waiting."""
        return sum(1 for event in self._queue if not event.cancelled)
