"""Churn models: node lifetimes and failure processes (§8).

The paper's PlanetLab experiments deliberately include "failure-prone" nodes
with perceived lifetimes under 20 minutes alongside stable nodes.  We model
an overlay population as a mixture of two exponential lifetime classes and
expose both trial-level sampling (used by the Fig. 17 Monte Carlo) and a
failure-event stream (used by the discrete-event simulator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ChurnError


@dataclass(frozen=True)
class ChurnModel:
    """A two-class exponential lifetime mixture.

    ``failure_prone_fraction`` of the overlay nodes are short-lived (mean
    lifetime ``short_mean_seconds``); the rest are stable (mean lifetime
    ``long_mean_seconds``).  Lifetimes are measured from the moment a flow
    starts using the node — i.e. they are *residual* lifetimes, which for an
    exponential distribution coincide with full lifetimes.
    """

    failure_prone_fraction: float = 0.3
    short_mean_seconds: float = 15 * 60.0
    long_mean_seconds: float = 20 * 3600.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_prone_fraction <= 1.0:
            raise ChurnError(
                f"failure_prone_fraction must be in [0, 1], "
                f"got {self.failure_prone_fraction}"
            )
        if self.short_mean_seconds <= 0 or self.long_mean_seconds <= 0:
            raise ChurnError("mean lifetimes must be positive")

    def sample_lifetimes(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sample residual lifetimes (seconds) for ``count`` randomly drawn nodes."""
        prone = rng.random(count) < self.failure_prone_fraction
        short = rng.exponential(self.short_mean_seconds, size=count)
        long = rng.exponential(self.long_mean_seconds, size=count)
        return np.where(prone, short, long)

    def failure_probability(self, horizon_seconds: float) -> float:
        """Probability that a randomly drawn node fails within the horizon."""
        if horizon_seconds < 0:
            raise ChurnError("horizon must be non-negative")
        p_short = 1.0 - np.exp(-horizon_seconds / self.short_mean_seconds)
        p_long = 1.0 - np.exp(-horizon_seconds / self.long_mean_seconds)
        return float(
            self.failure_prone_fraction * p_short
            + (1.0 - self.failure_prone_fraction) * p_long
        )

    def sample_failures(
        self, count: int, horizon_seconds: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Boolean array: which of ``count`` nodes fail within the horizon."""
        return self.sample_lifetimes(count, rng) < horizon_seconds


#: Churn model matching the paper's PlanetLab experiments: a substantial
#: fraction of nodes with sub-20-minute perceived lifetimes (§8.2).
PLANETLAB_CHURN = ChurnModel(
    failure_prone_fraction=0.3,
    short_mean_seconds=15 * 60.0,
    long_mean_seconds=20 * 3600.0,
)

#: A stable testbed (the paper's LAN): nodes essentially never fail.
STABLE_CHURN = ChurnModel(
    failure_prone_fraction=0.0,
    short_mean_seconds=15 * 60.0,
    long_mean_seconds=1e9,
)
