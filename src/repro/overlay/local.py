"""In-process overlay: synchronous packet delivery between relay engines.

The :class:`LocalOverlay` wires :class:`~repro.core.relay.Relay` instances
together in memory and delivers packets breadth-first, optionally through a
serialize/parse round-trip so the byte-level wire format is exercised too.
It supports dropping nodes (to emulate failures) and records every packet it
delivers, which the functional tests and the confidentiality checks use to
play the role of an eavesdropper.

This overlay has no notion of time; the discrete-event simulator in
:mod:`repro.overlay.simulator` is the substrate for the performance and churn
experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..core.errors import SimulationError
from ..core.packet import Packet
from ..core.relay import Relay
from ..core.source import FlowSetup, Source


@dataclass
class DeliveryRecord:
    """One packet delivery observed on the overlay (for analysis/tests)."""

    sender: str
    receiver: str
    packet: Packet
    delivered: bool


@dataclass
class LocalOverlay:
    """A synchronous, in-memory overlay of relay protocol engines."""

    serialize_packets: bool = True
    relays: dict[str, Relay] = field(default_factory=dict)
    failed: set[str] = field(default_factory=set)
    log: list[DeliveryRecord] = field(default_factory=list)

    def add_node(self, address: str, rng: np.random.Generator | None = None, **kwargs) -> Relay:
        """Create (or return) the relay engine for ``address``."""
        if address in self.relays:
            return self.relays[address]
        relay = Relay(address, rng=rng, **kwargs)
        self.relays[address] = relay
        return relay

    def add_nodes(self, addresses: list[str], seed: int = 0, **kwargs) -> None:
        for index, address in enumerate(addresses):
            self.add_node(address, rng=np.random.default_rng(seed + index), **kwargs)

    def fail_node(self, address: str) -> None:
        """Mark a node as failed; packets to and from it are dropped."""
        self.failed.add(address)

    def recover_node(self, address: str) -> None:
        self.failed.discard(address)

    def node(self, address: str) -> Relay:
        try:
            return self.relays[address]
        except KeyError as exc:
            raise SimulationError(f"no relay registered at {address}") from exc

    # -- packet propagation -------------------------------------------------------

    def inject(self, packets: list[Packet]) -> int:
        """Deliver ``packets`` and everything they transitively trigger.

        Returns the number of packets delivered.  Delivery is breadth-first:
        a packet emitted by a relay is queued behind packets already pending,
        which approximates the per-stage progression of the real protocol.
        """
        queue: deque[Packet] = deque(packets)
        delivered = 0
        guard = 0
        while queue:
            guard += 1
            if guard > 1_000_000:
                raise SimulationError("packet propagation did not terminate")
            packet = queue.popleft()
            sender = packet.source_address
            receiver = packet.destination_address
            if not receiver:
                raise SimulationError("packet has no destination address")
            ok = (
                sender not in self.failed
                and receiver not in self.failed
                and receiver in self.relays
            )
            self.log.append(
                DeliveryRecord(sender=sender, receiver=receiver, packet=packet, delivered=ok)
            )
            if not ok:
                continue
            delivered += 1
            incoming = packet
            if self.serialize_packets:
                incoming = Packet.from_bytes(
                    packet.to_bytes(),
                    source_address=sender,
                    destination_address=receiver,
                )
            queue.extend(self.relays[receiver].handle_packet(incoming))
        return delivered

    def flush_flow(self, flow_setup: FlowSetup) -> int:
        """Trigger timeout-style flushes at every relay of a flow.

        Used after failures: relays that decoded their information but are
        still waiting for missing parents forward what they have (with padding
        / regenerated slices), which is what the real daemon's timeout does.
        """
        plan = flow_setup.plan
        extra: list[Packet] = []
        for relay_address in plan.graph.relays:
            if relay_address in self.failed or relay_address not in self.relays:
                continue
            relay = self.relays[relay_address]
            flow_id = plan.flow_ids[relay_address]
            extra.extend(relay.flush_setup(flow_id))
            state = relay.flows.get(flow_id)
            if state is not None:
                for seq in state.data.seqs():
                    extra.extend(relay.flush_data(flow_id, seq))
        if not extra:
            return 0
        return self.inject(extra)

    # -- convenience -----------------------------------------------------------------

    def run_flow(
        self,
        source: Source,
        relay_candidates: list[str],
        destination: str,
        messages: list[bytes],
        flush: bool = True,
    ) -> tuple[FlowSetup, dict[int, bytes]]:
        """Establish a flow, send ``messages``, and return what the destination got."""
        for address in relay_candidates + [destination]:
            self.add_node(address)
        flow = source.establish_flow(relay_candidates, destination)
        self.inject(flow.setup_packets)
        for message in messages:
            self.inject(source.make_data_packets(flow, message))
        if flush:
            self.flush_flow(flow)
        destination_relay = self.node(destination)
        flow_id = flow.plan.flow_ids[destination]
        return flow, destination_relay.delivered_messages(flow_id)

    def observed_by(self, addresses: set[str]) -> list[DeliveryRecord]:
        """Deliveries visible to an adversary controlling ``addresses``."""
        return [
            record
            for record in self.log
            if record.sender in addresses or record.receiver in addresses
        ]
