"""Relay selection policies (§9.1).

The naive policy picks relays uniformly at random, which an adversary owning
a large address block can exploit.  The AS-diverse policy consults the
(synthetic) AS database and picks relays spread across distinct autonomous
systems — ideally distinct countries — so that controlling many relays
requires presence in many networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import SelectionError
from .address import ASDatabase


@dataclass(frozen=True)
class SelectionReport:
    """Diagnostics about a relay selection."""

    relays: list[str]
    distinct_ases: int
    distinct_countries: int


def uniform_selection(
    candidates: list[str], count: int, rng: np.random.Generator
) -> list[str]:
    """Pick ``count`` relays uniformly at random (the vulnerable baseline)."""
    if count > len(candidates):
        raise SelectionError(
            f"cannot pick {count} relays from {len(candidates)} candidates"
        )
    return [str(a) for a in rng.choice(candidates, size=count, replace=False)]


def as_diverse_selection(
    candidates: list[str],
    count: int,
    database: ASDatabase,
    rng: np.random.Generator,
    max_per_as: int = 1,
) -> SelectionReport:
    """Pick relays spread across ASes, at most ``max_per_as`` per AS.

    Falls back to relaxing the per-AS cap (doubling it) when the candidate
    pool does not span enough ASes, rather than failing — a sender would do
    the same.
    """
    if count > len(candidates):
        raise SelectionError(
            f"cannot pick {count} relays from {len(candidates)} candidates"
        )
    shuffled = [str(a) for a in rng.permutation(candidates)]
    cap = max(1, max_per_as)
    while True:
        chosen: list[str] = []
        used: dict[int, int] = {}
        for address in shuffled:
            asn = database.asn_of(address)
            if used.get(asn, 0) >= cap:
                continue
            chosen.append(address)
            used[asn] = used.get(asn, 0) + 1
            if len(chosen) == count:
                countries = {database.country_of(a) for a in chosen}
                return SelectionReport(
                    relays=chosen,
                    distinct_ases=len(used),
                    distinct_countries=len(countries),
                )
        cap *= 2
        if cap > len(candidates):
            raise SelectionError(
                "candidate pool cannot satisfy the requested relay count"
            )


def adversary_capture_probability(
    relays: list[str], adversary_ases: set[int], database: ASDatabase
) -> float:
    """Fraction of the selected relays that fall inside adversary-owned ASes."""
    if not relays:
        return 0.0
    captured = sum(1 for address in relays if database.asn_of(address) in adversary_ases)
    return captured / len(relays)
