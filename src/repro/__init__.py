"""Information Slicing: Anonymity Using Unreliable Overlays — reproduction.

This package reproduces the system described in *Information Slicing:
Anonymity Using Unreliable Overlays* (Katti, Cohen, Katabi — NSDI 2007 /
MIT-CSAIL-TR-2007-013): an anonymous communication protocol that replaces
onion routing's layered public-key encryption with random linear coding over
vertex-disjoint overlay paths.

Top-level convenience imports cover the most common entry points; the
sub-packages hold the full system:

* :mod:`repro.core` — coding, forwarding graphs, source/relay protocol engines
* :mod:`repro.crypto` — keystream cipher and the simulated PK cost model
* :mod:`repro.overlay` — discrete-event overlay simulator, churn, profiles
* :mod:`repro.baselines` — onion routing, onion + erasure codes, Chaum mixes
* :mod:`repro.anonymity` — entropy metric, attacker model, Monte-Carlo study
* :mod:`repro.resilience` — churn-resilience analysis and transfer simulation
* :mod:`repro.experiments` — per-figure experiment runners
"""

from .core import (
    CodedBlock,
    FlowSetup,
    ForwardingGraph,
    Packet,
    PacketKind,
    Relay,
    SliceCoder,
    Source,
    build_forwarding_graph,
)

__version__ = "1.0.0"

__all__ = [
    "SliceCoder",
    "CodedBlock",
    "Source",
    "Relay",
    "FlowSetup",
    "ForwardingGraph",
    "build_forwarding_graph",
    "Packet",
    "PacketKind",
    "__version__",
]
