"""Sphinx-format onion baseline (constant-size packets, per-hop blinding).

The classic onion baseline (:mod:`repro.baselines.onion`) nests one
public-key envelope per relay, so the setup packet *shrinks* at every hop —
an observer who sees a packet's length learns the hop position.  The Sphinx
construction (BOLT #4's routing schema) closes that side channel: every
setup packet is exactly :data:`PACKET_SIZE` bytes at every hop, and every
data cell is exactly :data:`DATA_CELL_SIZE` bytes at every hop.

The packet is ``alpha || routing || mac``:

* ``alpha`` — the source's ephemeral Diffie-Hellman element.  Each relay
  derives the shared secret from it and *blinds* it before forwarding, so
  consecutive hops cannot link packets by the element either.
* ``routing`` — :data:`MAX_HOPS` fixed-size hop slots, obfuscated with one
  keystream per hop.  A relay XORs its stream over ``routing`` extended
  with zeros (the shift-and-MAC trick): the first slot pops out in the
  clear with the relay's next hop, session key and the *next* hop's MAC,
  while the tail refills with stream bytes so the region never shrinks.
  The source pre-compensates those accumulated tails with the standard
  Sphinx *filler* so every per-hop MAC verifies.
* ``mac`` — an HMAC over ``routing`` under a key derived from the hop's
  shared secret; tampering with any routing byte fails the check at the
  next relay.

The Diffie-Hellman group is simulated the same way the rest of
:mod:`repro.crypto` simulates cryptography: modular exponentiation in
``Z_p^*`` with ``p = 2**255 - 19``, with each relay's group secret derived
deterministically from its :class:`~repro.crypto.public_key.SimulatedKeyPair`
secret.  The shared-secret schedule, keystreams and MACs are real (SHA-256 /
HMAC over the :class:`~repro.crypto.symmetric.StreamCipher` keystream), so
the structural properties under test — constant size, per-hop integrity,
blinding determinism — hold exactly as in the production construction.

Data cells mirror the classic baseline's session-key layering (one
size-preserving keystream XOR per relay), but pad every message into a
fixed :data:`DATA_CELL_SIZE` cell first, so payload lengths leak nothing
either.  :meth:`SphinxSource.wrap_cells` / :meth:`SphinxRelay.strip_cells`
are the batched fast paths (one keystream per circuit, one vectorised XOR
per burst) and are bit-identical to the per-cell reference — the
``sphinxbench`` gate enforces both.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass, field

import numpy as np

from ..core.errors import ProtocolError
from ..crypto.keys import KEY_SIZE, generate_key
from ..crypto.public_key import SimulatedKeyPair
from ..crypto.symmetric import StreamCipher

#: Simulated Diffie-Hellman group: exponentiation mod a 255-bit prime.
GROUP_PRIME = 2**255 - 19
GROUP_ORDER = GROUP_PRIME - 1
GENERATOR = 5

#: Serialised group-element width (bytes) — the ``alpha`` field.
ALPHA_SIZE = 32
#: HMAC-SHA256 width (bytes).
MAC_SIZE = 32
#: Maximum UTF-8 address length a hop slot can carry.
ADDRESS_SIZE = 31
#: One routing slot: length-prefixed next hop, session key, next hop's MAC.
HOP_SIZE = 1 + ADDRESS_SIZE + KEY_SIZE + MAC_SIZE
#: Longest route a packet can encode; figs 11–15 use at most L=6.
MAX_HOPS = 8
#: The obfuscated routing region: MAX_HOPS slots, always full width.
ROUTING_SIZE = MAX_HOPS * HOP_SIZE
#: On-wire setup-packet size — identical at every hop.
PACKET_SIZE = ALPHA_SIZE + ROUTING_SIZE + MAC_SIZE
#: On-wire data-cell size — identical at every hop for every message.
DATA_CELL_SIZE = 2048

_CELL_HEADER = struct.Struct(">I")
_NONCE = b"\x00" * 8


def _xor(left: bytes, right: bytes) -> bytes:
    return (
        np.frombuffer(left, dtype=np.uint8) ^ np.frombuffer(right, dtype=np.uint8)
    ).tobytes()


def _element_bytes(element: int) -> bytes:
    return element.to_bytes(ALPHA_SIZE, "big")


def _derive_key(tag: bytes, shared_secret: bytes) -> bytes:
    return hmac.new(tag, shared_secret, hashlib.sha256).digest()


def _stream(tag: bytes, shared_secret: bytes, length: int) -> bytes:
    return StreamCipher(_derive_key(tag, shared_secret)).keystream(_NONCE, length)


def _mac(shared_secret: bytes, routing: bytes) -> bytes:
    return hmac.new(_derive_key(b"mu", shared_secret), routing, hashlib.sha256).digest()


def _shared_secret(element: int) -> bytes:
    return hashlib.sha256(b"sphinx-ss" + _element_bytes(element)).digest()


def _blinding_factor(alpha: int, shared_secret: bytes) -> int:
    """The per-hop blinding exponent — derivable by source and relay alike."""
    digest = hashlib.sha256(
        b"sphinx-blind" + _element_bytes(alpha) + shared_secret
    ).digest()
    return 1 + int.from_bytes(digest, "big") % (GROUP_ORDER - 1)


def _dh_secret(key_pair: SimulatedKeyPair) -> int:
    """A node's group secret, derived from its simulated key-pair secret."""
    digest = hashlib.sha256(b"sphinx-dh" + key_pair.secret).digest()
    return 1 + int.from_bytes(digest, "big") % (GROUP_ORDER - 1)


def _filler(shared_secrets: list[bytes]) -> bytes:
    """The accumulated keystream tails the final hop's MAC must account for.

    Each intermediate peel extends ``routing`` with ``HOP_SIZE`` stream
    bytes; this pre-computes exactly those bytes so the source can bake
    them into the final hop's routing region.
    """
    filler = b""
    for shared_secret in shared_secrets[:-1]:
        filler += b"\x00" * HOP_SIZE
        stream = _stream(b"rho", shared_secret, ROUTING_SIZE + HOP_SIZE)
        filler = _xor(filler, stream[len(stream) - len(filler):])
    return filler


def _pack_slot(next_hop: str, session_key: bytes, next_mac: bytes) -> bytes:
    encoded = next_hop.encode("utf-8")
    if len(encoded) > ADDRESS_SIZE:
        raise ProtocolError(
            f"sphinx hop address {next_hop!r} exceeds {ADDRESS_SIZE} bytes"
        )
    if len(session_key) != KEY_SIZE:
        raise ProtocolError(f"sphinx session keys must be {KEY_SIZE} bytes")
    return (
        struct.pack(">B", len(encoded))
        + encoded.ljust(ADDRESS_SIZE, b"\x00")
        + session_key
        + next_mac
    )


def _unpack_slot(slot: bytes) -> tuple[str, bytes, bytes]:
    name_length = slot[0]
    if name_length == 0 or name_length > ADDRESS_SIZE:
        raise ProtocolError("malformed sphinx hop slot")
    try:
        next_hop = slot[1 : 1 + name_length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"malformed sphinx hop slot: {exc}") from exc
    offset = 1 + ADDRESS_SIZE
    session_key = bytes(slot[offset : offset + KEY_SIZE])
    next_mac = bytes(slot[offset + KEY_SIZE :])
    return next_hop, session_key, next_mac


@dataclass(frozen=True)
class SphinxPacket:
    """One constant-size setup packet: ``alpha || routing || mac``."""

    alpha: int
    routing: bytes
    mac: bytes

    def to_bytes(self) -> bytes:
        return _element_bytes(self.alpha) + self.routing + self.mac

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SphinxPacket":
        if len(blob) != PACKET_SIZE:
            raise ProtocolError(
                f"sphinx packets are exactly {PACKET_SIZE} bytes, got {len(blob)}"
            )
        return cls(
            alpha=int.from_bytes(blob[:ALPHA_SIZE], "big"),
            routing=bytes(blob[ALPHA_SIZE : ALPHA_SIZE + ROUTING_SIZE]),
            mac=bytes(blob[ALPHA_SIZE + ROUTING_SIZE :]),
        )


@dataclass(frozen=True)
class SphinxNode:
    """One relay's directory entry: its key pair and derived group element."""

    key_pair: SimulatedKeyPair
    dh_secret: int
    dh_public: int

    @classmethod
    def from_key_pair(cls, key_pair: SimulatedKeyPair) -> "SphinxNode":
        secret = _dh_secret(key_pair)
        return cls(
            key_pair=key_pair,
            dh_secret=secret,
            dh_public=pow(GENERATOR, secret, GROUP_PRIME),
        )


@dataclass
class SphinxDirectory:
    """Directory of relay group elements, mirroring :class:`OnionDirectory`."""

    nodes: dict[str, SphinxNode] = field(default_factory=dict)

    @classmethod
    def for_relays(
        cls, addresses: list[str], rng: np.random.Generator
    ) -> "SphinxDirectory":
        return cls(
            nodes={
                address: SphinxNode.from_key_pair(
                    SimulatedKeyPair.generate(address, rng)
                )
                for address in addresses
            }
        )

    def node(self, address: str) -> SphinxNode:
        try:
            return self.nodes[address]
        except KeyError as exc:
            raise ProtocolError(f"{address} is not in the sphinx directory") from exc

    def addresses(self) -> list[str]:
        return list(self.nodes)


@dataclass
class SphinxCircuit:
    """A built circuit: the relay chain and the per-hop session keys."""

    hops: list[str]
    session_keys: list[bytes]
    destination: str

    @property
    def length(self) -> int:
        return len(self.hops)


def pack_cell(message: bytes) -> bytes:
    """Pad a message into one fixed-size data cell (length-prefixed)."""
    if len(message) > DATA_CELL_SIZE - _CELL_HEADER.size:
        raise ProtocolError(
            f"sphinx data cells carry at most {DATA_CELL_SIZE - _CELL_HEADER.size}"
            f" bytes, got {len(message)}"
        )
    body = _CELL_HEADER.pack(len(message)) + bytes(message)
    return body + b"\x00" * (DATA_CELL_SIZE - len(body))


def unpack_cell(cell: bytes) -> bytes:
    """Recover the message from a fully-stripped data cell."""
    if len(cell) != DATA_CELL_SIZE:
        raise ProtocolError(
            f"sphinx data cells are exactly {DATA_CELL_SIZE} bytes, got {len(cell)}"
        )
    (length,) = _CELL_HEADER.unpack_from(cell)
    if length > DATA_CELL_SIZE - _CELL_HEADER.size:
        raise ProtocolError("corrupt sphinx data cell: bad length prefix")
    return bytes(cell[_CELL_HEADER.size : _CELL_HEADER.size + length])


def _cell_mask(session_keys: list[bytes]) -> np.ndarray:
    """The combined per-circuit keystream the source layers onto every cell."""
    mask = np.zeros(DATA_CELL_SIZE, dtype=np.uint8)
    for session_key in session_keys:
        mask ^= np.frombuffer(
            StreamCipher(session_key).keystream(_NONCE, DATA_CELL_SIZE),
            dtype=np.uint8,
        )
    return mask


class SphinxSource:
    """Builds circuits, constant-size setup packets and padded data cells."""

    def __init__(self, directory: SphinxDirectory, rng: np.random.Generator) -> None:
        self.directory = directory
        self.rng = rng

    def build_circuit(
        self, relays: list[str], destination: str, path_length: int
    ) -> tuple[SphinxCircuit, bytes]:
        """Pick ``path_length`` relays and build the Sphinx setup packet.

        Returns the circuit (kept by the source) and the serialised packet to
        hand to the first relay.  The destination is the circuit's exit.
        """
        if path_length > MAX_HOPS:
            raise ProtocolError(
                f"sphinx routes at most {MAX_HOPS} hops, got {path_length}"
            )
        pool = [address for address in relays if address != destination]
        if len(pool) < path_length:
            raise ProtocolError(f"need at least {path_length} relays, got {len(pool)}")
        chosen = [str(a) for a in self.rng.choice(pool, size=path_length, replace=False)]
        session_keys = [generate_key(self.rng) for _ in chosen]
        packet = self._build_setup_packet(chosen, session_keys, destination)
        circuit = SphinxCircuit(
            hops=chosen, session_keys=session_keys, destination=destination
        )
        return circuit, packet.to_bytes()

    def _session_scalar(self) -> int:
        raw = generate_key(self.rng, size=ALPHA_SIZE)
        return 1 + int.from_bytes(raw, "big") % (GROUP_ORDER - 1)

    def _hop_secrets(self, hops: list[str]) -> tuple[list[int], list[bytes]]:
        """The per-hop ephemeral elements and shared secrets for one route."""
        exponent = self._session_scalar()
        alphas: list[int] = []
        secrets: list[bytes] = []
        for address in hops:
            node = self.directory.node(address)
            alpha = pow(GENERATOR, exponent, GROUP_PRIME)
            shared = _shared_secret(pow(node.dh_public, exponent, GROUP_PRIME))
            alphas.append(alpha)
            secrets.append(shared)
            exponent = (exponent * _blinding_factor(alpha, shared)) % GROUP_ORDER
        return alphas, secrets

    def _build_setup_packet(
        self, hops: list[str], session_keys: list[bytes], destination: str
    ) -> SphinxPacket:
        alphas, secrets = self._hop_secrets(hops)
        filler = _filler(secrets)
        # Deterministic pseudo-random padding fills the unused routing
        # region; it is keyed off the session scalar so rebuilding from the
        # same seed reproduces the packet bit-for-bit.
        pad_key = hashlib.sha256(
            b"sphinx-pad" + _element_bytes(alphas[0])
        ).digest()[:KEY_SIZE]
        pad = StreamCipher(pad_key).keystream(_NONCE, ROUTING_SIZE - HOP_SIZE)
        routing = b""
        mac = b"\x00" * MAC_SIZE  # an all-zero next-MAC marks the exit slot
        for index in range(len(hops) - 1, -1, -1):
            next_hop = hops[index + 1] if index + 1 < len(hops) else destination
            slot = _pack_slot(next_hop, session_keys[index], mac)
            if index == len(hops) - 1:
                routing = _xor(slot + pad, _stream(b"rho", secrets[index], ROUTING_SIZE))
                if filler:
                    routing = routing[: ROUTING_SIZE - len(filler)] + filler
            else:
                routing = _xor(
                    slot + routing[: ROUTING_SIZE - HOP_SIZE],
                    _stream(b"rho", secrets[index], ROUTING_SIZE),
                )
            mac = _mac(secrets[index], routing)
        return SphinxPacket(alpha=alphas[0], routing=routing, mac=mac)

    def wrap_data(self, circuit: SphinxCircuit, message: bytes) -> bytes:
        """Per-cell reference: pad to a cell, then layer one stream per hop."""
        cell = pack_cell(message)
        for session_key in reversed(circuit.session_keys):
            cell = StreamCipher(session_key).encrypt(cell, _NONCE)
        return cell

    def wrap_cells(self, circuit: SphinxCircuit, messages: list[bytes]) -> list[bytes]:
        """Batched wrap: one circuit keystream, one vectorised XOR per burst.

        Bit-identical to calling :meth:`wrap_data` per message (enforced by
        the ``sphinxbench`` gate).
        """
        if not messages:
            return []
        cells = np.frombuffer(
            b"".join(pack_cell(message) for message in messages), dtype=np.uint8
        ).reshape(len(messages), DATA_CELL_SIZE)
        wrapped = cells ^ _cell_mask(circuit.session_keys)
        return [row.tobytes() for row in wrapped]

    def open_delivered(self, cell: bytes) -> bytes:
        """Parse a fully-stripped cell back into the original message."""
        return unpack_cell(cell)


class SphinxRelay:
    """One Sphinx relay: peels constant-size packets and strips cell layers."""

    def __init__(self, address: str, node: SphinxNode) -> None:
        self.address = address
        self.node = node
        self.sessions: dict[int, tuple[bytes, str]] = {}
        self._next_session = 0

    def peel(self, packet: SphinxPacket) -> tuple[bytes, str, SphinxPacket]:
        """Verify, unwrap one layer and blind the ephemeral element.

        Returns ``(session_key, next_hop, next_packet)``; the forwarded
        packet is exactly :data:`PACKET_SIZE` bytes again.  Raises
        :class:`~repro.core.errors.ProtocolError` if the MAC fails.
        """
        shared = _shared_secret(pow(packet.alpha, self.node.dh_secret, GROUP_PRIME))
        if not hmac.compare_digest(_mac(shared, packet.routing), packet.mac):
            raise ProtocolError(f"sphinx MAC check failed at {self.address}")
        unrolled = _xor(
            packet.routing + b"\x00" * HOP_SIZE,
            _stream(b"rho", shared, ROUTING_SIZE + HOP_SIZE),
        )
        next_hop, session_key, next_mac = _unpack_slot(unrolled[:HOP_SIZE])
        blind = _blinding_factor(packet.alpha, shared)
        next_packet = SphinxPacket(
            alpha=pow(packet.alpha, blind, GROUP_PRIME),
            routing=unrolled[HOP_SIZE:],
            mac=next_mac,
        )
        return session_key, next_hop, next_packet

    def handle_setup(self, blob: bytes) -> tuple[int, str, bytes]:
        """Peel one layer: returns (circuit handle, next hop, forwarded packet)."""
        session_key, next_hop, next_packet = self.peel(SphinxPacket.from_bytes(blob))
        handle = self._next_session
        self._next_session += 1
        self.sessions[handle] = (session_key, next_hop)
        return handle, next_hop, next_packet.to_bytes()

    def _session(self, handle: int) -> tuple[bytes, str]:
        try:
            return self.sessions[handle]
        except KeyError as exc:
            raise ProtocolError(f"unknown circuit handle {handle}") from exc

    def handle_data(self, handle: int, cell: bytes) -> tuple[str, bytes]:
        """Strip this relay's keystream layer from one data cell."""
        session_key, next_hop = self._session(handle)
        return next_hop, StreamCipher(session_key).decrypt(cell, _NONCE)

    def strip_cells(self, handle: int, cells: list[bytes]) -> tuple[str, list[bytes]]:
        """Batched strip, bit-identical to per-cell :meth:`handle_data`."""
        session_key, next_hop = self._session(handle)
        if not cells:
            return next_hop, []
        stacked = np.frombuffer(b"".join(cells), dtype=np.uint8).reshape(
            len(cells), DATA_CELL_SIZE
        )
        stripped = stacked ^ _cell_mask([session_key])
        return next_hop, [row.tobytes() for row in stripped]


def run_sphinx_circuit(
    directory: SphinxDirectory,
    source: SphinxSource,
    relays: list[str],
    destination: str,
    path_length: int,
    messages: list[bytes],
) -> tuple[SphinxCircuit, list[bytes]]:
    """Functional end-to-end helper: build a circuit and push messages through.

    Returns the circuit and the plaintexts that reached the destination.
    Used by tests to confirm the construction peels correctly hop by hop.
    """
    relay_engines = {
        address: SphinxRelay(address, directory.node(address))
        for address in directory.addresses()
    }
    circuit, packet = source.build_circuit(relays, destination, path_length)
    handles: list[int] = []
    current = packet
    for hop in circuit.hops:
        handle, _next_hop, current = relay_engines[hop].handle_setup(current)
        handles.append(handle)
    received: list[bytes] = []
    for cell in source.wrap_cells(circuit, messages):
        for hop, handle in zip(circuit.hops, handles):
            _next_hop, cell = relay_engines[hop].handle_data(handle, cell)
        received.append(source.open_delivered(cell))
    return circuit, received
