"""Baseline systems: onion routing, onion + erasure codes, Chaum mixes."""

from .chaum import ChaumAnonymityResult, simulate_chaum_anonymity, sweep_chaum_anonymity
from .erasure import ErasureCoder, ErasureShare
from .onion import OnionCircuit, OnionDirectory, OnionRelay, OnionSource, run_circuit
from .onion_erasure import (
    MultiPathCircuits,
    OnionErasureSource,
    run_multipath_transfer,
)

__all__ = [
    "OnionDirectory",
    "OnionSource",
    "OnionRelay",
    "OnionCircuit",
    "run_circuit",
    "ErasureCoder",
    "ErasureShare",
    "OnionErasureSource",
    "MultiPathCircuits",
    "run_multipath_transfer",
    "ChaumAnonymityResult",
    "simulate_chaum_anonymity",
    "sweep_chaum_anonymity",
]
