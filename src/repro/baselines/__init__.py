"""Baseline systems: onion routing, onion + erasure codes, Chaum mixes.

The onion baselines also ship as :class:`~repro.overlay.runtime.ProtocolRuntime`
implementations (:mod:`repro.baselines.runtime`), so the throughput and
setup-latency figures drive them through the same driver as information
slicing.
"""

from .chaum import (
    ChaumAnonymityResult,
    ChaumTrialValues,
    simulate_chaum_anonymity,
    simulate_chaum_anonymity_batch,
    simulate_chaum_trials,
    sweep_chaum_anonymity,
)
from .erasure import ErasureCoder, ErasureShare
from .onion import OnionCircuit, OnionDirectory, OnionRelay, OnionSource, run_circuit
from .onion_erasure import (
    MultiPathCircuits,
    OnionErasureSource,
    run_multipath_transfer,
)
from .runtime import OnionErasureProtocolRuntime, OnionProtocolRuntime

__all__ = [
    "OnionDirectory",
    "OnionSource",
    "OnionRelay",
    "OnionCircuit",
    "run_circuit",
    "ErasureCoder",
    "ErasureShare",
    "OnionErasureSource",
    "MultiPathCircuits",
    "run_multipath_transfer",
    "ChaumAnonymityResult",
    "ChaumTrialValues",
    "simulate_chaum_anonymity",
    "simulate_chaum_anonymity_batch",
    "simulate_chaum_trials",
    "sweep_chaum_anonymity",
    "OnionProtocolRuntime",
    "OnionErasureProtocolRuntime",
]
