"""Onion routing with erasure codes over multiple circuits (§8.1).

The strongest churn-resilient variant of onion routing the paper can think
of: the sender builds ``d'`` node-disjoint onion circuits to the destination
and sends one erasure-coded share of every message down each.  The transfer
survives as long as at least ``d`` circuits stay fully alive — but unlike
information slicing there is no way to regenerate redundancy inside the
network, which is exactly the gap Figs. 16 and 17 quantify.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ProtocolError
from .erasure import ErasureCoder, ErasureShare
from .onion import OnionCircuit, OnionDirectory, OnionRelay, OnionSource


@dataclass
class MultiPathCircuits:
    """``d'`` node-disjoint circuits plus the erasure coder that feeds them."""

    circuits: list[OnionCircuit]
    setup_onions: list[bytes]
    coder: ErasureCoder

    @property
    def d_prime(self) -> int:
        return len(self.circuits)


class OnionErasureSource(OnionSource):
    """An onion source that stripes erasure-coded shares over disjoint circuits."""

    def build_multipath(
        self,
        relays: list[str],
        destination: str,
        path_length: int,
        d: int,
        d_prime: int,
    ) -> MultiPathCircuits:
        """Build ``d'`` circuits with disjoint relay sets."""
        if d_prime < d:
            raise ProtocolError(f"d' ({d_prime}) must be >= d ({d})")
        available = [address for address in relays if address != destination]
        if len(available) < d_prime * path_length:
            raise ProtocolError(
                f"need {d_prime * path_length} distinct relays for "
                f"{d_prime} disjoint circuits of length {path_length}"
            )
        shuffled = list(self.rng.permutation(available))
        circuits: list[OnionCircuit] = []
        onions: list[bytes] = []
        for index in range(d_prime):
            pool = [
                str(a)
                for a in shuffled[index * path_length : (index + 1) * path_length]
            ]
            circuit, onion = self.build_circuit(pool, destination, path_length)
            circuits.append(circuit)
            onions.append(onion)
        return MultiPathCircuits(
            circuits=circuits, setup_onions=onions, coder=ErasureCoder(d, d_prime)
        )

    def encode_message(
        self, multipath: MultiPathCircuits, message: bytes
    ) -> list[bytes]:
        """One wrapped data cell per circuit, carrying one erasure share each."""
        shares = multipath.coder.encode(message, self.rng)
        return [
            self.wrap_data(circuit, share.to_bytes())
            for circuit, share in zip(multipath.circuits, shares)
        ]


def run_multipath_transfer(
    directory: OnionDirectory,
    source: OnionErasureSource,
    multipath: MultiPathCircuits,
    messages: list[bytes],
    failed_relays: set[str] | None = None,
) -> list[bytes | None]:
    """Push messages through the multipath circuits, dropping failed relays.

    Returns the reconstructed plaintexts (``None`` where reconstruction was
    impossible because fewer than ``d`` circuits survived).  Used by tests and
    the Fig. 17 cross-validation.
    """
    failed_relays = failed_relays or set()
    relay_engines = {
        address: OnionRelay(address, directory.key_pair(address))
        for address in directory.addresses()
    }
    # Establish every circuit that does not traverse a failed relay.
    live_handles: dict[int, list[int]] = {}
    for index, (circuit, onion) in enumerate(
        zip(multipath.circuits, multipath.setup_onions)
    ):
        if any(hop in failed_relays for hop in circuit.hops):
            continue
        handles = []
        current = onion
        for hop in circuit.hops:
            handle, _next_hop, current = relay_engines[hop].handle_setup(current)
            handles.append(handle)
        live_handles[index] = handles

    results: list[bytes | None] = []
    for message in messages:
        cells = source.encode_message(multipath, message)
        shares: list[ErasureShare] = []
        for index, handles in live_handles.items():
            circuit = multipath.circuits[index]
            cell = cells[index]
            for hop, handle in zip(circuit.hops, handles):
                _next_hop, cell = relay_engines[hop].handle_data(handle, cell)
            shares.append(ErasureShare.from_bytes(cell, d=multipath.coder.d))
        if multipath.coder.can_decode(shares):
            results.append(multipath.coder.decode(shares))
        else:
            results.append(None)
    return results
