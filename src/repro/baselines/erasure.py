"""Erasure coding over message shares (Reed–Solomon-style, MDS).

Used by the "onion routing with erasure codes" baseline (§8.1): the sender
splits a message into ``d`` pieces, expands them to ``d'`` shares such that
any ``d`` shares reconstruct the message, and ships one share down each of
``d'`` independent onion circuits.  The codes are the same MDS (Cauchy)
generator matrices as information slicing's redundancy layer, so the two
schemes carry *exactly* the same overhead — the comparison isolates where the
redundancy lives (end-to-end paths vs. per-stage regeneration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.coder import CodedBlock, SliceCoder
from ..core.errors import CodingError


@dataclass(frozen=True)
class ErasureShare:
    """One share of an erasure-coded message."""

    index: int
    block: CodedBlock

    def to_bytes(self) -> bytes:
        return bytes([self.index]) + self.block.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes, d: int) -> "ErasureShare":
        if not data:
            raise CodingError("empty erasure share")
        return cls(index=data[0], block=CodedBlock.from_bytes(data[1:], d=d, index=data[0]))


class ErasureCoder:
    """Encode a message into ``d'`` shares, any ``d`` of which reconstruct it."""

    def __init__(self, d: int, d_prime: int) -> None:
        if d_prime < d:
            raise CodingError(f"d' ({d_prime}) must be >= d ({d})")
        self.d = d
        self.d_prime = d_prime
        self._coder = SliceCoder(d, d_prime)

    def encode(self, message: bytes, rng: np.random.Generator) -> list[ErasureShare]:
        blocks = self._coder.encode(message, rng)
        return [ErasureShare(index=i, block=block) for i, block in enumerate(blocks)]

    def decode(self, shares: list[ErasureShare]) -> bytes:
        return self._coder.decode([share.block for share in shares])

    def can_decode(self, shares: list[ErasureShare]) -> bool:
        return self._coder.can_decode([share.block for share in shares])

    @property
    def overhead(self) -> float:
        """Redundancy overhead R = (d' - d)/d."""
        return (self.d_prime - self.d) / self.d
