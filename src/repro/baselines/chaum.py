"""Chaum-mix anonymity baseline (the comparison curves of Fig. 7).

The paper compares information slicing's anonymity against classic Chaum
mixes / onion routing: a single chain of ``L`` mix nodes chosen from the same
overlay, a fraction ``f`` of which is malicious and colluding.  A malicious
mix knows its predecessor and successor; because layered encryption hides
everything else, colluding mixes can stitch their observations together only
when they are adjacent on the chain.

The model mirrors the information-slicing attacker analysis with ``d = 1``:

* if the first mix is malicious the source is exposed (it is the previous
  hop of a compromised node and there is nothing upstream of it);
* if the last mix is malicious the destination is exposed;
* otherwise the attacker's suspicion concentrates on the neighbours of its
  longest compromised run, and the entropy metric quantifies what remains.

Two engines implement the Monte-Carlo, mirroring
:mod:`repro.anonymity.simulation`:

* :func:`simulate_chaum_anonymity` — the scalar *reference*: one Python pass
  per trial, kept deliberately close to the prose above.
* :func:`simulate_chaum_anonymity_batch` — the vectorised engine behind
  Fig. 7: all trials are sampled as one ``(trials, hops)`` boolean mask, the
  longest compromised runs come out of the shared
  :func:`~repro.anonymity.attacker._longest_true_runs` kernel, and the
  entropy assignment (a pure function of the run length ``s`` once the
  parameter point is fixed) is tabulated once and gathered per trial.

Both engines draw their malicious masks through :func:`_sample_malicious`
(one bulk draw, stream-identical to the historical per-trial draws), so the
same seed yields bit-identical per-trial values from either — asserted in
``tests/test_chaum_batch.py`` and again inside the ``chaumbench`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..anonymity.attacker import _longest_true_runs
from ..anonymity.metrics import two_level_anonymity


@dataclass(frozen=True)
class ChaumAnonymityResult:
    """Average anonymity of the Chaum-mix baseline over many trials."""

    source_anonymity: float
    destination_anonymity: float
    trials: int


@dataclass(frozen=True)
class ChaumTrialValues:
    """Per-trial outcomes of one Monte-Carlo run, before averaging.

    Exposing the raw arrays lets the tests assert *exact* equivalence between
    the scalar and batched engines: same seed in, same per-trial values out.
    """

    source_anonymity: np.ndarray
    destination_anonymity: np.ndarray

    @property
    def trials(self) -> int:
        return int(self.source_anonymity.size)

    def result(self) -> ChaumAnonymityResult:
        return ChaumAnonymityResult(
            source_anonymity=float(self.source_anonymity.mean()),
            destination_anonymity=float(self.destination_anonymity.mean()),
            trials=self.trials,
        )


def _sample_malicious(
    trials: int, path_length: int, fraction_malicious: float, rng: np.random.Generator
) -> np.ndarray:
    """All trials' malicious masks in one ``(trials, hops)`` draw.

    ``Generator.random`` consumes its stream identically whether drawn in
    bulk or row by row, so this sampler is bit-compatible with the historical
    per-trial ``rng.random(path_length)`` loop.
    """
    return rng.random((trials, path_length)) < fraction_malicious


def _longest_run(flags: np.ndarray) -> tuple[int, int]:
    best_start, best_len, cur_start, cur_len = 0, 0, 0, 0
    for index, value in enumerate(flags):
        if value:
            if cur_len == 0:
                cur_start = index
            cur_len += 1
            if cur_len > best_len:
                best_start, best_len = cur_start, cur_len
        else:
            cur_len = 0
    return best_start, best_len


# -- entropy assignments as functions of the longest compromised run -------------


def _chain_anonymity_from_run(
    length: int, num_nodes: int, clean_nodes: int, path_length: int
) -> float:
    """Anonymity of the chain's hidden endpoint given the longest run ``length``.

    Source and destination use the same assignment (the chain is symmetric):
    the node immediately upstream (downstream) of the run is the prime
    suspect; it is the true endpoint only if the run touches the chain's end.
    """
    if length == 0:
        return two_level_anonymity(0, 0.0, clean_nodes, 1.0 / clean_nodes, num_nodes)
    p_suspect = 1.0 / max(path_length - length, 1)
    others = max(clean_nodes - 1, 1)
    p_other = (1.0 - p_suspect) / others
    return two_level_anonymity(1, p_suspect, others, p_other, num_nodes)


def _chain_source_anonymity(
    malicious: np.ndarray, num_nodes: int, clean_nodes: int, path_length: int
) -> float:
    if malicious[0]:
        return 0.0
    _start, length = _longest_run(malicious)
    return _chain_anonymity_from_run(length, num_nodes, clean_nodes, path_length)


def _chain_destination_anonymity(
    malicious: np.ndarray, num_nodes: int, clean_nodes: int, path_length: int
) -> float:
    if malicious[-1]:
        return 0.0
    _start, length = _longest_run(malicious)
    return _chain_anonymity_from_run(length, num_nodes, clean_nodes, path_length)


# -- engines ---------------------------------------------------------------------


def _scalar_chaum_values(
    malicious: np.ndarray, num_nodes: int, clean_nodes: int, path_length: int
) -> ChaumTrialValues:
    trials = malicious.shape[0]
    source = np.empty(trials, dtype=float)
    destination = np.empty(trials, dtype=float)
    for trial in range(trials):
        row = malicious[trial]
        source[trial] = _chain_source_anonymity(
            row, num_nodes, clean_nodes, path_length
        )
        destination[trial] = _chain_destination_anonymity(
            row, num_nodes, clean_nodes, path_length
        )
    return ChaumTrialValues(source_anonymity=source, destination_anonymity=destination)


def _batched_chaum_values(
    malicious: np.ndarray, num_nodes: int, clean_nodes: int, path_length: int
) -> ChaumTrialValues:
    _starts, lengths = _longest_true_runs(malicious)
    # For a fixed parameter point the assignment is a pure function of the
    # longest run length s in {0, ..., L}; tabulate once, gather per trial.
    table = np.array(
        [
            _chain_anonymity_from_run(int(s), num_nodes, clean_nodes, path_length)
            for s in range(path_length + 1)
        ]
    )
    values = table[lengths]
    source = np.where(malicious[:, 0], 0.0, values)
    destination = np.where(malicious[:, -1], 0.0, values)
    return ChaumTrialValues(source_anonymity=source, destination_anonymity=destination)


_ENGINES = {"scalar": _scalar_chaum_values, "batched": _batched_chaum_values}


def simulate_chaum_trials(
    num_nodes: int,
    path_length: int,
    fraction_malicious: float,
    trials: int = 1000,
    rng: np.random.Generator | None = None,
    engine: str = "batched",
) -> ChaumTrialValues:
    """Run one parameter point and return the raw per-trial values.

    ``engine`` selects ``"batched"`` (vectorised numpy, the default) or
    ``"scalar"`` (the per-trial reference loop).  Both consume randomness
    identically, so equal seeds give bit-identical per-trial values.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    try:
        evaluate = _ENGINES[engine]
    except KeyError:
        known = ", ".join(sorted(_ENGINES))
        raise ValueError(f"unknown engine {engine!r} (known: {known})") from None
    rng = np.random.default_rng() if rng is None else rng
    malicious = _sample_malicious(trials, path_length, fraction_malicious, rng)
    clean_nodes = max(int(num_nodes * (1.0 - fraction_malicious)), 1)
    return evaluate(malicious, num_nodes, clean_nodes, path_length)


def simulate_chaum_anonymity(
    num_nodes: int,
    path_length: int,
    fraction_malicious: float,
    trials: int = 1000,
    rng: np.random.Generator | None = None,
) -> ChaumAnonymityResult:
    """Monte-Carlo anonymity of a Chaum-mix chain (scalar reference engine)."""
    return simulate_chaum_trials(
        num_nodes, path_length, fraction_malicious, trials, rng, engine="scalar"
    ).result()


def simulate_chaum_anonymity_batch(
    num_nodes: int,
    path_length: int,
    fraction_malicious: float,
    trials: int = 1000,
    rng: np.random.Generator | None = None,
) -> ChaumAnonymityResult:
    """Vectorised twin of :func:`simulate_chaum_anonymity` (same seed, same values).

    All trials evaluate as numpy arrays in one pass; at the paper's 1000
    trials per point this is well over an order of magnitude faster than the
    scalar loop (asserted by the ``chaumbench`` experiment).
    """
    return simulate_chaum_trials(
        num_nodes, path_length, fraction_malicious, trials, rng, engine="batched"
    ).result()


def sweep_chaum_anonymity(
    num_nodes: int,
    path_length: int,
    fractions: list[float],
    trials: int = 1000,
    seed: int = 11,
) -> list[tuple[float, ChaumAnonymityResult]]:
    """Fig. 7's Chaum-mix comparison curves across malicious fractions."""
    results = []
    for index, fraction in enumerate(fractions):
        rng = np.random.default_rng(seed + index)
        results.append(
            (
                fraction,
                simulate_chaum_anonymity_batch(
                    num_nodes, path_length, fraction, trials, rng
                ),
            )
        )
    return results
