"""Chaum-mix anonymity baseline (the comparison curves of Fig. 7).

The paper compares information slicing's anonymity against classic Chaum
mixes / onion routing: a single chain of ``L`` mix nodes chosen from the same
overlay, a fraction ``f`` of which is malicious and colluding.  A malicious
mix knows its predecessor and successor; because layered encryption hides
everything else, colluding mixes can stitch their observations together only
when they are adjacent on the chain.

The model mirrors the information-slicing attacker analysis with ``d = 1``:

* if the first mix is malicious the source is exposed (it is the previous
  hop of a compromised node and there is nothing upstream of it);
* if the last mix is malicious the destination is exposed;
* otherwise the attacker's suspicion concentrates on the neighbours of its
  longest compromised run, and the entropy metric quantifies what remains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..anonymity.metrics import two_level_anonymity


@dataclass(frozen=True)
class ChaumAnonymityResult:
    """Average anonymity of the Chaum-mix baseline over many trials."""

    source_anonymity: float
    destination_anonymity: float
    trials: int


def _longest_run(flags: np.ndarray) -> tuple[int, int]:
    best_start, best_len, cur_start, cur_len = 0, 0, 0, 0
    for index, value in enumerate(flags):
        if value:
            if cur_len == 0:
                cur_start = index
            cur_len += 1
            if cur_len > best_len:
                best_start, best_len = cur_start, cur_len
        else:
            cur_len = 0
    return best_start, best_len


def simulate_chaum_anonymity(
    num_nodes: int,
    path_length: int,
    fraction_malicious: float,
    trials: int = 1000,
    rng: np.random.Generator | None = None,
) -> ChaumAnonymityResult:
    """Monte-Carlo anonymity of a Chaum-mix chain of ``path_length`` relays."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    rng = np.random.default_rng() if rng is None else rng
    src_total = 0.0
    dst_total = 0.0
    clean_nodes = max(int(num_nodes * (1.0 - fraction_malicious)), 1)
    for _ in range(trials):
        malicious = rng.random(path_length) < fraction_malicious
        src_total += _chain_source_anonymity(
            malicious, num_nodes, clean_nodes, path_length
        )
        dst_total += _chain_destination_anonymity(
            malicious, num_nodes, clean_nodes, path_length
        )
    return ChaumAnonymityResult(
        source_anonymity=src_total / trials,
        destination_anonymity=dst_total / trials,
        trials=trials,
    )


def _chain_source_anonymity(
    malicious: np.ndarray, num_nodes: int, clean_nodes: int, path_length: int
) -> float:
    if malicious[0]:
        return 0.0
    start, length = _longest_run(malicious)
    if length == 0:
        return two_level_anonymity(0, 0.0, clean_nodes, 1.0 / clean_nodes, num_nodes)
    # The node immediately upstream of the first compromised run is the prime
    # suspect; it is the true source only if the run starts at the chain head.
    p_suspect = 1.0 / max(path_length - length, 1)
    others = max(clean_nodes - 1, 1)
    p_other = (1.0 - p_suspect) / others
    return two_level_anonymity(1, p_suspect, others, p_other, num_nodes)


def _chain_destination_anonymity(
    malicious: np.ndarray, num_nodes: int, clean_nodes: int, path_length: int
) -> float:
    if malicious[-1]:
        return 0.0
    start, length = _longest_run(malicious)
    if length == 0:
        return two_level_anonymity(0, 0.0, clean_nodes, 1.0 / clean_nodes, num_nodes)
    p_suspect = 1.0 / max(path_length - length, 1)
    others = max(clean_nodes - 1, 1)
    p_other = (1.0 - p_suspect) / others
    return two_level_anonymity(1, p_suspect, others, p_other, num_nodes)


def sweep_chaum_anonymity(
    num_nodes: int,
    path_length: int,
    fractions: list[float],
    trials: int = 1000,
    seed: int = 11,
) -> list[tuple[float, ChaumAnonymityResult]]:
    """Fig. 7's Chaum-mix comparison curves across malicious fractions."""
    results = []
    for index, fraction in enumerate(fractions):
        rng = np.random.default_rng(seed + index)
        results.append(
            (
                fraction,
                simulate_chaum_anonymity(
                    num_nodes, path_length, fraction, trials, rng
                ),
            )
        )
    return results
