"""Onion-routing baseline (§2, §7).

The comparison protocol used throughout the paper's evaluation: the sender
wraps the route in layers of public-key encryption (one per relay), each
relay peels a layer to learn its next hop and a symmetric session key, and
data cells are wrapped in the session keys so each relay strips exactly one
symmetric layer.

Built on the same substrates as information slicing — the keystream cipher
and the simulated public-key envelopes of :mod:`repro.crypto` — so the two
protocols can be compared over the same simulated overlay with the same CPU
cost model.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..core.errors import ProtocolError
from ..crypto.keys import generate_key
from ..crypto.public_key import SimulatedKeyPair
from ..crypto.symmetric import StreamCipher

_TERMINATOR = "__exit__"
_NONCE = b"\x00" * 8


@dataclass
class OnionDirectory:
    """The trusted directory of relay public keys onion routing requires.

    Information slicing's headline claim is that it needs no such directory;
    the baseline gets one for free so the comparison is as favourable to
    onion routing as possible.
    """

    key_pairs: dict[str, SimulatedKeyPair] = field(default_factory=dict)

    @classmethod
    def for_relays(
        cls, addresses: list[str], rng: np.random.Generator
    ) -> "OnionDirectory":
        return cls(
            key_pairs={
                address: SimulatedKeyPair.generate(address, rng)
                for address in addresses
            }
        )

    def key_pair(self, address: str) -> SimulatedKeyPair:
        try:
            return self.key_pairs[address]
        except KeyError as exc:
            raise ProtocolError(f"{address} is not in the onion directory") from exc

    def addresses(self) -> list[str]:
        return list(self.key_pairs)


@dataclass
class OnionCircuit:
    """A built circuit: the relay chain and the per-hop session keys."""

    hops: list[str]
    session_keys: list[bytes]
    destination: str

    @property
    def length(self) -> int:
        return len(self.hops)


def _pack_layer(next_hop: str, session_key: bytes, inner: bytes) -> bytes:
    encoded = next_hop.encode("utf-8")
    return (
        struct.pack(">B", len(encoded))
        + encoded
        + struct.pack(">B", len(session_key))
        + session_key
        + inner
    )


def _unpack_layer(data: bytes) -> tuple[str, bytes, bytes]:
    try:
        name_len = data[0]
        next_hop = data[1 : 1 + name_len].decode("utf-8")
        offset = 1 + name_len
        key_len = data[offset]
        session_key = bytes(data[offset + 1 : offset + 1 + key_len])
        inner = bytes(data[offset + 1 + key_len :])
    except (IndexError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed onion layer: {exc}") from exc
    return next_hop, session_key, inner


class OnionSource:
    """Builds circuits and produces the setup onion and data cells."""

    def __init__(self, directory: OnionDirectory, rng: np.random.Generator) -> None:
        self.directory = directory
        self.rng = rng

    def build_circuit(
        self, relays: list[str], destination: str, path_length: int
    ) -> tuple[OnionCircuit, bytes]:
        """Pick ``path_length`` relays and wrap the setup onion around them.

        Returns the circuit (kept by the source) and the onion to hand to the
        first relay.  The destination is the circuit's exit.
        """
        pool = [address for address in relays if address != destination]
        if len(pool) < path_length:
            raise ProtocolError(
                f"need at least {path_length} relays, got {len(pool)}"
            )
        chosen = [str(a) for a in self.rng.choice(pool, size=path_length, replace=False)]
        session_keys = [generate_key(self.rng) for _ in chosen]
        circuit = OnionCircuit(
            hops=chosen, session_keys=session_keys, destination=destination
        )
        # Build the onion inside-out: the innermost layer tells the last relay
        # to deliver to the destination.
        inner = _pack_layer(destination, session_keys[-1], b"")
        onion = self.directory.key_pair(chosen[-1]).encrypt(inner)
        for hop_index in range(path_length - 2, -1, -1):
            layer = _pack_layer(
                chosen[hop_index + 1], session_keys[hop_index], onion
            )
            onion = self.directory.key_pair(chosen[hop_index]).encrypt(layer)
        return circuit, onion

    def wrap_data(self, circuit: OnionCircuit, message: bytes) -> bytes:
        """Layer a data cell so each relay strips exactly one symmetric layer."""
        cell = bytes(message)
        for session_key in reversed(circuit.session_keys):
            cell = StreamCipher(session_key).encrypt(cell, _NONCE)
        return cell

    def public_key_operations(self, circuit: OnionCircuit) -> int:
        """Public-key encryptions performed by the source during setup."""
        return circuit.length


class OnionRelay:
    """One onion-routing relay: peels setup onions and data layers."""

    def __init__(self, address: str, key_pair: SimulatedKeyPair) -> None:
        self.address = address
        self.key_pair = key_pair
        self.sessions: dict[int, tuple[bytes, str]] = {}
        self._next_session = 0

    def handle_setup(self, onion: bytes) -> tuple[int, str, bytes]:
        """Peel one layer: returns (circuit handle, next hop, remaining onion)."""
        layer = self.key_pair.decrypt(onion)
        next_hop, session_key, inner = _unpack_layer(layer)
        handle = self._next_session
        self._next_session += 1
        self.sessions[handle] = (session_key, next_hop)
        return handle, next_hop, inner

    def handle_data(self, handle: int, cell: bytes) -> tuple[str, bytes]:
        """Strip this relay's symmetric layer from a data cell."""
        try:
            session_key, next_hop = self.sessions[handle]
        except KeyError as exc:
            raise ProtocolError(f"unknown circuit handle {handle}") from exc
        return next_hop, StreamCipher(session_key).decrypt(cell, _NONCE)


def run_circuit(
    directory: OnionDirectory,
    source: OnionSource,
    relays: list[str],
    destination: str,
    path_length: int,
    messages: list[bytes],
) -> tuple[OnionCircuit, list[bytes]]:
    """Functional end-to-end helper: build a circuit and push messages through it.

    Returns the circuit and the plaintexts that reached the destination.  Used
    by tests to confirm the baseline is a faithful onion implementation (each
    relay sees only its predecessor and successor, data is layered).
    """
    relay_engines = {
        address: OnionRelay(address, directory.key_pair(address))
        for address in directory.addresses()
    }
    circuit, onion = source.build_circuit(relays, destination, path_length)
    handles: list[int] = []
    current = onion
    for hop in circuit.hops:
        handle, next_hop, current = relay_engines[hop].handle_setup(current)
        handles.append(handle)
    received: list[bytes] = []
    for message in messages:
        cell = source.wrap_data(circuit, message)
        for hop, handle in zip(circuit.hops, handles):
            next_hop, cell = relay_engines[hop].handle_data(handle, cell)
        received.append(cell)
    return circuit, received
