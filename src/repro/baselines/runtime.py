"""Baseline protocol runtimes over the simulated overlay substrate.

Onion routing (§2, §7) and onion-routing-with-erasure-codes (§8.1) as
:class:`~repro.overlay.runtime.ProtocolRuntime` implementations, so the
throughput and setup-latency experiments (Figs. 11–15) drive every scheme —
information slicing and both baselines — through the *same* driver over the
*same* substrate, rather than each figure keeping a bespoke forwarding loop.

The runtimes use the real baseline engines (:class:`OnionSource` /
:class:`OnionRelay` peel actual layered envelopes; the erasure variant ships
real :class:`ErasureShare` bytes), while the simulated CPU charges mirror the
historical cost model exactly: the source pays one symmetric pass per layer
per cell (and one public-key encryption per layer during setup), every relay
pays one symmetric pass per cell (one public-key decryption plus the daemon
handling constant during setup), and each hop is one connection.  Like the
slicing runtime, bursts ship in ``batch_chunk``-sized
:meth:`~repro.overlay.node.SimulatedOverlayNetwork.transmit_batch` chunks —
one simulator event per chunk, per-packet serialisation accounted exactly.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ProtocolError
from ..overlay.node import (
    DEFAULT_BATCH_CHUNK,
    DEFAULT_SETUP_PROCESSING_OVERHEAD,
    FlowProgress,
    OverlayTransport,
)
from ..overlay.runtime import ProtocolRuntime, register_runtime
from .erasure import ErasureShare
from .onion import OnionCircuit, OnionDirectory, OnionRelay, OnionSource
from .onion_erasure import MultiPathCircuits, OnionErasureSource
from .sphinx import SphinxDirectory, SphinxRelay, SphinxSource, unpack_cell


class _CircuitDriver:
    """Shared machinery: drive one onion circuit's setup and data cells."""

    def __init__(
        self,
        runtime: ProtocolRuntime,
        engines: dict[str, OnionRelay],
        source_address: str,
        circuit: OnionCircuit,
        setup_processing_overhead: float,
        batch_chunk: int,
    ) -> None:
        self.runtime = runtime
        self.substrate = runtime.substrate
        self.engines = engines
        self.circuit = circuit
        self.chain = [source_address, *circuit.hops, circuit.destination]
        self.handles: dict[str, int] = {}
        self.setup_finished_at: float | None = None
        self.setup_processing_overhead = setup_processing_overhead
        self.batch_chunk = batch_chunk

    # -- setup ---------------------------------------------------------------------

    def start_setup(self, onion: bytes) -> None:
        self._forward_setup(0, onion)

    def _forward_setup(self, hop_index: int, blob: bytes) -> None:
        chain = self.chain
        sender = chain[hop_index]
        receiver = chain[hop_index + 1]
        network = self.substrate.network
        if hop_index == 0:
            # The source performs one public-key encryption per layer.
            cpu = network.resources(sender).pk_encrypt_time() * self.circuit.length
        else:
            # The forwarding relay already peeled its layer: one public-key
            # decryption plus the daemon's per-setup-packet handling cost.
            resources = network.resources(sender)
            cpu = (
                resources.pk_decrypt_time()
                + self.setup_processing_overhead * resources.load_factor
            )

        def on_delivered(delivered: bytes) -> None:
            sim = self.substrate.sim
            self.runtime.progress.relay_decode_times.setdefault(receiver, sim.now)
            handle, _next_hop, inner = self.engines[receiver].handle_setup(delivered)
            self.handles[receiver] = handle
            if hop_index + 1 == len(chain) - 2:
                # Final relay: pay its peel on its own CPU, then the
                # acknowledgement travels back up the chain.
                peel = self.substrate.reserve_cpu(
                    receiver, network.resources(receiver).pk_decrypt_time()
                )
                ack_latency = sum(
                    network.latency(chain[i + 1], chain[i])
                    for i in range(len(chain) - 2)
                )
                sim.schedule_at(
                    peel + ack_latency, lambda: self._finish_setup(sim.now)
                )
            else:
                self._forward_setup(hop_index + 1, inner)

        self.substrate.transmit_blob(
            sender,
            receiver,
            blob,
            on_delivered,
            sender_cpu_seconds=cpu,
        )

    def _finish_setup(self, now: float) -> None:
        self.setup_finished_at = now

    @property
    def established(self) -> bool:
        return len(self.handles) >= self.circuit.length

    # -- data ----------------------------------------------------------------------

    def send_cells(
        self, seqs: list[int], cells: list[bytes], source_cpu_per_byte_factor: int
    ) -> None:
        """Ship wrapped data cells down the circuit in pipelined chunks."""
        chunk = self.batch_chunk
        for start in range(0, len(cells), chunk):
            self._forward_cells(
                0,
                seqs[start : start + chunk],
                cells[start : start + chunk],
                source_cpu_per_byte_factor,
            )

    def _forward_cells(
        self,
        hop_index: int,
        seqs: list[int],
        cells: list[bytes],
        source_layers: int,
    ) -> None:
        chain = self.chain
        sender = chain[hop_index]
        receiver = chain[hop_index + 1]
        resources = self.substrate.network.resources(sender)
        if hop_index == 0:
            # The source layered every cell once per hop.
            cpus = [
                resources.symmetric_time(len(cell)) * source_layers for cell in cells
            ]
        else:
            cpus = [resources.symmetric_time(len(cell)) for cell in cells]

        def on_delivered(delivered: list[bytes], arrivals: list[float]) -> None:
            if receiver == self.circuit.destination:
                self.runtime._deliver_cells(self.circuit, seqs, delivered)
                return
            handle = self.handles.get(receiver)
            if handle is None:
                return  # circuit never established through this relay
            stripped = [
                self.engines[receiver].handle_data(handle, cell)[1]
                for cell in delivered
            ]
            self._forward_cells(hop_index + 1, seqs, stripped, source_layers)

        self.substrate.transmit_blobs(
            sender,
            receiver,
            cells,
            on_delivered,
            sender_cpu_seconds=cpus,
        )


class OnionProtocolRuntime(ProtocolRuntime):
    """Classic onion routing: one circuit of ``path_length`` relays."""

    scheme = "onion"

    def __init__(
        self,
        substrate: OverlayTransport,
        source_address: str,
        path_length: int,
        rng: np.random.Generator | None = None,
        setup_processing_overhead: float = DEFAULT_SETUP_PROCESSING_OVERHEAD,
        batch_chunk: int = DEFAULT_BATCH_CHUNK,
    ) -> None:
        super().__init__(substrate)
        self.source_address = source_address
        self.path_length = path_length
        self.rng = np.random.default_rng() if rng is None else rng
        self.setup_processing_overhead = setup_processing_overhead
        self.batch_chunk = batch_chunk
        self.delivered: dict[int, bytes] = {}
        self._driver: _CircuitDriver | None = None
        self._source: OnionSource | None = None
        self._setup_started_at: float | None = None
        self._next_seq = 0

    def establish(self, relays: list[str], destination: str) -> FlowProgress:
        pool = [address for address in relays if address != destination]
        directory = OnionDirectory.for_relays(pool, self.rng)
        self._source = OnionSource(directory, self.rng)
        circuit, onion = self._source.build_circuit(pool, destination, self.path_length)
        engines = {
            address: OnionRelay(address, directory.key_pair(address))
            for address in directory.addresses()
        }
        self.progress = FlowProgress(setup_injected_at=self.sim.now)
        self._setup_started_at = self.sim.now
        self._driver = _CircuitDriver(
            self,
            engines,
            self.source_address,
            circuit,
            self.setup_processing_overhead,
            self.batch_chunk,
        )
        self._driver.start_setup(onion)
        return self.progress

    def send_messages(self, messages: list[bytes]) -> None:
        assert self._driver is not None, "establish() must run before send_messages()"
        source = self._source
        assert source is not None
        seqs = list(range(self._next_seq, self._next_seq + len(messages)))
        self._next_seq += len(messages)
        cells = [
            source.wrap_data(self._driver.circuit, message) for message in messages
        ]
        self._driver.send_cells(seqs, cells, self.path_length)

    def _deliver_cells(
        self, circuit: OnionCircuit, seqs: list[int], cells: list[bytes]
    ) -> None:
        now = self.sim.now
        for seq, cell in zip(seqs, cells):
            if seq in self.delivered:
                continue
            self.delivered[seq] = cell
            self.progress.delivered_messages[seq] = now
            self.progress.delivered_bytes += len(cell)
            if self.progress.first_delivery_at is None:
                self.progress.first_delivery_at = now
            self.progress.last_delivery_at = now

    def setup_seconds(self) -> float | None:
        if self._driver is None or self._driver.setup_finished_at is None:
            return None
        return self._driver.setup_finished_at - (self._setup_started_at or 0.0)

    def delivered_plaintexts(self) -> dict[int, bytes]:
        return dict(self.delivered)


class SphinxProtocolRuntime(OnionProtocolRuntime):
    """Sphinx-format onion routing: one circuit, constant-size packets.

    Same chain topology and cost structure as the classic onion runtime —
    one circuit of ``path_length`` relays, one public-key-grade operation
    per hop during setup (here the simulated Diffie-Hellman exchange), one
    symmetric pass per relay per cell — but the on-wire artifacts never
    change size: every setup packet is ``PACKET_SIZE`` bytes at every hop
    and every data cell is ``DATA_CELL_SIZE`` bytes at every hop, so packet
    lengths leak neither the hop position nor the message length.  The
    delivered plaintexts are the *unpadded* messages, so delivered bytes
    (and the parity digest) stay goodput-comparable with the other schemes.
    """

    scheme = "sphinx"

    def establish(self, relays: list[str], destination: str) -> FlowProgress:
        pool = [address for address in relays if address != destination]
        directory = SphinxDirectory.for_relays(pool, self.rng)
        self._source = SphinxSource(directory, self.rng)
        circuit, packet = self._source.build_circuit(
            pool, destination, self.path_length
        )
        engines = {
            address: SphinxRelay(address, directory.node(address))
            for address in directory.addresses()
        }
        self.progress = FlowProgress(setup_injected_at=self.sim.now)
        self._setup_started_at = self.sim.now
        self._driver = _CircuitDriver(
            self,
            engines,
            self.source_address,
            circuit,
            self.setup_processing_overhead,
            self.batch_chunk,
        )
        self._driver.start_setup(packet)
        return self.progress

    def send_messages(self, messages: list[bytes]) -> None:
        assert self._driver is not None, "establish() must run before send_messages()"
        source = self._source
        assert source is not None
        seqs = list(range(self._next_seq, self._next_seq + len(messages)))
        self._next_seq += len(messages)
        cells = source.wrap_cells(self._driver.circuit, messages)
        self._driver.send_cells(seqs, cells, self.path_length)

    def _deliver_cells(
        self, circuit: OnionCircuit, seqs: list[int], cells: list[bytes]
    ) -> None:
        now = self.sim.now
        for seq, cell in zip(seqs, cells):
            if seq in self.delivered:
                continue
            try:
                message = unpack_cell(cell)
            except ProtocolError:
                continue  # a cell that crossed a never-established circuit
            self.delivered[seq] = message
            self.progress.delivered_messages[seq] = now
            self.progress.delivered_bytes += len(message)
            if self.progress.first_delivery_at is None:
                self.progress.first_delivery_at = now
            self.progress.last_delivery_at = now


class OnionErasureProtocolRuntime(ProtocolRuntime):
    """Onion routing with erasure codes over ``d'`` node-disjoint circuits (§8.1)."""

    scheme = "onion-erasure"

    def __init__(
        self,
        substrate: OverlayTransport,
        source_address: str,
        path_length: int,
        d: int,
        d_prime: int,
        rng: np.random.Generator | None = None,
        setup_processing_overhead: float = DEFAULT_SETUP_PROCESSING_OVERHEAD,
        batch_chunk: int = DEFAULT_BATCH_CHUNK,
    ) -> None:
        super().__init__(substrate)
        self.source_address = source_address
        self.path_length = path_length
        self.d = d
        self.d_prime = d_prime
        self.rng = np.random.default_rng() if rng is None else rng
        self.setup_processing_overhead = setup_processing_overhead
        self.batch_chunk = batch_chunk
        self.delivered: dict[int, bytes] = {}
        self._multipath: MultiPathCircuits | None = None
        self._drivers: list[_CircuitDriver] = []
        self._source: OnionErasureSource | None = None
        self._setup_started_at: float | None = None
        self._shares: dict[int, list[ErasureShare]] = {}
        self._next_seq = 0

    def establish(self, relays: list[str], destination: str) -> FlowProgress:
        pool = [address for address in relays if address != destination]
        directory = OnionDirectory.for_relays(pool, self.rng)
        self._source = OnionErasureSource(directory, self.rng)
        multipath = self._source.build_multipath(
            pool, destination, self.path_length, self.d, self.d_prime
        )
        self._multipath = multipath
        engines = {
            address: OnionRelay(address, directory.key_pair(address))
            for address in directory.addresses()
        }
        self.progress = FlowProgress(setup_injected_at=self.sim.now)
        self._setup_started_at = self.sim.now
        self._drivers = []
        for circuit, onion in zip(multipath.circuits, multipath.setup_onions):
            driver = _CircuitDriver(
                self,
                engines,
                self.source_address,
                circuit,
                self.setup_processing_overhead,
                self.batch_chunk,
            )
            self._drivers.append(driver)
            driver.start_setup(onion)
        return self.progress

    def send_messages(self, messages: list[bytes]) -> None:
        assert self._multipath is not None, "establish() must run first"
        source = self._source
        assert source is not None
        seqs = list(range(self._next_seq, self._next_seq + len(messages)))
        self._next_seq += len(messages)
        # One wrapped share per (message, circuit); ship per circuit so each
        # connection sees one pipelined burst.
        per_circuit: list[list[bytes]] = [[] for _ in self._drivers]
        for message in messages:
            for index, cell in enumerate(source.encode_message(self._multipath, message)):
                per_circuit[index].append(cell)
        for driver, cells in zip(self._drivers, per_circuit):
            driver.send_cells(seqs, cells, self.path_length)

    def _deliver_cells(
        self, circuit: OnionCircuit, seqs: list[int], cells: list[bytes]
    ) -> None:
        assert self._multipath is not None
        coder = self._multipath.coder
        now = self.sim.now
        for seq, cell in zip(seqs, cells):
            if seq in self.delivered:
                continue
            shares = self._shares.setdefault(seq, [])
            shares.append(ErasureShare.from_bytes(cell, d=coder.d))
            if len(shares) < coder.d or not coder.can_decode(shares):
                continue
            message = coder.decode(shares)
            self.delivered[seq] = message
            del self._shares[seq]
            self.progress.delivered_messages[seq] = now
            self.progress.delivered_bytes += len(message)
            if self.progress.first_delivery_at is None:
                self.progress.first_delivery_at = now
            self.progress.last_delivery_at = now

    def setup_seconds(self) -> float | None:
        """Time until the last of the ``d'`` circuits acknowledged its setup."""
        finished = [driver.setup_finished_at for driver in self._drivers]
        if not finished or any(at is None for at in finished):
            return None
        return max(finished) - (self._setup_started_at or 0.0)

    def delivered_plaintexts(self) -> dict[int, bytes]:
        return dict(self.delivered)


register_runtime(OnionProtocolRuntime.scheme, OnionProtocolRuntime)
register_runtime(OnionErasureProtocolRuntime.scheme, OnionErasureProtocolRuntime)
register_runtime(SphinxProtocolRuntime.scheme, SphinxProtocolRuntime)
