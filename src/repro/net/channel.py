"""Sync-socket and asyncio adapters mounting the secure transport.

Both TCP substrates speak 4-byte length-prefixed frames.  This module gives
each of them a *channel* object with the same two-method surface —
``send_frame(payload)`` / ``recv_frame() -> bytes | None`` — in plain and
secure flavours, plus the handshake drivers that run the three acts over a
blocking socket (workers) or an asyncio stream pair (the coordinator, the
aio overlay).  Above a channel the substrates are transport-agnostic, which
is what keeps merged artifacts byte-identical across ``plain`` and
``secure`` runs.

The responder-side accept functions check the initiator's authenticated
static key against the allowlist and raise
:class:`~repro.core.errors.HandshakeError` *before* returning a channel, so
an unauthorized peer never gets a single application frame processed.
"""

from __future__ import annotations

import asyncio
import os
import socket
import struct
from typing import Callable

from ..core.errors import HandshakeError, PacketFormatError
from .secure import (
    ACT_ONE_SIZE,
    ACT_THREE_SIZE,
    ACT_TWO_SIZE,
    LENGTH_CIPHERTEXT_SIZE,
    MAX_FRAME_BYTES,
    HandshakeState,
    SecureSession,
    StaticKeyPair,
)

_FRAME_HEADER = struct.Struct(">I")


# -- sync-socket primitives ---------------------------------------------------------


def _recv_exactly(sock: socket.socket, size: int) -> bytes | None:
    """Read exactly ``size`` bytes; ``None`` on clean EOF before the first."""
    chunks: list[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if not chunks:
                return None
            raise PacketFormatError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_handshake(sock: socket.socket, size: int, act: str) -> bytes:
    data = _recv_exactly(sock, size)
    if data is None:
        raise HandshakeError(f"connection closed before {act}")
    return data


class SyncFrameChannel:
    """Plain length-prefixed frames over a blocking socket."""

    transport = "plain"

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock

    def send_frame(self, payload: bytes) -> None:
        if len(payload) > MAX_FRAME_BYTES:
            raise PacketFormatError(
                f"frame payload of {len(payload)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
        self.sock.sendall(_FRAME_HEADER.pack(len(payload)) + payload)

    def recv_frame(self) -> bytes | None:
        header = _recv_exactly(self.sock, _FRAME_HEADER.size)
        if header is None:
            return None
        (length,) = _FRAME_HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise PacketFormatError(
                f"frame declares {length} bytes, over the {MAX_FRAME_BYTES}-byte limit"
            )
        payload = _recv_exactly(self.sock, length)
        if payload is None or len(payload) != length:
            raise PacketFormatError("truncated frame payload")
        return payload


class SecureSyncFrameChannel:
    """AEAD-protected frames over a blocking socket (established session)."""

    transport = "secure"

    def __init__(self, sock: socket.socket, session: SecureSession) -> None:
        self.sock = sock
        self.session = session

    def send_frame(self, payload: bytes) -> None:
        self.sock.sendall(self.session.encrypt_frame(payload))

    def recv_frame(self) -> bytes | None:
        header = _recv_exactly(self.sock, LENGTH_CIPHERTEXT_SIZE)
        if header is None:
            return None
        body_size = self.session.decrypt_length(header)
        body = _recv_exactly(self.sock, body_size)
        if body is None or len(body) != body_size:
            raise PacketFormatError("truncated encrypted frame body")
        return self.session.decrypt_body(body)


def connect_secure_sync(
    sock: socket.socket,
    keypair: StaticKeyPair,
    remote_public: bytes,
    entropy: Callable[[int], bytes] = os.urandom,
) -> SecureSyncFrameChannel:
    """Run the initiator side of the handshake over a connected socket."""
    handshake = HandshakeState.initiator(keypair, remote_public, entropy=entropy)
    sock.sendall(handshake.write_act_one())
    handshake.read_act_two(_recv_handshake(sock, ACT_TWO_SIZE, "act two"))
    sock.sendall(handshake.write_act_three())
    return SecureSyncFrameChannel(sock, handshake.session())


def accept_secure_sync(
    sock: socket.socket,
    keypair: StaticKeyPair,
    authorized: frozenset[bytes],
    entropy: Callable[[int], bytes] = os.urandom,
) -> SecureSyncFrameChannel:
    """Run the responder side over a connected socket; enforce the allowlist."""
    handshake = HandshakeState.responder(keypair, entropy=entropy)
    handshake.read_act_one(_recv_handshake(sock, ACT_ONE_SIZE, "act one"))
    sock.sendall(handshake.write_act_two())
    remote = handshake.read_act_three(
        _recv_handshake(sock, ACT_THREE_SIZE, "act three")
    )
    if remote not in authorized:
        raise HandshakeError(
            f"unauthorized static key {remote.hex()[:16]}… rejected by allowlist"
        )
    return SecureSyncFrameChannel(sock, handshake.session())


# -- asyncio adapters ---------------------------------------------------------------


async def _read_handshake(reader: asyncio.StreamReader, size: int, act: str) -> bytes:
    try:
        return await reader.readexactly(size)
    except asyncio.IncompleteReadError:
        raise HandshakeError(f"connection closed before {act}") from None


class AioFrameChannel:
    """Plain length-prefixed frames over an asyncio stream pair."""

    transport = "plain"

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer

    async def send_frame(self, payload: bytes) -> None:
        if len(payload) > MAX_FRAME_BYTES:
            raise PacketFormatError(
                f"frame payload of {len(payload)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
        self.writer.write(_FRAME_HEADER.pack(len(payload)) + payload)
        await self.writer.drain()

    async def recv_frame(self) -> bytes | None:
        try:
            header = await self.reader.readexactly(_FRAME_HEADER.size)
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise PacketFormatError("truncated frame header") from None
            return None
        (length,) = _FRAME_HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise PacketFormatError(
                f"frame declares {length} bytes, over the {MAX_FRAME_BYTES}-byte limit"
            )
        try:
            return await self.reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise PacketFormatError("truncated frame payload") from None


class SecureAioFrameChannel:
    """AEAD-protected frames over an asyncio stream pair."""

    transport = "secure"

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        session: SecureSession,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.session = session

    async def send_frame(self, payload: bytes) -> None:
        # Encrypt and hand to the transport in one step with no await in
        # between, so nonce order always matches wire order even when
        # several coroutines send on the same channel.
        self.writer.write(self.session.encrypt_frame(payload))
        await self.writer.drain()

    async def recv_frame(self) -> bytes | None:
        try:
            header = await self.reader.readexactly(LENGTH_CIPHERTEXT_SIZE)
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise PacketFormatError("truncated encrypted length prefix") from None
            return None
        body_size = self.session.decrypt_length(header)
        try:
            body = await self.reader.readexactly(body_size)
        except asyncio.IncompleteReadError:
            raise PacketFormatError("truncated encrypted frame body") from None
        return self.session.decrypt_body(body)


async def connect_secure_aio(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    keypair: StaticKeyPair,
    remote_public: bytes,
    entropy: Callable[[int], bytes] = os.urandom,
) -> SecureAioFrameChannel:
    """Run the initiator side of the handshake over an asyncio stream pair."""
    handshake = HandshakeState.initiator(keypair, remote_public, entropy=entropy)
    writer.write(handshake.write_act_one())
    await writer.drain()
    handshake.read_act_two(await _read_handshake(reader, ACT_TWO_SIZE, "act two"))
    writer.write(handshake.write_act_three())
    await writer.drain()
    return SecureAioFrameChannel(reader, writer, handshake.session())


async def accept_secure_aio(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    keypair: StaticKeyPair,
    authorized: frozenset[bytes],
    entropy: Callable[[int], bytes] = os.urandom,
) -> SecureAioFrameChannel:
    """Run the responder side over an asyncio stream pair; enforce the allowlist."""
    handshake = HandshakeState.responder(keypair, entropy=entropy)
    handshake.read_act_one(await _read_handshake(reader, ACT_ONE_SIZE, "act one"))
    writer.write(handshake.write_act_two())
    await writer.drain()
    remote = handshake.read_act_three(
        await _read_handshake(reader, ACT_THREE_SIZE, "act three")
    )
    if remote not in authorized:
        raise HandshakeError(
            f"unauthorized static key {remote.hex()[:16]}… rejected by allowlist"
        )
    return SecureAioFrameChannel(reader, writer, handshake.session())
