"""Authenticated cross-host transport for the repro TCP substrates.

:mod:`repro.net.secure` holds the pure-logic Noise-style handshake and
cipher states, :mod:`repro.net.keyfiles` the on-disk key and allowlist
formats, and :mod:`repro.net.channel` the sync-socket and asyncio frame
adapters that both the aio overlay backend and the distributed
coordinator/worker protocol mount below their existing framing.
"""

from __future__ import annotations

from .keyfiles import (
    TransportCredential,
    load_allowlist,
    load_keypair,
    load_public_key,
    write_keypair,
)
from .secure import (
    CipherState,
    HandshakeState,
    SecureSession,
    StaticKeyPair,
    aead_decrypt,
    aead_encrypt,
)

__all__ = [
    "CipherState",
    "HandshakeState",
    "SecureSession",
    "StaticKeyPair",
    "TransportCredential",
    "aead_decrypt",
    "aead_encrypt",
    "load_allowlist",
    "load_keypair",
    "load_public_key",
    "write_keypair",
]
