"""On-disk key material for the secure transport.

A fleet deployment provisions three kinds of file (see
``docs/deployment.md``):

* a **secret key file** — 64 hex characters (32 bytes), written with mode
  ``0600`` by ``python -m repro.experiments keygen``;
* its **public key file** — the derived group element as 64 hex characters
  in ``<secret>.pub``, safe to copy between hosts;
* an **allowlist** — one authorized worker public key per line, ``#``
  comments and blank lines ignored, handed to the coordinator.

Everything raises :class:`~repro.core.errors.KeyFileError` with a one-line
message on malformed input so the CLI can surface it without a traceback.

>>> import tempfile, pathlib
>>> root = pathlib.Path(tempfile.mkdtemp())
>>> pair = write_keypair(root / "coord.key", entropy=lambda n: b"\\x05" * n)
>>> load_keypair(root / "coord.key").public == pair.public
True
>>> load_public_key(root / "coord.key.pub") == pair.public
True
>>> _ = (root / "allow").write_text("# fleet\\n" + pair.public.hex() + "\\n")
>>> load_allowlist(root / "allow") == frozenset({pair.public})
True
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..core.errors import KeyFileError
from .secure import PUBLIC_KEY_SIZE, SECRET_KEY_SIZE, StaticKeyPair

#: Suffix appended to a secret key path to name its public half.
PUBLIC_SUFFIX = ".pub"


def _read_hex(path: Path, expected_size: int, kind: str) -> bytes:
    try:
        text = Path(path).read_text(encoding="ascii").strip()
    except FileNotFoundError:
        raise KeyFileError(f"{kind} file not found: {path}") from None
    except (OSError, UnicodeDecodeError) as exc:
        raise KeyFileError(f"cannot read {kind} file {path}: {exc}") from None
    try:
        data = bytes.fromhex(text)
    except ValueError:
        raise KeyFileError(f"{kind} file {path} is not valid hex") from None
    if len(data) != expected_size:
        raise KeyFileError(
            f"{kind} file {path} holds {len(data)} bytes, expected {expected_size}"
        )
    return data


def write_keypair(
    path: str | Path,
    entropy: Callable[[int], bytes] = os.urandom,
) -> StaticKeyPair:
    """Generate a static keypair; write ``path`` (0600) and ``path.pub``."""
    path = Path(path)
    if path.exists():
        raise KeyFileError(f"refusing to overwrite existing key file {path}")
    pair = StaticKeyPair.generate(entropy)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(pair.secret.hex() + "\n", encoding="ascii")
        os.chmod(path, 0o600)
        public_path = path.with_name(path.name + PUBLIC_SUFFIX)
        public_path.write_text(pair.public.hex() + "\n", encoding="ascii")
    except OSError as exc:
        raise KeyFileError(f"cannot write key files at {path}: {exc}") from None
    return pair


def load_keypair(path: str | Path) -> StaticKeyPair:
    """Load a static keypair from a 64-hex-character secret key file."""
    return StaticKeyPair.from_secret(
        _read_hex(Path(path), SECRET_KEY_SIZE, "secret key")
    )


def load_public_key(path: str | Path) -> bytes:
    """Load one 32-byte public key from a ``.pub`` file."""
    return _read_hex(Path(path), PUBLIC_KEY_SIZE, "public key")


def load_allowlist(path: str | Path) -> frozenset[bytes]:
    """Load the coordinator's set of authorized worker public keys."""
    path = Path(path)
    try:
        lines = path.read_text(encoding="ascii").splitlines()
    except FileNotFoundError:
        raise KeyFileError(f"allowlist file not found: {path}") from None
    except (OSError, UnicodeDecodeError) as exc:
        raise KeyFileError(f"cannot read allowlist file {path}: {exc}") from None
    keys = set()
    for lineno, line in enumerate(lines, start=1):
        entry = line.split("#", 1)[0].strip()
        if not entry:
            continue
        try:
            key = bytes.fromhex(entry)
        except ValueError:
            raise KeyFileError(
                f"allowlist {path} line {lineno} is not valid hex"
            ) from None
        if len(key) != PUBLIC_KEY_SIZE:
            raise KeyFileError(
                f"allowlist {path} line {lineno} holds {len(key)} bytes, "
                f"expected {PUBLIC_KEY_SIZE}"
            )
        keys.add(key)
    if not keys:
        raise KeyFileError(f"allowlist {path} contains no keys")
    return frozenset(keys)


@dataclass(frozen=True)
class TransportCredential:
    """Everything one endpoint needs to run the secure transport.

    ``keypair`` is the endpoint's own static identity.  For a responder
    (coordinator, aio server) ``authorized`` is the set of initiator static
    keys it accepts; for an initiator (worker, aio dialler)
    ``remote_public`` is the responder static key it expects.
    """

    keypair: StaticKeyPair
    authorized: frozenset[bytes] = frozenset()
    remote_public: bytes | None = None

    @classmethod
    def ephemeral(
        cls, entropy: Callable[[int], bytes] = os.urandom
    ) -> "TransportCredential":
        """A single-process fleet credential: one keypair trusting itself.

        Used by ``run --dist --transport secure`` (which spawns its own
        workers) and by the aio overlay backend, where every endpoint lives
        in one process and shares the credential.
        """
        pair = StaticKeyPair.generate(entropy)
        return cls(
            keypair=pair,
            authorized=frozenset({pair.public}),
            remote_public=pair.public,
        )

    def is_authorized(self, public_key: bytes) -> bool:
        return public_key in self.authorized
