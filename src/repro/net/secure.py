"""Noise-style authenticated transport: pure handshake and cipher logic.

Both TCP substrates — the asyncio overlay backend (:mod:`repro.overlay.aio`)
and the distributed coordinator/worker protocol
(:mod:`repro.experiments.distributed`) — speak 4-byte length-prefixed frames.
This module supplies the authenticated layer *below* that framing, modelled
on Lightning's BOLT #8 transport (itself Noise_XK): a three-act handshake
establishing per-session send/receive keys, then one AEAD-protected message
per frame with an **encrypted length prefix**, strictly increasing nonces,
and periodic key rotation.  A passive observer of a secure connection sees
neither frame boundaries nor payload bytes; an active attacker who flips a
bit, truncates a body, or replays a ciphertext fails the MAC check.

Like the rest of :mod:`repro.crypto`, the primitives are *simulated*
cryptography with real structure: the Diffie-Hellman group is modular
exponentiation over ``p = 2**255 - 19`` (the same group the Sphinx runtime
uses), the AEAD is the repo's counter-mode :class:`~repro.crypto.symmetric.
StreamCipher` in encrypt-then-MAC composition with HMAC-SHA256, and the key
schedule is HKDF-SHA256.  Every structural property the tests rely on —
transcript binding, wrong-static-key rejection, nonce-reuse rejection,
tamper rejection, rotation continuity — holds exactly as in the production
construction; only the primitives' hardness is out of scope.

Handshake (Noise XK, as in BOLT #8)
-----------------------------------
The initiator must know the responder's static public key up front (workers
are provisioned with the coordinator's ``.pub`` file); the initiator's own
static key travels *encrypted* inside act three, where the responder checks
it against an allowlist before any application frame is processed::

    initiator                      responder
        ----- act one (49 B) ----->    e, es
        <---- act two (49 B) ------    e, ee
        ----- act three (65 B) --->    s, se

Everything is a pure state machine — no sockets, no clocks — so the
handshake is property-testable in isolation (``tests/test_secure_transport.
py``); the socket adapters live in :mod:`repro.net.channel`.

>>> import itertools
>>> counter = itertools.count(7)
>>> entropy = lambda n: bytes([next(counter) % 251] * n)   # test determinism
>>> server = StaticKeyPair.generate(entropy)
>>> client = StaticKeyPair.generate(entropy)
>>> ini = HandshakeState.initiator(client, server.public, entropy=entropy)
>>> res = HandshakeState.responder(server, entropy=entropy)
>>> res.read_act_one(ini.write_act_one())
>>> ini.read_act_two(res.write_act_two())
>>> res.read_act_three(ini.write_act_three()) == client.public
True
>>> ini_session, res_session = ini.session(), res.session()
>>> wire = ini_session.encrypt_frame(b"job frame")
>>> len(wire) == LENGTH_CIPHERTEXT_SIZE + len(b"job frame") + TAG_SIZE
True
>>> res_session.decrypt_frame(wire)
b'job frame'
>>> res_session.decrypt_frame(wire)          # replay: nonce moved on
Traceback (most recent call last):
    ...
repro.core.errors.FrameAuthenticationError: frame body failed authentication
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from dataclasses import dataclass, field
from typing import Callable

from ..core.errors import FrameAuthenticationError, HandshakeError

#: Hashed into the initial handshake digest; both sides must agree on it.
PROTOCOL_NAME = b"Noise_XK_repro+stream+hmacsha256"

#: Simulated Diffie-Hellman group (shared with the Sphinx runtime).
GROUP_PRIME = 2**255 - 19
GROUP_ORDER = GROUP_PRIME - 1
GENERATOR = 5

#: Serialised group-element width (bytes).
PUBLIC_KEY_SIZE = 32
#: Static/ephemeral secret width (bytes).
SECRET_KEY_SIZE = 32
#: Truncated HMAC-SHA256 authentication tag per AEAD call.
TAG_SIZE = 16
#: Plaintext frame-length prefix (matches the plain wire's ``>I`` header).
LENGTH_SIZE = 4
#: Wire bytes of one encrypted length prefix.
LENGTH_CIPHERTEXT_SIZE = LENGTH_SIZE + TAG_SIZE
#: Upper bound on one frame's plaintext, identical to the plain framing's
#: :data:`repro.overlay.aio.MAX_FRAME_BYTES` (asserted by the test suite).
MAX_FRAME_BYTES = 1 << 22
#: Messages a single session key may protect before rotating (BOLT #8 also
#: rotates every 1000).
REKEY_INTERVAL = 1000

#: Handshake message sizes: version byte + ephemeral + tag, and
#: version byte + encrypted static (32 + 16) + tag.
ACT_ONE_SIZE = 1 + PUBLIC_KEY_SIZE + TAG_SIZE
ACT_TWO_SIZE = 1 + PUBLIC_KEY_SIZE + TAG_SIZE
ACT_THREE_SIZE = 1 + PUBLIC_KEY_SIZE + TAG_SIZE + TAG_SIZE

_HANDSHAKE_VERSION = b"\x00"
_LENGTH_HEADER = struct.Struct(">I")
_NONCE = struct.Struct("<Q")


# -- primitives ---------------------------------------------------------------------


def _sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def _hkdf2(salt: bytes, ikm: bytes) -> tuple[bytes, bytes]:
    """HKDF-SHA256 extract-and-expand into exactly two 32-byte keys."""
    prk = hmac.new(salt, ikm, hashlib.sha256).digest()
    first = hmac.new(prk, b"\x01", hashlib.sha256).digest()
    second = hmac.new(prk, first + b"\x02", hashlib.sha256).digest()
    return first, second


def _element_from_bytes(data: bytes) -> int:
    if len(data) != PUBLIC_KEY_SIZE:
        raise HandshakeError(
            f"group elements are {PUBLIC_KEY_SIZE} bytes, got {len(data)}"
        )
    element = int.from_bytes(data, "big")
    if not 2 <= element < GROUP_PRIME:
        raise HandshakeError("invalid group element")
    return element


@dataclass(frozen=True)
class StaticKeyPair:
    """A long-lived transport identity: 32-byte secret, derived public key.

    The group scalar is derived from the secret by hashing (mirroring the
    Sphinx runtime's key derivation), so a key file only ever stores the
    32 secret bytes.

    >>> pair = StaticKeyPair.from_secret(b"\\x07" * 32)
    >>> len(pair.public)
    32
    >>> pair.public == StaticKeyPair.from_secret(b"\\x07" * 32).public
    True
    """

    secret: bytes

    def __post_init__(self) -> None:
        if len(self.secret) != SECRET_KEY_SIZE:
            raise HandshakeError(
                f"static secrets are {SECRET_KEY_SIZE} bytes, got {len(self.secret)}"
            )

    @classmethod
    def from_secret(cls, secret: bytes) -> "StaticKeyPair":
        return cls(secret=bytes(secret))

    @classmethod
    def generate(
        cls, entropy: Callable[[int], bytes] = os.urandom
    ) -> "StaticKeyPair":
        return cls(secret=bytes(entropy(SECRET_KEY_SIZE)))

    @property
    def scalar(self) -> int:
        digest = _sha256(b"repro-net-dh" + self.secret)
        return 1 + int.from_bytes(digest, "big") % (GROUP_ORDER - 1)

    @property
    def public(self) -> bytes:
        return pow(GENERATOR, self.scalar, GROUP_PRIME).to_bytes(
            PUBLIC_KEY_SIZE, "big"
        )

    def ecdh(self, remote_public: bytes) -> bytes:
        """The shared secret with ``remote_public`` (hashed group product)."""
        shared = pow(_element_from_bytes(remote_public), self.scalar, GROUP_PRIME)
        return _sha256(b"repro-net-ecdh" + shared.to_bytes(PUBLIC_KEY_SIZE, "big"))


# -- AEAD ---------------------------------------------------------------------------


def aead_encrypt(key: bytes, nonce: int, associated_data: bytes, plaintext: bytes) -> bytes:
    """Encrypt-then-MAC with the repo's keystream cipher: ct || 16-byte tag.

    Stands in for ChaCha20-Poly1305: a 64-bit little-endian nonce feeds the
    counter-mode keystream, and the tag binds key, nonce, associated data
    and ciphertext.
    """
    from ..crypto.symmetric import StreamCipher

    nonce_bytes = _NONCE.pack(nonce)
    ciphertext = (
        StreamCipher(key).encrypt(plaintext, nonce_bytes) if plaintext else b""
    )
    mac = hmac.new(
        key, nonce_bytes + associated_data + ciphertext, hashlib.sha256
    ).digest()
    return ciphertext + mac[:TAG_SIZE]


def aead_decrypt(key: bytes, nonce: int, associated_data: bytes, data: bytes) -> bytes:
    """Verify the tag, then decrypt; raises on any mismatch.

    :raises FrameAuthenticationError: truncated input or failed tag check.
    """
    from ..crypto.symmetric import StreamCipher

    if len(data) < TAG_SIZE:
        raise FrameAuthenticationError("ciphertext shorter than its tag")
    ciphertext, tag = data[:-TAG_SIZE], data[-TAG_SIZE:]
    nonce_bytes = _NONCE.pack(nonce)
    expected = hmac.new(
        key, nonce_bytes + associated_data + ciphertext, hashlib.sha256
    ).digest()[:TAG_SIZE]
    if not hmac.compare_digest(tag, expected):
        raise FrameAuthenticationError("frame body failed authentication")
    return StreamCipher(key).decrypt(ciphertext, nonce_bytes) if ciphertext else b""


# -- cipher state -------------------------------------------------------------------


@dataclass
class CipherState:
    """One direction of an established session: key, nonce, rotation chain.

    The nonce increases by one per message and never repeats under a key;
    after :data:`REKEY_INTERVAL` messages the key ratchets forward through
    the chaining key (and the old key is unrecoverable — forward secrecy
    within the session).

    >>> state = CipherState(key=b"k" * 32, chaining_key=b"c" * 32)
    >>> peer = CipherState(key=b"k" * 32, chaining_key=b"c" * 32)
    >>> peer.decrypt(b"", state.encrypt(b"", b"hello"))
    b'hello'
    >>> state.nonce, peer.nonce
    (1, 1)
    """

    key: bytes
    chaining_key: bytes
    nonce: int = 0
    messages_protected: int = field(default=0, repr=False)

    def encrypt(self, associated_data: bytes, plaintext: bytes) -> bytes:
        data = aead_encrypt(self.key, self.nonce, associated_data, plaintext)
        self._advance()
        return data

    def decrypt(self, associated_data: bytes, data: bytes) -> bytes:
        plaintext = aead_decrypt(self.key, self.nonce, associated_data, data)
        self._advance()
        return plaintext

    def _advance(self) -> None:
        self.nonce += 1
        self.messages_protected += 1
        if self.nonce >= REKEY_INTERVAL:
            self.rotate()

    def rotate(self) -> None:
        """Ratchet to a fresh key through the chaining key; reset the nonce."""
        self.chaining_key, self.key = _hkdf2(self.chaining_key, self.key)
        self.nonce = 0


class SecureSession:
    """An established connection's two cipher states plus its peer identity.

    ``encrypt_frame`` / ``decrypt_frame`` mirror the plain wire's
    ``encode_frame`` / ``read_frame`` discipline one layer down: each frame
    becomes an encrypted 4-byte length prefix (so even frame boundaries are
    hidden) followed by the encrypted payload, each carrying its own tag.
    The incremental ``decrypt_length`` / ``decrypt_body`` pair is what the
    socket adapters drive.
    """

    def __init__(
        self,
        send_cipher: CipherState,
        recv_cipher: CipherState,
        remote_public: bytes,
        handshake_hash: bytes,
    ) -> None:
        self.send_cipher = send_cipher
        self.recv_cipher = recv_cipher
        self.remote_public = remote_public
        self.handshake_hash = handshake_hash

    def encrypt_frame(self, payload: bytes) -> bytes:
        """One plaintext frame payload -> its complete secure wire message."""
        if len(payload) > MAX_FRAME_BYTES:
            raise FrameAuthenticationError(
                f"frame payload of {len(payload)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
        header = self.send_cipher.encrypt(b"", _LENGTH_HEADER.pack(len(payload)))
        return header + self.send_cipher.encrypt(b"", payload)

    def decrypt_length(self, header: bytes) -> int:
        """Open an encrypted length prefix; returns the body's wire size."""
        if len(header) != LENGTH_CIPHERTEXT_SIZE:
            raise FrameAuthenticationError(
                f"encrypted length prefixes are {LENGTH_CIPHERTEXT_SIZE} bytes, "
                f"got {len(header)}"
            )
        (length,) = _LENGTH_HEADER.unpack(self.recv_cipher.decrypt(b"", header))
        if length > MAX_FRAME_BYTES:
            raise FrameAuthenticationError(
                f"frame declares {length} bytes, over the {MAX_FRAME_BYTES}-byte limit"
            )
        return length + TAG_SIZE

    def decrypt_body(self, body: bytes) -> bytes:
        """Open a frame body read after :meth:`decrypt_length`."""
        return self.recv_cipher.decrypt(b"", body)

    def decrypt_frame(self, data: bytes) -> bytes:
        """Open one complete secure wire message (tests and doctests)."""
        if len(data) < LENGTH_CIPHERTEXT_SIZE:
            raise FrameAuthenticationError("truncated encrypted length prefix")
        body_size = self.decrypt_length(data[:LENGTH_CIPHERTEXT_SIZE])
        body = data[LENGTH_CIPHERTEXT_SIZE:]
        if len(body) != body_size:
            raise FrameAuthenticationError(
                f"frame body is {len(body)} bytes, expected {body_size}"
            )
        return self.decrypt_body(body)


# -- handshake ----------------------------------------------------------------------


class HandshakeState:
    """The three-act Noise XK handshake as a pure state machine.

    Build one side with :meth:`initiator` (requires the responder's static
    public key) or :meth:`responder`, feed acts across in order, then call
    :meth:`session`.  Any MAC failure, malformed element or out-of-order act
    raises :class:`~repro.core.errors.HandshakeError` and poisons the state.
    """

    def __init__(
        self,
        role: str,
        local_static: StaticKeyPair,
        remote_static: bytes | None,
        prologue: bytes,
        entropy: Callable[[int], bytes],
    ) -> None:
        if role not in ("initiator", "responder"):
            raise HandshakeError(f"unknown handshake role {role!r}")
        if role == "initiator" and remote_static is None:
            raise HandshakeError(
                "the initiator must know the responder's static public key"
            )
        self.role = role
        self.local_static = local_static
        self.remote_static = remote_static
        self.entropy = entropy
        self._ephemeral: StaticKeyPair | None = None
        self._remote_ephemeral: bytes | None = None
        self._temp_key = b""
        self._stage = 0
        self._failed = False
        # h/ck initialisation, exactly as BOLT #8 prescribes; the responder
        # mixes in its *own* static key, which is why an initiator dialling
        # with the wrong expected key fails act one.
        self.hash = _sha256(PROTOCOL_NAME)
        self.chaining_key = self.hash
        self.hash = _sha256(self.hash + prologue)
        anchor = remote_static if role == "initiator" else local_static.public
        self.hash = _sha256(self.hash + anchor)

    @classmethod
    def initiator(
        cls,
        local_static: StaticKeyPair,
        remote_static: bytes,
        prologue: bytes = b"",
        entropy: Callable[[int], bytes] = os.urandom,
    ) -> "HandshakeState":
        _element_from_bytes(remote_static)
        return cls("initiator", local_static, bytes(remote_static), prologue, entropy)

    @classmethod
    def responder(
        cls,
        local_static: StaticKeyPair,
        prologue: bytes = b"",
        entropy: Callable[[int], bytes] = os.urandom,
    ) -> "HandshakeState":
        return cls("responder", local_static, None, prologue, entropy)

    # -- shared helpers -------------------------------------------------------------

    def _expect(self, stage: int, role: str) -> None:
        if self._failed:
            raise HandshakeError("handshake already failed; start a new one")
        if self.role != role or self._stage != stage:
            raise HandshakeError(
                f"handshake act out of order (stage {self._stage}, role {self.role})"
            )

    def _mix_hash(self, data: bytes) -> None:
        self.hash = _sha256(self.hash + data)

    def _mix_key(self, ikm: bytes) -> None:
        self.chaining_key, self._temp_key = _hkdf2(self.chaining_key, ikm)

    def _ephemeral_keypair(self) -> StaticKeyPair:
        if self._ephemeral is None:
            self._ephemeral = StaticKeyPair.generate(self.entropy)
        return self._ephemeral

    def _decrypt(self, nonce: int, data: bytes) -> bytes:
        try:
            return aead_decrypt(self._temp_key, nonce, self.hash, data)
        except FrameAuthenticationError:
            self._failed = True
            raise HandshakeError(
                "handshake MAC check failed (wrong static key or tampered act)"
            ) from None

    @staticmethod
    def _parse_act(data: bytes, size: int, act: str) -> bytes:
        if len(data) != size:
            raise HandshakeError(f"{act} must be {size} bytes, got {len(data)}")
        if data[:1] != _HANDSHAKE_VERSION:
            raise HandshakeError(f"unsupported {act} version byte {data[0]!r}")
        return data[1:]

    # -- act one --------------------------------------------------------------------

    def write_act_one(self) -> bytes:
        self._expect(0, "initiator")
        ephemeral = self._ephemeral_keypair()
        self._mix_hash(ephemeral.public)
        self._mix_key(ephemeral.ecdh(self.remote_static))
        tag = aead_encrypt(self._temp_key, 0, self.hash, b"")
        self._mix_hash(tag)
        self._stage = 1
        return _HANDSHAKE_VERSION + ephemeral.public + tag

    def read_act_one(self, data: bytes) -> None:
        self._expect(0, "responder")
        body = self._parse_act(data, ACT_ONE_SIZE, "act one")
        remote_ephemeral, tag = body[:PUBLIC_KEY_SIZE], body[PUBLIC_KEY_SIZE:]
        _element_from_bytes(remote_ephemeral)
        self._remote_ephemeral = remote_ephemeral
        self._mix_hash(remote_ephemeral)
        self._mix_key(self.local_static.ecdh(remote_ephemeral))
        self._decrypt(0, tag)
        self._mix_hash(tag)
        self._stage = 1

    # -- act two --------------------------------------------------------------------

    def write_act_two(self) -> bytes:
        self._expect(1, "responder")
        ephemeral = self._ephemeral_keypair()
        self._mix_hash(ephemeral.public)
        self._mix_key(ephemeral.ecdh(self._remote_ephemeral))
        tag = aead_encrypt(self._temp_key, 0, self.hash, b"")
        self._mix_hash(tag)
        self._stage = 2
        return _HANDSHAKE_VERSION + ephemeral.public + tag

    def read_act_two(self, data: bytes) -> None:
        self._expect(1, "initiator")
        body = self._parse_act(data, ACT_TWO_SIZE, "act two")
        remote_ephemeral, tag = body[:PUBLIC_KEY_SIZE], body[PUBLIC_KEY_SIZE:]
        _element_from_bytes(remote_ephemeral)
        self._remote_ephemeral = remote_ephemeral
        self._mix_hash(remote_ephemeral)
        self._mix_key(self._ephemeral_keypair().ecdh(remote_ephemeral))
        self._decrypt(0, tag)
        self._mix_hash(tag)
        self._stage = 2

    # -- act three ------------------------------------------------------------------

    def write_act_three(self) -> bytes:
        self._expect(2, "initiator")
        encrypted_static = aead_encrypt(
            self._temp_key, 1, self.hash, self.local_static.public
        )
        self._mix_hash(encrypted_static)
        self._mix_key(self.local_static.ecdh(self._remote_ephemeral))
        tag = aead_encrypt(self._temp_key, 0, self.hash, b"")
        self._mix_hash(tag)
        self._stage = 3
        return _HANDSHAKE_VERSION + encrypted_static + tag

    def read_act_three(self, data: bytes) -> bytes:
        """Consume act three; returns the initiator's authenticated static key.

        The caller (the responder-side adapter) checks the returned key
        against its allowlist *before* exchanging any application frame.
        """
        self._expect(2, "responder")
        body = self._parse_act(data, ACT_THREE_SIZE, "act three")
        encrypted_static = body[: PUBLIC_KEY_SIZE + TAG_SIZE]
        tag = body[PUBLIC_KEY_SIZE + TAG_SIZE :]
        remote_static = self._decrypt(1, encrypted_static)
        _element_from_bytes(remote_static)
        self._mix_hash(encrypted_static)
        self._mix_key(self._ephemeral_keypair().ecdh(remote_static))
        self._decrypt(0, tag)
        self._mix_hash(tag)
        self.remote_static = remote_static
        self._stage = 3
        return remote_static

    # -- transport keys -------------------------------------------------------------

    def session(self) -> SecureSession:
        """Derive the transport cipher states once all three acts are done."""
        if self._stage != 3 or self._failed:
            raise HandshakeError("handshake incomplete; no transport keys yet")
        sending, receiving = _hkdf2(self.chaining_key, b"")
        if self.role == "responder":
            sending, receiving = receiving, sending
        return SecureSession(
            send_cipher=CipherState(key=sending, chaining_key=self.chaining_key),
            recv_cipher=CipherState(key=receiving, chaining_key=self.chaining_key),
            remote_public=self.remote_static,
            handshake_hash=self.hash,
        )
