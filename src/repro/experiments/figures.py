"""Per-figure experiment runners.

One function per figure/table of the paper's evaluation.  Each returns a list
of row dictionaries — the same series the paper plots — so benchmarks, tests
and the command-line runner all share a single implementation.  ``scale``
trades precision for speed (1.0 reproduces the paper's trial counts; the
benchmark suite uses smaller values so a full run stays fast).
"""

from __future__ import annotations

import numpy as np

from ..anonymity.simulation import (
    sweep_malicious_fraction,
    sweep_path_length,
    sweep_redundancy,
    sweep_split_factor,
)
from ..baselines.chaum import sweep_chaum_anonymity
from ..overlay.churn import PLANETLAB_CHURN
from ..overlay.profiles import LAN_PROFILE, PLANETLAB_PROFILE
from ..resilience.analysis import sweep_redundancy as sweep_resilience_analysis
from ..resilience.transfer import sweep_redundancy as sweep_transfer_redundancy
from .setup_latency import setup_latency_sweep
from .throughput import aggregate_throughput_vs_flows, throughput_vs_path_length

#: Default parameters straight from the paper's captions.
DEFAULT_N = 10_000
DEFAULT_TRIALS = 1000


def _trials(scale: float) -> int:
    return max(int(DEFAULT_TRIALS * scale), 20)


def figure07_anonymity_vs_malicious(scale: float = 1.0) -> list[dict]:
    """Fig. 7: anonymity vs. fraction of malicious nodes (N=10000, L=8, d=3)."""
    fractions = [0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]
    trials = _trials(scale)
    slicing = sweep_malicious_fraction(
        DEFAULT_N, path_length=8, d=3, fractions=fractions, trials=trials
    )
    chaum = sweep_chaum_anonymity(DEFAULT_N, path_length=8, fractions=fractions, trials=trials)
    rows = []
    for (fraction, s_result), (_, c_result) in zip(slicing, chaum):
        rows.append(
            {
                "fraction_malicious": fraction,
                "source_anonymity": s_result.source_anonymity,
                "destination_anonymity": s_result.destination_anonymity,
                "chaum_source_anonymity": c_result.source_anonymity,
                "chaum_destination_anonymity": c_result.destination_anonymity,
            }
        )
    return rows


def figure08_anonymity_vs_split(scale: float = 1.0) -> list[dict]:
    """Fig. 8: anonymity vs. split factor d (N=10000, L=8, f in {0.1, 0.4})."""
    split_factors = [2, 3, 4, 6, 8, 10, 12]
    trials = _trials(scale)
    rows = []
    low = sweep_split_factor(DEFAULT_N, 8, split_factors, 0.1, trials=trials)
    high = sweep_split_factor(DEFAULT_N, 8, split_factors, 0.4, trials=trials)
    for (d, low_result), (_, high_result) in zip(low, high):
        rows.append(
            {
                "split_factor": d,
                "source_anonymity_f0.1": low_result.source_anonymity,
                "destination_anonymity_f0.1": low_result.destination_anonymity,
                "source_anonymity_f0.4": high_result.source_anonymity,
                "destination_anonymity_f0.4": high_result.destination_anonymity,
            }
        )
    return rows


def figure09_anonymity_vs_path_length(scale: float = 1.0) -> list[dict]:
    """Fig. 9: anonymity vs. path length L (N=10000, d=3, f=0.1)."""
    lengths = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20]
    trials = _trials(scale)
    results = sweep_path_length(DEFAULT_N, lengths, d=3, fraction_malicious=0.1, trials=trials)
    return [
        {
            "path_length": length,
            "source_anonymity": result.source_anonymity,
            "destination_anonymity": result.destination_anonymity,
        }
        for length, result in results
    ]


def figure10_anonymity_vs_redundancy(scale: float = 1.0) -> list[dict]:
    """Fig. 10: anonymity vs. added redundancy (d=3, L=8, f=0.1)."""
    d = 3
    d_primes = [3, 4, 5, 6, 7, 8, 9, 10]
    trials = _trials(scale)
    results = sweep_redundancy(
        DEFAULT_N, path_length=8, d=d, d_primes=d_primes, fraction_malicious=0.1, trials=trials
    )
    return [
        {
            "added_redundancy": redundancy,
            "source_anonymity": result.source_anonymity,
            "destination_anonymity": result.destination_anonymity,
        }
        for redundancy, result in results
    ]


def figure11_throughput_lan(scale: float = 1.0) -> list[dict]:
    """Fig. 11: LAN throughput vs. path length, slicing (d=2) vs. onion routing."""
    num_messages = max(int(300 * scale), 40)
    return throughput_vs_path_length(
        LAN_PROFILE, path_lengths=[2, 3, 4, 5], d=2, num_messages=num_messages
    )


def figure12_throughput_wan(scale: float = 1.0) -> list[dict]:
    """Fig. 12: PlanetLab throughput vs. path length."""
    num_messages = max(int(120 * scale), 20)
    return throughput_vs_path_length(
        PLANETLAB_PROFILE, path_lengths=[2, 3, 4, 5], d=2, num_messages=num_messages
    )


def figure13_scaling_with_flows(scale: float = 1.0) -> list[dict]:
    """Fig. 13: aggregate throughput vs. number of concurrent flows."""
    flow_counts = [1, 2, 4, 8, 16, 24] if scale < 1.0 else [1, 2, 4, 8, 16, 32, 64, 96, 128, 160]
    num_messages = max(int(60 * scale), 10)
    return aggregate_throughput_vs_flows(
        PLANETLAB_PROFILE,
        flow_counts=flow_counts,
        overlay_size=100,
        path_length=5,
        d=3,
        num_messages=num_messages,
    )


def figure14_setup_latency_lan(scale: float = 1.0) -> list[dict]:
    """Fig. 14: LAN route-setup latency vs. path length and split factor."""
    return setup_latency_sweep(LAN_PROFILE, path_lengths=[1, 2, 3, 4, 5, 6])


def figure15_setup_latency_wan(scale: float = 1.0) -> list[dict]:
    """Fig. 15: PlanetLab route-setup latency vs. path length and split factor."""
    return setup_latency_sweep(PLANETLAB_PROFILE, path_lengths=[1, 2, 3, 4, 5, 6])


def figure16_resilience_analysis(scale: float = 1.0) -> list[dict]:
    """Fig. 16: analytical success probability vs. redundancy (p=0.1 and 0.3)."""
    d = 2
    d_primes = [2, 3, 4, 5, 6, 7, 8, 10, 12]
    rows = []
    for failure_prob in (0.1, 0.3):
        for point in sweep_resilience_analysis(failure_prob, path_length=5, d=d, d_primes=d_primes):
            rows.append(
                {
                    "node_failure_prob": failure_prob,
                    "added_redundancy": point.redundancy,
                    "onion_erasure_success": point.onion_erasure,
                    "information_slicing_success": point.information_slicing,
                }
            )
    return rows


def figure17_churn_resilience(scale: float = 1.0) -> list[dict]:
    """Fig. 17: 30-minute transfer success vs. redundancy on a churning overlay."""
    d = 2
    d_primes = [2, 3, 4, 5, 6]
    trials = _trials(scale)
    results = sweep_transfer_redundancy(
        PLANETLAB_CHURN,
        session_seconds=30 * 60.0,
        path_length=5,
        d=d,
        d_primes=d_primes,
        trials=trials,
    )
    return [
        {
            "added_redundancy": result.redundancy,
            "information_slicing_success": result.information_slicing,
            "onion_erasure_success": result.onion_erasure,
            "standard_onion_success": result.standard_onion,
        }
        for result in results
    ]


def coding_microbenchmark(scale: float = 1.0) -> list[dict]:
    """§7.1 microbenchmark: coding cost per 1500-byte packet across d."""
    import time

    from ..core.coder import SliceCoder

    rng = np.random.default_rng(3)
    packet = bytes(rng.integers(0, 256, size=1500, dtype=np.uint8).tobytes())
    iterations = max(int(50 * scale), 10)
    rows = []
    for d in (2, 3, 4, 5, 6, 8):
        coder = SliceCoder(d)
        start = time.perf_counter()
        for _ in range(iterations):
            blocks = coder.encode(packet, rng)
        encode_seconds = (time.perf_counter() - start) / iterations
        start = time.perf_counter()
        for _ in range(iterations):
            coder.decode(blocks)
        decode_seconds = (time.perf_counter() - start) / iterations
        rows.append(
            {
                "d": d,
                "encode_us_per_packet": encode_seconds * 1e6,
                "decode_us_per_packet": decode_seconds * 1e6,
                "max_output_mbps": 1500 * 8 / max(encode_seconds, 1e-12) / 1e6,
            }
        )
    return rows


#: Registry used by the command-line runner, the benchmarks and EXPERIMENTS.md.
FIGURES = {
    "fig07": figure07_anonymity_vs_malicious,
    "fig08": figure08_anonymity_vs_split,
    "fig09": figure09_anonymity_vs_path_length,
    "fig10": figure10_anonymity_vs_redundancy,
    "fig11": figure11_throughput_lan,
    "fig12": figure12_throughput_wan,
    "fig13": figure13_scaling_with_flows,
    "fig14": figure14_setup_latency_lan,
    "fig15": figure15_setup_latency_wan,
    "fig16": figure16_resilience_analysis,
    "fig17": figure17_churn_resilience,
    "microbench": coding_microbenchmark,
}
