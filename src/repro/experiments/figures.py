"""Per-figure experiment definitions, registered with the experiment runner.

Every figure of the paper's evaluation is declared as a named
:class:`~repro.experiments.registry.Experiment`: a trial builder that expands
``scale`` into independent trial dictionaries, a module-level ``run_trial``
function (module-level so worker processes can pickle references to it), and
a reduction that folds per-trial results into the row dictionaries the paper
plots.  Monte-Carlo figures additionally split each parameter point into
bounded chunks so the runner can spread one expensive point across workers.

The ``figureXX_*`` functions remain the stable public API — each is now a
thin wrapper that executes its registered experiment inline — and ``scale``
keeps its old meaning (1.0 reproduces the paper's trial counts).
"""

from __future__ import annotations

import time

import numpy as np

from ..anonymity.simulation import (
    simulate_anonymity,
    simulate_anonymity_batch,
    simulate_anonymity_trials,
)
from ..baselines.chaum import (
    simulate_chaum_anonymity,
    simulate_chaum_anonymity_batch,
    simulate_chaum_trials,
)
from ..core.coder import SliceCoder
from ..overlay.churn import PLANETLAB_CHURN
from ..overlay.profiles import LAN_PROFILE, PLANETLAB_PROFILE
from ..resilience.analysis import (
    onion_erasure_success_probability,
    slicing_success_probability,
)
from ..resilience.transfer import simulate_transfers
from .distinguishability import distinguishability_rows
from .registry import Experiment, register
from .runner import experiment_rows
from .setup_latency import measure_onion_setup, measure_setup, measure_slicing_setup
from .throughput import (
    aggregate_throughput_vs_flows,
    measure_onion_throughput,
    measure_slicing_throughput,
    measure_throughput,
)
from .trials import chunked_points, merge_chunks, spawn_seed

#: Default parameters straight from the paper's captions.
DEFAULT_N = 10_000
DEFAULT_TRIALS = 1000

_PROFILES = {"lan": LAN_PROFILE, "planetlab": PLANETLAB_PROFILE}

#: Runtime schemes the overlay figures (11-15) accept via ``--scheme``: any
#: single registered protocol runtime can be driven through the unified
#: measurement drivers on either backend.
OVERLAY_SCHEMES = ("slicing", "onion", "onion-erasure", "sphinx")


def _trials(scale: float) -> int:
    return max(int(DEFAULT_TRIALS * scale), 20)


# -- Fig. 7: anonymity vs. fraction of malicious nodes ---------------------------

_FIG07_FRACTIONS = [0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]
_FIG07_FIELDS = (
    "source_anonymity",
    "destination_anonymity",
    "chaum_source_anonymity",
    "chaum_destination_anonymity",
)


def _fig07_trials(scale: float) -> list[dict]:
    points = [{"fraction_malicious": f} for f in _FIG07_FRACTIONS]
    return chunked_points(points, _trials(scale))


def _fig07_run(params: dict, rng: np.random.Generator) -> dict:
    fraction = params["fraction_malicious"]
    trials = params["trials"]
    slicing = simulate_anonymity_batch(
        DEFAULT_N, path_length=8, d=3, fraction_malicious=fraction, trials=trials, rng=rng
    )
    chaum = simulate_chaum_anonymity_batch(
        DEFAULT_N, path_length=8, fraction_malicious=fraction, trials=trials, rng=rng
    )
    return {
        "fraction_malicious": fraction,
        "trials": trials,
        "source_anonymity": slicing.source_anonymity,
        "destination_anonymity": slicing.destination_anonymity,
        "chaum_source_anonymity": chaum.source_anonymity,
        "chaum_destination_anonymity": chaum.destination_anonymity,
    }


def _fig07_reduce(trials: list[dict], results: list[dict]) -> list[dict]:
    return merge_chunks(results, ("fraction_malicious",), _FIG07_FIELDS)


register(
    Experiment(
        name="fig07",
        title="Fig. 7: anonymity vs. fraction of malicious nodes (N=10000, L=8, d=3)",
        build_trials=_fig07_trials,
        run_trial=_fig07_run,
        reduce=_fig07_reduce,
    )
)


def figure07_anonymity_vs_malicious(scale: float = 1.0) -> list[dict]:
    """Fig. 7: anonymity vs. fraction of malicious nodes (N=10000, L=8, d=3)."""
    return experiment_rows("fig07", scale=scale)


# -- Fig. 8: anonymity vs. split factor ------------------------------------------

_FIG08_SPLIT_FACTORS = [2, 3, 4, 6, 8, 10, 12]


def _fig08_trials(scale: float) -> list[dict]:
    points = [
        {"split_factor": d, "fraction_malicious": f}
        for d in _FIG08_SPLIT_FACTORS
        for f in (0.1, 0.4)
    ]
    return chunked_points(points, _trials(scale))


def _fig08_run(params: dict, rng: np.random.Generator) -> dict:
    result = simulate_anonymity_batch(
        DEFAULT_N,
        path_length=8,
        d=params["split_factor"],
        fraction_malicious=params["fraction_malicious"],
        trials=params["trials"],
        rng=rng,
    )
    return {
        "split_factor": params["split_factor"],
        "fraction_malicious": params["fraction_malicious"],
        "trials": params["trials"],
        "source_anonymity": result.source_anonymity,
        "destination_anonymity": result.destination_anonymity,
    }


def _fig08_reduce(trials: list[dict], results: list[dict]) -> list[dict]:
    merged = merge_chunks(
        results,
        ("split_factor", "fraction_malicious"),
        ("source_anonymity", "destination_anonymity"),
    )
    rows: dict[int, dict] = {}
    for entry in merged:
        row = rows.setdefault(entry["split_factor"], {"split_factor": entry["split_factor"]})
        suffix = f"f{entry['fraction_malicious']:g}"
        row[f"source_anonymity_{suffix}"] = entry["source_anonymity"]
        row[f"destination_anonymity_{suffix}"] = entry["destination_anonymity"]
    return [rows[d] for d in sorted(rows)]


register(
    Experiment(
        name="fig08",
        title="Fig. 8: anonymity vs. split factor d (N=10000, L=8, f in {0.1, 0.4})",
        build_trials=_fig08_trials,
        run_trial=_fig08_run,
        reduce=_fig08_reduce,
    )
)


def figure08_anonymity_vs_split(scale: float = 1.0) -> list[dict]:
    """Fig. 8: anonymity vs. split factor d (N=10000, L=8, f in {0.1, 0.4})."""
    return experiment_rows("fig08", scale=scale)


# -- Fig. 9: anonymity vs. path length -------------------------------------------

_FIG09_LENGTHS = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20]


def _fig09_trials(scale: float) -> list[dict]:
    points = [{"path_length": length} for length in _FIG09_LENGTHS]
    return chunked_points(points, _trials(scale))


def _fig09_run(params: dict, rng: np.random.Generator) -> dict:
    result = simulate_anonymity_batch(
        DEFAULT_N,
        path_length=params["path_length"],
        d=3,
        fraction_malicious=0.1,
        trials=params["trials"],
        rng=rng,
    )
    return {
        "path_length": params["path_length"],
        "trials": params["trials"],
        "source_anonymity": result.source_anonymity,
        "destination_anonymity": result.destination_anonymity,
    }


def _fig09_reduce(trials: list[dict], results: list[dict]) -> list[dict]:
    return merge_chunks(
        results, ("path_length",), ("source_anonymity", "destination_anonymity")
    )


register(
    Experiment(
        name="fig09",
        title="Fig. 9: anonymity vs. path length L (N=10000, d=3, f=0.1)",
        build_trials=_fig09_trials,
        run_trial=_fig09_run,
        reduce=_fig09_reduce,
    )
)


def figure09_anonymity_vs_path_length(scale: float = 1.0) -> list[dict]:
    """Fig. 9: anonymity vs. path length L (N=10000, d=3, f=0.1)."""
    return experiment_rows("fig09", scale=scale)


# -- Fig. 10: anonymity vs. added redundancy -------------------------------------

_FIG10_D = 3
_FIG10_D_PRIMES = [3, 4, 5, 6, 7, 8, 9, 10]


def _fig10_trials(scale: float) -> list[dict]:
    points = [{"d_prime": d_prime} for d_prime in _FIG10_D_PRIMES]
    return chunked_points(points, _trials(scale))


def _fig10_run(params: dict, rng: np.random.Generator) -> dict:
    d_prime = params["d_prime"]
    result = simulate_anonymity_batch(
        DEFAULT_N,
        path_length=8,
        d=_FIG10_D,
        fraction_malicious=0.1,
        trials=params["trials"],
        rng=rng,
        d_prime=d_prime,
    )
    return {
        "added_redundancy": (d_prime - _FIG10_D) / _FIG10_D,
        "trials": params["trials"],
        "source_anonymity": result.source_anonymity,
        "destination_anonymity": result.destination_anonymity,
    }


def _fig10_reduce(trials: list[dict], results: list[dict]) -> list[dict]:
    return merge_chunks(
        results, ("added_redundancy",), ("source_anonymity", "destination_anonymity")
    )


register(
    Experiment(
        name="fig10",
        title="Fig. 10: anonymity vs. added redundancy (d=3, L=8, f=0.1)",
        build_trials=_fig10_trials,
        run_trial=_fig10_run,
        reduce=_fig10_reduce,
    )
)


def figure10_anonymity_vs_redundancy(scale: float = 1.0) -> list[dict]:
    """Fig. 10: anonymity vs. added redundancy (d=3, L=8, f=0.1)."""
    return experiment_rows("fig10", scale=scale)


# -- Figs. 11 and 12: throughput vs. path length ---------------------------------


def _throughput_trials(profile: str, num_messages: int) -> list[dict]:
    return [
        {"profile": profile, "path_length": length, "d": 2, "num_messages": num_messages}
        for length in (2, 3, 4, 5)
    ]


def _fig11_trials(scale: float) -> list[dict]:
    return _throughput_trials("lan", max(int(300 * scale), 40))


def _fig12_trials(scale: float) -> list[dict]:
    return _throughput_trials("planetlab", max(int(120 * scale), 20))


def _throughput_run(params: dict, rng: np.random.Generator) -> dict:
    profile = _PROFILES[params["profile"]]
    backend = params.get("backend", "sim")
    scheme = params.get("scheme")
    if scheme is not None:
        # Single-scheme mode (--scheme): one transfer of the selected runtime
        # per path length; the parity sub-dict keys the scheme so cross-backend
        # cmp catches a scheme mix-up, not just a digest mismatch.
        result = measure_throughput(
            scheme,
            profile,
            params["path_length"],
            d=params["d"],
            num_messages=params["num_messages"],
            seed=spawn_seed(rng),
            backend=backend,
        )
        return {
            "path_length": params["path_length"],
            "scheme": scheme,
            "throughput_mbps": result.throughput_bps / 1e6,
            "messages_delivered": result.messages_delivered,
            "parity": {
                "path_length": params["path_length"],
                "scheme": scheme,
                "result": result.parity_fields(),
            },
        }
    slicing = measure_slicing_throughput(
        profile,
        params["path_length"],
        d=params["d"],
        num_messages=params["num_messages"],
        seed=spawn_seed(rng),
        backend=backend,
    )
    onion = measure_onion_throughput(
        profile,
        params["path_length"],
        num_messages=params["num_messages"],
        seed=spawn_seed(rng),
        backend=backend,
    )
    return {
        "path_length": params["path_length"],
        "slicing_mbps": slicing.throughput_bps / 1e6,
        "onion_mbps": onion.throughput_bps / 1e6,
        "slicing_delivered": slicing.messages_delivered,
        "onion_delivered": onion.messages_delivered,
        # Structural fields only — what both backends must agree on; the
        # runner mirrors this sub-dict into <name>.parity.json.
        "parity": {
            "path_length": params["path_length"],
            "slicing": slicing.parity_fields(),
            "onion": onion.parity_fields(),
        },
    }


register(
    Experiment(
        name="fig11",
        title="Fig. 11: LAN throughput vs. path length, slicing (d=2) vs. onion routing",
        build_trials=_fig11_trials,
        run_trial=_throughput_run,
        backends=("sim", "aio"),
        schemes=OVERLAY_SCHEMES,
    )
)

register(
    Experiment(
        name="fig12",
        title="Fig. 12: PlanetLab throughput vs. path length",
        build_trials=_fig12_trials,
        run_trial=_throughput_run,
        backends=("sim", "aio"),
        schemes=OVERLAY_SCHEMES,
    )
)


def figure11_throughput_lan(scale: float = 1.0) -> list[dict]:
    """Fig. 11: LAN throughput vs. path length, slicing (d=2) vs. onion routing."""
    return experiment_rows("fig11", scale=scale)


def figure12_throughput_wan(scale: float = 1.0) -> list[dict]:
    """Fig. 12: PlanetLab throughput vs. path length."""
    return experiment_rows("fig12", scale=scale)


# -- Fig. 13: aggregate throughput vs. concurrent flows --------------------------


def _fig13_trials(scale: float) -> list[dict]:
    if scale >= 1.0:
        flow_counts = [1, 2, 4, 8, 16, 32, 64, 96, 128, 160]
    elif scale <= 0.1:
        # Smoke scale: enough points for the curve's rise, cheap enough for
        # CI determinism checks across worker counts.
        flow_counts = [1, 2, 4]
    else:
        flow_counts = [1, 2, 4, 8, 16, 24]
    num_messages = max(int(60 * scale), 10)
    return [
        {"flows": flows, "num_messages": num_messages, "overlay_size": 100,
         "path_length": 5, "d": 3}
        for flows in flow_counts
    ]


def _fig13_run(params: dict, rng: np.random.Generator) -> dict:
    rows = aggregate_throughput_vs_flows(
        PLANETLAB_PROFILE,
        flow_counts=[params["flows"]],
        overlay_size=params["overlay_size"],
        path_length=params["path_length"],
        d=params["d"],
        num_messages=params["num_messages"],
        seed=spawn_seed(rng),
        backend=params.get("backend", "sim"),
        scheme=params.get("scheme", "slicing"),
    )
    return rows[0]


register(
    Experiment(
        name="fig13",
        title="Fig. 13: aggregate throughput vs. number of concurrent flows",
        build_trials=_fig13_trials,
        run_trial=_fig13_run,
        backends=("sim", "aio"),
        schemes=OVERLAY_SCHEMES,
    )
)


def figure13_scaling_with_flows(scale: float = 1.0) -> list[dict]:
    """Fig. 13: aggregate throughput vs. number of concurrent flows."""
    return experiment_rows("fig13", scale=scale)


# -- Figs. 14 and 15: route-setup latency ----------------------------------------


def _setup_trials(profile: str) -> list[dict]:
    return [
        {"profile": profile, "path_length": length, "split_factors": [2, 3, 4]}
        for length in (1, 2, 3, 4, 5, 6)
    ]


def _fig14_trials(scale: float) -> list[dict]:
    return _setup_trials("lan")


def _fig15_trials(scale: float) -> list[dict]:
    return _setup_trials("planetlab")


def _setup_run(params: dict, rng: np.random.Generator) -> dict:
    profile = _PROFILES[params["profile"]]
    backend = params.get("backend", "sim")
    path_length = params["path_length"]
    scheme = params.get("scheme")
    if scheme is not None:
        # Single-scheme mode (--scheme): slicing keeps its split-factor sweep;
        # the circuit schemes have no d axis and measure one establishment.
        row = {"path_length": path_length, "scheme": scheme}
        parity = {"path_length": path_length, "scheme": scheme}
        if scheme == "slicing":
            for d in params["split_factors"]:
                result = measure_slicing_setup(
                    profile, path_length, d=d, seed=spawn_seed(rng), backend=backend
                )
                row[f"slicing_d{d}_seconds"] = result.setup_seconds
                parity[f"slicing_d{d}"] = result.parity_fields()
        else:
            kwargs = {"d": 2, "d_prime": 3} if scheme == "onion-erasure" else {}
            result = measure_setup(
                scheme,
                profile,
                path_length,
                seed=spawn_seed(rng),
                backend=backend,
                **kwargs,
            )
            row["setup_seconds"] = result.setup_seconds
            parity[scheme] = result.parity_fields()
        row["parity"] = parity
        return row
    row = {"path_length": path_length}
    parity = {"path_length": path_length}
    onion = measure_onion_setup(
        profile, path_length, seed=spawn_seed(rng), backend=backend
    )
    row["onion_seconds"] = onion.setup_seconds
    parity["onion"] = onion.parity_fields()
    for d in params["split_factors"]:
        result = measure_slicing_setup(
            profile, path_length, d=d, seed=spawn_seed(rng), backend=backend
        )
        row[f"slicing_d{d}_seconds"] = result.setup_seconds
        parity[f"slicing_d{d}"] = result.parity_fields()
    row["parity"] = parity
    return row


register(
    Experiment(
        name="fig14",
        title="Fig. 14: LAN route-setup latency vs. path length and split factor",
        build_trials=_fig14_trials,
        run_trial=_setup_run,
        backends=("sim", "aio"),
        schemes=OVERLAY_SCHEMES,
    )
)

register(
    Experiment(
        name="fig15",
        title="Fig. 15: PlanetLab route-setup latency vs. path length and split factor",
        build_trials=_fig15_trials,
        run_trial=_setup_run,
        backends=("sim", "aio"),
        schemes=OVERLAY_SCHEMES,
    )
)


def figure14_setup_latency_lan(scale: float = 1.0) -> list[dict]:
    """Fig. 14: LAN route-setup latency vs. path length and split factor."""
    return experiment_rows("fig14", scale=scale)


def figure15_setup_latency_wan(scale: float = 1.0) -> list[dict]:
    """Fig. 15: PlanetLab route-setup latency vs. path length and split factor."""
    return experiment_rows("fig15", scale=scale)


# -- Fig. 16: analytical resilience ----------------------------------------------

_FIG16_D = 2
_FIG16_D_PRIMES = [2, 3, 4, 5, 6, 7, 8, 10, 12]


def _fig16_trials(scale: float) -> list[dict]:
    return [
        {"node_failure_prob": p, "d_prime": d_prime, "path_length": 5, "d": _FIG16_D}
        for p in (0.1, 0.3)
        for d_prime in _FIG16_D_PRIMES
    ]


def _fig16_run(params: dict, rng: np.random.Generator) -> dict:
    p = params["node_failure_prob"]
    d = params["d"]
    d_prime = params["d_prime"]
    path_length = params["path_length"]
    return {
        "node_failure_prob": p,
        "added_redundancy": (d_prime - d) / d,
        "onion_erasure_success": onion_erasure_success_probability(
            p, path_length, d, d_prime
        ),
        "information_slicing_success": slicing_success_probability(
            p, path_length, d, d_prime
        ),
    }


register(
    Experiment(
        name="fig16",
        title="Fig. 16: analytical success probability vs. redundancy (p=0.1 and 0.3)",
        build_trials=_fig16_trials,
        run_trial=_fig16_run,
    )
)


def figure16_resilience_analysis(scale: float = 1.0) -> list[dict]:
    """Fig. 16: analytical success probability vs. redundancy (p=0.1 and 0.3)."""
    return experiment_rows("fig16", scale=scale)


# -- Fig. 17: churn resilience ---------------------------------------------------

_FIG17_D = 2
_FIG17_D_PRIMES = [2, 3, 4, 5, 6]
_FIG17_FIELDS = (
    "information_slicing_success",
    "onion_erasure_success",
    "standard_onion_success",
)


def _fig17_trials(scale: float) -> list[dict]:
    points = [{"d_prime": d_prime} for d_prime in _FIG17_D_PRIMES]
    return chunked_points(points, _trials(scale))


def _fig17_run(params: dict, rng: np.random.Generator) -> dict:
    result = simulate_transfers(
        PLANETLAB_CHURN,
        session_seconds=30 * 60.0,
        path_length=5,
        d=_FIG17_D,
        d_prime=params["d_prime"],
        trials=params["trials"],
        rng=rng,
    )
    return {
        "added_redundancy": result.redundancy,
        "trials": params["trials"],
        "information_slicing_success": result.information_slicing,
        "onion_erasure_success": result.onion_erasure,
        "standard_onion_success": result.standard_onion,
    }


def _fig17_reduce(trials: list[dict], results: list[dict]) -> list[dict]:
    return merge_chunks(results, ("added_redundancy",), _FIG17_FIELDS)


register(
    Experiment(
        name="fig17",
        title="Fig. 17: 30-minute transfer success vs. redundancy on a churning overlay",
        build_trials=_fig17_trials,
        run_trial=_fig17_run,
        reduce=_fig17_reduce,
    )
)


def figure17_churn_resilience(scale: float = 1.0) -> list[dict]:
    """Fig. 17: 30-minute transfer success vs. redundancy on a churning overlay."""
    return experiment_rows("fig17", scale=scale)


# -- §7.1 coding microbenchmark --------------------------------------------------

#: Batch size the batched-coding comparison runs on (the acceptance target:
#: ``encode_batch`` must beat a per-message loop on this many messages).
MICROBENCH_BATCH = 64


def _microbench_trials(scale: float) -> list[dict]:
    iterations = max(int(50 * scale), 10)
    return [
        {"d": d, "iterations": iterations, "batch_size": MICROBENCH_BATCH}
        for d in (2, 3, 4, 5, 6, 8)
    ]


def _microbench_run(params: dict, rng: np.random.Generator) -> dict:
    d = params["d"]
    iterations = params["iterations"]
    batch_size = params["batch_size"]
    coder = SliceCoder(d)
    packet = bytes(rng.integers(0, 256, size=1500, dtype=np.uint8).tobytes())

    start = time.perf_counter()
    for _ in range(iterations):
        blocks = coder.encode(packet, rng)
    encode_seconds = (time.perf_counter() - start) / iterations

    start = time.perf_counter()
    for _ in range(iterations):
        coder.decode(blocks)
    decode_seconds = (time.perf_counter() - start) / iterations

    # Batched-vs-loop comparison on a burst of equal-size packets.  Warm both
    # paths so neither measurement pays first-call allocation costs, and take
    # the per-rep minimum — the standard noise-robust microbenchmark
    # estimator — so scheduler hiccups don't skew either side.
    messages = [packet] * batch_size
    loop_reps = max(iterations // 8, 5)
    coder.encode(packet, rng)
    coder.encode_batch(messages, rng)
    loop_times = []
    for _ in range(loop_reps):
        start = time.perf_counter()
        for message in messages:
            coder.encode(message, rng)
        loop_times.append(time.perf_counter() - start)
    loop_seconds = min(loop_times)

    batch_times = []
    for _ in range(loop_reps):
        start = time.perf_counter()
        coder.encode_batch(messages, rng)
        batch_times.append(time.perf_counter() - start)
    batch_seconds = min(batch_times)

    return {
        "d": d,
        "encode_us_per_packet": encode_seconds * 1e6,
        "decode_us_per_packet": decode_seconds * 1e6,
        "max_output_mbps": 1500 * 8 / max(encode_seconds, 1e-12) / 1e6,
        "batch_encode_us_per_packet": batch_seconds / batch_size * 1e6,
        "batch_speedup": loop_seconds / max(batch_seconds, 1e-12),
    }


register(
    Experiment(
        name="microbench",
        title="§7.1 microbenchmark: coding cost per 1500-byte packet across d",
        build_trials=_microbench_trials,
        run_trial=_microbench_run,
        deterministic=False,  # wall-clock timings; never serve from cache
        shardable=False,  # single-host comparison; numbers mean nothing sharded
    )
)


def coding_microbenchmark(scale: float = 1.0) -> list[dict]:
    """§7.1 microbenchmark: coding cost per 1500-byte packet across d."""
    return experiment_rows("microbench", scale=scale)


# -- §6.2 anonymity Monte-Carlo microbenchmark -----------------------------------

#: Trial count the batched-vs-scalar anonymity comparison runs at (the
#: acceptance target: ``simulate_anonymity_batch`` must beat the scalar
#: reference loop by >= 10x at the paper's 1000 trials per data point).
ANONBENCH_TRIALS = 1000


def _anonbench_trials(scale: float) -> list[dict]:
    reps = max(int(5 * scale), 1)
    return [
        {"fraction_malicious": f, "trials": ANONBENCH_TRIALS, "reps": reps}
        for f in (0.1, 0.4)
    ]


def _anonbench_run(params: dict, rng: np.random.Generator) -> dict:
    fraction = params["fraction_malicious"]
    trials = params["trials"]
    reps = params["reps"]
    seed = spawn_seed(rng)
    kwargs = dict(
        num_nodes=DEFAULT_N,
        path_length=8,
        d=3,
        fraction_malicious=fraction,
        trials=trials,
    )

    # Warm both engines and verify the vectorised path reproduces the scalar
    # reference bit-for-bit on this parameter point before timing anything.
    scalar_values = simulate_anonymity_trials(
        **kwargs, rng=np.random.default_rng(seed), engine="scalar"
    )
    batched_values = simulate_anonymity_trials(
        **kwargs, rng=np.random.default_rng(seed), engine="batched"
    )
    identical = bool(
        np.array_equal(scalar_values.source_anonymity, batched_values.source_anonymity)
        and np.array_equal(
            scalar_values.destination_anonymity, batched_values.destination_anonymity
        )
        and np.array_equal(scalar_values.source_case1, batched_values.source_case1)
        and np.array_equal(
            scalar_values.destination_case1, batched_values.destination_case1
        )
    )

    # Same noise-robust estimator as the coding microbenchmark: identical
    # seeds on both sides, per-rep minimum.
    scalar_times = []
    for _ in range(reps):
        start = time.perf_counter()
        simulate_anonymity(**kwargs, rng=np.random.default_rng(seed))
        scalar_times.append(time.perf_counter() - start)
    scalar_seconds = min(scalar_times)

    batched_times = []
    for _ in range(reps):
        start = time.perf_counter()
        simulate_anonymity_batch(**kwargs, rng=np.random.default_rng(seed))
        batched_times.append(time.perf_counter() - start)
    batched_seconds = min(batched_times)

    return {
        "fraction_malicious": fraction,
        "trials": trials,
        "scalar_ms": scalar_seconds * 1e3,
        "batched_ms": batched_seconds * 1e3,
        "speedup": scalar_seconds / max(batched_seconds, 1e-12),
        "identical": identical,
    }


register(
    Experiment(
        name="anonbench",
        title="§6.2 microbenchmark: batched vs. scalar anonymity Monte-Carlo at 1000 trials",
        build_trials=_anonbench_trials,
        run_trial=_anonbench_run,
        deterministic=False,  # wall-clock timings; never serve from cache
        shardable=False,  # single-host comparison; numbers mean nothing sharded
    )
)


def anonymity_microbenchmark(scale: float = 1.0) -> list[dict]:
    """§6.2 microbenchmark: batched vs. scalar anonymity Monte-Carlo engine."""
    return experiment_rows("anonbench", scale=scale)


# -- batched data-plane microbenchmark ---------------------------------------------

#: The dataplane-bench acceptance target: the batched overlay data plane must
#: beat the per-packet reference by at least this factor at 64 messages.
DATAPLANE_TARGET_SPEEDUP = 5.0


def _dataplane_trials(scale: float) -> list[dict]:
    reps = max(int(3 * scale), 2)
    # Three seeds so the benchmark gate's median is a genuine middle value.
    return [{"seed": seed, "reps": reps} for seed in (42, 1042, 2042)]


def _dataplane_run(params: dict, rng: np.random.Generator) -> dict:
    from .dataplane import compare_data_planes

    row = compare_data_planes(reps=params["reps"], seed=params["seed"])
    return {"seed": params["seed"], **row}


register(
    Experiment(
        name="dataplane-bench",
        title="Data-plane microbenchmark: batched overlay plane vs. per-packet reference at 64 messages",
        build_trials=_dataplane_trials,
        run_trial=_dataplane_run,
        deterministic=False,  # wall-clock timings; never serve from cache
        shardable=False,  # single-host comparison; numbers mean nothing sharded
    )
)


def dataplane_microbenchmark(scale: float = 1.0) -> list[dict]:
    """Batched data plane vs. per-packet reference on a fig11-style workload."""
    return experiment_rows("dataplane-bench", scale=scale)


# -- GF(2^8) kernel microbenchmark -------------------------------------------------

#: The gfbench acceptance target: the compiled GF(2^8) kernel must beat the
#: numpy reference by at least this factor at the data plane's shapes.
GFBENCH_TARGET_SPEEDUP = 3.0


def _gfbench_trials(scale: float) -> list[dict]:
    reps = max(int(3 * scale), 2)
    # Three seeds per operation so the benchmark gate's median is a genuine
    # middle value.
    return [
        {"op": op, "seed": seed, "reps": reps}
        for op in ("matmul", "invert")
        for seed in (42, 1042, 2042)
    ]


def _gfbench_run(params: dict, rng: np.random.Generator) -> dict:
    from .gfbench import compare_kernels

    row = compare_kernels(params["op"], reps=params["reps"], seed=params["seed"])
    return {"seed": params["seed"], **row}


register(
    Experiment(
        name="gfbench",
        title="GF(2^8) kernel microbenchmark: compiled kernel vs. numpy reference at dataplane shapes",
        build_trials=_gfbench_trials,
        run_trial=_gfbench_run,
        deterministic=False,  # wall-clock timings; never serve from cache
        kernels=("numpy",),  # it measures the kernels against each other itself
        shardable=False,  # single-host comparison; numbers mean nothing sharded
    )
)


def gf_kernel_microbenchmark(scale: float = 1.0) -> list[dict]:
    """Compiled GF(2^8) kernel vs. the numpy reference at dataplane shapes."""
    return experiment_rows("gfbench", scale=scale)


# -- Chaum-mix Monte-Carlo microbenchmark ------------------------------------------

#: Trial count of the batched-vs-scalar Chaum comparison.
CHAUMBENCH_TRIALS = 1000

#: The chaumbench acceptance target: the batched engine must beat the scalar
#: loop by at least this factor at :data:`CHAUMBENCH_TRIALS` trials.
CHAUMBENCH_TARGET_SPEEDUP = 10.0


def _chaumbench_trials(scale: float) -> list[dict]:
    reps = max(int(5 * scale), 1)
    # Three parameter points so the benchmark gate's median is a genuine
    # middle value.
    return [
        {"fraction_malicious": f, "trials": CHAUMBENCH_TRIALS, "reps": reps}
        for f in (0.1, 0.25, 0.4)
    ]


def _chaumbench_run(params: dict, rng: np.random.Generator) -> dict:
    fraction = params["fraction_malicious"]
    trials = params["trials"]
    reps = params["reps"]
    seed = spawn_seed(rng)
    kwargs = dict(
        num_nodes=DEFAULT_N, path_length=8, fraction_malicious=fraction, trials=trials
    )

    # Warm both engines and verify the vectorised path reproduces the scalar
    # reference bit-for-bit on this parameter point before timing anything.
    scalar_values = simulate_chaum_trials(
        **kwargs, rng=np.random.default_rng(seed), engine="scalar"
    )
    batched_values = simulate_chaum_trials(
        **kwargs, rng=np.random.default_rng(seed), engine="batched"
    )
    identical = bool(
        np.array_equal(scalar_values.source_anonymity, batched_values.source_anonymity)
        and np.array_equal(
            scalar_values.destination_anonymity, batched_values.destination_anonymity
        )
    )

    # Same noise-robust estimator as the other microbenchmarks: identical
    # seeds on both sides, per-rep minimum.
    scalar_times = []
    for _ in range(reps):
        start = time.perf_counter()
        simulate_chaum_anonymity(**kwargs, rng=np.random.default_rng(seed))
        scalar_times.append(time.perf_counter() - start)
    scalar_seconds = min(scalar_times)

    batched_times = []
    for _ in range(reps):
        start = time.perf_counter()
        simulate_chaum_anonymity_batch(**kwargs, rng=np.random.default_rng(seed))
        batched_times.append(time.perf_counter() - start)
    batched_seconds = min(batched_times)

    return {
        "fraction_malicious": fraction,
        "trials": trials,
        "scalar_ms": scalar_seconds * 1e3,
        "batched_ms": batched_seconds * 1e3,
        "speedup": scalar_seconds / max(batched_seconds, 1e-12),
        "identical": identical,
    }


register(
    Experiment(
        name="chaumbench",
        title="Fig. 7 microbenchmark: batched vs. scalar Chaum-mix Monte-Carlo at 1000 trials",
        build_trials=_chaumbench_trials,
        run_trial=_chaumbench_run,
        deterministic=False,  # wall-clock timings; never serve from cache
        shardable=False,  # single-host comparison; numbers mean nothing sharded
    )
)


def chaum_microbenchmark(scale: float = 1.0) -> list[dict]:
    """Fig. 7 microbenchmark: batched vs. scalar Chaum-mix Monte-Carlo engine."""
    return experiment_rows("chaumbench", scale=scale)


# -- Sphinx batched-cell microbenchmark --------------------------------------------

#: Messages per burst in the batched-vs-per-cell Sphinx comparison.
SPHINXBENCH_MESSAGES = 192

#: The sphinxbench acceptance target: one circuit keystream plus a vectorised
#: XOR per burst must beat the per-cell StreamCipher loop by at least this
#: factor at :data:`SPHINXBENCH_MESSAGES` messages.
SPHINXBENCH_TARGET_SPEEDUP = 2.0


def _sphinxbench_trials(scale: float) -> list[dict]:
    reps = max(int(5 * scale), 2)
    # Three path lengths so the benchmark gate's median is a genuine middle
    # value.
    return [
        {"path_length": length, "messages": SPHINXBENCH_MESSAGES, "reps": reps}
        for length in (3, 5, 8)
    ]


def _sphinxbench_run(params: dict, rng: np.random.Generator) -> dict:
    from ..baselines.sphinx import SphinxDirectory, SphinxRelay, SphinxSource

    path_length = params["path_length"]
    count = params["messages"]
    reps = params["reps"]
    build_rng = np.random.default_rng(spawn_seed(rng))
    relays = [f"bench-{index}" for index in range(path_length)]
    directory = SphinxDirectory.for_relays(relays, build_rng)
    source = SphinxSource(directory, build_rng)
    circuit, packet = source.build_circuit(relays, "bench-destination", path_length)
    engines = {
        address: SphinxRelay(address, directory.node(address)) for address in relays
    }
    handles = []
    current = packet
    for hop in circuit.hops:
        handle, _next_hop, current = engines[hop].handle_setup(current)
        handles.append((hop, handle))
    messages = [
        bytes(build_rng.integers(0, 256, size=512, dtype=np.uint8).tobytes())
        for _ in range(count)
    ]

    def per_cell_pass() -> list[bytes]:
        cells = [source.wrap_data(circuit, message) for message in messages]
        for hop, handle in handles:
            cells = [engines[hop].handle_data(handle, cell)[1] for cell in cells]
        return cells

    def batched_pass() -> list[bytes]:
        cells = source.wrap_cells(circuit, messages)
        for hop, handle in handles:
            _next_hop, cells = engines[hop].strip_cells(handle, cells)
        return cells

    # Warm both paths and verify the batched burst is bit-identical to the
    # per-cell reference before timing anything.
    identical = per_cell_pass() == batched_pass()

    # Same noise-robust estimator as the other microbenchmarks: per-rep
    # minimum on identical inputs.
    scalar_times = []
    for _ in range(reps):
        start = time.perf_counter()
        per_cell_pass()
        scalar_times.append(time.perf_counter() - start)
    scalar_seconds = min(scalar_times)

    batched_times = []
    for _ in range(reps):
        start = time.perf_counter()
        batched_pass()
        batched_times.append(time.perf_counter() - start)
    batched_seconds = min(batched_times)

    return {
        "path_length": path_length,
        "messages": count,
        "per_cell_ms": scalar_seconds * 1e3,
        "batched_ms": batched_seconds * 1e3,
        "speedup": scalar_seconds / max(batched_seconds, 1e-12),
        "identical": identical,
    }


register(
    Experiment(
        name="sphinxbench",
        title="Sphinx microbenchmark: batched cell wrap/strip vs. per-cell StreamCipher loop",
        build_trials=_sphinxbench_trials,
        run_trial=_sphinxbench_run,
        deterministic=False,  # wall-clock timings; never serve from cache
        shardable=False,  # single-host comparison; numbers mean nothing sharded
    )
)


def sphinx_microbenchmark(scale: float = 1.0) -> list[dict]:
    """Sphinx microbenchmark: batched cell wrap/strip vs. the per-cell loop."""
    return experiment_rows("sphinxbench", scale=scale)


# -- distributed-sharding benchmark ------------------------------------------------

#: Experiment the distributed-sharding benchmark shards (fig11: four
#: sizeable, roughly comparable throughput trials — the canonical
#: dist-parity workload).
DISTBENCH_EXPERIMENT = "fig11"

#: The distbench acceptance target: sharding across 2 workers must beat a
#: single worker's compute time by at least this factor at bench scale.
DISTBENCH_TARGET_SPEEDUP = 1.5

#: Minimum host CPUs for the speedup number to mean anything: two worker
#: processes time-slicing one core measure scheduler fairness, not sharding.
#: Below this the benchmark records a ``"skipped"`` row (rendered ``n/a`` by
#: the bench-history trend) instead of a misleading failure.
DISTBENCH_MIN_CPUS = 2


def _distbench_trials(scale: float) -> list[dict]:
    # The *inner* scale sizes fig11's per-trial work (num_messages) so that
    # trial execution dominates lease round-trips; the floor keeps the
    # 2-worker speedup measurable even at the default bench scale of 0.1.
    inner_scale = round(max(3.0 * scale, 1.5), 4)
    return [{"experiment": DISTBENCH_EXPERIMENT, "inner_scale": inner_scale,
             "worker_counts": [1, 2]}]


def _distbench_run(params: dict, rng: np.random.Generator) -> dict:
    import os
    import tempfile
    from pathlib import Path

    from .distributed import run_distributed
    from .runner import run_experiment

    name = params["experiment"]
    cpu_count = os.cpu_count() or 1
    if cpu_count < DISTBENCH_MIN_CPUS:
        return {
            "experiment": name,
            "cpu_count": cpu_count,
            "skipped": (
                f"host has {cpu_count} CPU(s); the 2-worker sharding speedup "
                f"needs >= {DISTBENCH_MIN_CPUS} to measure parallelism rather "
                "than time-slicing"
            ),
        }
    inner_scale = params["inner_scale"]
    worker_counts = list(params["worker_counts"])
    seed = spawn_seed(rng)
    compute_seconds: dict[int, float] = {}
    byte_identical = True
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        reference = run_experiment(
            name, scale=inner_scale, seed=seed, out_dir=root / "single", force=True
        )
        reference_bytes = (root / "single" / f"{name}.json").read_bytes()
        for count in worker_counts:
            out_dir = root / f"dist-{count}"
            result = run_distributed(
                name,
                scale=inner_scale,
                seed=seed,
                out_dir=out_dir,
                force=True,
                workers=count,
                min_workers=count,
            )
            compute_seconds[count] = result.compute_seconds
            byte_identical &= (
                out_dir / f"{name}.json"
            ).read_bytes() == reference_bytes
    base = worker_counts[0]
    best = worker_counts[-1]
    return {
        "experiment": name,
        "cpu_count": cpu_count,
        "inner_scale": inner_scale,
        "trials_sharded": reference.trial_count,
        "workers": best,
        f"seconds_{base}w": compute_seconds[base],
        f"seconds_{best}w": compute_seconds[best],
        "speedup": compute_seconds[base] / max(compute_seconds[best], 1e-12),
        "byte_identical": byte_identical,
    }


register(
    Experiment(
        name="distbench",
        title="Distributed sharding benchmark: fig11 leased to 2 workers vs. 1",
        build_trials=_distbench_trials,
        run_trial=_distbench_run,
        deterministic=False,  # wall-clock timings; never serve from cache
        kernels=("numpy",),  # it spawns worker processes of its own
        shardable=False,  # it *runs* the coordinator; sharding it would nest fan-outs
    )
)


def distributed_sharding_benchmark(scale: float = 1.0) -> list[dict]:
    """Distributed sharding benchmark: coordinator/worker speedup on fig11."""
    return experiment_rows("distbench", scale=scale)


# -- distributed transport sweep ----------------------------------------------------

#: Worker counts the sweep shards fig11 across; counts beyond the host's
#: CPUs are recorded as skipped rather than measured as time-slicing.
DISTSWEEP_WORKER_COUNTS = (1, 2, 4, 8)

#: Wire transports the sweep compares (same trial payloads either way).
DISTSWEEP_TRANSPORTS = ("plain", "secure")

#: The distsweep acceptance target, asserted on the median multi-worker
#: speedup across both transports: the secure channel's handshake and
#: per-frame AEAD must not erase the sharding win.
DISTSWEEP_TARGET_SPEEDUP = 1.5


def _distsweep_trials(scale: float) -> list[dict]:
    # Same inner-scale floor as distbench: per-trial work must dominate
    # lease round-trips for the speedups to measure sharding.
    inner_scale = round(max(3.0 * scale, 1.5), 4)
    return [
        {
            "experiment": DISTBENCH_EXPERIMENT,
            "inner_scale": inner_scale,
            "worker_counts": list(DISTSWEEP_WORKER_COUNTS),
            "transports": list(DISTSWEEP_TRANSPORTS),
        }
    ]


def _distsweep_run(params: dict, rng: np.random.Generator) -> dict:
    import os
    import tempfile
    from pathlib import Path

    from .distributed import run_distributed
    from .runner import run_experiment

    name = params["experiment"]
    cpu_count = os.cpu_count() or 1
    if cpu_count < DISTBENCH_MIN_CPUS:
        return {
            "experiment": name,
            "cpu_count": cpu_count,
            "skipped": (
                f"host has {cpu_count} CPU(s); multi-worker sharding speedups "
                f"need >= {DISTBENCH_MIN_CPUS} to measure parallelism rather "
                "than time-slicing"
            ),
        }
    inner_scale = params["inner_scale"]
    seed = spawn_seed(rng)
    measurements: list[dict] = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        reference = run_experiment(
            name, scale=inner_scale, seed=seed, out_dir=root / "single", force=True
        )
        reference_bytes = (root / "single" / f"{name}.json").read_bytes()
        for transport in params["transports"]:
            base_seconds: float | None = None
            for count in params["worker_counts"]:
                if count > cpu_count:
                    measurements.append(
                        {
                            "transport": transport,
                            "workers": count,
                            "skipped": (
                                f"host has {cpu_count} CPU(s); "
                                f"{count} workers would time-slice"
                            ),
                        }
                    )
                    continue
                out_dir = root / f"{transport}-{count}"
                result = run_distributed(
                    name,
                    scale=inner_scale,
                    seed=seed,
                    out_dir=out_dir,
                    force=True,
                    workers=count,
                    min_workers=count,
                    transport=transport,
                )
                measurement = {
                    "transport": transport,
                    "workers": count,
                    "seconds": result.compute_seconds,
                    "byte_identical": (
                        (out_dir / f"{name}.json").read_bytes() == reference_bytes
                    ),
                }
                if count == 1:
                    base_seconds = result.compute_seconds
                elif base_seconds is not None:
                    measurement["speedup"] = base_seconds / max(
                        result.compute_seconds, 1e-12
                    )
                measurements.append(measurement)
    return {
        "experiment": name,
        "cpu_count": cpu_count,
        "inner_scale": inner_scale,
        "trials_sharded": reference.trial_count,
        "measurements": measurements,
    }


def _distsweep_reduce(trials: list[dict], results: list[dict]) -> list[dict]:
    # One artifact row per (transport, worker count): the speedup column is
    # what the bench-history gate reads, the byte_identical column is the
    # cross-transport correctness claim.
    rows: list[dict] = []
    for result in results:
        if "skipped" in result:
            rows.append(result)
            continue
        context = {
            key: result[key]
            for key in ("experiment", "cpu_count", "inner_scale", "trials_sharded")
        }
        for measurement in result["measurements"]:
            rows.append({**context, **measurement})
    return rows


register(
    Experiment(
        name="distsweep",
        title=(
            "Distributed transport sweep: fig11 sharded across 1/2/4/8 "
            "workers, plain vs. secure wire"
        ),
        build_trials=_distsweep_trials,
        run_trial=_distsweep_run,
        reduce=_distsweep_reduce,
        deterministic=False,  # wall-clock timings; never serve from cache
        kernels=("numpy",),  # it spawns worker processes of its own
        shardable=False,  # it *runs* the coordinator; sharding it would nest fan-outs
    )
)


def distributed_transport_sweep(scale: float = 1.0) -> list[dict]:
    """Distributed transport sweep: worker-count scaling, plain vs. secure."""
    return experiment_rows("distsweep", scale=scale)


#: Backwards-compatible name → callable map (kept for tests and docs).
FIGURES = {
    "fig07": figure07_anonymity_vs_malicious,
    "fig08": figure08_anonymity_vs_split,
    "fig09": figure09_anonymity_vs_path_length,
    "fig10": figure10_anonymity_vs_redundancy,
    "fig11": figure11_throughput_lan,
    "fig12": figure12_throughput_wan,
    "fig13": figure13_scaling_with_flows,
    "fig14": figure14_setup_latency_lan,
    "fig15": figure15_setup_latency_wan,
    "fig16": figure16_resilience_analysis,
    "fig17": figure17_churn_resilience,
    "distinguishability": distinguishability_rows,
    "microbench": coding_microbenchmark,
    "anonbench": anonymity_microbenchmark,
    "chaumbench": chaum_microbenchmark,
    "dataplane-bench": dataplane_microbenchmark,
    "gfbench": gf_kernel_microbenchmark,
    "sphinxbench": sphinx_microbenchmark,
    "distbench": distributed_sharding_benchmark,
    "distsweep": distributed_transport_sweep,
}
