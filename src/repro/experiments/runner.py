"""Parallel experiment runner: deterministic fan-out plus JSON artifacts.

The runner turns a registered :class:`~repro.experiments.registry.Experiment`
into rows:

1. ``build_trials(scale)`` produces the trial list;
2. the experiment's seed is expanded with ``np.random.SeedSequence.spawn``
   into one child sequence per trial, so every trial's randomness is
   independent of scheduling — running with 1 worker or 16 produces the
   same stream for trial *i*;
3. trials run inline (``workers=1``) or fan out over a
   ``multiprocessing`` pool, and results are re-assembled in trial order;
4. ``reduce`` folds them into rows, which are written as a canonical JSON
   artifact (fixed separators, deterministic key order) under the output
   directory and re-used as a cache on the next run.  For experiments whose
   trials are pure functions of their RNG (everything except the wall-clock
   timing experiments, which are marked ``deterministic=False`` and never
   served from cache), the artifact is byte-identical for a given
   ``(name, scale, seed)`` regardless of worker count.

Worker processes receive only ``(experiment name, trial params, seed)``
triples; they re-import the registry themselves, which keeps every payload
picklable under both fork and spawn start methods.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.gf import field_for_kernel, use_kernel
from .registry import Experiment, get_experiment

#: Where artifacts land unless the caller overrides it (the CLI's --out).
DEFAULT_RESULTS_DIR = Path("results")

#: Artifact version: bumped when the JSON layout changes *or* when an
#: engine change alters the rows computed for an unchanged
#: (name, scale, seed, trials) key, so stale cached artifacts the current
#: code cannot reproduce are never served.  v2: anonymity figures (7-10)
#: moved to the batched Monte-Carlo engine, which consumes randomness in
#: bulk draws rather than per trial.
ARTIFACT_VERSION = 2


@dataclass(frozen=True)
class RunResult:
    """Outcome of one experiment run (fresh or served from the artifact cache)."""

    name: str
    scale: float
    seed: int
    workers: int
    rows: list[dict]
    trial_count: int
    artifact: Path | None
    cached: bool
    elapsed_seconds: float
    backend: str = "sim"
    scheme: str | None = None
    kernel: str | None = None


def validate_kernel(experiment: Experiment, kernel: str) -> None:
    """Reject ``--kernel`` selections the experiment or host cannot run.

    Raises :class:`ValueError` for an unsupported selection and
    :class:`~repro.core.errors.KernelUnavailableError` when the compiled
    backend cannot load; both carry one-line messages the CLI surfaces
    verbatim as exit-2 usage errors.

    The kernel is deliberately *not* stamped into trial dictionaries: kernels
    are bit-identical by construction, so the artifact cache (and the
    artifact bytes) must stay kernel-independent — a cached numpy run
    serves a ``--kernel compiled`` request and vice versa.
    """
    if kernel not in experiment.kernels:
        supported = ", ".join(experiment.kernels)
        raise ValueError(
            f"experiment {experiment.name!r} does not support kernel {kernel!r} "
            f"(supported: {supported})"
        )
    field_for_kernel(kernel)  # raises KernelUnavailableError when unavailable


def validate_scheme(experiment: Experiment, scheme: str, backend: str) -> None:
    """Reject ``--scheme`` selections the experiment or backend cannot run.

    Raises :class:`ValueError` with a one-line message listing what *is*
    supported — the CLI surfaces it verbatim as an exit-2 usage error.
    """
    from ..overlay.runtime import runtime_backends, runtime_schemes

    if not experiment.schemes:
        raise ValueError(
            f"experiment {experiment.name!r} does not support per-scheme runs"
        )
    if scheme not in experiment.schemes:
        supported = ", ".join(experiment.schemes)
        raise ValueError(
            f"experiment {experiment.name!r} does not support scheme {scheme!r} "
            f"(supported: {supported})"
        )
    if scheme not in runtime_schemes():
        known = ", ".join(runtime_schemes())
        raise ValueError(f"unknown runtime scheme {scheme!r} (known: {known})")
    if backend not in runtime_backends(scheme):
        supported = ", ".join(
            name for name in experiment.schemes if backend in runtime_backends(name)
        )
        raise ValueError(
            f"scheme {scheme!r} does not run on backend {backend!r} "
            f"(schemes supported on {backend!r}: {supported or 'none'})"
        )


def run_experiment(
    name: str,
    scale: float = 1.0,
    workers: int = 1,
    seed: int | None = None,
    out_dir: str | Path | None = None,
    force: bool = False,
    backend: str = "sim",
    scheme: str | None = None,
    kernel: str | None = None,
) -> RunResult:
    """Run (or load from cache) one registered experiment.

    ``out_dir=None`` keeps everything in memory; passing a directory enables
    both artifact writing and cache lookups.  ``force=True`` ignores an
    existing artifact and recomputes.  ``backend`` selects the overlay
    transport for experiments that support more than the simulator (the
    figs. 11-15 family); runs on a non-default backend are never served from
    cache — their timing fields are wall-clock-dependent.  ``scheme``
    restricts a scheme-capable experiment to one registered protocol runtime
    (the scheme lands in every trial dictionary, so it keys the artifact
    cache; the default multi-scheme trial list is untouched).  ``kernel``
    selects the GF(2^8) implementation trials execute with
    (``"numpy"``/``"compiled"``); it travels out-of-band of the trial
    dictionaries because kernels are bit-identical by construction, keeping
    cached artifacts kernel-independent.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    experiment = get_experiment(name)
    if backend not in experiment.backends:
        supported = ", ".join(experiment.backends)
        raise ValueError(
            f"experiment {name!r} does not support backend {backend!r} "
            f"(supported: {supported})"
        )
    if scheme is not None:
        validate_scheme(experiment, scheme, backend)
    if kernel is not None:
        validate_kernel(experiment, kernel)
    seed = experiment.base_seed if seed is None else int(seed)
    started = time.perf_counter()
    trials = build_trial_list(experiment, scale, backend, scheme)
    cacheable = experiment.deterministic and backend == "sim"

    artifact = None if out_dir is None else Path(out_dir) / f"{name}.json"
    if artifact is not None and not force and cacheable:
        cached = _load_cached_document(artifact, name, scale, seed, trials)
        if cached is not None:
            # The parity mirror must track the served rows even when the
            # main artifact is a cache hit (it may have been deleted or
            # predate the current layout).
            _write_parity_artifact(artifact, experiment, scale, seed, cached["rows"])
            return RunResult(
                name=name,
                scale=scale,
                seed=seed,
                workers=workers,
                rows=cached["rows"],
                trial_count=len(cached["trials"]),
                artifact=artifact,
                cached=True,
                elapsed_seconds=time.perf_counter() - started,
                backend=backend,
                scheme=scheme,
                kernel=kernel,
            )

    results = _run_trials(experiment, trials, seed, workers, kernel)
    rows = reduce_rows(experiment, trials, results)

    if artifact is not None:
        write_run_artifacts(artifact, experiment, scale, seed, trials, rows)
    return RunResult(
        name=name,
        scale=scale,
        seed=seed,
        workers=workers,
        rows=rows,
        trial_count=len(trials),
        artifact=artifact,
        cached=False,
        elapsed_seconds=time.perf_counter() - started,
        backend=backend,
        scheme=scheme,
        kernel=kernel,
    )


def experiment_rows(
    name: str, scale: float = 1.0, seed: int | None = None, workers: int = 1
) -> list[dict]:
    """Convenience wrapper: run in memory and return only the rows."""
    return run_experiment(name, scale=scale, workers=workers, seed=seed).rows


# -- execution ---------------------------------------------------------------------
#
# The three helpers below are the *shared trial-execution core*: the local
# multiprocessing fan-out (`_run_trials`) and the distributed coordinator /
# worker loop (:mod:`repro.experiments.distributed`) both build the same
# trial list, derive the same per-trial seed sequences, and execute trials
# through the same function — which is what makes a distributed run of a
# deterministic experiment byte-identical to a single-process one.


def build_trial_list(
    experiment: Experiment,
    scale: float,
    backend: str = "sim",
    scheme: str | None = None,
) -> list[dict]:
    """Expand an experiment's declarative parameters into its trial list.

    Backend-capable experiments carry the backend in every trial, and a
    scheme restriction (``--scheme``) is likewise stamped into every trial,
    so both reach ``run_trial`` in workers and key the artifact cache; the
    default (no restriction) trial list is byte-identical to what it was
    before schemes existed.  The result is already JSON-hygienic: a
    distributed worker rebuilding this list from ``(name, scale, backend,
    scheme)`` gets the exact dictionaries the coordinator holds.
    """
    trials = _jsonify(experiment.build_trials(scale))
    if len(experiment.backends) > 1:
        trials = [{**params, "backend": backend} for params in trials]
    if scheme is not None:
        trials = [{**params, "scheme": scheme} for params in trials]
    return trials


def trial_payloads(
    name: str, trials: list[dict], seed: int, kernel: str | None = None
) -> list[tuple[str, int, dict, np.random.SeedSequence, str | None]]:
    """Per-trial execution payloads with deterministically spawned seeds.

    ``SeedSequence.spawn`` derives child ``i`` purely from ``(seed, i)``, so
    any process that knows the experiment name, trial list and root seed
    reconstructs the identical payload for trial ``i`` — the property both
    the local pool and the distributed workers rely on.  The kernel rides in
    the payload (not the trial dict) so it reaches workers without touching
    the cache key or the artifact bytes.
    """
    children = np.random.SeedSequence(seed).spawn(len(trials))
    return [
        (name, index, params, child, kernel)
        for index, (params, child) in enumerate(zip(trials, children))
    ]


def execute_trial(
    payload: tuple[str, int, dict, np.random.SeedSequence, str | None],
) -> tuple[int, dict]:
    """Run one trial; module-level so it pickles into worker processes."""
    name, index, params, seed_sequence, kernel = payload
    experiment = get_experiment(name)
    rng = np.random.default_rng(seed_sequence)
    with use_kernel(kernel):
        return index, experiment.run_trial(params, rng)


def reduce_rows(experiment: Experiment, trials: list[dict], results: list[dict]) -> list[dict]:
    """Fold per-trial results (in trial order) into JSON-hygienic rows."""
    return _jsonify(experiment.rows(trials, results))


def _run_trials(
    experiment: Experiment,
    trials: list[dict],
    seed: int,
    workers: int,
    kernel: str | None = None,
) -> list[dict]:
    payloads = trial_payloads(experiment.name, trials, seed, kernel)
    workers = min(workers, len(payloads)) or 1
    if workers == 1:
        indexed = [execute_trial(payload) for payload in payloads]
    else:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context()
        ) as pool:
            indexed = list(pool.map(execute_trial, payloads))
    indexed.sort(key=lambda pair: pair[0])
    return [result for _, result in indexed]


# -- artifacts ---------------------------------------------------------------------


def _artifact_document(
    experiment: Experiment, scale: float, seed: int, trials: list[dict], rows: list[dict]
) -> dict:
    return {
        "version": ARTIFACT_VERSION,
        "experiment": experiment.name,
        "title": experiment.title,
        "scale": scale,
        "seed": seed,
        "trials": trials,
        "rows": rows,
    }


def serialise_artifact(document: dict) -> str:
    """Canonical JSON: fixed separators and preserved insertion order, so equal
    documents serialise to identical bytes no matter how they were computed.
    Keys are *not* sorted: row key order is already deterministic for a given
    (experiment, scale, seed), and preserving it keeps cached rows identical
    in shape to freshly computed ones (column order in printed tables)."""
    return json.dumps(document, indent=2, separators=(",", ": ")) + "\n"


def _atomic_write_json(path: Path, document: dict) -> None:
    """Canonically serialise and atomically replace ``path``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(serialise_artifact(document), encoding="utf-8")
    tmp.replace(path)


def _write_artifact(
    artifact: Path,
    experiment: Experiment,
    scale: float,
    seed: int,
    trials: list[dict],
    rows: list[dict],
) -> None:
    _atomic_write_json(artifact, _artifact_document(experiment, scale, seed, trials, rows))


def write_run_artifacts(
    artifact: Path,
    experiment: Experiment,
    scale: float,
    seed: int,
    trials: list[dict],
    rows: list[dict],
) -> None:
    """Write the canonical artifact plus its parity mirror (if rows carry one).

    This is the single artifact-serialisation path: the local runner and the
    distributed coordinator both land here, so a distributed run's merged
    artifact is byte-identical to the single-process one for the same
    ``(experiment, scale, seed)``.
    """
    _write_artifact(artifact, experiment, scale, seed, trials, rows)
    _write_parity_artifact(artifact, experiment, scale, seed, rows)


def _write_parity_artifact(
    artifact: Path, experiment: Experiment, scale: float, seed: int, rows: list[dict]
) -> None:
    """Mirror the rows' ``parity`` sub-dicts into ``<name>.parity.json``.

    The parity document deliberately carries *no* backend or timing fields:
    for a given (experiment, scale, seed) it must serialise to identical
    bytes no matter which overlay backend computed it, which is exactly what
    the CI ``aio-parity`` job ``cmp``-checks.
    """
    parity_rows = [row["parity"] for row in rows if isinstance(row, dict) and "parity" in row]
    if not parity_rows:
        return
    document = {
        "version": ARTIFACT_VERSION,
        "experiment": experiment.name,
        "scale": scale,
        "seed": seed,
        "rows": parity_rows,
    }
    _atomic_write_json(artifact.with_name(f"{artifact.stem}.parity.json"), document)


def _load_cached_document(
    artifact: Path, name: str, scale: float, seed: int, trials: list[dict]
) -> dict | None:
    if not artifact.exists():
        return None
    try:
        document = json.loads(artifact.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    matches = (
        document.get("version") == ARTIFACT_VERSION
        and document.get("experiment") == name
        and document.get("scale") == scale
        and document.get("seed") == seed
        and isinstance(document.get("rows"), list)
        # The stored trial list must match what the current experiment
        # definition would run — an edited definition invalidates the cache.
        and document.get("trials") == trials
    )
    return document if matches else None


# -- JSON hygiene ------------------------------------------------------------------


def _jsonify(value):
    """Recursively convert numpy scalars/arrays into plain JSON-able Python."""
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonify(item) for item in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    return value
