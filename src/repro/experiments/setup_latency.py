"""Route-setup latency experiments (§7.4 — Figs. 14 and 15).

Setup latency is measured end-to-end: from the instant the source stage
injects the setup packets until the last relay stage has decoded its routing
information (the paper places the receiver in the last stage for this
measurement, so "last stage decoded" is the graph-complete instant).

The onion-routing baseline sets up its circuit by forwarding the real
layered onion hop by hop (a few hundred bytes at the outermost layer for the
paper's path lengths); each relay pays one public-key decryption plus the
same per-setup-packet daemon handling constant the slicing runtime charges
(:data:`~repro.overlay.node.DEFAULT_SETUP_PROCESSING_OVERHEAD`) before
passing the (smaller) onion on, and the measurement ends when the last relay
has peeled its layer and the acknowledgement returns.

Both schemes run through the unified
:class:`~repro.overlay.runtime.ProtocolRuntime` interface —
:func:`measure_setup` is the one driver behind both figures, sharing its
per-scheme construction with the throughput driver
(:func:`~repro.experiments.throughput.prepare_scheme_transfer`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..overlay.profiles import OverlayProfile
from .throughput import PROTOCOL_LABELS, prepare_scheme_transfer


@dataclass(frozen=True)
class SetupLatencyResult:
    """Route-setup measurement plus its structural (backend-parity) fields.

    ``setup_seconds`` is clock-dependent; ``setup_complete``,
    ``relays_decoded`` and the counters are identical between the ``sim``
    and ``aio`` backends under a shared seed (on profiles where setup beats
    the flush timeout).
    """

    protocol: str
    path_length: int
    d: int
    setup_seconds: float
    setup_complete: bool = True
    relays_decoded: int = 0
    relay_counters: dict = field(default_factory=dict)
    net_counters: dict = field(default_factory=dict)

    def parity_fields(self) -> dict:
        """The structural fields asserted identical across backends."""
        return {
            "complete": self.setup_complete,
            "relays_decoded": self.relays_decoded,
            "relay": dict(self.relay_counters),
            "net": dict(self.net_counters),
        }


def measure_setup(
    scheme: str,
    profile: OverlayProfile,
    path_length: int,
    d: int = 1,
    d_prime: int | None = None,
    seed: int = 17,
    data_plane: str = "batched",
    backend: str = "sim",
) -> SetupLatencyResult:
    """Unified driver: time one scheme's route establishment on a profile."""
    d_prime = d if d_prime is None else d_prime
    substrate, runtime, relays, destination = prepare_scheme_transfer(
        scheme, profile, path_length, d, d_prime, seed, data_plane, backend
    )
    try:
        start = substrate.sim.now
        runtime.establish(relays, destination)
        substrate.sim.run()
        setup_seconds = runtime.setup_seconds()
        setup_complete = setup_seconds is not None
        if setup_seconds is None:
            # Setup did not finish (should not happen without churn); report the
            # time the simulation drained as an upper bound.
            setup_seconds = substrate.sim.now - start
        return SetupLatencyResult(
            protocol=PROTOCOL_LABELS.get(scheme, scheme),
            path_length=path_length,
            d=d,
            setup_seconds=setup_seconds,
            setup_complete=setup_complete,
            relays_decoded=len(runtime.progress.relay_decode_times),
            relay_counters=runtime.relay_counters(),
            net_counters=runtime.network_counters(),
        )
    finally:
        substrate.close()


def measure_slicing_setup(
    profile: OverlayProfile,
    path_length: int,
    d: int,
    d_prime: int | None = None,
    seed: int = 17,
    backend: str = "sim",
) -> SetupLatencyResult:
    """Time to establish one information-slicing forwarding graph."""
    return measure_setup(
        "slicing", profile, path_length, d=d, d_prime=d_prime, seed=seed, backend=backend
    )


def measure_onion_setup(
    profile: OverlayProfile, path_length: int, seed: int = 19, backend: str = "sim"
) -> SetupLatencyResult:
    """Time to build one onion circuit of ``path_length`` relays."""
    return measure_setup("onion", profile, path_length, seed=seed, backend=backend)


def compare_setup_decode_engines(
    profile: OverlayProfile,
    path_length: int,
    d: int,
    d_prime: int | None = None,
    seed: int = 17,
    reps: int = 3,
) -> dict:
    """Wall-clock one slicing route setup on the scalar vs batched engines.

    The scalar engine decodes each relay's routing slices with the
    per-message :func:`~repro.core.integrity.robust_decode`; the batched
    engine routes the same decode through the batched Gauss–Jordan kernel
    (:func:`~repro.core.flow_decoder.decode_setup_payload`).  Both runs
    share the seed, and this function *asserts* their structural results —
    setup completion, relays decoded, relay and network counters — are
    bit-identical before reporting the timing comparison (per-rep minimum,
    the suite's standard noise-robust estimator).
    """
    scalar_times: list[float] = []
    batched_times: list[float] = []
    scalar = batched = None
    for _ in range(max(reps, 1)):
        start = time.perf_counter()
        scalar = measure_setup(
            "slicing", profile, path_length, d=d, d_prime=d_prime, seed=seed,
            data_plane="scalar",
        )
        scalar_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        batched = measure_setup(
            "slicing", profile, path_length, d=d, d_prime=d_prime, seed=seed,
            data_plane="batched",
        )
        batched_times.append(time.perf_counter() - start)
    if scalar.parity_fields() != batched.parity_fields():
        raise AssertionError(
            "batched setup decode diverged from the scalar reference: "
            f"{scalar.parity_fields()} != {batched.parity_fields()}"
        )
    scalar_seconds = min(scalar_times)
    batched_seconds = min(batched_times)
    return {
        "path_length": path_length,
        "d": d,
        "scalar_ms": scalar_seconds * 1e3,
        "batched_ms": batched_seconds * 1e3,
        "speedup": scalar_seconds / max(batched_seconds, 1e-12),
        "setup_seconds": batched.setup_seconds,
        "identical": True,
    }


def setup_latency_sweep(
    profile: OverlayProfile,
    path_lengths: list[int],
    split_factors: list[int] = (2, 3, 4),
    seed: int = 21,
) -> list[dict]:
    """Figs. 14 / 15: setup time vs. path length for onion and slicing d=2,3,4."""
    rows = []
    for path_length in path_lengths:
        row: dict = {"path_length": path_length}
        onion = measure_onion_setup(profile, path_length, seed=seed + path_length)
        row["onion_seconds"] = onion.setup_seconds
        for d in split_factors:
            result = measure_slicing_setup(
                profile, path_length, d=d, seed=seed + 10 * d + path_length
            )
            row[f"slicing_d{d}_seconds"] = result.setup_seconds
        rows.append(row)
    return rows
