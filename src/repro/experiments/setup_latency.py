"""Route-setup latency experiments (§7.4 — Figs. 14 and 15).

Setup latency is measured end-to-end: from the instant the source stage
injects the setup packets until the last relay stage has decoded its routing
information (the paper places the receiver in the last stage for this
measurement, so "last stage decoded" is the graph-complete instant).

The onion-routing baseline sets up its circuit by forwarding the layered
onion hop by hop; each relay pays one public-key decryption before passing
the (smaller) onion on, and the measurement ends when the last relay has
peeled its layer and the acknowledgement returns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.source import Source
from ..overlay.node import SimulatedOverlayNetwork, SlicingRuntime
from ..overlay.profiles import OverlayProfile
from .throughput import connection_bps_for

#: Size of an onion setup message (bytes); roughly L layered RSA envelopes.
ONION_SETUP_BYTES = 512

#: Per-setup-packet daemon handling cost, matching the slicing runtime's
#: DEFAULT_SETUP_PROCESSING_OVERHEAD so the comparison is fair.
ONION_SETUP_HANDLING = 0.008


@dataclass(frozen=True)
class SetupLatencyResult:
    protocol: str
    path_length: int
    d: int
    setup_seconds: float


def _addresses(prefix: str, count: int) -> list[str]:
    return [f"{prefix}-{index}" for index in range(count)]


def measure_slicing_setup(
    profile: OverlayProfile,
    path_length: int,
    d: int,
    d_prime: int | None = None,
    seed: int = 17,
) -> SetupLatencyResult:
    """Time to establish one information-slicing forwarding graph."""
    d_prime = d if d_prime is None else d_prime
    rng = np.random.default_rng(seed)
    source_stage = _addresses("src", d_prime)
    relays = _addresses("relay", max(path_length * d_prime * 2, 24))
    destination = "destination"
    all_addresses = source_stage + relays + [destination]
    network = profile.build_network(all_addresses, rng)
    substrate = SimulatedOverlayNetwork(
        network, connection_bps=connection_bps_for(profile)
    )
    runtime = SlicingRuntime(substrate, rng=np.random.default_rng(seed + 1))
    source = Source(
        source_stage[0],
        source_stage[1:],
        d=d,
        d_prime=d_prime,
        path_length=path_length,
        rng=rng,
    )
    flow = source.establish_flow(relays, destination)
    start = substrate.sim.now
    progress = runtime.start_flow(source, flow)
    substrate.sim.run()
    last_stage = flow.graph.stages[-1]
    complete = progress.setup_complete_time(last_stage)
    if complete is None:
        # Setup did not finish (should not happen without churn); report the
        # time the simulation drained as an upper bound.
        complete = substrate.sim.now
    return SetupLatencyResult(
        protocol="information-slicing",
        path_length=path_length,
        d=d,
        setup_seconds=complete - start,
    )


def measure_onion_setup(
    profile: OverlayProfile, path_length: int, seed: int = 19
) -> SetupLatencyResult:
    """Time to build one onion circuit of ``path_length`` relays."""
    rng = np.random.default_rng(seed)
    relays = _addresses("onion", path_length)
    all_addresses = ["onion-source", *relays]
    network = profile.build_network(all_addresses, rng)
    substrate = SimulatedOverlayNetwork(
        network, connection_bps=connection_bps_for(profile)
    )
    chain = ["onion-source", *relays]
    finished = {"at": None}

    def forward(hop_index: int) -> None:
        sender = chain[hop_index]
        receiver = chain[hop_index + 1]
        if hop_index == 0:
            # The source performs one public-key encryption per layer.
            cpu = network.resources(sender).pk_encrypt_time() * path_length
        else:
            # Relays pay one PK decryption plus the daemon's per-setup-packet
            # handling cost (same constant the slicing runtime charges).
            cpu = (
                network.resources(sender).pk_decrypt_time()
                + ONION_SETUP_HANDLING * network.resources(sender).load_factor
            )

        def on_delivered() -> None:
            if hop_index + 1 == len(chain) - 1:
                # Final relay peels its layer, then the ack travels back.
                peel = substrate.reserve_cpu(
                    receiver, network.resources(receiver).pk_decrypt_time()
                )
                ack_latency = sum(
                    network.latency(chain[i + 1], chain[i])
                    for i in range(len(chain) - 1)
                )
                substrate.sim.schedule_at(
                    peel + ack_latency, lambda: finished.__setitem__("at", substrate.sim.now)
                )
            else:
                forward(hop_index + 1)

        substrate.transmit(
            sender=sender,
            receiver=receiver,
            size_bytes=ONION_SETUP_BYTES,
            on_delivered=on_delivered,
            sender_cpu_seconds=cpu,
        )

    start = substrate.sim.now
    forward(0)
    substrate.sim.run()
    end = finished["at"] if finished["at"] is not None else substrate.sim.now
    return SetupLatencyResult(
        protocol="onion-routing",
        path_length=path_length,
        d=1,
        setup_seconds=end - start,
    )


def setup_latency_sweep(
    profile: OverlayProfile,
    path_lengths: list[int],
    split_factors: list[int] = (2, 3, 4),
    seed: int = 21,
) -> list[dict]:
    """Figs. 14 / 15: setup time vs. path length for onion and slicing d=2,3,4."""
    rows = []
    for path_length in path_lengths:
        row: dict = {"path_length": path_length}
        onion = measure_onion_setup(profile, path_length, seed=seed + path_length)
        row["onion_seconds"] = onion.setup_seconds
        for d in split_factors:
            result = measure_slicing_setup(
                profile, path_length, d=d, seed=seed + 10 * d + path_length
            )
            row[f"slicing_d{d}_seconds"] = result.setup_seconds
        rows.append(row)
    return rows
