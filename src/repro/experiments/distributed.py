"""Distributed experiment sharding: a coordinator/worker subsystem over TCP.

One registered :class:`~repro.experiments.registry.Experiment` is sharded
across worker *processes* (same host or not) that speak length-prefixed JSON
frames over TCP — the same framing discipline as the asyncio overlay backend
(:mod:`repro.overlay.aio`), whose :func:`~repro.overlay.aio.encode_frame` /
:func:`~repro.overlay.aio.read_frame` primitives this module reuses.

Roles
-----
* The **coordinator** (:func:`run_distributed`, CLI ``repro-experiments
  coordinate``) owns the trial list.  It chunks trial *indices* into leases
  with an expiry deadline, hands a lease to whichever worker asks, collects
  completed rows, re-enqueues the outstanding indices of a lease when its
  worker dies or the lease times out, and — once every index has a result —
  merges the rows through the runner's canonical artifact path
  (:func:`~repro.experiments.runner.write_run_artifacts`).
* A **worker** (:func:`run_worker`, CLI ``repro-experiments worker``)
  connects, learns ``(experiment, scale, seed, backend)`` from the job
  frame, *rebuilds the trial list and per-trial seed sequences locally*
  (:func:`~repro.experiments.runner.build_trial_list` /
  :func:`~repro.experiments.runner.trial_payloads`), and then loops:
  request a lease, execute its trials through the shared
  :func:`~repro.experiments.runner.execute_trial` core, send the rows back.

Because workers execute the *identical* payloads the local multiprocessing
pool would (same trial dicts, same ``SeedSequence.spawn`` children, same
``run_trial``), a distributed run of a deterministic experiment produces a
merged ``results/<name>.json`` byte-identical to a single-process
``run_experiment`` of the same ``(name, scale, seed)`` — regardless of how
many workers ran, in what order leases completed, or whether leases were
re-dispatched after a worker death.  CI's ``dist-parity`` job ``cmp``-gates
exactly that.

Wire protocol (version 1)
-------------------------
Every frame is a 4-byte big-endian length followed by a canonical-JSON
object (sorted keys, compact separators) with a ``"type"`` field:

==============  =========  ====================================================
type            direction  payload
==============  =========  ====================================================
``hello``       w -> c     ``protocol``, ``worker`` (display label)
``job``         c -> w     ``protocol``, ``experiment``, ``scale``, ``seed``,
                           ``backend``, ``trial_count``, ``trials_digest``
``request``     w -> c     ask for work
``lease``       c -> w     ``lease_id``, ``indices`` (trial indices to run)
``result``      w -> c     ``lease_id``, ``results``: ``[[index, row], ...]``
``wait``        c -> w     ``seconds`` — nothing leasable right now, re-ask
``done``        c -> w     every trial has a result; disconnect
``error``       c -> w     ``message`` — protocol/job mismatch, disconnect
==============  =========  ====================================================

After ``hello``/``job``, the conversation is strict request–response: the
worker sends ``request`` or ``result`` and the coordinator answers each with
exactly one of ``lease`` / ``wait`` / ``done``.  Truncated and oversized
frames are rejected exactly as on the overlay wire (property-tested in
``tests/test_dist_protocol.py``); results are recorded *per trial index* and
only the first result for an index counts, which makes duplicate and stale
(post-re-dispatch) deliveries idempotent.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from ..core.errors import (
    HandshakeError,
    KernelUnavailableError,
    PacketFormatError,
    SecureTransportError,
)
from ..net import TransportCredential, write_keypair
from ..net.channel import (
    AioFrameChannel,
    SyncFrameChannel,
    accept_secure_aio,
    connect_secure_sync,
)
from ..overlay.aio import FRAME_HEADER, MAX_FRAME_BYTES, encode_frame
from .registry import Experiment, get_experiment
from .runner import (
    _jsonify,
    _load_cached_document,
    _write_parity_artifact,
    build_trial_list,
    execute_trial,
    reduce_rows,
    trial_payloads,
    validate_kernel,
    validate_scheme,
    write_run_artifacts,
)

#: Version tag carried by ``hello`` and ``job``; mismatch is a hard error.
PROTOCOL_VERSION = 1

#: Default lease lifetime (seconds): a worker holding a lease longer than
#: this without delivering results is presumed dead and its indices are
#: re-enqueued.
DEFAULT_LEASE_SECONDS = 120.0

#: Default number of trial indices per lease.
DEFAULT_CHUNK_SIZE = 1

#: Seconds a worker sleeps when told to ``wait`` (no leasable work yet).
DEFAULT_POLL_SECONDS = 0.2

#: Wire transports both sides understand.  ``plain`` is the original
#: length-prefixed framing; ``secure`` mounts the same frames on the
#: authenticated :mod:`repro.net` channel (handshake first, then one AEAD
#: message per frame).  The JSON payloads — and therefore the merged
#: artifacts — are identical either way.
TRANSPORTS = ("plain", "secure")


# -- message layer ------------------------------------------------------------------


def encode_message(message: dict) -> bytes:
    """Frame one protocol message as compact JSON.

    Key order is *preserved*, not sorted: result rows travel inside these
    frames and the artifact serialisation keeps row insertion order, so the
    envelope must not re-order what it carries.  Raises
    :class:`~repro.core.errors.PacketFormatError` for non-dict messages,
    messages without a ``"type"``, or encodings that exceed
    :data:`~repro.overlay.aio.MAX_FRAME_BYTES` — the same limit as the
    overlay wire.
    """
    return encode_frame(message_payload(message))


def message_payload(message: dict) -> bytes:
    """Serialise one protocol message to its unframed JSON payload bytes.

    The frame channels (:mod:`repro.net.channel`) add their own plain or
    encrypted framing around this payload; :func:`encode_message` is the
    plain-wire composition kept for the protocol tests.
    """
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise PacketFormatError("protocol messages are dicts with a string 'type'")
    return json.dumps(message, separators=(",", ":")).encode("utf-8")


def decode_message(payload: bytes) -> dict:
    """Parse one frame payload back into a protocol message dict."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise PacketFormatError("frame payload is not valid JSON") from None
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise PacketFormatError("protocol messages are dicts with a string 'type'")
    return message


def trials_digest(trials: list[dict]) -> str:
    """Order-sensitive digest of a trial list.

    Carried in the ``job`` frame so a worker whose locally rebuilt trial
    list differs from the coordinator's (code-version skew) aborts instead
    of silently computing different trials.
    """
    canonical = json.dumps(trials, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- lease bookkeeping --------------------------------------------------------------


@dataclass(frozen=True)
class Lease:
    """One outstanding grant of trial indices to one worker connection."""

    lease_id: int
    indices: tuple[int, ...]
    worker: str
    expires_at: float


class TrialLedger:
    """Pure lease/result bookkeeping for one experiment's trial indices.

    The coordinator drives this from its socket handlers; keeping it free of
    any I/O makes the lease lifecycle property-testable
    (``tests/test_dist_protocol.py``).  Invariants:

    * every index is recorded at most once — :meth:`complete` is idempotent,
      so duplicate results (a worker retrying, or a stale result arriving
      after its lease was re-dispatched) change nothing;
    * an index is never lost — expiring or releasing a lease re-enqueues
      exactly its not-yet-completed indices;
    * :meth:`results_in_order` returns results in trial order, independent
      of completion order.
    """

    def __init__(
        self,
        total: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ) -> None:
        if total < 0:
            raise ValueError(f"trial count must be >= 0, got {total}")
        if chunk_size < 1:
            raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
        if lease_seconds <= 0:
            raise ValueError(f"lease seconds must be positive, got {lease_seconds}")
        self.total = total
        self.chunk_size = chunk_size
        self.lease_seconds = lease_seconds
        self._pending: deque[tuple[int, ...]] = deque(
            tuple(range(start, min(start + chunk_size, total)))
            for start in range(0, total, chunk_size)
        )
        self._leases: dict[int, Lease] = {}
        self._results: dict[int, dict] = {}
        self._lease_ids = itertools.count(1)

    @property
    def done(self) -> bool:
        """True once every trial index has a recorded result."""
        return len(self._results) >= self.total

    @property
    def completed(self) -> int:
        return len(self._results)

    def outstanding(self) -> list[Lease]:
        """Currently granted leases (for observability and tests)."""
        return list(self._leases.values())

    def lease(self, worker: str, now: float) -> Lease | None:
        """Grant the next chunk of uncompleted indices, or None if none pend."""
        while self._pending:
            indices = tuple(
                index for index in self._pending.popleft() if index not in self._results
            )
            if not indices:
                continue
            lease = Lease(
                lease_id=next(self._lease_ids),
                indices=indices,
                worker=worker,
                expires_at=now + self.lease_seconds,
            )
            self._leases[lease.lease_id] = lease
            return lease
        return None

    def complete(self, lease_id: int, results: dict[int, dict]) -> int:
        """Record per-index results; returns how many were newly recorded.

        The lease (if still outstanding) is retired, and any of its indices
        the frame did *not* cover go back in the pending queue — an index
        can never be stranded, even by a partial or malformed frame
        (validation happens before any state changes, so a rejected frame
        leaves the lease outstanding for expiry/death re-dispatch).
        Unknown or stale lease ids are fine — the per-index results are
        still valid work — and an index that already has a result keeps its
        first one, which is what makes duplicate deliveries idempotent.
        """
        for index in results:
            if not 0 <= index < self.total:
                raise PacketFormatError(
                    f"result index {index} outside the trial range 0..{self.total - 1}"
                )
        lease = self._leases.pop(lease_id, None)
        newly = 0
        for index, result in results.items():
            if index not in self._results:
                self._results[index] = result
                newly += 1
        if lease is not None:
            uncovered = tuple(
                index for index in lease.indices if index not in self._results
            )
            if uncovered:
                self._pending.append(uncovered)
        return newly

    def expire(self, now: float) -> list[Lease]:
        """Re-enqueue every overdue lease; returns the ones re-dispatched."""
        overdue = [lease for lease in self._leases.values() if lease.expires_at <= now]
        return [lease for lease in overdue if self._requeue(lease)]

    def release_worker(self, worker: str) -> list[Lease]:
        """Re-enqueue a dead worker's leases; returns the ones re-dispatched."""
        held = [lease for lease in self._leases.values() if lease.worker == worker]
        return [lease for lease in held if self._requeue(lease)]

    def _requeue(self, lease: Lease) -> bool:
        del self._leases[lease.lease_id]
        indices = tuple(
            index for index in lease.indices if index not in self._results
        )
        if not indices:
            return False
        self._pending.append(indices)
        return True

    def results_in_order(self) -> list[dict]:
        """All results in trial-index order; only valid once :attr:`done`."""
        if not self.done:
            missing = self.total - len(self._results)
            raise RuntimeError(f"ledger incomplete: {missing} trial(s) unfinished")
        return [self._results[index] for index in range(self.total)]


# -- coordinator --------------------------------------------------------------------


@dataclass(frozen=True)
class DistributedRunResult:
    """Outcome of one distributed experiment run."""

    name: str
    scale: float
    seed: int
    backend: str
    rows: list[dict]
    trial_count: int
    artifact: Path | None
    cached: bool
    elapsed_seconds: float
    #: First lease granted -> last result recorded; excludes worker start-up,
    #: which is what the ``distbench`` sharding-speedup gate measures.
    compute_seconds: float
    workers_seen: int
    redispatched: int
    scheme: str | None = None
    kernel: str | None = None
    #: Wire transport the run used ("plain" | "secure"); the merged artifact
    #: is byte-identical either way.
    transport: str = "plain"


@dataclass
class _CoordinatorState:
    """Mutable run state shared by the socket handlers and the watchdog."""

    ledger: TrialLedger
    done: asyncio.Event = field(default_factory=asyncio.Event)
    ready: asyncio.Event = field(default_factory=asyncio.Event)
    workers_seen: int = 0
    connected: int = 0
    redispatched: int = 0
    compute_started: float | None = None
    compute_seconds: float = 0.0

    def note_progress(self) -> None:
        if self.ledger.done and not self.done.is_set():
            if self.compute_started is not None:
                self.compute_seconds = time.perf_counter() - self.compute_started
            self.done.set()


class Coordinator:
    """Asyncio TCP server leasing one experiment's trials to workers."""

    def __init__(
        self,
        experiment: Experiment,
        trials: list[dict],
        scale: float,
        seed: int,
        backend: str = "sim",
        scheme: str | None = None,
        kernel: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        min_workers: int = 1,
        timeout: float | None = None,
        transport: str = "plain",
        credential: TransportCredential | None = None,
        worker_extra_args: list[str] | None = None,
        log=None,
    ) -> None:
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        if transport not in TRANSPORTS:
            supported = ", ".join(TRANSPORTS)
            raise ValueError(
                f"unknown transport {transport!r} (supported: {supported})"
            )
        if transport == "secure" and credential is None:
            raise ValueError(
                "the secure transport needs a TransportCredential "
                "(static keypair + authorized worker keys)"
            )
        self.transport = transport
        self.credential = credential
        self.worker_extra_args = list(worker_extra_args or [])
        self.experiment = experiment
        self.trials = trials
        self.scale = scale
        self.seed = seed
        self.backend = backend
        self.scheme = scheme
        self.kernel = kernel
        self.host = host
        self.port = port
        self.lease_seconds = lease_seconds
        self.min_workers = min_workers
        self.timeout = timeout
        self.log = log or (lambda message: None)
        self.state = _CoordinatorState(
            ledger=TrialLedger(len(trials), chunk_size, lease_seconds)
        )
        self._digest = trials_digest(trials)
        self._handler_tasks: set[asyncio.Task] = set()
        self._handler_writers: set[asyncio.StreamWriter] = set()

    async def serve(self, spawn_local: int = 0) -> list[dict]:
        """Run to completion; returns the per-trial results in trial order.

        ``spawn_local`` convenience mode launches that many worker processes
        against the bound port (the CLI's ``run --dist N``).
        """
        state = self.state
        if state.ledger.total == 0:
            return []
        server = await asyncio.start_server(self._handle_worker, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self.log(
            f"coordinator: {self.experiment.name} scale={self.scale} "
            f"seed={self.seed} trials={state.ledger.total} "
            f"listening on {self.host}:{self.port}"
        )
        workers: list[subprocess.Popen] = []
        watchdog = asyncio.ensure_future(self._watch_expiry())
        try:
            workers = [self._spawn_local_worker(rank) for rank in range(spawn_local)]
            await asyncio.wait_for(state.done.wait(), self.timeout)
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"distributed run of {self.experiment.name!r} timed out after "
                f"{self.timeout}s with {state.ledger.completed}/{state.ledger.total} "
                "trials complete"
            ) from None
        finally:
            watchdog.cancel()
            server.close()
            await server.wait_closed()
            await self._drain_handlers()
            self._reap(workers)
        return state.ledger.results_in_order()

    async def _drain_handlers(self) -> None:
        # Handlers park either at the min_workers barrier or in read_frame()
        # waiting for their worker's next request; releasing the barrier and
        # closing the transports wakes them with a clean EOF so they finish
        # normally (and their workers see EOF = run over) instead of being
        # cancelled mid-read when the loop shuts down.
        self.state.ready.set()
        for writer in list(self._handler_writers):
            writer.close()
        pending = [task for task in self._handler_tasks if not task.done()]
        if pending:
            _done, leftover = await asyncio.wait(pending, timeout=2.0)
            for task in leftover:
                task.cancel()
            if leftover:
                await asyncio.wait(leftover, timeout=1.0)

    def _spawn_local_worker(self, rank: int) -> subprocess.Popen:
        command = [
            sys.executable,
            "-m",
            "repro.experiments",
            "worker",
            "--host",
            self.host,
            "--port",
            str(self.port),
            "--label",
            f"local-{rank}",
            *self.worker_extra_args,
        ]
        return subprocess.Popen(command, stdout=subprocess.DEVNULL)

    def _reap(self, workers: list[subprocess.Popen]) -> None:
        # Workers exit on the done frame / server EOF; escalate only if one
        # wedges (its trials were completed by somebody else regardless).
        for worker in workers:
            try:
                worker.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.wait()

    async def _watch_expiry(self) -> None:
        state = self.state
        interval = max(self.lease_seconds / 4.0, 0.05)
        while not state.done.is_set():
            await asyncio.sleep(interval)
            expired = state.ledger.expire(time.monotonic())
            if expired:
                state.redispatched += len(expired)
                for lease in expired:
                    self.log(
                        f"coordinator: lease {lease.lease_id} "
                        f"({lease.worker}) expired; re-dispatching "
                        f"{len(lease.indices)} trial(s)"
                    )

    async def _handle_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        state = self.state
        worker_key = ""
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        self._handler_writers.add(writer)
        try:
            if self.transport == "secure":
                # The handshake (and the allowlist check inside accept) runs
                # to completion before any protocol frame is read: an
                # unauthorized or tampering peer is rejected here, with no
                # job state touched.
                try:
                    channel = await accept_secure_aio(
                        reader,
                        writer,
                        self.credential.keypair,
                        self.credential.authorized,
                    )
                except HandshakeError as exc:
                    self.log(f"coordinator: rejected connection: {exc}")
                    return
            else:
                channel = AioFrameChannel(reader, writer)
            hello = await channel.recv_frame()
            if hello is None:
                return
            message = decode_message(hello)
            if (
                message.get("type") != "hello"
                or message.get("protocol") != PROTOCOL_VERSION
            ):
                await self._send(
                    channel,
                    {
                        "type": "error",
                        "message": f"expected hello with protocol {PROTOCOL_VERSION}",
                    },
                )
                return
            state.workers_seen += 1
            state.connected += 1
            label = str(message.get("worker") or "worker")
            worker_key = f"{label}#{state.workers_seen}"
            self.log(f"coordinator: worker {worker_key} connected")
            await self._send(
                channel,
                {
                    "type": "job",
                    "protocol": PROTOCOL_VERSION,
                    "experiment": self.experiment.name,
                    "scale": self.scale,
                    "seed": self.seed,
                    "backend": self.backend,
                    "scheme": self.scheme,
                    "kernel": self.kernel,
                    "trial_count": state.ledger.total,
                    "trials_digest": self._digest,
                },
            )
            if state.connected >= self.min_workers:
                state.ready.set()
            await state.ready.wait()
            while True:
                frame = await channel.recv_frame()
                if frame is None:
                    break
                message = decode_message(frame)
                kind = message.get("type")
                if kind == "result":
                    self._record_result(message)
                elif kind != "request":
                    raise PacketFormatError(
                        f"unexpected message type {kind!r} from {worker_key}"
                    )
                reply = self._next_reply(worker_key)
                await self._send(channel, reply)
                if reply["type"] == "done":
                    break
        except (PacketFormatError, SecureTransportError, ConnectionError, OSError) as exc:
            self.log(f"coordinator: worker {worker_key or '<handshake>'} dropped: {exc}")
        except asyncio.CancelledError:
            # Only teardown cancels handlers (after the drain grace period);
            # swallowing keeps the loop's shutdown quiet.
            pass
        finally:
            self._handler_writers.discard(writer)
            if worker_key:
                state.connected -= 1
                released = state.ledger.release_worker(worker_key)
                if released:
                    state.redispatched += len(released)
                    trial_count = sum(len(lease.indices) for lease in released)
                    self.log(
                        f"coordinator: worker {worker_key} died holding "
                        f"{len(released)} lease(s); re-dispatching "
                        f"{trial_count} trial(s)"
                    )
            writer.close()

    def _record_result(self, message: dict) -> None:
        state = self.state
        raw = message.get("results")
        if not isinstance(raw, list):
            raise PacketFormatError("result message carries no results list")
        results: dict[int, dict] = {}
        for entry in raw:
            if not (
                isinstance(entry, list)
                and len(entry) == 2
                and isinstance(entry[0], int)
                and isinstance(entry[1], dict)
            ):
                raise PacketFormatError("result entries must be [index, row] pairs")
            results[entry[0]] = entry[1]
        state.ledger.complete(int(message.get("lease_id", 0)), results)
        state.note_progress()

    def _next_reply(self, worker_key: str) -> dict:
        state = self.state
        if state.ledger.done:
            return {"type": "done"}
        lease = state.ledger.lease(worker_key, time.monotonic())
        if lease is None:
            return {"type": "wait", "seconds": DEFAULT_POLL_SECONDS}
        if state.compute_started is None:
            state.compute_started = time.perf_counter()
        return {"type": "lease", "lease_id": lease.lease_id, "indices": list(lease.indices)}

    @staticmethod
    async def _send(channel, message: dict) -> None:
        await channel.send_frame(message_payload(message))


def run_distributed(
    name: str,
    scale: float = 1.0,
    seed: int | None = None,
    out_dir: str | Path | None = None,
    force: bool = False,
    backend: str = "sim",
    scheme: str | None = None,
    kernel: str | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 0,
    min_workers: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    timeout: float | None = None,
    transport: str = "plain",
    credential: TransportCredential | None = None,
    log=None,
) -> DistributedRunResult:
    """Coordinate one distributed experiment run to completion.

    With ``workers=0`` (the ``coordinate`` CLI) the coordinator binds and
    waits for externally started workers; ``workers=N`` additionally spawns
    ``N`` local worker processes against the bound port (the CLI's
    ``run --dist N`` convenience mode).  ``min_workers`` holds the first
    lease back until that many workers are connected (default: ``workers``
    or 1), so multi-worker timing measurements start from a level field.

    ``transport="secure"`` mounts the frames on the authenticated
    :mod:`repro.net` channel.  A ``coordinate``-style run passes its own
    ``credential`` (loaded from key files); the spawn-local convenience mode
    may omit it, in which case a throwaway coordinator/worker keypair and
    allowlist are generated in a temporary directory and handed to the
    spawned workers — the handshake is fully exercised with zero
    provisioning.  Either way the merged artifact is byte-identical to a
    plaintext run of the same ``(name, scale, seed)``.

    Artifact and cache behaviour mirror :func:`~repro.experiments.runner.
    run_experiment`: deterministic sim-backend runs write (and may be served
    from) the same canonical ``<name>.json``, byte-identical to the
    single-process artifact.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if workers < 0:
        raise ValueError(f"worker count must be >= 0, got {workers}")
    if transport not in TRANSPORTS:
        supported = ", ".join(TRANSPORTS)
        raise ValueError(f"unknown transport {transport!r} (supported: {supported})")
    if transport == "secure" and credential is None and workers == 0:
        raise ValueError(
            "a secure run awaiting external workers needs a TransportCredential "
            "(key files); only the spawn-local mode can generate throwaway keys"
        )
    experiment = get_experiment(name)
    if not experiment.shardable:
        raise ValueError(
            f"experiment {name!r} is not shardable (single-host wall-clock "
            "measurement); run it through `run` instead"
        )
    if backend not in experiment.backends:
        supported = ", ".join(experiment.backends)
        raise ValueError(
            f"experiment {name!r} does not support backend {backend!r} "
            f"(supported: {supported})"
        )
    if scheme is not None:
        validate_scheme(experiment, scheme, backend)
    if kernel is not None:
        validate_kernel(experiment, kernel)
    seed = experiment.base_seed if seed is None else int(seed)
    started = time.perf_counter()
    trials = build_trial_list(experiment, scale, backend, scheme)
    cacheable = experiment.deterministic and backend == "sim"

    artifact = None if out_dir is None else Path(out_dir) / f"{name}.json"
    if artifact is not None and not force and cacheable:
        cached = _load_cached_document(artifact, name, scale, seed, trials)
        if cached is not None:
            # Keep the parity mirror tracking the served rows, exactly like
            # the local runner's cache path.
            _write_parity_artifact(artifact, experiment, scale, seed, cached["rows"])
            return DistributedRunResult(
                name=name,
                scale=scale,
                seed=seed,
                backend=backend,
                rows=cached["rows"],
                trial_count=len(cached["trials"]),
                artifact=artifact,
                cached=True,
                elapsed_seconds=time.perf_counter() - started,
                compute_seconds=0.0,
                workers_seen=0,
                redispatched=0,
                scheme=scheme,
                kernel=kernel,
                transport=transport,
            )

    worker_extra_args: list[str] = []
    key_dir: tempfile.TemporaryDirectory | None = None
    if transport == "secure" and credential is None:
        # Spawn-local mode provisions itself: throwaway coordinator and
        # worker keypairs plus a one-key allowlist, handed to the spawned
        # workers as ordinary key-file flags.
        key_dir = tempfile.TemporaryDirectory(prefix="repro-net-keys-")
        coordinator_pair = write_keypair(Path(key_dir.name) / "coordinator.key")
        worker_pair = write_keypair(Path(key_dir.name) / "worker.key")
        credential = TransportCredential(
            keypair=coordinator_pair,
            authorized=frozenset({worker_pair.public}),
        )
        worker_extra_args = [
            "--transport",
            "secure",
            "--keyfile",
            str(Path(key_dir.name) / "worker.key"),
            "--coordinator-key",
            str(Path(key_dir.name) / "coordinator.key.pub"),
        ]

    coordinator = Coordinator(
        experiment,
        trials,
        scale=scale,
        seed=seed,
        backend=backend,
        scheme=scheme,
        kernel=kernel,
        host=host,
        port=port,
        chunk_size=chunk_size,
        lease_seconds=lease_seconds,
        min_workers=max(workers, 1) if min_workers is None else min_workers,
        timeout=timeout,
        transport=transport,
        credential=credential,
        worker_extra_args=worker_extra_args,
        log=log,
    )
    try:
        results = asyncio.run(coordinator.serve(spawn_local=workers))
    finally:
        if key_dir is not None:
            key_dir.cleanup()
    rows = reduce_rows(experiment, trials, [_jsonify(result) for result in results])
    if artifact is not None:
        write_run_artifacts(artifact, experiment, scale, seed, trials, rows)
    return DistributedRunResult(
        name=name,
        scale=scale,
        seed=seed,
        backend=backend,
        rows=rows,
        trial_count=len(trials),
        artifact=artifact,
        cached=False,
        elapsed_seconds=time.perf_counter() - started,
        compute_seconds=coordinator.state.compute_seconds,
        workers_seen=coordinator.state.workers_seen,
        redispatched=coordinator.state.redispatched,
        scheme=scheme,
        kernel=kernel,
        transport=transport,
    )


# -- worker -------------------------------------------------------------------------


def _recv_message(sock: socket.socket) -> dict | None:
    """Blocking read of one protocol message; None on clean EOF at a boundary."""
    header = _recv_exact(sock, FRAME_HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise PacketFormatError(
            f"frame declares {length} bytes, over the {MAX_FRAME_BYTES}-byte limit"
        )
    payload = _recv_exact(sock, length, eof_ok=False)
    return decode_message(payload)


def _recv_exact(sock: socket.socket, count: int, eof_ok: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise PacketFormatError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _connect_with_retry(host: str, port: int, connect_timeout: float) -> socket.socket:
    """Dial the coordinator, retrying while it is still binding its port."""
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            return socket.create_connection((host, port), timeout=connect_timeout)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


def run_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    label: str | None = None,
    crash_after_leases: int | None = None,
    connect_timeout: float = 10.0,
    io_timeout: float = 600.0,
    transport: str = "plain",
    credential: TransportCredential | None = None,
    log=None,
) -> int:
    """Serve one coordinator until it reports ``done``; returns an exit code.

    The worker is synchronous on purpose — trial execution is CPU work, and
    one lease is outstanding at a time.  ``crash_after_leases=N`` is fault
    injection for the re-dispatch path: the worker completes its first ``N``
    leases normally, then dies abruptly (connection dropped, exit code 1)
    upon *receiving* the next one, leaving the coordinator to notice and
    re-enqueue it.

    With ``transport="secure"`` the worker runs the initiator side of the
    handshake right after connecting — ``credential`` supplies its static
    keypair and the coordinator public key it expects — and every protocol
    frame rides the AEAD channel.
    """
    log = log or (lambda message: None)
    if transport == "secure" and (
        credential is None or credential.remote_public is None
    ):
        print(
            "worker error: the secure transport needs a keypair and the "
            "coordinator's public key",
            file=sys.stderr,
        )
        return 1
    try:
        sock = _connect_with_retry(host, port, connect_timeout)
    except OSError as exc:
        print(
            f"worker error: could not reach coordinator at {host}:{port} "
            f"within {connect_timeout}s ({exc})",
            file=sys.stderr,
        )
        return 1
    try:
        sock.settimeout(io_timeout)
        if transport == "secure":
            try:
                channel = connect_secure_sync(
                    sock, credential.keypair, credential.remote_public
                )
            except HandshakeError as exc:
                print(
                    f"worker error: secure handshake with {host}:{port} "
                    f"failed ({exc})",
                    file=sys.stderr,
                )
                return 1
        else:
            channel = SyncFrameChannel(sock)

        def send(message: dict) -> None:
            channel.send_frame(message_payload(message))

        def recv() -> dict | None:
            payload = channel.recv_frame()
            return None if payload is None else decode_message(payload)

        label = label or f"pid-{os.getpid()}"
        send({"type": "hello", "protocol": PROTOCOL_VERSION, "worker": label})
        job = recv()
        if job is None:
            return 1
        if job.get("type") == "error":
            print(f"worker error: {job.get('message')}", file=sys.stderr)
            return 1
        if job.get("type") != "job" or job.get("protocol") != PROTOCOL_VERSION:
            print(f"worker error: unexpected job frame {job!r}", file=sys.stderr)
            return 1
        try:
            experiment = get_experiment(str(job["experiment"]))
        except KeyError:
            print(
                f"worker error: coordinator's experiment {job['experiment']!r} is "
                "not in this worker's registry (code version skew?)",
                file=sys.stderr,
            )
            return 1
        scheme = job.get("scheme")
        trials = build_trial_list(
            experiment,
            float(job["scale"]),
            str(job.get("backend", "sim")),
            None if scheme is None else str(scheme),
        )
        if (
            len(trials) != job.get("trial_count")
            or trials_digest(trials) != job.get("trials_digest")
        ):
            print(
                f"worker error: local trial list for {experiment.name!r} does not "
                "match the coordinator's (code version skew?)",
                file=sys.stderr,
            )
            return 1
        kernel = job.get("kernel")
        if kernel is not None:
            try:
                validate_kernel(experiment, str(kernel))
            except (ValueError, KernelUnavailableError) as error:
                print(f"worker error: {error}", file=sys.stderr)
                return 1
        payloads = trial_payloads(
            experiment.name,
            trials,
            int(job["seed"]),
            None if kernel is None else str(kernel),
        )
        log(f"worker {label}: joined {experiment.name} ({len(trials)} trials)")
        leases_taken = 0
        send({"type": "request"})
        while True:
            message = recv()
            if message is None or message["type"] == "done":
                # A vanished coordinator means the run finished (or was
                # aborted) without us; either way there is nothing to do.
                log(f"worker {label}: done after {leases_taken} lease(s)")
                return 0
            kind = message["type"]
            if kind == "wait":
                time.sleep(min(float(message.get("seconds", DEFAULT_POLL_SECONDS)), 2.0))
                send({"type": "request"})
            elif kind == "lease":
                leases_taken += 1
                if crash_after_leases is not None and leases_taken > crash_after_leases:
                    log(f"worker {label}: injected crash on lease {leases_taken}")
                    sock.close()
                    return 1
                results = []
                for index in message["indices"]:
                    _, result = execute_trial(payloads[int(index)])
                    results.append([int(index), _jsonify(result)])
                send(
                    {
                        "type": "result",
                        "lease_id": int(message["lease_id"]),
                        "results": results,
                    }
                )
            else:
                print(
                    f"worker error: unexpected message type {kind!r}", file=sys.stderr
                )
                return 1
    except (PacketFormatError, SecureTransportError) as exc:
        print(f"worker error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        # Covers resets, refused writes and the io_timeout — a remote
        # coordinator dying must be a one-line failure, not a traceback.
        print(
            f"worker error: connection to coordinator {host}:{port} failed ({exc})",
            file=sys.stderr,
        )
        return 1
    finally:
        sock.close()
