"""Experiment harness: one runner per paper figure, plus ablations."""

from .figures import (
    FIGURES,
    coding_microbenchmark,
    figure07_anonymity_vs_malicious,
    figure08_anonymity_vs_split,
    figure09_anonymity_vs_path_length,
    figure10_anonymity_vs_redundancy,
    figure11_throughput_lan,
    figure12_throughput_wan,
    figure13_scaling_with_flows,
    figure14_setup_latency_lan,
    figure15_setup_latency_wan,
    figure16_resilience_analysis,
    figure17_churn_resilience,
)
from .setup_latency import measure_onion_setup, measure_slicing_setup, setup_latency_sweep
from .tables import format_table
from .throughput import (
    ThroughputResult,
    aggregate_throughput_vs_flows,
    measure_onion_throughput,
    measure_slicing_throughput,
    throughput_vs_path_length,
)

__all__ = [
    "FIGURES",
    "format_table",
    "figure07_anonymity_vs_malicious",
    "figure08_anonymity_vs_split",
    "figure09_anonymity_vs_path_length",
    "figure10_anonymity_vs_redundancy",
    "figure11_throughput_lan",
    "figure12_throughput_wan",
    "figure13_scaling_with_flows",
    "figure14_setup_latency_lan",
    "figure15_setup_latency_wan",
    "figure16_resilience_analysis",
    "figure17_churn_resilience",
    "coding_microbenchmark",
    "measure_slicing_throughput",
    "measure_onion_throughput",
    "throughput_vs_path_length",
    "aggregate_throughput_vs_flows",
    "ThroughputResult",
    "measure_slicing_setup",
    "measure_onion_setup",
    "setup_latency_sweep",
]
