"""Experiment harness: a registry of named experiments plus a parallel runner."""

from .ablations import (
    ablation_as_selection,
    ablation_network_coding,
    ablation_transforms,
)
from .figures import (
    FIGURES,
    anonymity_microbenchmark,
    chaum_microbenchmark,
    coding_microbenchmark,
    dataplane_microbenchmark,
    figure07_anonymity_vs_malicious,
    figure08_anonymity_vs_split,
    figure09_anonymity_vs_path_length,
    figure10_anonymity_vs_redundancy,
    figure11_throughput_lan,
    figure12_throughput_wan,
    figure13_scaling_with_flows,
    figure14_setup_latency_lan,
    figure15_setup_latency_wan,
    figure16_resilience_analysis,
    figure17_churn_resilience,
)
from .registry import REGISTRY, Experiment, experiment_names, get_experiment, register
from .runner import RunResult, experiment_rows, run_experiment
from .setup_latency import (
    measure_onion_setup,
    measure_setup,
    measure_slicing_setup,
    setup_latency_sweep,
)
from .tables import format_table
from .throughput import (
    ThroughputResult,
    aggregate_throughput_vs_flows,
    measure_onion_throughput,
    measure_slicing_throughput,
    measure_throughput,
    throughput_vs_path_length,
)

__all__ = [
    "FIGURES",
    "REGISTRY",
    "Experiment",
    "RunResult",
    "register",
    "get_experiment",
    "experiment_names",
    "run_experiment",
    "experiment_rows",
    "ablation_transforms",
    "ablation_as_selection",
    "ablation_network_coding",
    "format_table",
    "figure07_anonymity_vs_malicious",
    "figure08_anonymity_vs_split",
    "figure09_anonymity_vs_path_length",
    "figure10_anonymity_vs_redundancy",
    "figure11_throughput_lan",
    "figure12_throughput_wan",
    "figure13_scaling_with_flows",
    "figure14_setup_latency_lan",
    "figure15_setup_latency_wan",
    "figure16_resilience_analysis",
    "figure17_churn_resilience",
    "coding_microbenchmark",
    "anonymity_microbenchmark",
    "chaum_microbenchmark",
    "dataplane_microbenchmark",
    "measure_throughput",
    "measure_slicing_throughput",
    "measure_onion_throughput",
    "throughput_vs_path_length",
    "aggregate_throughput_vs_flows",
    "ThroughputResult",
    "measure_setup",
    "measure_slicing_setup",
    "measure_onion_setup",
    "setup_latency_sweep",
]
