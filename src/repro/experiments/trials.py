"""Shared trial-construction helpers for experiment definitions.

Used by both :mod:`~repro.experiments.figures` and
:mod:`~repro.experiments.ablations` (and by any future experiment module
that plugs into the registry): Monte-Carlo chunking so one expensive
parameter point fans out across runner workers, weighted merging of those
chunks, and deterministic seed derivation for seed-taking measurement APIs.
"""

from __future__ import annotations

import numpy as np

#: Upper bound on Monte-Carlo trials per runner task, so a single expensive
#: parameter point still fans out across workers.
MAX_TRIALS_PER_TASK = 250


def chunk_sizes(total: int, max_per_task: int = MAX_TRIALS_PER_TASK) -> list[int]:
    """Split ``total`` Monte-Carlo trials into bounded task-sized chunks."""
    return [
        min(max_per_task, total - start) for start in range(0, total, max_per_task)
    ]


def chunked_points(points: list[dict], total_trials: int) -> list[dict]:
    """One trial dict per (parameter point, Monte-Carlo chunk)."""
    return [
        {**point, "trials": chunk}
        for point in points
        for chunk in chunk_sizes(total_trials)
    ]


def merge_chunks(
    results: list[dict], keys: tuple[str, ...], fields: tuple[str, ...]
) -> list[dict]:
    """Weighted-average chunk results sharing the same key tuple (trial order)."""
    order: list[tuple] = []
    groups: dict[tuple, list[dict]] = {}
    for result in results:
        key = tuple(result[k] for k in keys)
        if key not in groups:
            order.append(key)
            groups[key] = []
        groups[key].append(result)
    rows = []
    for key in order:
        group = groups[key]
        total = sum(r["trials"] for r in group)
        row = dict(zip(keys, key))
        for field in fields:
            row[field] = sum(r[field] * r["trials"] for r in group) / total
        rows.append(row)
    return rows


def spawn_seed(rng: np.random.Generator) -> int:
    """Derive a deterministic integer seed for seed-taking measurement APIs."""
    return int(rng.integers(0, 2**31 - 1))
