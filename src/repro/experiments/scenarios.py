"""Declarative scenario matrices: axis grids that expand into experiments.

The paper evaluates information slicing against the onion baselines on a
handful of fixed ``(d, d', L)`` points over two testbed profiles.  The
runner, the batched engines and the distributed sharding make much wider
sweeps cheap; this module is the declarative layer that exploits them.

A **matrix spec** is a plain dictionary (typically loaded from a JSON file;
YAML works too when PyYAML is installed) naming a grid of *axes*:

=====================  =========================================================
axis                   what the knob maps to
=====================  =========================================================
``loss``               node-failure probability ``p`` fed to the §8 closed
                       forms (Eqs. 6/7) — each scheme's delivery success per
                       cell
``jitter``             log-normal shape parameter of pairwise one-way
                       latencies, added on top of the base profile's
                       ``latency_sigma`` (0 keeps latencies uniform)
``bandwidth_mbps``     every node's access-link bandwidth in Mbit/s
                       (0 keeps the base profile's link speed)
``asymmetry``          factor by which *relay* access links are slower than
                       source/destination links (models asymmetric edges;
                       1 keeps links symmetric)
``cpu_heterogeneity``  scale of the heavy-tailed (Pareto) per-node CPU load
                       spread; 0 gives every node the base profile's load
                       factor
``adversary``          fraction of colluding malicious overlay nodes in the
                       §6 anonymity Monte-Carlo
``d``                  split factor
``d_prime``            per-stage redundancy (must be >= every ``d``)
``path_length``        forwarding-graph stages ``L``
=====================  =========================================================

:func:`expand_matrix` takes the cartesian product of the axes (in sorted
axis order, so expansion is independent of spec key order) and yields one
:class:`ScenarioCell` per combination; :func:`register_matrix` turns each
cell into a registered :class:`~repro.experiments.registry.Experiment`
whose trials — one per scheme — run through the ordinary runner, including
``repro-experiments run --dist N`` sharding.  Every cell gets a unique,
deterministic name and base seed derived from the matrix name and its axis
values, so artifacts never collide and re-running a spec is bit-identical.

Worker processes rebuild the registry from experiment names alone, so
dynamically registered cells must be reloadable: :func:`register_matrix_file`
records the spec path in the ``REPRO_SCENARIO_MATRIX`` environment variable
(``os.pathsep``-separated), and the registry's definition loader calls
:func:`load_env_matrices` — spawned pool workers and local ``--dist``
workers inherit the variable; remote workers pass ``worker --matrix`` or
set it themselves.

:mod:`repro.experiments.report` merges the per-cell artifacts into the
consolidated cross-scheme report.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from ..anonymity.simulation import simulate_anonymity_batch
from ..baselines.chaum import simulate_chaum_anonymity_batch
from ..overlay.churn import ChurnModel
from ..overlay.network import NetworkModel, NodeResources
from ..overlay.profiles import get_profile
from ..resilience.analysis import (
    onion_erasure_success_probability,
    slicing_success_probability,
    standard_onion_success_probability,
)
from .registry import REGISTRY, Experiment, register
from .trials import spawn_seed


class ScenarioSpecError(ValueError):
    """A scenario-matrix spec is malformed (reported as a one-line CLI error)."""


#: Prefix of every generated cell experiment name.
CELL_PREFIX = "scn"

#: Schemes a cell may compare (the unified §7 runtime registry's names).
KNOWN_SCHEMES = ("slicing", "onion", "onion-erasure", "sphinx")

#: Axis name -> default grid used when the spec omits the axis.
AXIS_DEFAULTS: dict[str, list[float]] = {
    "loss": [0.0],
    "jitter": [0.0],
    "bandwidth_mbps": [0.0],
    "asymmetry": [1.0],
    "cpu_heterogeneity": [0.0],
    "adversary": [0.1],
    "d": [2],
    "d_prime": [3],
    "path_length": [5],
}

#: Axes whose values must be integers (grid parameters of the coding layer).
INTEGER_AXES = ("d", "d_prime", "path_length")

_BASE_DEFAULTS = {
    "profile": "lan",
    "messages": 120,
    "anonymity_trials": 400,
    "num_nodes": 2000,
}

#: Environment variable listing spec paths to re-register in worker processes.
MATRIX_ENV_VAR = "REPRO_SCENARIO_MATRIX"


@dataclass(frozen=True)
class ScenarioMatrix:
    """A validated matrix spec: axes, schemes and per-cell workload sizing."""

    name: str
    axes: dict[str, list[float]]
    #: Axis names the spec listed explicitly (sorted).  Cell names and seeds
    #: are derived from these alone: defaults do not vary across the matrix,
    #: so the listed axes already identify every cell uniquely, and names
    #: stay short enough to read in report tables.
    listed_axes: tuple[str, ...]
    schemes: tuple[str, ...]
    profile: str
    messages: int
    anonymity_trials: int
    num_nodes: int

    def cell_count(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count


@dataclass(frozen=True)
class ScenarioCell:
    """One point of the matrix: a full axis assignment plus identity."""

    name: str
    matrix: str
    axes: dict[str, float]
    seed: int


def format_axis_value(value: float) -> str:
    """Compact, deterministic rendering of an axis value for cell names.

    >>> format_axis_value(0.1)
    '0.1'
    >>> format_axis_value(4)
    '4'
    >>> format_axis_value(0.050)
    '0.05'
    """
    return f"{value:g}"


def cell_name(matrix_name: str, axes: dict[str, float]) -> str:
    """Deterministic experiment name for one axis assignment.

    Axes appear in sorted order, so the name is independent of dict order:

    >>> cell_name("smoke", {"loss": 0.1, "adversary": 0.4})
    'scn-smoke-adversary0.4-loss0.1'
    """
    parts = [
        f"{axis}{format_axis_value(axes[axis])}".replace("_", "") for axis in sorted(axes)
    ]
    return "-".join([CELL_PREFIX, matrix_name, *parts])


def label_axes(cell_axes: dict[str, float], listed: tuple[str, ...]) -> dict[str, float]:
    """The subset of a cell's assignment that identifies it within its matrix.

    >>> label_axes({"loss": 0.1, "adversary": 0.1, "d": 2}, ("loss",))
    {'loss': 0.1}
    """
    return {axis: cell_axes[axis] for axis in listed}


def cell_seed(matrix_name: str, axes: dict[str, float]) -> int:
    """Unique, deterministic base seed for one cell.

    Derived from a SHA-256 over the matrix name and the sorted axis
    assignment, so distinct cells get distinct seeds and re-running a spec
    (from any process, in any order) derives the same seed:

    >>> cell_seed("smoke", {"loss": 0.1}) == cell_seed("smoke", {"loss": 0.1})
    True
    >>> cell_seed("smoke", {"loss": 0.1}) == cell_seed("smoke", {"loss": 0.2})
    False
    """
    digest = hashlib.sha256(cell_name(matrix_name, axes).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1)


# -- spec parsing ------------------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioSpecError(message)


def parse_matrix(spec: dict) -> ScenarioMatrix:
    """Validate a raw spec dictionary into a :class:`ScenarioMatrix`.

    Unknown axes, empty grids, out-of-range values, ``d' < d`` combinations
    and unknown schemes are all rejected with one-line
    :class:`ScenarioSpecError` messages (surfaced by the CLI as
    ``error: ...`` with exit code 2).

    >>> matrix = parse_matrix({"name": "demo", "axes": {"loss": [0.0, 0.1]}})
    >>> matrix.cell_count()
    2
    >>> parse_matrix({"axes": {}})
    Traceback (most recent call last):
        ...
    repro.experiments.scenarios.ScenarioSpecError: matrix spec needs a "name"
    """
    _require(isinstance(spec, dict), "matrix spec must be a JSON object")
    name = spec.get("name")
    _require(isinstance(name, str) and name != "", 'matrix spec needs a "name"')
    _require(
        all(ch.isalnum() or ch == "-" for ch in name) and not name.startswith("-"),
        f"matrix name {name!r} may only contain letters, digits and dashes",
    )
    unknown_keys = set(spec) - {"name", "axes", "schemes", "base"}
    _require(not unknown_keys, f"unknown spec key(s): {', '.join(sorted(unknown_keys))}")

    raw_axes = spec.get("axes", {})
    _require(isinstance(raw_axes, dict), '"axes" must be an object of axis -> values')
    unknown_axes = set(raw_axes) - set(AXIS_DEFAULTS)
    _require(
        not unknown_axes,
        f"unknown axis(es): {', '.join(sorted(unknown_axes))} "
        f"(known: {', '.join(sorted(AXIS_DEFAULTS))})",
    )
    axes: dict[str, list[float]] = {}
    for axis in sorted(AXIS_DEFAULTS):
        values = raw_axes.get(axis, AXIS_DEFAULTS[axis])
        _require(
            isinstance(values, list) and len(values) > 0,
            f"axis {axis!r} must be a non-empty list of values",
        )
        _require(
            all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values),
            f"axis {axis!r} values must be numbers",
        )
        _require(
            len(set(values)) == len(values), f"axis {axis!r} has duplicate values"
        )
        if axis in INTEGER_AXES:
            _require(
                all(float(v).is_integer() and v >= 1 for v in values),
                f"axis {axis!r} values must be integers >= 1",
            )
            axes[axis] = [int(v) for v in values]
        else:
            axes[axis] = [float(v) for v in values]
    _require(
        all(0.0 <= v < 1.0 for v in axes["loss"]), 'axis "loss" values must be in [0, 1)'
    )
    _require(
        all(0.0 <= v < 1.0 for v in axes["adversary"]),
        'axis "adversary" values must be in [0, 1)',
    )
    _require(all(v >= 0.0 for v in axes["jitter"]), 'axis "jitter" values must be >= 0')
    _require(
        all(v >= 0.0 for v in axes["bandwidth_mbps"]),
        'axis "bandwidth_mbps" values must be >= 0 (0 = profile default)',
    )
    _require(
        all(v >= 1.0 for v in axes["asymmetry"]), 'axis "asymmetry" values must be >= 1'
    )
    _require(
        all(v >= 0.0 for v in axes["cpu_heterogeneity"]),
        'axis "cpu_heterogeneity" values must be >= 0',
    )
    _require(
        min(axes["d_prime"]) >= max(axes["d"]),
        f'every "d_prime" value must be >= every "d" value '
        f"(got d'={min(axes['d_prime'])} < d={max(axes['d'])})",
    )

    raw_schemes = spec.get("schemes", list(KNOWN_SCHEMES))
    _require(
        isinstance(raw_schemes, list) and len(raw_schemes) > 0,
        '"schemes" must be a non-empty list',
    )
    unknown_schemes = [s for s in raw_schemes if s not in KNOWN_SCHEMES]
    _require(
        not unknown_schemes,
        f"unknown scheme(s): {', '.join(map(str, unknown_schemes))} "
        f"(known: {', '.join(KNOWN_SCHEMES)})",
    )
    _require(
        len(set(raw_schemes)) == len(raw_schemes), '"schemes" has duplicate entries'
    )

    base = dict(_BASE_DEFAULTS)
    raw_base = spec.get("base", {})
    _require(isinstance(raw_base, dict), '"base" must be an object')
    unknown_base = set(raw_base) - set(_BASE_DEFAULTS)
    _require(
        not unknown_base,
        f"unknown base key(s): {', '.join(sorted(unknown_base))} "
        f"(known: {', '.join(sorted(_BASE_DEFAULTS))})",
    )
    base.update(raw_base)
    _require(
        base["profile"] in ("lan", "planetlab"),
        f"base profile must be 'lan' or 'planetlab', got {base['profile']!r}",
    )
    for key in ("messages", "anonymity_trials", "num_nodes"):
        value = base[key]
        _require(
            isinstance(value, int) and not isinstance(value, bool) and value >= 1,
            f"base {key!r} must be an integer >= 1",
        )

    return ScenarioMatrix(
        name=name,
        axes=axes,
        listed_axes=tuple(sorted(raw_axes)),
        schemes=tuple(raw_schemes),
        profile=str(base["profile"]),
        messages=int(base["messages"]),
        anonymity_trials=int(base["anonymity_trials"]),
        num_nodes=int(base["num_nodes"]),
    )


def load_matrix(path: str | Path) -> ScenarioMatrix:
    """Load and validate a matrix spec from a JSON (or YAML) file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioSpecError(f"cannot read matrix spec {path}: {exc}") from exc
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise ScenarioSpecError(
                f"{path} is YAML but PyYAML is not installed; use a JSON spec"
            ) from None
        try:
            spec = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioSpecError(f"invalid YAML in {path}: {exc}") from exc
    else:
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioSpecError(f"invalid JSON in {path}: {exc}") from exc
    return parse_matrix(spec)


# -- expansion ---------------------------------------------------------------------


def expand_matrix(matrix: ScenarioMatrix) -> list[ScenarioCell]:
    """Expand the axis grids into cells (cartesian product, sorted-axis order).

    Expansion is deterministic and order-stable: axes iterate in sorted name
    order and each axis's values in their listed order, so the same spec
    always yields the same cells in the same sequence.

    Names and seeds derive from the axes the spec listed (the ones that can
    actually vary), so they stay readable:

    >>> matrix = parse_matrix(
    ...     {"name": "demo", "axes": {"loss": [0.0, 0.1], "adversary": [0.1, 0.4]}}
    ... )
    >>> [cell.name for cell in expand_matrix(matrix)][:2]
    ['scn-demo-adversary0.1-loss0', 'scn-demo-adversary0.1-loss0.1']
    """
    names = sorted(matrix.axes)
    cells = []
    for combo in itertools.product(*(matrix.axes[axis] for axis in names)):
        axes = dict(zip(names, combo))
        label = label_axes(axes, matrix.listed_axes)
        cells.append(
            ScenarioCell(
                name=cell_name(matrix.name, label),
                matrix=matrix.name,
                axes=axes,
                seed=cell_seed(matrix.name, label),
            )
        )
    return cells


# -- scenario overlay profiles -----------------------------------------------------


@dataclass(frozen=True)
class ScenarioProfile:
    """An :class:`~repro.overlay.profiles.OverlayProfile`-shaped testbed built
    from a cell's axis assignment.

    ``name`` stays the *base* profile's name so the per-connection capacity
    lookup (``connection_bps_for``) keeps its LAN/WAN semantics.  Jitter and
    CPU heterogeneity are controlled purely by the axes — the base profile
    contributes its latency median, cost anchors and churn model.
    """

    name: str
    latency_seconds: float
    jitter: float
    resources: NodeResources
    asymmetry: float
    cpu_heterogeneity: float
    churn: ChurnModel

    def build_network(
        self, addresses: list[str], rng: np.random.Generator | None = None
    ) -> NetworkModel:
        """Instantiate the network model for a concrete set of addresses."""
        rng = np.random.default_rng() if rng is None else rng
        count = len(addresses)
        if self.cpu_heterogeneity > 0.0:
            factors = self.resources.load_factor * (
                1.0 + rng.pareto(2.5, size=count) * self.cpu_heterogeneity
            )
        else:
            factors = np.full(count, self.resources.load_factor)
        resources = {}
        for address, factor in zip(addresses, factors):
            bandwidth = self.resources.bandwidth_bps
            if self.asymmetry > 1.0 and _is_relay_address(address):
                bandwidth /= self.asymmetry
            resources[address] = replace(
                self.resources, load_factor=float(factor), bandwidth_bps=bandwidth
            )
        latency: dict[tuple[str, str], float] = {}
        if self.jitter > 0.0:
            for i, a in enumerate(addresses):
                for b in addresses[i + 1 :]:
                    latency[(a, b)] = float(
                        rng.lognormal(np.log(self.latency_seconds), self.jitter)
                    )
        return NetworkModel(
            resources=resources, latency_matrix=latency, default_latency=self.latency_seconds
        )


def _is_relay_address(address: str) -> bool:
    """Relay-class addresses pay the asymmetric (slower) access link.

    The §7 drivers name source-stage nodes ``src-*`` / ``onion-source`` /
    ``sphinx-source`` and destinations ``destination`` /
    ``onion-destination`` / ``sphinx-destination``; everything else in
    their address plans is a relay.
    """
    if address in (
        "onion-source",
        "onion-destination",
        "sphinx-source",
        "sphinx-destination",
        "destination",
    ):
        return False
    return address.startswith(("relay-", "onion-", "sphinx-", "pl-"))


def build_scenario_profile(params: dict) -> ScenarioProfile:
    """Derive the cell's testbed from its axis assignment (trial-dict form)."""
    base = get_profile(params["profile"])
    resources = base.resources
    bandwidth_mbps = float(params["bandwidth_mbps"])
    if bandwidth_mbps > 0.0:
        resources = replace(resources, bandwidth_bps=bandwidth_mbps * 1e6)
    return ScenarioProfile(
        name=base.name,
        latency_seconds=base.latency_seconds,
        jitter=base.latency_sigma + float(params["jitter"]),
        resources=resources,
        asymmetry=float(params["asymmetry"]),
        cpu_heterogeneity=float(params["cpu_heterogeneity"]),
        churn=base.churn,
    )


# -- cell experiments --------------------------------------------------------------

#: Floors keeping scaled-down cells meaningful (mirrors the figure modules).
MIN_MESSAGES = 8
MIN_ANONYMITY_TRIALS = 10


def _build_cell_trials(
    matrix: ScenarioMatrix, cell: ScenarioCell, scale: float
) -> list[dict]:
    messages = max(int(matrix.messages * scale), MIN_MESSAGES)
    anonymity_trials = max(int(matrix.anonymity_trials * scale), MIN_ANONYMITY_TRIALS)
    return [
        {
            "cell": cell.name,
            "scheme": scheme,
            "profile": matrix.profile,
            "messages": messages,
            "anonymity_trials": anonymity_trials,
            "num_nodes": matrix.num_nodes,
            **cell.axes,
        }
        for scheme in matrix.schemes
    ]


def run_cell_trial(params: dict, rng: np.random.Generator) -> dict:
    """Measure one scheme at one cell: throughput, setup, anonymity, resilience.

    Module-level so worker processes can pickle references to it.  All four
    measurements are virtual-clock or Monte-Carlo quantities, so the row is
    a pure function of ``(params, rng)`` — which is what lets cells cache,
    shard and byte-compare like any other deterministic experiment.
    """
    # Imported here (not at module top) to keep the spec-parsing half of this
    # module importable without dragging in the whole overlay stack.
    from .distinguishability import hop_size_unlinkability
    from .setup_latency import measure_setup
    from .throughput import measure_throughput

    scheme = params["scheme"]
    d = int(params["d"])
    d_prime = int(params["d_prime"])
    path_length = int(params["path_length"])
    profile = build_scenario_profile(params)

    throughput = measure_throughput(
        scheme,
        profile,
        path_length,
        d=d,
        d_prime=d_prime,
        num_messages=int(params["messages"]),
        seed=spawn_seed(rng),
    )
    setup = measure_setup(
        scheme, profile, path_length, d=d, d_prime=d_prime, seed=spawn_seed(rng)
    )

    adversary = float(params["adversary"])
    trials = int(params["anonymity_trials"])
    num_nodes = int(params["num_nodes"])
    if scheme == "slicing":
        anonymity = simulate_anonymity_batch(
            num_nodes,
            path_length=path_length,
            d=d,
            fraction_malicious=adversary,
            trials=trials,
            rng=rng,
            d_prime=d_prime,
        )
    else:
        # The onion-family baselines are single chains to the attacker: the
        # Chaum chain walk is the matching Monte-Carlo model (as in Fig. 7).
        anonymity = simulate_chaum_anonymity_batch(
            num_nodes,
            path_length=path_length,
            fraction_malicious=adversary,
            trials=trials,
            rng=rng,
        )

    loss = float(params["loss"])
    if scheme == "slicing":
        success = slicing_success_probability(loss, path_length, d, d_prime)
    elif scheme == "onion-erasure":
        success = onion_erasure_success_probability(loss, path_length, d, d_prime)
    else:
        success = standard_onion_success_probability(loss, path_length)

    # Seeded last so rows predating the metric keep their values bit-for-bit.
    unlinkability = hop_size_unlinkability(
        scheme,
        profile,
        path_length,
        d=d,
        d_prime=d_prime,
        num_messages=MIN_MESSAGES,
        seed=spawn_seed(rng),
    )["unlinkability"]

    return {
        "cell": params["cell"],
        "scheme": scheme,
        "throughput_mbps": throughput.throughput_bps / 1e6,
        "messages_delivered": throughput.messages_delivered,
        "setup_seconds": setup.setup_seconds,
        "source_anonymity": anonymity.source_anonymity,
        "destination_anonymity": anonymity.destination_anonymity,
        "success_probability": success,
        "unlinkability": unlinkability,
        "anonymity_trials": trials,
    }


def _cell_title(matrix: ScenarioMatrix, cell: ScenarioCell) -> str:
    shown = label_axes(cell.axes, matrix.listed_axes) or cell.axes
    settings = ", ".join(
        f"{axis}={format_axis_value(shown[axis])}" for axis in sorted(shown)
    )
    return f"Scenario {matrix.name}: {settings}"


def cell_experiment(matrix: ScenarioMatrix, cell: ScenarioCell) -> Experiment:
    """Wrap one cell as a runnable, shardable, deterministic experiment."""

    def build_trials(scale: float, _matrix=matrix, _cell=cell) -> list[dict]:
        return _build_cell_trials(_matrix, _cell, scale)

    return Experiment(
        name=cell.name,
        title=_cell_title(matrix, cell),
        build_trials=build_trials,
        run_trial=run_cell_trial,
        base_seed=cell.seed,
    )


# -- registration ------------------------------------------------------------------

#: Matrix name -> digest of the spec that registered it (collision guard).
_REGISTERED_MATRICES: dict[str, str] = {}


def _matrix_digest(matrix: ScenarioMatrix) -> str:
    return hashlib.sha256(
        json.dumps(
            {
                "axes": matrix.axes,
                "listed": list(matrix.listed_axes),
                "schemes": list(matrix.schemes),
                "profile": matrix.profile,
                "messages": matrix.messages,
                "anonymity_trials": matrix.anonymity_trials,
                "num_nodes": matrix.num_nodes,
            },
            sort_keys=True,
        ).encode("utf-8")
    ).hexdigest()


def register_matrix(matrix: ScenarioMatrix) -> list[Experiment]:
    """Register every cell of ``matrix`` with the experiment registry.

    Registering the same matrix twice is a no-op (workers and repeated CLI
    invocations re-load specs freely); registering a *different* spec under
    an already-registered matrix name is an error — cell artifacts would
    silently mix two grids.
    """
    digest = _matrix_digest(matrix)
    previous = _REGISTERED_MATRICES.get(matrix.name)
    if previous == digest:
        return [REGISTRY[cell.name] for cell in expand_matrix(matrix)]
    if previous is not None:
        raise ScenarioSpecError(
            f"matrix {matrix.name!r} is already registered with a different spec"
        )
    experiments = []
    for cell in expand_matrix(matrix):
        if cell.name in REGISTRY:
            raise ScenarioSpecError(
                f"cell {cell.name!r} collides with an already-registered experiment"
            )
        experiments.append(register(cell_experiment(matrix, cell)))
    _REGISTERED_MATRICES[matrix.name] = digest
    return experiments


def register_matrix_file(path: str | Path, export_env: bool = True) -> ScenarioMatrix:
    """Load, validate and register a spec file; optionally export it to workers.

    With ``export_env=True`` the resolved path is appended to
    :data:`MATRIX_ENV_VAR`, so worker processes spawned later (the
    multiprocessing pool under a ``spawn`` start method, ``run --dist N``
    local workers) re-register the same cells when they rebuild the registry.
    """
    path = Path(path).resolve()
    matrix = load_matrix(path)
    register_matrix(matrix)
    if export_env:
        entries = [entry for entry in os.environ.get(MATRIX_ENV_VAR, "").split(os.pathsep) if entry]
        if str(path) not in entries:
            entries.append(str(path))
            os.environ[MATRIX_ENV_VAR] = os.pathsep.join(entries)
    return matrix


def load_env_matrices() -> None:
    """Register every spec listed in :data:`MATRIX_ENV_VAR` (idempotent).

    Called by the registry's definition loader, so any process that looks up
    experiments by name — pool workers, distributed workers, the CLI — sees
    the same dynamically registered cells as the process that exported the
    variable.  Spec errors propagate: a worker with a skewed or unreadable
    spec should fail loudly, not silently compute a different grid.
    """
    raw = os.environ.get(MATRIX_ENV_VAR, "")
    for entry in raw.split(os.pathsep):
        if entry:
            register_matrix_file(entry, export_env=False)
