"""Render experiment rows as aligned text tables (what the harness prints)."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(rows: Sequence[dict], float_digits: int = 4) -> str:
    """Format a list of row dictionaries as an aligned, pipe-separated table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered: list[list[str]] = [columns]
    for row in rows:
        rendered.append([_format_value(row.get(column), float_digits) for column in columns])
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append(" | ".join(value.ljust(width) for value, width in zip(line, widths)))
        if index == 0:
            lines.append("-+-".join("-" * width for width in widths))
    return "\n".join(lines)


def _format_value(value, float_digits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)
