"""Packet-size distinguishability across the registered protocol runtimes.

A passive network observer sees every transmission's (sender, receiver,
size) triple but no payload bytes.  If on-wire sizes vary with a packet's
position along the route — classic onion setup packets shrink by one layer
per hop — the observer can guess *where in a route* a packet is from its
length alone, which is exactly the linkability Sphinx's constant-size
packets are designed to remove.

This module measures that leak for every scheme over the real overlay
substrate:

1. :class:`RecordingOverlayNetwork` — the discrete-event substrate with a
   wiretap: every transmission's (sender, receiver, size) is appended to
   ``records``.  All blob/packet helpers funnel through
   :meth:`~repro.overlay.node.SimulatedOverlayNetwork.transmit` /
   ``transmit_batch``, so overriding those two observes everything.
2. :func:`observe_transfer` — drive one scheme's transfer through the
   unified runtime interface and split the tap into a *setup* phase and a
   *data* phase (the phases leak independently: data cells dominate the
   packet count, while onion routing's leak lives in its shrinking setup
   onions).
3. :func:`size_position_advantage` — the attacker model: assign every
   observed packet a hop position (BFS distance of its sender from the
   source stage over the observed edges), then score a maximum-a-posteriori
   guesser that maps each distinct size to its most common position.  The
   *advantage* normalises that accuracy against the blind prior (always
   guess the most common position): 0 = sizes reveal nothing beyond the
   prior, 1 = sizes identify the position of every packet.
4. :func:`hop_size_unlinkability` — one row per (scheme, path length):
   per-phase advantages, per-phase distinct-size counts, and the combined
   ``unlinkability`` score ``1 - max(setup_advantage, data_advantage)``
   (the metric surfaced by the scenario matrices).

Registered as the ``distinguishability`` experiment family: deterministic,
simulator-only, shardable — it runs through the pool, ``--dist`` and the
scenario matrices like every other family.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque

import numpy as np

from ..overlay.node import SimulatedOverlayNetwork
from ..overlay.profiles import LAN_PROFILE, OverlayProfile
from .registry import Experiment, register
from .runner import experiment_rows
from .throughput import (
    connection_bps_for,
    prepare_scheme_transfer,
    scheme_address_plan,
)
from .trials import spawn_seed

#: Schemes the distinguishability family compares.
DISTINGUISHABILITY_SCHEMES = ("slicing", "onion", "onion-erasure", "sphinx")


class RecordingOverlayNetwork(SimulatedOverlayNetwork):
    """The simulated substrate with a passive wiretap on every transmission.

    ``records`` collects (sender, receiver, size_bytes) in transmission
    order; the tap changes no timing, accounting or delivery behaviour.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.records: list[tuple[str, str, int]] = []

    def transmit(
        self, sender, receiver, size_bytes, on_delivered, sender_cpu_seconds=0.0
    ):
        self.records.append((sender, receiver, int(size_bytes)))
        return super().transmit(
            sender, receiver, size_bytes, on_delivered,
            sender_cpu_seconds=sender_cpu_seconds,
        )

    def transmit_batch(
        self, sender, receiver, sizes, on_delivered, sender_cpu_seconds=None
    ):
        self.records.extend((sender, receiver, int(size)) for size in sizes)
        return super().transmit_batch(
            sender, receiver, sizes, on_delivered,
            sender_cpu_seconds=sender_cpu_seconds,
        )


def observe_transfer(
    scheme: str,
    profile: OverlayProfile,
    path_length: int,
    d: int = 2,
    d_prime: int = 3,
    num_messages: int = 24,
    message_bytes: int = 512,
    seed: int = 0,
) -> tuple[list[tuple[str, str, int]], list[tuple[str, str, int]], list[str]]:
    """Run one transfer under the wiretap; returns (setup, data, sources).

    ``setup`` holds every transmission observed while the route was being
    established, ``data`` everything observed while the message burst
    drained, and ``sources`` the scheme's source-stage addresses (the BFS
    anchor for hop positions).
    """
    substrate, runtime, relays, destination = prepare_scheme_transfer(
        scheme,
        profile,
        path_length,
        d,
        d_prime,
        seed,
        "batched",
        "sim",
        substrate_factory=lambda network: RecordingOverlayNetwork(
            network, connection_bps=connection_bps_for(profile)
        ),
    )
    try:
        runtime.establish(relays, destination)
        substrate.sim.run()
        setup_records = list(substrate.records)
        substrate.records.clear()
        runtime.send_messages([bytes(message_bytes)] * num_messages)
        substrate.sim.run()
        data_records = list(substrate.records)
    finally:
        substrate.close()
    source_stage, _relays, _destination = scheme_address_plan(
        scheme, path_length, d_prime
    )
    return setup_records, data_records, source_stage


def hop_positions(
    records: list[tuple[str, str, int]], sources: list[str]
) -> dict[str, int]:
    """BFS distance of every observed sender from the source stage.

    Edges are the observed (sender -> receiver) pairs; the source stage sits
    at distance 0, so a packet's hop position is its sender's distance.
    Neighbours expand in sorted order, keeping the walk deterministic.
    """
    adjacency: dict[str, set[str]] = defaultdict(set)
    for sender, receiver, _size in records:
        adjacency[sender].add(receiver)
    distance = {address: 0 for address in sources}
    queue = deque(sources)
    while queue:
        node = queue.popleft()
        for neighbour in sorted(adjacency.get(node, ())):
            if neighbour not in distance:
                distance[neighbour] = distance[node] + 1
                queue.append(neighbour)
    return distance


def size_position_advantage(
    records: list[tuple[str, str, int]], sources: list[str]
) -> float:
    """The attacker's advantage at placing packets on a route by size alone.

    The MAP guesser maps each observed size to that size's most common hop
    position; its accuracy is normalised against the blind prior (always
    guess the overall most common position) into ``[0, 1]``:
    ``(map_accuracy - prior) / (1 - prior)``.  Constant-size schemes give
    the guesser exactly the prior — advantage 0.
    """
    distance = hop_positions(records, sources)
    pairs = [
        (size, distance[sender])
        for sender, _receiver, size in records
        if sender in distance
    ]
    if not pairs:
        return 0.0
    by_size: dict[int, Counter] = defaultdict(Counter)
    positions: Counter = Counter()
    for size, hop in pairs:
        by_size[size][hop] += 1
        positions[hop] += 1
    total = len(pairs)
    map_accuracy = sum(max(counter.values()) for counter in by_size.values()) / total
    prior = max(positions.values()) / total
    if prior >= 1.0:
        return 0.0
    advantage = (map_accuracy - prior) / (1.0 - prior)
    return float(min(max(advantage, 0.0), 1.0))


def hop_size_unlinkability(
    scheme: str,
    profile: OverlayProfile,
    path_length: int,
    d: int = 2,
    d_prime: int = 3,
    num_messages: int = 24,
    message_bytes: int = 512,
    seed: int = 0,
) -> dict:
    """One distinguishability row: per-phase advantages and the combined score.

    ``unlinkability = 1 - max(setup_advantage, data_advantage)``: the phases
    are scored separately because data cells dominate the packet count — a
    pooled score would let a million constant-size cells wash out a
    perfectly position-revealing setup phase.
    """
    setup_records, data_records, sources = observe_transfer(
        scheme,
        profile,
        path_length,
        d=d,
        d_prime=d_prime,
        num_messages=num_messages,
        message_bytes=message_bytes,
        seed=seed,
    )
    setup_advantage = size_position_advantage(setup_records, sources)
    data_advantage = size_position_advantage(data_records, sources)
    return {
        "scheme": scheme,
        "path_length": path_length,
        "setup_packets": len(setup_records),
        "data_packets": len(data_records),
        "setup_distinct_sizes": len({size for _s, _r, size in setup_records}),
        "data_distinct_sizes": len({size for _s, _r, size in data_records}),
        "setup_advantage": setup_advantage,
        "data_advantage": data_advantage,
        "unlinkability": 1.0 - max(setup_advantage, data_advantage),
    }


def _distinguishability_trials(scale: float) -> list[dict]:
    num_messages = max(int(40 * scale), 8)
    return [
        {
            "scheme": scheme,
            "path_length": length,
            "d": 2,
            "d_prime": 3,
            "num_messages": num_messages,
            "message_bytes": 512,
        }
        for scheme in DISTINGUISHABILITY_SCHEMES
        for length in (3, 5)
    ]


def _distinguishability_run(params: dict, rng: np.random.Generator) -> dict:
    return hop_size_unlinkability(
        params["scheme"],
        LAN_PROFILE,
        params["path_length"],
        d=params["d"],
        d_prime=params["d_prime"],
        num_messages=params["num_messages"],
        message_bytes=params["message_bytes"],
        seed=spawn_seed(rng),
    )


register(
    Experiment(
        name="distinguishability",
        title="Packet-size distinguishability: hop-position leakage per scheme",
        build_trials=_distinguishability_trials,
        run_trial=_distinguishability_run,
    )
)


def distinguishability_rows(scale: float = 1.0) -> list[dict]:
    """Packet-size distinguishability: hop-position leakage per scheme."""
    return experiment_rows("distinguishability", scale=scale)
