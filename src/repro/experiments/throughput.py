"""Per-flow throughput experiments (§7.2, §7.3 — Figs. 11, 12, 13).

Every scheme runs over the same simulated substrate
(:class:`~repro.overlay.node.SimulatedOverlayNetwork`): identical per-node CPU
model, per-connection capacity, latencies and per-packet overhead.  Since the
unified-runtime refactor all schemes are driven through one driver
(:func:`measure_throughput`): the scheme name selects a registered
:class:`~repro.overlay.runtime.ProtocolRuntime` — ``"slicing"`` runs the real
relay engines over the batched overlay data plane, ``"onion"`` and
``"onion-erasure"`` run the baseline engines with the paper's cost structure
(one symmetric pass per relay per cell, the source paying one pass per
layer, one connection per hop).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.source import Source
from ..overlay.node import OverlayTransport, SlicingRuntime
from ..overlay.profiles import OverlayProfile
from ..overlay.runtime import (
    ProtocolRuntime,
    aggregate_relay_stats,
    build_runtime,
    build_substrate,
)

#: Per-connection capacity (bits/s) of the prototype's transport on a LAN —
#: what a single user-space relayed TCP connection sustains.
LAN_CONNECTION_BPS = 30e6

#: Per-connection capacity on the wide area (PlanetLab-era TCP over ~80 ms RTT).
WAN_CONNECTION_BPS = 0.9e6

#: Scheme name -> reported protocol label.
PROTOCOL_LABELS = {
    "slicing": "information-slicing",
    "onion": "onion-routing",
    "onion-erasure": "onion-erasure",
    "sphinx": "sphinx-onion",
}


def connection_bps_for(profile: OverlayProfile) -> float:
    """Per-connection capacity associated with a testbed profile."""
    return LAN_CONNECTION_BPS if profile.name == "lan" else WAN_CONNECTION_BPS


@dataclass(frozen=True)
class ThroughputResult:
    """Measured throughput of one simulated transfer.

    The timing-derived fields (``throughput_bps``, ``duration_seconds``)
    depend on the backend's clock; the structural fields
    (``messages_delivered``, ``delivered_digest``, ``relay_counters``,
    ``net_counters``) are the backend-parity surface — identical between the
    ``sim`` and ``aio`` backends under a shared seed on profiles where the
    transfer settles inside the flush timeout.
    """

    protocol: str
    path_length: int
    d: int
    d_prime: int
    throughput_bps: float
    messages_delivered: int
    duration_seconds: float
    delivered_digest: str = ""
    relay_counters: dict = field(default_factory=dict)
    net_counters: dict = field(default_factory=dict)

    def parity_fields(self) -> dict:
        """The structural fields asserted identical across backends."""
        return {
            "delivered": self.messages_delivered,
            "digest": self.delivered_digest,
            "relay": dict(self.relay_counters),
            "net": dict(self.net_counters),
        }


def _addresses(prefix: str, count: int) -> list[str]:
    return [f"{prefix}-{index}" for index in range(count)]


def scheme_address_plan(
    scheme: str, path_length: int, d_prime: int
) -> tuple[list[str], list[str], str]:
    """The per-scheme address plan: (source stage, relay pool, destination).

    One place defines which overlay addresses each scheme's transfer uses —
    shared by the measurement drivers (via :func:`prepare_scheme_transfer`)
    and the distinguishability observer, which needs the source-stage
    addresses to anchor hop positions.
    """
    if scheme == "slicing":
        return (
            _addresses("src", d_prime),
            _addresses("relay", max(path_length * d_prime * 2, 32)),
            "destination",
        )
    if scheme == "onion":
        return ["onion-source"], _addresses("onion", path_length), "onion-destination"
    if scheme == "onion-erasure":
        return (
            ["onion-source"],
            _addresses("onion", path_length * d_prime),
            "onion-destination",
        )
    if scheme == "sphinx":
        return (
            ["sphinx-source"],
            _addresses("sphinx", path_length),
            "sphinx-destination",
        )
    raise KeyError(f"unknown throughput scheme {scheme!r}")


def prepare_scheme_transfer(
    scheme: str,
    profile: OverlayProfile,
    path_length: int,
    d: int,
    d_prime: int,
    seed: int,
    data_plane: str,
    backend: str = "sim",
    substrate_factory=None,
) -> tuple[OverlayTransport, ProtocolRuntime, list[str], str]:
    """Build the substrate, runtime, relay pool and destination for one scheme.

    Shared by the throughput and setup-latency drivers, so the per-scheme
    address plan and runtime construction live in exactly one place.
    ``backend`` selects the transport: ``"sim"`` (discrete-event) or
    ``"aio"`` (asyncio localhost TCP); the aio backend requires the batched
    data plane, which is the default.  ``substrate_factory`` (network ->
    transport) overrides the backend lookup — the distinguishability
    experiments inject their recording substrate through it.
    """
    rng = np.random.default_rng(seed)
    source_stage, relays, destination = scheme_address_plan(scheme, path_length, d_prime)
    all_addresses = [*source_stage, *relays, destination]
    network = profile.build_network(all_addresses, rng)
    if substrate_factory is not None:
        substrate = substrate_factory(network)
    else:
        substrate = build_substrate(
            backend, network, connection_bps=connection_bps_for(profile)
        )
    if scheme == "slicing":
        runtime = build_runtime(
            scheme,
            substrate,
            source_stage=source_stage,
            d=d,
            d_prime=d_prime,
            path_length=path_length,
            rng=rng,
            runtime_rng=np.random.default_rng(seed + 1),
            data_plane=data_plane,
        )
    elif scheme in ("onion", "sphinx"):
        runtime = build_runtime(
            scheme,
            substrate,
            source_address=source_stage[0],
            path_length=path_length,
            rng=rng,
        )
    else:
        runtime = build_runtime(
            scheme,
            substrate,
            source_address=source_stage[0],
            path_length=path_length,
            d=d,
            d_prime=d_prime,
            rng=rng,
        )
    return substrate, runtime, relays, destination


def measure_throughput(
    scheme: str,
    profile: OverlayProfile,
    path_length: int,
    d: int = 1,
    d_prime: int | None = None,
    num_messages: int = 300,
    message_bytes: int = 1500,
    seed: int = 42,
    data_plane: str = "batched",
    backend: str = "sim",
) -> ThroughputResult:
    """Drive one transfer of any registered scheme and measure delivered goodput.

    The unified driver behind Figs. 11–13: establish the route, drain the
    simulator, then ship ``num_messages`` fixed-size messages and measure
    bytes delivered per second of simulated time.
    """
    d_prime = d if d_prime is None else d_prime
    substrate, runtime, relays, destination = prepare_scheme_transfer(
        scheme, profile, path_length, d, d_prime, seed, data_plane, backend
    )
    try:
        progress = runtime.establish(relays, destination)
        substrate.sim.run()
        transfer_start = substrate.sim.now
        payload = bytes(message_bytes)
        runtime.send_messages([payload] * num_messages)
        substrate.sim.run()
        delivered = len(progress.delivered_messages)
        last = progress.last_delivery_at or transfer_start
        duration = max(last - transfer_start, 1e-9)
        throughput = progress.delivered_bytes * 8.0 / duration
        return ThroughputResult(
            protocol=PROTOCOL_LABELS.get(scheme, scheme),
            path_length=path_length,
            d=d,
            d_prime=d_prime,
            throughput_bps=throughput,
            messages_delivered=delivered,
            duration_seconds=duration,
            delivered_digest=runtime.delivered_digest(),
            relay_counters=runtime.relay_counters(),
            net_counters=runtime.network_counters(),
        )
    finally:
        substrate.close()


def measure_slicing_throughput(
    profile: OverlayProfile,
    path_length: int,
    d: int,
    d_prime: int | None = None,
    num_messages: int = 300,
    message_bytes: int = 1500,
    seed: int = 42,
    data_plane: str = "batched",
    backend: str = "sim",
) -> ThroughputResult:
    """Drive one information-slicing flow and measure delivered goodput."""
    return measure_throughput(
        "slicing",
        profile,
        path_length,
        d=d,
        d_prime=d_prime,
        num_messages=num_messages,
        message_bytes=message_bytes,
        seed=seed,
        data_plane=data_plane,
        backend=backend,
    )


def measure_onion_throughput(
    profile: OverlayProfile,
    path_length: int,
    num_messages: int = 300,
    message_bytes: int = 1500,
    seed: int = 43,
    backend: str = "sim",
) -> ThroughputResult:
    """Drive an onion-routing transfer over the same substrate.

    The data path is a single chain of ``path_length`` relays.  The source
    pays one symmetric pass per layer (``L`` passes per message); every relay
    pays one pass; each hop is one connection, so the chain's throughput is
    capped by a single connection's capacity — which is exactly the effect
    information slicing's parallel paths avoid.
    """
    return measure_throughput(
        "onion",
        profile,
        path_length,
        num_messages=num_messages,
        message_bytes=message_bytes,
        seed=seed,
        backend=backend,
    )


def throughput_vs_path_length(
    profile: OverlayProfile,
    path_lengths: list[int],
    d: int = 2,
    num_messages: int = 300,
    message_bytes: int = 1500,
    seed: int = 7,
) -> list[dict]:
    """Figs. 11 and 12: slicing (d=2) vs. onion routing across path lengths."""
    rows = []
    for path_length in path_lengths:
        slicing = measure_slicing_throughput(
            profile,
            path_length,
            d=d,
            num_messages=num_messages,
            message_bytes=message_bytes,
            seed=seed + path_length,
        )
        onion = measure_onion_throughput(
            profile,
            path_length,
            num_messages=num_messages,
            message_bytes=message_bytes,
            seed=seed + 100 + path_length,
        )
        rows.append(
            {
                "path_length": path_length,
                "slicing_mbps": slicing.throughput_bps / 1e6,
                "onion_mbps": onion.throughput_bps / 1e6,
                "slicing_delivered": slicing.messages_delivered,
                "onion_delivered": onion.messages_delivered,
            }
        )
    return rows


def _aggregate_runtime_flows(
    scheme: str,
    substrate: OverlayTransport,
    overlay_nodes: list[str],
    source_stages: list[list[str]],
    destinations: list[str],
    path_length: int,
    d: int,
    d_prime: int,
    num_messages: int,
    message_bytes: int,
    seed: int,
    flow_count: int,
) -> dict:
    """Fig. 13's single-scheme mode: N unified-runtime flows on one overlay.

    The circuit schemes cannot interleave setup and data (cells need the
    established circuit), so every flow establishes first, then all flows
    send together; throughput is measured over the shared data phase.
    """
    runtimes = []
    progresses = []
    for flow_index in range(flow_count):
        kwargs = {"d": d, "d_prime": d_prime} if scheme == "onion-erasure" else {}
        runtime = build_runtime(
            scheme,
            substrate,
            source_address=source_stages[flow_index][0],
            path_length=path_length,
            rng=np.random.default_rng(seed + 31 * flow_index),
            **kwargs,
        )
        progresses.append(runtime.establish(overlay_nodes, destinations[flow_index]))
        runtimes.append(runtime)
    substrate.sim.run()
    start = substrate.sim.now
    payload = bytes(message_bytes)
    for runtime in runtimes:
        runtime.send_messages([payload] * num_messages)
    substrate.sim.run()
    end = max([p.last_delivery_at for p in progresses if p.last_delivery_at] or [start])
    total_bytes = sum(p.delivered_bytes for p in progresses)
    duration = max(end - start, 1e-9)
    relay_totals: dict[str, int] = {}
    for runtime in runtimes:
        for key, value in runtime.relay_counters().items():
            relay_totals[key] = relay_totals.get(key, 0) + value
    return {
        "flows": flow_count,
        "scheme": scheme,
        "network_throughput_mbps": total_bytes * 8.0 / duration / 1e6,
        "messages_delivered": sum(len(p.delivered_messages) for p in progresses),
        "parity": {
            "flows": flow_count,
            "scheme": scheme,
            "delivered_per_flow": [len(p.delivered_messages) for p in progresses],
            "digests": [runtime.delivered_digest() for runtime in runtimes],
            "relay": relay_totals,
            "net": {
                "packets_sent": substrate.stats.packets_sent,
                "packets_dropped": substrate.stats.packets_dropped,
                "bytes_sent": substrate.stats.bytes_sent,
            },
        },
    }


def aggregate_throughput_vs_flows(
    profile: OverlayProfile,
    flow_counts: list[int],
    overlay_size: int = 100,
    path_length: int = 5,
    d: int = 3,
    num_messages: int = 60,
    message_bytes: int = 1500,
    seed: int = 9,
    data_plane: str = "batched",
    backend: str = "sim",
    scheme: str = "slicing",
) -> list[dict]:
    """Fig. 13: aggregate network throughput as concurrent flows increase.

    All flows share one overlay of ``overlay_size`` nodes, so their packets
    contend for the same per-node CPU and per-connection capacity; the curve
    rises roughly linearly and then saturates, as in the paper.  ``scheme``
    selects the flows' protocol: ``"slicing"`` (the default, the paper's
    figure) drives the real relay engines; any other registered runtime is
    driven through the unified interface (:func:`_aggregate_runtime_flows`).
    """
    rows = []
    for flow_count in flow_counts:
        rng = np.random.default_rng(seed + flow_count)
        overlay_nodes = _addresses("pl", overlay_size)
        d_prime = d
        source_stages = [
            _addresses(f"flow{flow}-src", d_prime) for flow in range(flow_count)
        ]
        destinations = [f"flow{flow}-dst" for flow in range(flow_count)]
        all_addresses = (
            overlay_nodes
            + [addr for stage in source_stages for addr in stage]
            + destinations
        )
        network = profile.build_network(all_addresses, rng)
        substrate = build_substrate(
            backend, network, connection_bps=connection_bps_for(profile)
        )
        try:
            if scheme != "slicing":
                rows.append(
                    _aggregate_runtime_flows(
                        scheme,
                        substrate,
                        overlay_nodes,
                        source_stages,
                        destinations,
                        path_length,
                        d,
                        d_prime,
                        num_messages,
                        message_bytes,
                        seed,
                        flow_count,
                    )
                )
                continue
            runtime = SlicingRuntime(
                substrate, rng=np.random.default_rng(seed + 1), data_plane=data_plane
            )
            total_bytes = 0
            flows = []
            progresses = []
            start = substrate.sim.now
            payload = bytes(message_bytes)
            for flow_index in range(flow_count):
                source = Source(
                    source_stages[flow_index][0],
                    source_stages[flow_index][1:],
                    d=d,
                    d_prime=d_prime,
                    path_length=path_length,
                    rng=np.random.default_rng(seed + 31 * flow_index),
                )
                flow = source.establish_flow(overlay_nodes, destinations[flow_index])
                progress = runtime.start_flow(source, flow)
                flows.append(flow)
                progresses.append(progress)
                runtime.send_messages(source, flow, [payload] * num_messages)
            substrate.sim.run()
            end = max(
                [p.last_delivery_at for p in progresses if p.last_delivery_at] or [start]
            )
            total_bytes = sum(p.delivered_bytes for p in progresses)
            duration = max(end - start, 1e-9)
            delivered_per_flow = []
            for flow, destination in zip(flows, destinations):
                relay = runtime.relays.get(destination)
                flow_id = flow.plan.flow_ids[destination]
                delivered_per_flow.append(
                    len(relay.delivered_messages(flow_id)) if relay else 0
                )
            rows.append(
                {
                    "flows": flow_count,
                    "network_throughput_mbps": total_bytes * 8.0 / duration / 1e6,
                    "messages_delivered": sum(
                        len(p.delivered_messages) for p in progresses
                    ),
                    "parity": {
                        "flows": flow_count,
                        "delivered_per_flow": delivered_per_flow,
                        "relay": aggregate_relay_stats(runtime.relays.values()),
                        "net": {
                            "packets_sent": substrate.stats.packets_sent,
                            "packets_dropped": substrate.stats.packets_dropped,
                            "bytes_sent": substrate.stats.bytes_sent,
                        },
                    },
                }
            )
        finally:
            substrate.close()
    return rows
