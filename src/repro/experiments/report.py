"""Consolidated scenario report: merge matrix cells into one artifact.

The report stage is the other half of :mod:`repro.experiments.scenarios`:
after the cells of a matrix have run (``repro-experiments run --matrix
spec.json``, optionally ``--dist N``), ``repro-experiments report`` merges
their canonical artifacts from the results directory into

* ``results/scenario_report.json`` — the machine-readable consolidated
  document (per-cell scheme metrics, best-scheme assignments, regression
  deltas against a committed baseline snapshot, the bench trajectory), and
* ``docs/scenario-report.md`` — the same content rendered as markdown.

Missing or partial cells degrade gracefully: they are listed with their
status instead of failing the merge, so a half-finished sweep still reports
what it measured.  Everything in both outputs is a pure function of the
spec, the cell artifacts, the baseline file and the trajectory file — no
timestamps, no environment — so report generation is byte-deterministic
for deterministic cells (asserted in ``tests/test_scenario_report.py`` and
by the CI ``scenario-smoke`` job).
"""

from __future__ import annotations

import json
from pathlib import Path

from .bench_history import render_trend
from .runner import serialise_artifact
from .scenarios import ScenarioMatrix, expand_matrix, format_axis_value, label_axes

REPORT_VERSION = 1

#: Metric key -> (direction, table label).  ``direction`` picks the winner:
#: ``max`` means more is better, ``min`` less.
METRICS: dict[str, tuple[str, str]] = {
    "throughput_mbps": ("max", "throughput (Mbit/s)"),
    "setup_seconds": ("min", "setup (s)"),
    "source_anonymity": ("max", "source anonymity"),
    "destination_anonymity": ("max", "destination anonymity"),
    "success_probability": ("max", "delivery success"),
    "unlinkability": ("max", "unlinkability"),
}

#: Metrics compared against the baseline snapshot.
DELTA_METRICS = (
    "throughput_mbps",
    "setup_seconds",
    "source_anonymity",
    "success_probability",
    "unlinkability",
)

#: Relative change below which a baseline delta is reported as unchanged.
DELTA_EPSILON = 1e-9


def _load_cell_schemes(artifact: Path, cell_name: str) -> dict[str, dict] | None:
    """Per-scheme metric rows from one cell artifact, or None if unusable."""
    try:
        document = json.loads(artifact.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if document.get("experiment") != cell_name:
        return None
    schemes: dict[str, dict] = {}
    for row in document.get("rows", []):
        if isinstance(row, dict) and "scheme" in row:
            schemes[row["scheme"]] = {
                metric: row[metric] for metric in METRICS if metric in row
            }
    return schemes or None


def _best_schemes(schemes: dict[str, dict], order: tuple[str, ...]) -> dict[str, str]:
    """Winning scheme per metric (ties break in matrix scheme order)."""
    best: dict[str, str] = {}
    for metric, (direction, _label) in METRICS.items():
        candidates = [
            (scheme, schemes[scheme][metric])
            for scheme in order
            if scheme in schemes and metric in schemes[scheme]
        ]
        if not candidates:
            continue
        pick = max if direction == "max" else min
        best[metric] = pick(candidates, key=lambda pair: pair[1])[0]
    return best


def collect_cells(matrix: ScenarioMatrix, results_dir: Path) -> list[dict]:
    """One report entry per cell, in expansion order, with degrade-soft status."""
    entries = []
    for cell in expand_matrix(matrix):
        artifact = Path(results_dir) / f"{cell.name}.json"
        schemes = _load_cell_schemes(artifact, cell.name) if artifact.exists() else None
        if schemes is None:
            status = "missing"
            schemes = {}
        elif set(matrix.schemes) - set(schemes):
            status = "partial"
        else:
            status = "ok"
        entry = {
            "cell": cell.name,
            "axes": cell.axes,
            "label_axes": label_axes(cell.axes, matrix.listed_axes),
            "status": status,
            "schemes": {
                scheme: schemes[scheme] for scheme in matrix.schemes if scheme in schemes
            },
        }
        if schemes:
            entry["best"] = _best_schemes(schemes, matrix.schemes)
        entries.append(entry)
    return entries


def _baseline_deltas(cells: list[dict], baseline: dict) -> list[dict]:
    """Per-(cell, scheme, metric) relative changes against a baseline report."""
    baseline_cells = {
        entry.get("cell"): entry.get("schemes", {})
        for entry in baseline.get("cells", [])
        if isinstance(entry, dict)
    }
    deltas = []
    for entry in cells:
        reference = baseline_cells.get(entry["cell"])
        if not reference:
            continue
        for scheme, metrics in entry["schemes"].items():
            for metric in DELTA_METRICS:
                if metric not in metrics or metric not in reference.get(scheme, {}):
                    continue
                current = float(metrics[metric])
                previous = float(reference[scheme][metric])
                magnitude = max(abs(previous), abs(current), 1e-12)
                relative = (current - previous) / magnitude
                deltas.append(
                    {
                        "cell": entry["cell"],
                        "scheme": scheme,
                        "metric": metric,
                        "baseline": previous,
                        "current": current,
                        "relative_change": round(relative, 6),
                        "regressed": bool(abs(relative) > DELTA_EPSILON),
                    }
                )
    return deltas


def build_report(
    matrix: ScenarioMatrix,
    results_dir: str | Path,
    baseline: dict | None = None,
    baseline_source: str | None = None,
    trajectory: dict | None = None,
    trajectory_source: str | None = None,
) -> dict:
    """Assemble the consolidated report document (pure data, no I/O side effects)."""
    cells = collect_cells(matrix, Path(results_dir))
    statuses = [entry["status"] for entry in cells]
    best_counts: dict[str, dict[str, int]] = {}
    for entry in cells:
        for metric, scheme in entry.get("best", {}).items():
            per_metric = best_counts.setdefault(metric, dict.fromkeys(matrix.schemes, 0))
            per_metric[scheme] += 1
    report = {
        "version": REPORT_VERSION,
        "matrix": {
            "name": matrix.name,
            "axes": matrix.axes,
            "listed_axes": list(matrix.listed_axes),
            "schemes": list(matrix.schemes),
            "profile": matrix.profile,
            "messages": matrix.messages,
            "anonymity_trials": matrix.anonymity_trials,
            "num_nodes": matrix.num_nodes,
        },
        "summary": {
            "cells": len(cells),
            "complete": statuses.count("ok"),
            "partial": statuses.count("partial"),
            "missing": statuses.count("missing"),
            "best_counts": best_counts,
        },
        "cells": cells,
    }
    if baseline is not None:
        deltas = _baseline_deltas(cells, baseline)
        report["baseline"] = {
            "source": baseline_source or "",
            "deltas": deltas,
            "regressions": sum(1 for delta in deltas if delta["regressed"]),
        }
    if trajectory is not None:
        report["trajectory"] = {
            "source": trajectory_source or "",
            "entries": trajectory.get("entries", []),
        }
    return report


# -- markdown rendering ------------------------------------------------------------


def _fmt(value: float) -> str:
    """Deterministic compact number rendering for tables."""
    return f"{value:.4g}"


def _cell_heading(entry: dict) -> str:
    label = entry["label_axes"] or entry["axes"]
    settings = ", ".join(
        f"{axis}={format_axis_value(label[axis])}" for axis in sorted(label)
    )
    return f"`{entry['cell']}` ({settings})"


def render_markdown(report: dict) -> str:
    """Render the report document as the committed-style markdown page."""
    matrix = report["matrix"]
    summary = report["summary"]
    lines = [
        f"# Scenario report — matrix `{matrix['name']}`",
        "",
        "Generated by `repro-experiments report`; regenerate instead of editing:",
        "",
        "```sh",
        f"repro-experiments run --matrix scenarios/{matrix['name']}.json --out results",
        f"repro-experiments report --matrix scenarios/{matrix['name']}.json --results results",
        "```",
        "",
        "Axis semantics and the spec schema are documented in",
        "[scenarios.md](scenarios.md).",
        "",
        "## Matrix",
        "",
        f"- base profile `{matrix['profile']}`, {matrix['messages']} messages per"
        f" transfer, {matrix['anonymity_trials']} anonymity trials per scheme,"
        f" N={matrix['num_nodes']} overlay nodes",
        f"- schemes: {', '.join(f'`{scheme}`' for scheme in matrix['schemes'])}",
        f"- {summary['cells']} cell(s): {summary['complete']} complete,"
        f" {summary['partial']} partial, {summary['missing']} missing",
        "",
        "| axis | values |",
        "|---|---|",
    ]
    for axis in sorted(matrix["axes"]):
        values = ", ".join(format_axis_value(v) for v in matrix["axes"][axis])
        marker = "**" if axis in matrix["listed_axes"] else ""
        lines.append(f"| {marker}{axis}{marker} | {values} |")
    lines += ["", "## Cells", ""]
    metric_labels = [label for _, label in METRICS.values()]
    for entry in report["cells"]:
        lines.append(f"### {_cell_heading(entry)}")
        lines.append("")
        if entry["status"] == "missing":
            lines += ["_No artifact for this cell; run the matrix first._", ""]
            continue
        if entry["status"] == "partial":
            ran = set(entry["schemes"])
            missing = [s for s in matrix["schemes"] if s not in ran]
            lines += [f"_Partial: no rows for {', '.join(missing)}._", ""]
        lines.append("| scheme | " + " | ".join(metric_labels) + " |")
        lines.append("|" + "---|" * (len(METRICS) + 1))
        for scheme, metrics in entry["schemes"].items():
            cells = [
                _fmt(metrics[metric]) if metric in metrics else "—" for metric in METRICS
            ]
            lines.append(f"| {scheme} | " + " | ".join(cells) + " |")
        best = entry.get("best", {})
        if best:
            lines.append("")
            lines.append(
                "Best: "
                + "; ".join(
                    f"{METRICS[metric][1]} → **{best[metric]}**"
                    for metric in METRICS
                    if metric in best
                )
            )
        lines.append("")
    lines += ["## Best scheme per cell", ""]
    lines.append("| cell | " + " | ".join(metric_labels) + " |")
    lines.append("|" + "---|" * (len(METRICS) + 1))
    for entry in report["cells"]:
        best = entry.get("best", {})
        row = [best.get(metric, "—") for metric in METRICS]
        lines.append(f"| `{entry['cell']}` | " + " | ".join(row) + " |")
    lines.append("")

    baseline = report.get("baseline")
    lines += ["## Regressions vs. baseline", ""]
    if baseline is None:
        lines += ["_No baseline snapshot supplied._", ""]
    else:
        changed = [d for d in baseline["deltas"] if d["regressed"]]
        lines.append(
            f"Compared against `{baseline['source']}`: {len(baseline['deltas'])}"
            f" metric(s) checked, {len(changed)} changed."
        )
        lines.append("")
        if changed:
            lines.append("| cell | scheme | metric | baseline | current | change |")
            lines.append("|---|---|---|---|---|---|")
            for delta in changed:
                lines.append(
                    f"| `{delta['cell']}` | {delta['scheme']} | {delta['metric']} | "
                    f"{_fmt(delta['baseline'])} | {_fmt(delta['current'])} | "
                    f"{delta['relative_change'] * 100:+.2f}% |"
                )
            lines.append("")

    lines += ["## Bench trajectory", ""]
    trajectory = report.get("trajectory")
    if trajectory is None:
        lines += ["_No bench trajectory file supplied._", ""]
    else:
        lines.append(
            "Median measured speedup of each benchmark gate per recorded label"
            f" (from `{trajectory['source']}`):"
        )
        lines.append("")
        lines.append(render_trend({"entries": trajectory["entries"]}))
        lines.append("")
    return "\n".join(lines)


# -- top-level entry point ---------------------------------------------------------


def write_report(
    matrix: ScenarioMatrix,
    results_dir: str | Path,
    json_path: str | Path,
    md_path: str | Path | None = None,
    baseline_path: str | Path | None = None,
    trajectory_path: str | Path | None = None,
) -> dict:
    """Build the report and write the JSON (and optionally markdown) outputs.

    ``baseline_path`` / ``trajectory_path`` that do not exist are treated as
    absent rather than errors, so a fresh checkout can generate its first
    report before any snapshot has been committed.
    """
    baseline = baseline_source = None
    if baseline_path is not None and Path(baseline_path).is_file():
        baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
        baseline_source = Path(baseline_path).as_posix()
    trajectory = trajectory_source = None
    if trajectory_path is not None and Path(trajectory_path).is_file():
        trajectory = json.loads(Path(trajectory_path).read_text(encoding="utf-8"))
        trajectory_source = Path(trajectory_path).as_posix()
    report = build_report(
        matrix,
        results_dir,
        baseline=baseline,
        baseline_source=baseline_source,
        trajectory=trajectory,
        trajectory_source=trajectory_source,
    )
    json_path = Path(json_path)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(serialise_artifact(report), encoding="utf-8")
    if md_path is not None:
        md_path = Path(md_path)
        md_path.parent.mkdir(parents=True, exist_ok=True)
        md_path.write_text(render_markdown(report) + "\n", encoding="utf-8")
    return report
