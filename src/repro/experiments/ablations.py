"""Ablation experiments (§9.1, §9.4a, §4.4.1), registered with the runner.

These used to live inline in the benchmark suite; registering them alongside
the figures gives them the same CLI, caching and parallel fan-out, and keeps
``benchmarks/`` a thin layer of assertions over shared experiment code.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.coder import SliceCoder
from ..core.source import Source
from ..core.transforms import build_transform_chain
from ..overlay.address import assign_overlay_addresses, generate_as_database
from ..overlay.local import LocalOverlay
from ..overlay.selection import (
    adversary_capture_probability,
    as_diverse_selection,
    uniform_selection,
)
from .registry import Experiment, register
from .runner import experiment_rows
from .trials import chunked_points, merge_chunks, spawn_seed


# -- §9.4a: per-hop anti-pattern transform overhead ------------------------------


def _transforms_trials(scale: float) -> list[dict]:
    iterations = max(int(100 * scale), 10)
    return [{"d": d, "iterations": iterations} for d in (2, 3, 5)]


def _transforms_run(params: dict, rng: np.random.Generator) -> dict:
    d = params["d"]
    iterations = params["iterations"]
    packet = bytes(rng.integers(0, 256, 1500, dtype=np.uint8).tobytes())
    coder = SliceCoder(d)
    blocks = coder.encode(packet, rng)
    combined, inverses = build_transform_chain(4, rng)

    start = time.perf_counter()
    for _ in range(iterations):
        coder.encode(packet, rng)
    encode_us = (time.perf_counter() - start) / iterations * 1e6

    start = time.perf_counter()
    for _ in range(iterations):
        for block in blocks:
            transformed = combined.apply_block(block)
            for inverse in inverses:
                transformed = inverse.apply_block(transformed)
    transform_us = (time.perf_counter() - start) / iterations * 1e6

    return {
        "d": d,
        "encode_us": encode_us,
        "transform_chain_us": transform_us,
        "overhead_ratio": transform_us / max(encode_us, 1e-9),
    }


register(
    Experiment(
        name="ablation_transforms",
        title="Ablation §9.4a: per-hop anti-pattern transform CPU overhead",
        build_trials=_transforms_trials,
        run_trial=_transforms_run,
        deterministic=False,  # wall-clock timings; never serve from cache
        shardable=False,  # single-host comparison; numbers mean nothing sharded
    )
)


def ablation_transforms(scale: float = 1.0) -> list[dict]:
    """Ablation §9.4a: per-hop transform overhead on top of plain coding."""
    return experiment_rows("ablation_transforms", scale=scale)


# -- §9.1: AS-diverse vs. uniform relay selection --------------------------------


def _as_selection_trials(scale: float) -> list[dict]:
    return chunked_points([{}], max(int(60 * scale), 10))


def _as_selection_run(params: dict, rng: np.random.Generator) -> dict:
    database = generate_as_database(num_ases=30, rng=rng)
    addresses = assign_overlay_addresses(database, 400, rng, concentrated_fraction=0.45)
    counts: dict[int, int] = {}
    for prefix in database.prefixes:
        counts[prefix.asn] = counts.get(prefix.asn, 0) + 1
    adversary = {max(counts, key=counts.get)}
    uniform_capture, diverse_capture = [], []
    for _ in range(params["trials"]):
        uniform_capture.append(
            adversary_capture_probability(
                uniform_selection(addresses, 24, rng), adversary, database
            )
        )
        diverse_capture.append(
            adversary_capture_probability(
                as_diverse_selection(addresses, 24, database, rng).relays,
                adversary,
                database,
            )
        )
    return {
        "trials": params["trials"],
        "uniform_capture": float(np.mean(uniform_capture)),
        "diverse_capture": float(np.mean(diverse_capture)),
    }


def _as_selection_reduce(trials: list[dict], results: list[dict]) -> list[dict]:
    merged = merge_chunks(results, (), ("uniform_capture", "diverse_capture"))[0]
    return [
        {"policy": "uniform", "adversary_capture_fraction": merged["uniform_capture"]},
        {"policy": "as-diverse", "adversary_capture_fraction": merged["diverse_capture"]},
    ]


register(
    Experiment(
        name="ablation_as_selection",
        title="Ablation §9.1: AS-diverse vs. uniform relay selection",
        build_trials=_as_selection_trials,
        run_trial=_as_selection_run,
        reduce=_as_selection_reduce,
    )
)


def ablation_as_selection(scale: float = 1.0) -> list[dict]:
    """Ablation §9.1: adversary capture under uniform vs. AS-diverse selection."""
    return experiment_rows("ablation_as_selection", scale=scale)


# -- §4.4.1: in-network redundancy regeneration on vs. off -----------------------


def _network_coding_trials(scale: float) -> list[dict]:
    return chunked_points([{}], max(int(60 * scale), 15))


def _regeneration_success_rate(regenerate: bool, trials: int, base_seed: int) -> float:
    successes = 0
    for trial in range(trials):
        overlay = LocalOverlay()
        relays = [f"relay-{i}" for i in range(60)]
        overlay.add_nodes(relays + ["dest"], seed=base_seed + trial)
        for relay in overlay.relays.values():
            relay.regenerate_redundancy = regenerate
        source = Source(
            "src",
            ["src-b", "src-c"],
            d=2,
            d_prime=3,
            path_length=4,
            rng=np.random.default_rng(base_seed + 1000 + trial),
        )
        flow = source.establish_flow(relays, "dest")
        overlay.inject(flow.setup_packets)
        rng = np.random.default_rng(base_seed + 2000 + trial)
        # Fail one randomly chosen non-destination relay in every stage after
        # setup: survivable iff redundancy keeps getting regenerated.
        for stage in flow.graph.stages[1:]:
            candidates = [node for node in stage if node != "dest"]
            overlay.fail_node(candidates[int(rng.integers(0, len(candidates)))])
        overlay.inject(source.make_data_packets(flow, b"payload"))
        overlay.flush_flow(flow)
        delivered = overlay.node("dest").delivered_messages(flow.plan.flow_ids["dest"])
        successes += int(delivered.get(0) == b"payload")
    return successes / trials


def _network_coding_run(params: dict, rng: np.random.Generator) -> dict:
    # Both arms replay the same overlays, flows and failure patterns (shared
    # derived seeds), so the comparison is paired trial by trial.
    base_seed = spawn_seed(rng)
    trials = params["trials"]
    return {
        "trials": trials,
        "enabled_success": _regeneration_success_rate(True, trials, base_seed),
        "disabled_success": _regeneration_success_rate(False, trials, base_seed),
    }


def _network_coding_reduce(trials: list[dict], results: list[dict]) -> list[dict]:
    merged = merge_chunks(results, (), ("enabled_success", "disabled_success"))[0]
    return [
        {"regeneration": "enabled", "success_rate": merged["enabled_success"]},
        {"regeneration": "disabled", "success_rate": merged["disabled_success"]},
    ]


register(
    Experiment(
        name="ablation_network_coding",
        title="Ablation §4.4.1: in-network redundancy regeneration on vs. off",
        build_trials=_network_coding_trials,
        run_trial=_network_coding_run,
        reduce=_network_coding_reduce,
    )
)


def ablation_network_coding(scale: float = 1.0) -> list[dict]:
    """Ablation §4.4.1: transfer success with regeneration enabled vs. disabled."""
    return experiment_rows("ablation_network_coding", scale=scale)
