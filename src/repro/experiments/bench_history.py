"""Per-PR bench trajectory: the speedup gates as one versioned JSON file.

CI runs seven benchmark gates — ``anonbench`` (vectorised anonymity
Monte-Carlo), ``chaumbench`` (vectorised Chaum-mix Monte-Carlo),
``dataplane-bench`` (batched overlay data plane), ``distbench``
(coordinator/worker sharding), ``distsweep`` (worker-count scaling,
plain vs. secure wire), ``gfbench`` (compiled GF(2^8) kernel vs.
numpy reference) and ``sphinxbench`` (batched Sphinx cell
masking) — and uploads their artifacts per run, but
uploaded artifacts expire: nothing in-repo showed how the speedups move
PR over PR.  This module maintains ``BENCH_trajectory.json``: one entry per
label (a PR number or commit), each recording the median and minimum
measured speedup of every gate next to the gate's enforced target.

``scripts/bench_history.py`` is the CLI wrapper (``collect`` / ``render``);
:func:`render_trend` also feeds the trend table in the generated scenario
report (:mod:`repro.experiments.report`).

Entries deliberately carry no timestamps: the file is regenerated in CI and
compared across runs, so everything in it must be a pure function of the
bench artifacts and the ``--label`` argument.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

from .runner import serialise_artifact

TRAJECTORY_VERSION = 1

#: Gate name -> enforced speedup target and the artifact filenames to probe
#: (the runner's ``results/<name>.json`` plus the CI upload aliases).
GATES: dict[str, dict] = {
    "anonbench": {"target": 10.0, "files": ("anonbench.json", "BENCH_anon.json")},
    "chaumbench": {"target": 10.0, "files": ("chaumbench.json", "BENCH_chaum.json")},
    "dataplane-bench": {
        "target": 5.0,
        "files": ("dataplane-bench.json", "BENCH_dataplane.json"),
    },
    "distbench": {"target": 1.5, "files": ("distbench.json", "BENCH_dist.json")},
    "distsweep": {"target": 1.5, "files": ("distsweep.json", "BENCH_distsweep.json")},
    "gfbench": {"target": 3.0, "files": ("gfbench.json", "BENCH_gf.json")},
    "sphinxbench": {
        "target": 2.0,
        "files": ("sphinxbench.json", "BENCH_sphinx.json"),
    },
}


def summarise_gate(document: dict) -> dict:
    """Condense one bench artifact's rows into the trajectory fields.

    Every gate experiment reports a ``speedup`` column per row; the median is
    what the benchmark suites assert against, the minimum shows the worst
    parameter point.  Gates that cannot run on the current host (``gfbench``
    with no compiled provider, ``distbench`` on a single-CPU runner) report
    ``"skipped"`` rows instead; those summarise to a ``skipped`` reason and
    render as ``n/a`` in the trend table rather than failing collection.

    >>> doc = {"rows": [{"speedup": 12.0}, {"speedup": 20.0}, {"speedup": 14.0}]}
    >>> summarise_gate(doc)
    {'median_speedup': 14.0, 'min_speedup': 12.0, 'rows': 3}
    >>> summarise_gate({"rows": [{"skipped": "host has 1 CPU(s)"}]})
    {'skipped': 'host has 1 CPU(s)', 'rows': 1}
    """
    rows = [row for row in document.get("rows", []) if isinstance(row, dict)]
    speedups = [float(row["speedup"]) for row in rows if "speedup" in row]
    if not speedups:
        skipped = [str(row["skipped"]) for row in rows if "skipped" in row]
        if skipped:
            return {"skipped": skipped[0], "rows": len(skipped)}
        raise ValueError("bench artifact has no rows with a 'speedup' field")
    return {
        "median_speedup": round(statistics.median(speedups), 4),
        "min_speedup": round(min(speedups), 4),
        "rows": len(speedups),
    }


def find_gate_artifact(gate: str, results_dirs: list[Path]) -> Path | None:
    """First existing artifact for ``gate`` across the candidate directories."""
    for directory in results_dirs:
        for filename in GATES[gate]["files"]:
            candidate = Path(directory) / filename
            if candidate.is_file():
                return candidate
    return None


def collect_entry(label: str, results_dirs: list[Path]) -> tuple[dict, list[str]]:
    """Build one trajectory entry from whatever gate artifacts are present.

    Returns the entry plus the list of gates that had no artifact — missing
    gates degrade to absent keys rather than failures, so a partial bench
    run still records what it measured.
    """
    gates: dict[str, dict] = {}
    missing: list[str] = []
    for gate in sorted(GATES):
        artifact = find_gate_artifact(gate, results_dirs)
        if artifact is None:
            missing.append(gate)
            continue
        document = json.loads(artifact.read_text(encoding="utf-8"))
        gates[gate] = {"target": GATES[gate]["target"], **summarise_gate(document)}
    return {"label": label, "gates": gates}, missing


def load_trajectory(path: Path) -> dict:
    """Load an existing trajectory file, or start a fresh one."""
    path = Path(path)
    if not path.is_file():
        return {"version": TRAJECTORY_VERSION, "entries": []}
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("version") != TRAJECTORY_VERSION or not isinstance(
        document.get("entries"), list
    ):
        raise ValueError(f"{path} is not a version-{TRAJECTORY_VERSION} trajectory file")
    return document


def upsert_entry(trajectory: dict, entry: dict) -> dict:
    """Replace the entry with the same label in place, or append a new one.

    Re-running collection for one label (a re-triggered CI run) updates that
    label's measurements without duplicating or re-ordering history.

    >>> trajectory = {"version": 1, "entries": [{"label": "pr1", "gates": {}}]}
    >>> updated = upsert_entry(trajectory, {"label": "pr1", "gates": {"x": 1}})
    >>> [e["label"] for e in updated["entries"]]
    ['pr1']
    >>> updated = upsert_entry(updated, {"label": "pr2", "gates": {}})
    >>> [e["label"] for e in updated["entries"]]
    ['pr1', 'pr2']
    """
    entries = list(trajectory.get("entries", []))
    for index, existing in enumerate(entries):
        if existing.get("label") == entry["label"]:
            entries[index] = entry
            break
    else:
        entries.append(entry)
    return {"version": TRAJECTORY_VERSION, "entries": entries}


def collect(label: str, results_dirs: list[Path], path: Path) -> tuple[dict, list[str]]:
    """Collect the current gate artifacts into the trajectory file at ``path``."""
    entry, missing = collect_entry(label, results_dirs)
    trajectory = upsert_entry(load_trajectory(path), entry)
    Path(path).write_text(serialise_artifact(trajectory), encoding="utf-8")
    return trajectory, missing


def render_trend(trajectory: dict) -> str:
    """The trajectory as a markdown trend table (one row per label).

    Gates a host could not run (a ``skipped`` summary) render as ``n/a``;
    gates with no artifact at all render as ``—``.

    >>> print(render_trend({"version": 1, "entries": [
    ...     {"label": "pr5", "gates": {"distbench": {"target": 1.5,
    ...                                              "median_speedup": 2.1},
    ...                                "gfbench": {"target": 3.0,
    ...                                            "skipped": "no provider"}}}]}))
    | label | anonbench (≥10×) | chaumbench (≥10×) | dataplane-bench (≥5×) | distbench (≥1.5×) | distsweep (≥1.5×) | gfbench (≥3×) | sphinxbench (≥2×) |
    |---|---|---|---|---|---|---|---|
    | pr5 | — | — | — | 2.1× | — | n/a | — |
    """
    gate_names = sorted(GATES)
    header = "| label | " + " | ".join(
        f"{gate} (≥{GATES[gate]['target']:g}×)" for gate in gate_names
    ) + " |"
    separator = "|" + "---|" * (len(gate_names) + 1)
    lines = [header, separator]
    for entry in trajectory.get("entries", []):
        cells = []
        for gate in gate_names:
            measured = entry.get("gates", {}).get(gate)
            if measured is None:
                cells.append("—")
            elif "skipped" in measured:
                cells.append("n/a")
            else:
                cells.append(f"{measured['median_speedup']:g}×")
        lines.append(f"| {entry.get('label', '?')} | " + " | ".join(cells) + " |")
    return "\n".join(lines)
