"""Declarative experiment registry: every figure, table and ablation by name.

An :class:`Experiment` describes one evaluation artifact (a paper figure, a
table, or an ablation) as a set of *independent trials*:

* ``build_trials(scale)`` expands the experiment's declarative parameters
  into a list of JSON-serialisable trial dictionaries.  ``scale`` trades
  precision for speed exactly as before (1.0 reproduces the paper's trial
  counts).
* ``run_trial(params, rng)`` executes one trial with a dedicated,
  deterministically derived random generator and returns a JSON-serialisable
  result dictionary.
* ``reduce(trials, results)`` folds the per-trial outputs (in trial order)
  back into the row dictionaries the paper plots.

Keeping trials independent — no shared RNG, no shared mutable state — is
what lets :mod:`~repro.experiments.runner` fan them out over worker
processes while guaranteeing bit-identical results for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

#: Default base seed mixed into every experiment's SeedSequence root.
DEFAULT_BASE_SEED = 20070411


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: declarative trials plus a reduction."""

    name: str
    title: str
    build_trials: Callable[[float], list[dict]]
    run_trial: Callable[[dict, np.random.Generator], dict]
    reduce: Callable[[list[dict], list[dict]], list[dict]] | None = None
    base_seed: int = DEFAULT_BASE_SEED
    #: False for wall-clock measurements (timings differ per run/machine);
    #: the runner never serves cached artifacts for those.
    deterministic: bool = True
    #: Overlay transport backends this experiment can run on.  Experiments
    #: that drive the overlay substrate (figs. 11-15) also accept ``"aio"``;
    #: everything else is simulator-only and rejects ``--backend aio``.
    backends: tuple[str, ...] = ("sim",)
    #: Protocol-runtime schemes the experiment can be restricted to with
    #: ``--scheme`` (figs. 11-15 run any single registered runtime through
    #: their unified drivers).  Empty means the experiment has no per-scheme
    #: mode and rejects ``--scheme``.
    schemes: tuple[str, ...] = ()
    #: GF(2^8) kernels the experiment accepts via ``--kernel``.  Kernels are
    #: bit-identical by construction and travel out-of-band of the trial
    #: list, so cached artifacts stay kernel-independent.  Experiments that
    #: *measure* kernels against each other (``gfbench``) or spawn worker
    #: processes of their own (``distbench``) pin themselves to
    #: ``("numpy",)`` — selecting a kernel for them would change what the
    #: numbers mean.
    kernels: tuple[str, ...] = ("numpy", "compiled")
    #: Whether the trial list may be sharded across machines by the
    #: distributed coordinator (:mod:`~repro.experiments.distributed`).
    #: Trials are already independent by construction, so this defaults to
    #: True; the wall-clock microbenchmarks opt out — their measurements
    #: compare engines *on one host*, and several spawn worker processes of
    #: their own, so leasing their trials to remote machines would change
    #: what the numbers mean (and nest process fan-outs).
    shardable: bool = True

    def rows(self, trials: list[dict], results: list[dict]) -> list[dict]:
        """Reduce per-trial results (in trial order) to plottable rows."""
        if self.reduce is None:
            return list(results)
        return self.reduce(trials, results)


#: All registered experiments by name.  Populated by importing
#: :mod:`~repro.experiments.figures` and :mod:`~repro.experiments.ablations`.
REGISTRY: dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add ``experiment`` to the registry; names must be unique."""
    if experiment.name in REGISTRY:
        raise ValueError(f"experiment {experiment.name!r} is already registered")
    REGISTRY[experiment.name] = experiment
    return experiment


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment, loading the definitions if needed."""
    _ensure_definitions_loaded()
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {name!r} (known: {known})") from None


def experiment_names() -> list[str]:
    """Sorted names of every registered experiment."""
    _ensure_definitions_loaded()
    return sorted(REGISTRY)


def _ensure_definitions_loaded() -> None:
    # Importing the definition modules runs their register() calls.  This is
    # also what makes worker processes (which receive only experiment names)
    # see the same registry as the parent.
    from . import ablations, distinguishability, figures  # noqa: F401

    # Scenario-matrix cells are registered from spec files rather than module
    # import; re-loading the specs named in REPRO_SCENARIO_MATRIX is how pool
    # and distributed workers see the same dynamically registered cells.
    from .scenarios import load_env_matrices

    load_env_matrices()
