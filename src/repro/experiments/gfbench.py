"""GF(2^8) kernel microbenchmark: compiled kernels vs. the numpy reference.

The two hot field operations of the slicing data plane are timed at their
real dataplane shapes — the fig11-style encode matmul (a stack of 64 coding
matrices applied to 64 payload blocks) and the batched Gauss–Jordan inverse
the decoders run — once through the pure-numpy ``"numpy"`` kernel and once
through the ``"compiled"`` kernel (numba or the bundled C extension,
whichever :mod:`~repro.core.gf_kernels` resolved).  Bit-identity of every
output array is asserted on every repetition; the ``gfbench`` experiment
(and the benchmark gate in ``benchmarks/``) requires the compiled kernel to
be >= 3x faster at these shapes.

When no compiled provider is available (no numba, no C toolchain, or
``REPRO_GF_KERNEL_PROVIDER=none``) the rows carry a ``"skipped"`` reason
instead of timings, and the benchmark gate reports ``n/a`` rather than
failing — the compiled backend is an optional extra, not a requirement.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.errors import KernelUnavailableError
from ..core.gf import field_for_kernel

#: Batched operations the benchmark times, at the data plane's real shapes:
#: ``matmul`` is the fig11-style encode (64 flows x (8, 4) coding matrices
#: applied to (4, 65) payload blocks); ``invert`` is the decoder's batched
#: Gauss–Jordan over 64 stacked (4, 4) candidate matrices.
GFBENCH_OPS = ("matmul", "invert")

GFBENCH_BATCH = 64
GFBENCH_MATMUL_SHAPES = ((GFBENCH_BATCH, 8, 4), (GFBENCH_BATCH, 4, 65))
GFBENCH_INVERT_SHAPE = (GFBENCH_BATCH, 4, 4)

#: Inner iterations per timed repetition: one dataplane call is only a few
#: hundred microseconds, so each repetition times a small loop to keep the
#: per-rep minimum well clear of timer granularity.
GFBENCH_INNER_LOOPS = 20


def _workload(op: str, seed: int) -> tuple[np.ndarray, ...]:
    rng = np.random.default_rng(seed)
    if op == "matmul":
        a_shape, b_shape = GFBENCH_MATMUL_SHAPES
        return (
            rng.integers(0, 256, size=a_shape, dtype=np.uint8),
            rng.integers(0, 256, size=b_shape, dtype=np.uint8),
        )
    if op == "invert":
        stacks = rng.integers(0, 256, size=GFBENCH_INVERT_SHAPE, dtype=np.uint8)
        # Force a few singular members so the benchmark covers the decoder's
        # rejection path (and the bit-identity check covers it too).
        stacks[:4] = 0
        stacks[4, :, 0] = stacks[4, :, 1]
        return (stacks,)
    raise ValueError(f"unknown gfbench op {op!r} (known: {', '.join(GFBENCH_OPS)})")


def _run_op(field, op: str, arrays: tuple[np.ndarray, ...]):
    if op == "matmul":
        return (field.batched_matmul(arrays[0], arrays[1]),)
    inverses, singular = field.try_invert_matrices(arrays[0])
    return inverses, singular


def compare_kernels(op: str, reps: int = 3, seed: int = 42) -> dict:
    """Time ``op`` on both kernels; returns the benchmark row.

    Timing uses the per-side minimum over ``reps`` of a small inner loop
    (the standard noise-robust estimator of the other microbenchmarks).
    Bit-identity of the compiled outputs against the numpy reference is
    asserted on *every* repetition — a compiled kernel that drifts from the
    reference fails the benchmark before any speedup is reported.

    Returns a ``{"op": ..., "skipped": reason}`` row instead when no
    compiled provider is available.
    """
    numpy_field = field_for_kernel("numpy")
    try:
        compiled_field = field_for_kernel("compiled")
    except KernelUnavailableError as error:
        return {"op": op, "skipped": str(error)}

    arrays = _workload(op, seed)
    # Warm both kernels (first-call allocation, and JIT compilation for the
    # numba provider) and establish the reference outputs.
    reference = _run_op(numpy_field, op, arrays)
    _run_op(compiled_field, op, arrays)

    identical = True
    numpy_times: list[float] = []
    compiled_times: list[float] = []
    for _ in range(reps):
        start = time.perf_counter()
        for _ in range(GFBENCH_INNER_LOOPS):
            numpy_out = _run_op(numpy_field, op, arrays)
        numpy_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        for _ in range(GFBENCH_INNER_LOOPS):
            compiled_out = _run_op(compiled_field, op, arrays)
        compiled_times.append(time.perf_counter() - start)

        identical = identical and all(
            np.array_equal(ref, out) for ref, out in zip(reference, numpy_out)
        ) and all(
            np.array_equal(ref, out) for ref, out in zip(reference, compiled_out)
        )

    numpy_seconds = min(numpy_times) / GFBENCH_INNER_LOOPS
    compiled_seconds = min(compiled_times) / GFBENCH_INNER_LOOPS
    from ..core import gf_kernels

    return {
        "op": op,
        "batch": GFBENCH_BATCH,
        "provider": gf_kernels.provider_name(),
        "numpy_us": numpy_seconds * 1e6,
        "compiled_us": compiled_seconds * 1e6,
        "speedup": numpy_seconds / max(compiled_seconds, 1e-12),
        "identical": identical,
    }
