"""Command-line experiment runner: ``python -m repro.experiments [fig07 ...]``.

With no arguments, every figure is regenerated at a reduced scale; pass
``--scale 1.0`` for the paper's full trial counts and figure names to select
a subset.
"""

from __future__ import annotations

import argparse

from .figures import FIGURES
from .tables import format_table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "figures",
        nargs="*",
        choices=[*FIGURES, []],
        help="figures to regenerate (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="trial-count scale factor (1.0 = the paper's full counts)",
    )
    args = parser.parse_args(argv)
    selected = args.figures or list(FIGURES)
    for name in selected:
        rows = FIGURES[name](scale=args.scale)
        print(f"\n=== {name} ===")
        print(format_table(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
